"""Tests for the resilience subsystem (S27/E16).

Covers: deterministic failure plans, the degraded overlay, every
:class:`DeliveryStatus` outcome of the resilient router (including a
forced routing loop), stretch accounting against the *post-failure*
optimum, recovery restoring delivery, incremental-vs-cold rebuild
equivalence, and serial/parallel equality of experiment E16.
"""

import math

import networkx as nx
import pytest

from repro.core.types import DeliveryStatus
from repro.graphs.generators import grid_2d
from repro.metric.graph_metric import GraphMetric
from repro.resilience import (
    DegradedNetwork,
    EventKind,
    FailureEvent,
    FailurePlan,
    ResilientRouter,
    make_policy,
    measure_repair,
)
from repro.resilience.failure_plan import edge_key
from repro.resilience.repair import surviving_graph
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme


@pytest.fixture(scope="module")
def path4():
    """0-1-2-3 path: the minimal cut-link topology."""
    return GraphMetric(nx.path_graph(4))


@pytest.fixture(scope="module")
def cycle6():
    """6-cycle: every link failure leaves exactly one detour."""
    return GraphMetric(nx.cycle_graph(6))


class TestFailurePlan:
    def test_uniform_links_deterministic(self, grid_metric):
        a = FailurePlan.uniform_links(grid_metric, 0.2, seed=7)
        b = FailurePlan.uniform_links(grid_metric, 0.2, seed=7)
        assert a == b and len(a) > 0
        assert a != FailurePlan.uniform_links(grid_metric, 0.2, seed=8)

    def test_uniform_links_fraction(self, grid_metric):
        edges = grid_metric.graph.number_of_edges()
        plan = FailurePlan.uniform_links(grid_metric, 0.25, seed=1)
        assert len(plan) == round(0.25 * edges)
        assert len(plan.failed_links_at(0.0)) == len(plan)

    def test_recovery_clears_failed_links(self, grid_metric):
        plan = FailurePlan.uniform_links(
            grid_metric, 0.2, seed=4, at=0.0, recover_at=10.0
        )
        assert plan.failed_links_at(5.0)
        assert plan.failed_links_at(10.0) == []

    def test_correlated_region_is_one_ball(self, grid_metric):
        plan = FailurePlan.correlated_region(grid_metric, 0.3, seed=2)
        assert plan == FailurePlan.correlated_region(grid_metric, 0.3, seed=2)
        touched = sorted({v for e in plan.failed_links_at(0.0) for v in e})
        # All failed links live inside one metric ball around some center.
        radius = max(
            grid_metric.distance(touched[0], v) for v in touched
        )
        assert radius <= 2.0 * grid_metric.size_radius(
            touched[0], len(touched)
        )

    def test_targeted_links_folds_directions(self):
        ranked = [((0, 1), 5), ((1, 0), 4), ((2, 3), 8)]
        plan = FailurePlan.targeted_links(ranked, count=1)
        # 0-1 carries 5+4=9 > 8, so it is the top target.
        assert plan.failed_links_at(0.0) == [(0, 1)]

    def test_events_validate(self):
        with pytest.raises(ValueError):
            FailureEvent(0.0, EventKind.LINK_DOWN)  # needs an edge
        with pytest.raises(ValueError):
            FailureEvent(0.0, EventKind.NODE_DOWN)  # needs a node
        with pytest.raises(ValueError):
            FailureEvent(
                0.0, EventKind.WEIGHT_SCALE, edge=(0, 1), factor=0.0
            )

    def test_merge_keeps_time_order(self):
        a = FailurePlan([FailureEvent(2.0, EventKind.NODE_DOWN, node=1)])
        b = FailurePlan([FailureEvent(1.0, EventKind.NODE_DOWN, node=2)])
        merged = a.merge(b)
        assert [e.time for e in merged] == [1.0, 2.0]


class TestDegradedNetwork:
    def test_overlay_masks_without_mutating(self, cycle6):
        degraded = DegradedNetwork(cycle6)
        degraded.apply(FailureEvent(0.0, EventKind.LINK_DOWN, edge=(0, 1)))
        assert not degraded.edge_alive(0, 1)
        assert not degraded.edge_alive(1, 0)
        assert cycle6.graph.has_edge(0, 1)  # intact metric untouched
        assert degraded.neighbors(0) == [5]

    def test_post_failure_distance(self, cycle6):
        degraded = DegradedNetwork(cycle6)
        degraded.apply(FailureEvent(0.0, EventKind.LINK_DOWN, edge=(0, 1)))
        # The only surviving 0->2 route is the long way round.
        assert degraded.distance(0, 2) == pytest.approx(4.0)
        assert cycle6.distance(0, 2) == pytest.approx(2.0)

    def test_disconnection_reports_inf(self, path4):
        degraded = DegradedNetwork(path4)
        degraded.apply(FailureEvent(0.0, EventKind.LINK_DOWN, edge=(1, 2)))
        assert math.isinf(degraded.distance(0, 3))
        assert not degraded.connected(0, 3)

    def test_node_crash_kills_incident_links(self, cycle6):
        degraded = DegradedNetwork(cycle6)
        degraded.apply(FailureEvent(0.0, EventKind.NODE_DOWN, node=1))
        assert not degraded.node_alive(1)
        assert not degraded.edge_alive(0, 1)
        assert not degraded.edge_alive(1, 2)
        assert degraded.neighbors(1) == []

    def test_weight_scale_applies_and_restores(self, cycle6):
        degraded = DegradedNetwork(cycle6)
        degraded.apply(
            FailureEvent(0.0, EventKind.WEIGHT_SCALE, edge=(0, 1), factor=3.0)
        )
        assert degraded.edge_weight(0, 1) == pytest.approx(3.0)
        assert degraded.distance(0, 1) == pytest.approx(3.0)
        degraded.apply(
            FailureEvent(1.0, EventKind.WEIGHT_SCALE, edge=(0, 1), factor=1.0)
        )
        assert degraded.intact

    def test_detour_path_respects_hop_budget(self, cycle6):
        degraded = DegradedNetwork(cycle6)
        degraded.apply(FailureEvent(0.0, EventKind.LINK_DOWN, edge=(0, 1)))
        assert degraded.detour_path(0, 1, max_hops=4) is None
        assert degraded.detour_path(0, 1, max_hops=5) == [0, 5, 4, 3, 2, 1]


class TestRouterOutcomes:
    """One test per DeliveryStatus value."""

    def test_delivered_via_local_detour(self, cycle6):
        scheme = ShortestPathScheme(cycle6)
        degraded = DegradedNetwork.from_plan(
            cycle6,
            FailurePlan([FailureEvent(0.0, EventKind.LINK_DOWN, edge=(0, 1))]),
        )
        result = ResilientRouter(
            scheme, degraded, policy="local-detour"
        ).route(0, 2)
        assert result.status is DeliveryStatus.DELIVERED
        assert result.path == [0, 5, 4, 3, 2]
        assert result.detours == 1

    def test_dropped_on_fail_fast(self, path4):
        scheme = ShortestPathScheme(path4)
        degraded = DegradedNetwork.from_plan(
            path4,
            FailurePlan([FailureEvent(0.0, EventKind.LINK_DOWN, edge=(1, 2))]),
        )
        result = ResilientRouter(scheme, degraded, policy="fail-fast").route(
            0, 3
        )
        assert result.status is DeliveryStatus.DROPPED
        assert "fail-fast" in result.reason
        assert math.isinf(result.post_failure_optimal)
        assert result.stretch is None

    def test_ttl_expired(self, path4):
        scheme = ShortestPathScheme(path4)
        degraded = DegradedNetwork(path4)  # intact; budget is the problem
        result = ResilientRouter(
            scheme, degraded, policy="fail-fast", ttl=1
        ).route(0, 3)
        assert result.status is DeliveryStatus.TTL_EXPIRED
        assert result.hops == 1

    def test_loop_detected_on_cyclic_stale_hops(self, monkeypatch, path4):
        # Corrupt the stale next-hop state into a 0<->1 ping-pong; the
        # visited-state set must catch the repeat, not the TTL.
        router = ResilientRouter(
            ShortestPathScheme(path4), DegradedNetwork(path4)
        )
        router.stale_plan(0, 3)  # memoize before corrupting the metric
        true_paths = {
            (u, v): path4.shortest_path(u, v)
            for u in path4.nodes
            for v in path4.nodes
        }
        real_next = path4.next_hop
        monkeypatch.setattr(
            path4, "shortest_path", lambda u, v: true_paths[(u, v)]
        )
        monkeypatch.setattr(
            path4,
            "next_hop",
            lambda u, v: 1 if u == 0 else 0 if u == 1 else real_next(u, v),
        )
        result = router.route(0, 3)
        assert result.status is DeliveryStatus.LOOP_DETECTED
        assert result.hops <= 2 * path4.n  # caught long before the TTL

    def test_every_status_is_typed_under_heavy_failure(self, grid_metric):
        scheme = ShortestPathScheme(grid_metric)
        plan = FailurePlan.uniform_links(grid_metric, 0.35, seed=9)
        degraded = DegradedNetwork.from_plan(grid_metric, plan)
        router = ResilientRouter(scheme, degraded, policy="local-detour")
        pairs = [(u, v) for u in range(0, 36, 5) for v in range(1, 36, 4)]
        report = router.evaluate(pairs)
        assert report.total == len(pairs)
        for result in report.results:
            assert isinstance(result.status, DeliveryStatus)
            if not math.isfinite(result.post_failure_optimal):
                assert result.status is not DeliveryStatus.DELIVERED
        assert sum(report.outcome_counts().values()) == report.total


class TestStretchAccounting:
    def test_stretch_uses_post_failure_optimum(self, cycle6):
        scheme = ShortestPathScheme(cycle6)
        degraded = DegradedNetwork.from_plan(
            cycle6,
            FailurePlan([FailureEvent(0.0, EventKind.LINK_DOWN, edge=(0, 1))]),
        )
        result = ResilientRouter(
            scheme, degraded, policy="local-detour"
        ).route(0, 2)
        assert result.delivered
        # The denominator is the SURVIVING-topology optimum (4), not the
        # intact one (2): a perfect detour scores stretch 1, not 2.
        assert result.post_failure_optimal == pytest.approx(
            degraded.distance(0, 2)
        )
        assert result.pre_failure_optimal == pytest.approx(2.0)
        assert result.post_failure_optimal == pytest.approx(4.0)
        assert result.stretch == pytest.approx(
            result.cost / result.post_failure_optimal
        )
        assert result.stretch == pytest.approx(1.0)


class TestPolicies:
    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_policy("carrier-pigeon")

    def test_local_detour_beats_fail_fast_at_ten_percent(
        self, grid_metric, nameind_simple
    ):
        plan = FailurePlan.uniform_links(grid_metric, 0.10, seed=17)
        degraded = DegradedNetwork.from_plan(grid_metric, plan)
        pairs = [(u, v) for u in range(0, 36, 3) for v in range(1, 36, 3)]
        reports = {
            policy: ResilientRouter(
                nameind_simple, degraded, policy=policy
            ).evaluate(pairs)
            for policy in ("fail-fast", "local-detour")
        }
        assert (
            reports["local-detour"].delivered
            > reports["fail-fast"].delivered
        )
        # Delivered detoured packets still honestly account their cost.
        for result in reports["local-detour"].results:
            if result.delivered:
                assert result.cost >= (
                    result.post_failure_optimal - 1e-9
                )

    def test_level_escalation_recovers_some_packets(
        self, grid_metric, nameind_simple
    ):
        plan = FailurePlan.uniform_links(grid_metric, 0.10, seed=17)
        degraded = DegradedNetwork.from_plan(grid_metric, plan)
        pairs = [(u, v) for u in range(0, 36, 3) for v in range(1, 36, 3)]
        fail_fast = ResilientRouter(
            nameind_simple, degraded, policy="fail-fast"
        ).evaluate(pairs)
        escalated = ResilientRouter(
            nameind_simple, degraded, policy="level-escalation"
        ).evaluate(pairs)
        assert escalated.delivered >= fail_fast.delivered
        assert escalated.mean_detours() > 0.0


class TestRecovery:
    def test_delivery_restored_after_link_up(
        self, grid_metric, nameind_simple
    ):
        plan = FailurePlan.uniform_links(
            grid_metric, 0.20, seed=5, at=0.0, recover_at=10.0
        )
        degraded = DegradedNetwork.from_plan(grid_metric, plan, at_time=0.0)
        pairs = [(u, v) for u in range(0, 36, 4) for v in range(2, 36, 4)]
        router = ResilientRouter(nameind_simple, degraded, policy="fail-fast")
        degraded_report = router.evaluate(pairs)
        assert degraded_report.delivered < degraded_report.total

        degraded.advance_to(plan, 10.0)
        assert degraded.intact
        recovered_report = router.evaluate(pairs)
        assert recovered_report.delivered == recovered_report.total
        # With the topology healed, stale tables are exact again.
        for result in recovered_report.results:
            assert result.post_failure_optimal == pytest.approx(
                result.pre_failure_optimal
            )

    def test_surviving_graph_round_trips_after_recovery(self, cycle6):
        plan = FailurePlan(
            [
                FailureEvent(0.0, EventKind.LINK_DOWN, edge=(0, 1)),
                FailureEvent(5.0, EventKind.LINK_UP, edge=(0, 1)),
            ]
        )
        degraded = DegradedNetwork.from_plan(cycle6, plan, at_time=0.0)
        assert not surviving_graph(degraded).has_edge(0, 1)
        degraded.advance_to(plan, 5.0)
        healed = surviving_graph(degraded)
        assert sorted(map(tuple, healed.edges())) == sorted(
            edge_key(u, v) for u, v in cycle6.graph.edges()
        )


class TestIncrementalRepair:
    def test_incremental_rebuild_matches_cold(self, params):
        graph = grid_2d(5)
        cold, incremental = measure_repair(
            graph, [SimpleNameIndependentScheme], params, keep_schemes=True
        )
        # The warm context reuses every substrate; the cold one builds all.
        assert incremental.built_total == 0
        assert incremental.reused_total >= 2
        assert cold.built_total >= 2
        # ... and the reused scheme routes bit-identically.
        cold_scheme = cold.schemes[0]
        incr_scheme = incremental.schemes[0]
        n = cold_scheme.metric.n
        for u in range(0, n, 3):
            for v in range(1, n, 5):
                a = cold_scheme.route(u, v)
                b = incr_scheme.route(u, v)
                assert a.path == b.path
                assert a.cost == pytest.approx(b.cost)


class TestExperimentE16:
    def test_parallel_rows_match_serial(self, params):
        from repro.experiments.resilience import run
        from repro.pipeline.context import BuildContext

        suite = [("grid 5x5", grid_2d(5))]
        context = BuildContext()
        serial = run(pair_count=24, suite=suite, context=context, jobs=1)
        twin = run(pair_count=24, suite=suite, context=context, jobs=2)
        assert serial.rows == twin.rows

    def test_registered_in_registry(self):
        from repro.pipeline.registry import REGISTRY

        spec = REGISTRY["resilience"]
        assert spec.funcs == ("run", "run_repair")
