"""Tests for search trees (Def. 3.2 / 4.2, Algorithms 1-2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import PreprocessingError
from repro.metric.graph_metric import GraphMetric
from repro.searchtree.tree import SearchTree

from tests.test_rnet import random_connected_graph

EPS = 0.5


def _stored_tree(metric, center=0, radius=None, epsilon=EPS, **kwargs):
    if radius is None:
        radius = metric.diameter
    tree = SearchTree(metric, center, radius, epsilon, **kwargs)
    tree.store({v: v * 10 for v in tree.nodes})
    return tree


class TestStructure:
    def test_nodes_are_ball_members(self, grid_metric):
        tree = SearchTree(grid_metric, 0, 3.0, EPS)
        assert tree.nodes == sorted(grid_metric.ball(0, 3.0))

    def test_explicit_members(self, grid_metric):
        members = [0, 1, 6, 7]
        tree = SearchTree(grid_metric, 0, 5.0, EPS, members=members)
        assert tree.nodes == members

    def test_center_must_be_member(self, grid_metric):
        with pytest.raises(PreprocessingError):
            SearchTree(grid_metric, 0, 5.0, EPS, members=[1, 2])

    def test_negative_radius_rejected(self, grid_metric):
        with pytest.raises(PreprocessingError):
            SearchTree(grid_metric, 0, -1.0, EPS)

    def test_root_is_center(self, grid_metric):
        assert SearchTree(grid_metric, 7, 4.0, EPS).root == 7

    def test_every_node_connected_to_root(self, any_metric):
        tree = SearchTree(any_metric, 0, any_metric.diameter, EPS)
        for v in tree.nodes:
            steps = 0
            current = v
            while current != tree.root:
                current = tree.parent_of(current)
                steps += 1
                assert steps <= tree.size

    def test_parent_child_consistent(self, grid_metric):
        tree = SearchTree(grid_metric, 0, grid_metric.diameter, EPS)
        for v in tree.nodes:
            for child in tree.children_of(v):
                assert tree.parent_of(child) == v

    def test_height_bound_eqn_3(self, any_metric):
        """Paper Eqn. 3: height <= (1+eps) r."""
        radius = any_metric.diameter / 2.0
        tree = SearchTree(any_metric, 0, radius, EPS)
        assert tree.height() <= (1 + EPS) * radius + 1e-6

    def test_degenerate_radius_flat_tree(self, grid_metric):
        # eps*r < 2: all ball members hang off the root directly.
        tree = SearchTree(grid_metric, 0, 2.0, EPS)
        for v in tree.nodes:
            if v != 0:
                assert tree.parent_of(v) == 0

    def test_singleton_ball(self, grid_metric):
        tree = SearchTree(grid_metric, 0, 0.0, EPS)
        assert tree.nodes == [0]
        tree.store({99: "x"})
        assert tree.search(99).found


class TestStoreAndSearch:
    def test_search_before_store_rejected(self, grid_metric):
        tree = SearchTree(grid_metric, 0, 3.0, EPS)
        with pytest.raises(PreprocessingError):
            tree.search(0)

    def test_all_keys_retrievable(self, any_metric):
        tree = _stored_tree(any_metric)
        for v in tree.nodes:
            outcome = tree.search(v)
            assert outcome.found
            assert outcome.data == v * 10

    def test_missing_key_not_found(self, grid_metric):
        tree = _stored_tree(grid_metric)
        outcome = tree.search(10**9)
        assert not outcome.found
        assert outcome.data is None

    def test_trail_round_trip(self, grid_metric):
        tree = _stored_tree(grid_metric)
        for key in (0, 17, 35):
            trail = tree.search(key).trail
            assert trail[0] == tree.root
            assert trail[-1] == tree.root

    def test_search_cost_bounded(self, any_metric):
        """Algorithm 2 costs at most 2 x height <= 2(1+eps) r."""
        radius = any_metric.diameter
        tree = _stored_tree(any_metric, radius=radius)
        for v in tree.nodes:
            assert tree.search(v).cost <= 2 * (1 + EPS) * radius + 1e-6

    def test_string_keys(self, grid_metric):
        tree = SearchTree(grid_metric, 0, 3.0, EPS)
        pairs = {f"name-{v:03d}": v for v in tree.nodes}
        tree.store(pairs)
        for key, v in pairs.items():
            assert tree.search(key).data == v

    def test_more_pairs_than_nodes(self, grid_metric):
        tree = SearchTree(grid_metric, 0, 2.0, EPS)
        pairs = {k: -k for k in range(4 * tree.size)}
        tree.store(pairs)
        for k in pairs:
            assert tree.search(k).data == -k

    def test_fewer_pairs_than_nodes(self, grid_metric):
        tree = SearchTree(grid_metric, 0, grid_metric.diameter, EPS)
        tree.store({1: "one", 2: "two"})
        assert tree.search(1).data == "one"
        assert tree.search(2).data == "two"
        assert not tree.search(3).found

    def test_pairs_distributed_evenly(self, grid_metric):
        """Algorithm 1: each node holds at most ceil(k/m) pairs."""
        tree = SearchTree(grid_metric, 0, grid_metric.diameter, EPS)
        pairs = {k: k for k in range(100, 100 + 2 * tree.size)}
        tree.store(pairs)
        cap = math.ceil(len(pairs) / tree.size)
        for v in tree.nodes:
            assert len(tree._pairs_at.get(v, {})) <= cap

    def test_restore_replaces(self, grid_metric):
        tree = SearchTree(grid_metric, 0, 3.0, EPS)
        tree.store({1: "a"})
        tree.store({2: "b"})
        assert not tree.search(1).found
        assert tree.search(2).data == "b"


class TestCappedVariant:
    def test_chains_created_when_capped(self, exponential_metric):
        radius = exponential_metric.diameter
        capped = SearchTree(
            exponential_metric, 0, radius, EPS,
            level_cap=exponential_metric.log_n,
        )
        # eps * r >> n here, so Definition 4.2 (ii) chains must appear.
        assert capped.chain_edge_count > 0

    def test_capped_tree_still_retrieves(self, exponential_metric):
        tree = _stored_tree(
            exponential_metric,
            radius=exponential_metric.diameter,
            level_cap=exponential_metric.log_n,
        )
        for v in tree.nodes:
            assert tree.search(v).data == v * 10

    def test_capped_height_bound(self, exponential_metric):
        """Def 4.2 remark: height <= (1+O(eps)) r."""
        radius = exponential_metric.diameter
        tree = SearchTree(
            exponential_metric, 0, radius, EPS,
            level_cap=exponential_metric.log_n,
        )
        assert tree.height() <= (1 + 3 * EPS) * radius + 1e-6

    def test_no_chains_when_cap_not_binding(self, grid_metric):
        tree = SearchTree(
            grid_metric, 0, grid_metric.diameter, EPS, level_cap=100
        )
        assert tree.chain_edge_count == 0


class TestStorageBits:
    def test_bits_cover_all_nodes(self, grid_metric):
        tree = _stored_tree(grid_metric)
        bits = tree.storage_bits(6, 6)
        assert set(bits) == set(tree.nodes)

    def test_bits_before_store_rejected(self, grid_metric):
        tree = SearchTree(grid_metric, 0, 3.0, EPS)
        with pytest.raises(PreprocessingError):
            tree.storage_bits(6, 6)

    def test_bits_positive_and_bounded(self, grid_metric):
        tree = _stored_tree(grid_metric)
        bits = tree.storage_bits(6, 6)
        degree = tree.max_degree()
        upper = (degree + 1) * 6 + (degree + 1) * 12 + 4 * tree.size * 12
        for v, b in bits.items():
            assert 0 < b <= upper


class TestSearchTreeProperties:
    @given(graph=random_connected_graph())
    @settings(max_examples=25, deadline=None)
    def test_store_retrieve_roundtrip(self, graph):
        metric = GraphMetric(graph)
        tree = SearchTree(metric, 0, metric.diameter, EPS)
        pairs = {v * 3 + 1: str(v) for v in tree.nodes}
        tree.store(pairs)
        for key, value in pairs.items():
            outcome = tree.search(key)
            assert outcome.found and outcome.data == value
        assert not tree.search(-5).found

    @given(
        graph=random_connected_graph(),
        cap=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_capped_roundtrip(self, graph, cap):
        metric = GraphMetric(graph)
        tree = SearchTree(metric, 0, metric.diameter, EPS, level_cap=cap)
        assert sorted(tree.nodes) == sorted(metric.nodes)
        pairs = {v: v for v in tree.nodes}
        tree.store(pairs)
        for v in tree.nodes:
            assert tree.search(v).data == v
