"""Tests for bit streams and header codecs (repro.runtime)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.bitstream import BitReader, BitWriter
from repro.runtime.headers import (
    FieldSpec,
    HeaderCodec,
    labeled_scalefree_codec,
    labeled_simple_codec,
    name_independent_codec,
)
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme


class TestBitStream:
    def test_round_trip_simple(self):
        writer = BitWriter()
        writer.write(5, 3)
        writer.write(1, 1)
        writer.write(200, 8)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        assert reader.read(3) == 5
        assert reader.read(1) == 1
        assert reader.read(8) == 200
        assert reader.remaining == 0

    def test_overflow_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(-1, 4)

    def test_read_past_end_rejected(self):
        writer = BitWriter()
        writer.write(1, 1)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        reader.read(1)
        with pytest.raises(ValueError):
            reader.read(1)

    def test_zero_width_field(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert writer.bit_length == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=24),
                st.integers(min_value=0),
            ).map(lambda t: (t[0], t[1] % (1 << t[0]))),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, fields):
        writer = BitWriter()
        for width, value in fields:
            writer.write(value, width)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        for width, value in fields:
            assert reader.read(width) == value


class TestHeaderCodec:
    def test_total_bits(self):
        codec = HeaderCodec([FieldSpec("a", 3), FieldSpec("b", 5)])
        assert codec.total_bits == 8

    def test_encode_decode_round_trip(self):
        codec = HeaderCodec([FieldSpec("a", 4), FieldSpec("b", 9)])
        data, bits = codec.encode({"a": 7, "b": 300})
        assert bits == 13
        assert codec.decode(data, bits) == {"a": 7, "b": 300}

    def test_missing_fields_default_zero(self):
        codec = HeaderCodec([FieldSpec("a", 4)])
        data, bits = codec.encode({})
        assert codec.decode(data, bits)["a"] == 0

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError):
            HeaderCodec([FieldSpec("a", 1), FieldSpec("a", 2)])

    def test_decode_wrong_length_rejected(self):
        codec = HeaderCodec([FieldSpec("a", 4)])
        data, bits = codec.encode({"a": 1})
        with pytest.raises(ValueError):
            codec.decode(data, bits + 1)

    def test_bad_field_specs_rejected(self):
        with pytest.raises(ValueError):
            FieldSpec("", 3)
        with pytest.raises(ValueError):
            FieldSpec("a", -1)


class TestSchemeCodecs:
    def test_simple_codec_is_one_label(self, grid_metric):
        codec = labeled_simple_codec(grid_metric)
        assert codec.total_bits == 6

    def test_scalefree_codec_fields(self, grid_metric):
        codec = labeled_scalefree_codec(grid_metric)
        names = [f.name for f in codec.fields]
        assert "target_label" in names
        assert "packing_level" in names
        assert "tree_target" in names

    def test_name_independent_codec_nests(self, grid_metric):
        inner = labeled_simple_codec(grid_metric)
        outer = name_independent_codec(grid_metric, inner)
        assert outer.total_bits > inner.total_bits
        assert any(f.name == "sub_target_label" for f in outer.fields)

    def test_header_bits_match_codec(self, grid_metric, params):
        """Every scheme's header_bits equals its codec's bit size."""
        for scheme in (
            NonScaleFreeLabeledScheme(grid_metric, params),
            ScaleFreeLabeledScheme(grid_metric, params),
        ):
            assert scheme.header_bits() == scheme.header_codec().total_bits

        labeled = ScaleFreeLabeledScheme(grid_metric, params)
        for scheme in (
            SimpleNameIndependentScheme(grid_metric, params),
            ScaleFreeNameIndependentScheme(
                grid_metric, params, underlying=labeled
            ),
        ):
            assert scheme.header_bits() == scheme.header_codec().total_bits

    def test_worst_case_header_encodable(self, grid_metric, params):
        """The widest legal field values round-trip for each scheme."""
        scheme = ScaleFreeLabeledScheme(grid_metric, params)
        codec = scheme.header_codec()
        values = {
            f.name: (1 << f.width) - 1 for f in codec.fields
        }
        data, bits = codec.encode(values)
        assert codec.decode(data, bits) == values

    def test_heavy_path_labels_widen_header(self, grid_metric, params):
        from repro.trees.heavy_path import HeavyPathRouter

        interval = ScaleFreeLabeledScheme(grid_metric, params)
        heavy = ScaleFreeLabeledScheme(
            grid_metric, params, tree_router_cls=HeavyPathRouter
        )
        # FG-style labels are log^2-ish, interval labels log n: the
        # header codec reflects the substrate choice.
        assert heavy.header_bits() >= interval.header_bits()
