"""Tests for bit streams and header codecs (repro.runtime)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.bitstream import BitReader, BitWriter, flip_bits
from repro.runtime.headers import (
    CHECKSUM_FIELD,
    ChecksumCodec,
    FieldSpec,
    HeaderCodec,
    HeaderCorruptionError,
    cowen_landmark_codec,
    crc_of_bits,
    labeled_scalefree_codec,
    labeled_simple_codec,
    name_independent_codec,
    shortest_path_codec,
    with_checksum,
)
from repro.schemes.cowen_landmark import CowenLandmarkScheme
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme


class TestBitStream:
    def test_round_trip_simple(self):
        writer = BitWriter()
        writer.write(5, 3)
        writer.write(1, 1)
        writer.write(200, 8)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        assert reader.read(3) == 5
        assert reader.read(1) == 1
        assert reader.read(8) == 200
        assert reader.remaining == 0

    def test_overflow_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(-1, 4)

    def test_read_past_end_rejected(self):
        writer = BitWriter()
        writer.write(1, 1)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        reader.read(1)
        with pytest.raises(ValueError):
            reader.read(1)

    def test_zero_width_field(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert writer.bit_length == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=24),
                st.integers(min_value=0),
            ).map(lambda t: (t[0], t[1] % (1 << t[0]))),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, fields):
        writer = BitWriter()
        for width, value in fields:
            writer.write(value, width)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        for width, value in fields:
            assert reader.read(width) == value


class TestHeaderCodec:
    def test_total_bits(self):
        codec = HeaderCodec([FieldSpec("a", 3), FieldSpec("b", 5)])
        assert codec.total_bits == 8

    def test_encode_decode_round_trip(self):
        codec = HeaderCodec([FieldSpec("a", 4), FieldSpec("b", 9)])
        data, bits = codec.encode({"a": 7, "b": 300})
        assert bits == 13
        assert codec.decode(data, bits) == {"a": 7, "b": 300}

    def test_missing_fields_default_zero(self):
        codec = HeaderCodec([FieldSpec("a", 4)])
        data, bits = codec.encode({})
        assert codec.decode(data, bits)["a"] == 0

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError):
            HeaderCodec([FieldSpec("a", 1), FieldSpec("a", 2)])

    def test_decode_wrong_length_rejected(self):
        codec = HeaderCodec([FieldSpec("a", 4)])
        data, bits = codec.encode({"a": 1})
        with pytest.raises(ValueError):
            codec.decode(data, bits + 1)

    def test_bad_field_specs_rejected(self):
        with pytest.raises(ValueError):
            FieldSpec("", 3)
        with pytest.raises(ValueError):
            FieldSpec("a", -1)


class TestSchemeCodecs:
    def test_simple_codec_is_one_label(self, grid_metric):
        codec = labeled_simple_codec(grid_metric)
        assert codec.total_bits == 6

    def test_scalefree_codec_fields(self, grid_metric):
        codec = labeled_scalefree_codec(grid_metric)
        names = [f.name for f in codec.fields]
        assert "target_label" in names
        assert "packing_level" in names
        assert "tree_target" in names

    def test_name_independent_codec_nests(self, grid_metric):
        inner = labeled_simple_codec(grid_metric)
        outer = name_independent_codec(grid_metric, inner)
        assert outer.total_bits > inner.total_bits
        assert any(f.name == "sub_target_label" for f in outer.fields)

    def test_header_bits_match_codec(self, grid_metric, params):
        """Every scheme's header_bits equals its codec's bit size."""
        for scheme in (
            NonScaleFreeLabeledScheme(grid_metric, params),
            ScaleFreeLabeledScheme(grid_metric, params),
        ):
            assert scheme.header_bits() == scheme.header_codec().total_bits

        labeled = ScaleFreeLabeledScheme(grid_metric, params)
        for scheme in (
            SimpleNameIndependentScheme(grid_metric, params),
            ScaleFreeNameIndependentScheme(
                grid_metric, params, underlying=labeled
            ),
        ):
            assert scheme.header_bits() == scheme.header_codec().total_bits

    def test_worst_case_header_encodable(self, grid_metric, params):
        """The widest legal field values round-trip for each scheme."""
        scheme = ScaleFreeLabeledScheme(grid_metric, params)
        codec = scheme.header_codec()
        values = {
            f.name: (1 << f.width) - 1 for f in codec.fields
        }
        data, bits = codec.encode(values)
        assert codec.decode(data, bits) == values

    def test_baseline_codecs_cover_all_schemes(self, grid_metric, params):
        """Every scheme exposes a codec sized like its header claim."""
        for scheme in (
            ShortestPathScheme(grid_metric, params),
            CowenLandmarkScheme(grid_metric, params),
        ):
            assert scheme.header_bits() == scheme.header_codec().total_bits

    def test_heavy_path_labels_widen_header(self, grid_metric, params):
        from repro.trees.heavy_path import HeavyPathRouter

        interval = ScaleFreeLabeledScheme(grid_metric, params)
        heavy = ScaleFreeLabeledScheme(
            grid_metric, params, tree_router_cls=HeavyPathRouter
        )
        # FG-style labels are log^2-ish, interval labels log n: the
        # header codec reflects the substrate choice.
        assert heavy.header_bits() >= interval.header_bits()


def _all_scheme_codecs(metric):
    """One codec per scheme family (the whole wire-format catalog)."""
    return [
        shortest_path_codec(metric),
        cowen_landmark_codec(metric),
        labeled_simple_codec(metric),
        labeled_scalefree_codec(metric),
        name_independent_codec(metric, labeled_simple_codec(metric)),
        name_independent_codec(metric, labeled_scalefree_codec(metric)),
    ]


def _max_values(codec):
    return {f.name: (1 << f.width) - 1 for f in codec.fields if f.width}


class TestChecksumCodec:
    def test_round_trip_every_scheme_codec(self, grid_metric):
        """Checksummed headers round-trip for all six scheme codecs."""
        for base in _all_scheme_codecs(grid_metric):
            for width in (8, 16):
                codec = with_checksum(base, width)
                assert codec.total_bits == base.total_bits + width
                assert codec.payload_bits == base.total_bits
                values = _max_values(base)
                data, bits = codec.encode(values)
                assert bits == codec.total_bits
                assert codec.verify(data, bits)
                decoded = codec.decode(data, bits)
                for name, value in values.items():
                    assert decoded[name] == value

    def test_every_single_bit_flip_detected(self, grid_metric):
        """Any one flipped bit is caught (CRC polys have the +1 term)."""
        for base in _all_scheme_codecs(grid_metric):
            codec = with_checksum(base, 8)
            data, bits = codec.encode(_max_values(base))
            for position in range(bits):
                flipped = flip_bits(data, [position])
                assert not codec.verify(flipped, bits), (
                    f"bit {position} flip undetected in {base!r}"
                )
                with pytest.raises(HeaderCorruptionError):
                    codec.decode(flipped, bits)

    def test_multi_bit_miss_rate_within_bound(self, grid_metric):
        """Random multi-bit corruption escapes with probability ~2^-k."""
        codec = with_checksum(labeled_scalefree_codec(grid_metric), 8)
        data, bits = codec.encode(
            _max_values(labeled_scalefree_codec(grid_metric))
        )
        rng = random.Random(99)
        trials, undetected = 3000, 0
        for _ in range(trials):
            count = rng.randrange(2, bits + 1)
            flipped = flip_bits(data, rng.sample(range(bits), count))
            if codec.verify(flipped, bits):
                undetected += 1
        # Expected miss rate 2^-8 ~ 0.0039; allow a generous 3x margin
        # (the trial stream is seeded, so this is deterministic).
        assert undetected / trials < 3 * 2**-8

    def test_crc_of_appended_message_is_zero(self):
        """Message + its own CRC has syndrome zero (the defining check)."""
        codec = ChecksumCodec([FieldSpec("a", 11), FieldSpec("b", 5)], 8)
        data, bits = codec.encode({"a": 1234, "b": 9})
        assert crc_of_bits(data, bits, 8) == 0

    def test_verify_rejects_wrong_length(self, grid_metric):
        codec = with_checksum(shortest_path_codec(grid_metric))
        data, bits = codec.encode({"target_name": 3})
        assert not codec.verify(data, bits + 1)

    def test_with_checksum_idempotent(self, grid_metric):
        codec = with_checksum(shortest_path_codec(grid_metric))
        assert with_checksum(codec) is codec

    def test_duplicate_checksum_field_rejected(self):
        with pytest.raises(ValueError):
            ChecksumCodec([FieldSpec(CHECKSUM_FIELD, 8)])

    def test_unsupported_width_rejected(self, grid_metric):
        with pytest.raises(ValueError):
            with_checksum(shortest_path_codec(grid_metric), 7)
        with pytest.raises(ValueError):
            crc_of_bits(b"\x00", 8, 12)


class TestFlipBits:
    def test_double_flip_is_identity(self):
        data = bytes([0b10110010, 0b01000001])
        assert flip_bits(flip_bits(data, [0, 9, 15]), [15, 0, 9]) == data

    def test_flip_positions_msb_first(self):
        assert flip_bits(b"\x00", [0]) == b"\x80"
        assert flip_bits(b"\x00", [7]) == b"\x01"

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            flip_bits(b"\x00", [8])
        with pytest.raises(ValueError):
            flip_bits(b"\x00", [-1])
