"""Edge-case graphs: cliques (diameter 1), two nodes, heavy multi-scale.

Diameter-1 metrics are degenerate for the net hierarchy (``log Δ = 0``
yet ``Y_0 = V`` must differ from the singleton top net); these tests pin
the fix (a minimum of two levels for ``n > 1``) and general behavior on
the smallest legal inputs.
"""

import networkx as nx
import pytest

from repro.core.params import SchemeParameters
from repro.metric.graph_metric import GraphMetric
from repro.nets.hierarchy import NetHierarchy
from repro.packing.ballpacking import BallPacking
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme

ALL_SCHEMES = [
    NonScaleFreeLabeledScheme,
    ScaleFreeLabeledScheme,
    SimpleNameIndependentScheme,
    ScaleFreeNameIndependentScheme,
]


def _clique(n):
    graph = nx.complete_graph(n)
    nx.set_edge_attributes(graph, 1.0, "weight")
    return GraphMetric(graph)


class TestDiameterOneMetrics:
    def test_hierarchy_has_two_levels(self):
        hierarchy = NetHierarchy(_clique(4))
        assert hierarchy.top_level >= 1
        assert hierarchy.net(0) == [0, 1, 2, 3]
        assert hierarchy.net(hierarchy.top_level) == [0]

    @pytest.mark.parametrize("scheme_cls", ALL_SCHEMES)
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_schemes_route_on_cliques(self, scheme_cls, n):
        metric = _clique(n)
        scheme = scheme_cls(metric, SchemeParameters(epsilon=0.5))
        ev = scheme.evaluate()
        bound = 1 + 8 * 0.5 if scheme.stretch_guarantee() == 1.0 else 13
        assert ev.max_stretch <= bound

    def test_labeled_is_exact_on_cliques(self):
        scheme = NonScaleFreeLabeledScheme(
            _clique(6), SchemeParameters(epsilon=0.5)
        )
        assert scheme.evaluate().max_stretch == pytest.approx(1.0)

    def test_packing_on_clique(self):
        packing = BallPacking(_clique(4))
        for j in packing.levels:
            for ball in packing.packing(j):
                assert ball.size == min(4, 1 << j)


class TestTwoNodeGraphs:
    def test_single_edge_all_schemes(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=3.5)
        metric = GraphMetric(graph)
        for scheme_cls in ALL_SCHEMES:
            scheme = scheme_cls(metric, SchemeParameters(epsilon=0.5))
            result = scheme.route(0, 1)
            assert result.target == 1
            assert result.cost >= 1.0  # normalized edge length

    def test_two_node_tables_tiny(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=1.0)
        metric = GraphMetric(graph)
        scheme = ScaleFreeLabeledScheme(
            metric, SchemeParameters(epsilon=0.5)
        )
        assert scheme.max_table_bits() < 500


class TestMultiScaleWeights:
    def test_two_cluster_dumbbell(self):
        """Two unit cliques joined by one enormous edge."""
        graph = nx.Graph()
        for offset in (0, 4):
            for i in range(4):
                for j in range(i + 1, 4):
                    graph.add_edge(offset + i, offset + j, weight=1.0)
        graph.add_edge(3, 4, weight=10_000.0)
        metric = GraphMetric(graph)
        for scheme_cls in ALL_SCHEMES:
            scheme = scheme_cls(metric, SchemeParameters(epsilon=0.5))
            # Cross-cluster and in-cluster routes both work.
            assert scheme.route(0, 7).target == 7
            assert scheme.route(5, 6).target == 6
            in_cluster = scheme.route(0, 2)
            assert in_cluster.stretch <= 13

    def test_scale_free_schemes_cheap_on_dumbbell(self):
        graph = nx.Graph()
        for offset in (0, 4):
            for i in range(4):
                for j in range(i + 1, 4):
                    graph.add_edge(offset + i, offset + j, weight=1.0)
        graph.add_edge(3, 4, weight=10_000.0)
        metric = GraphMetric(graph)
        params = SchemeParameters(epsilon=0.5)
        non_sf = SimpleNameIndependentScheme(metric, params)
        sf = ScaleFreeNameIndependentScheme(metric, params)
        # log Delta ~ 14 levels here; the scale-free tables are smaller.
        assert sf.max_table_bits() < non_sf.max_table_bits()
