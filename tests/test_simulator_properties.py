"""Property-based tests for the traffic simulator invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import grid_2d
from repro.metric.graph_metric import GraphMetric
from repro.runtime.simulator import Demand, TrafficSimulator
from repro.schemes.shortest_path import ShortestPathScheme

_METRIC = GraphMetric(grid_2d(4))
_SCHEME = ShortestPathScheme(_METRIC)


@st.composite
def demand_lists(draw):
    count = draw(st.integers(min_value=1, max_value=20))
    demands = []
    clock = 0.0
    for _ in range(count):
        clock += draw(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
        )
        source = draw(st.integers(min_value=0, max_value=15))
        target = draw(st.integers(min_value=0, max_value=15))
        demands.append(Demand(source, target, clock))
    return demands


class TestConservation:
    @given(demands=demand_lists())
    @settings(max_examples=50, deadline=None)
    def test_every_packet_delivered_exactly_once(self, demands):
        report = TrafficSimulator(_SCHEME).run(demands)
        assert report.delivered == len(demands)

    @given(demands=demand_lists())
    @settings(max_examples=50, deadline=None)
    def test_no_packet_delivered_before_injection(self, demands):
        report = TrafficSimulator(_SCHEME).run(demands)
        for packet in report.packets:
            assert packet.delivered_at >= packet.demand.inject_at - 1e-9

    @given(demands=demand_lists())
    @settings(max_examples=50, deadline=None)
    def test_latency_at_least_propagation(self, demands):
        report = TrafficSimulator(_SCHEME, service_time=1.0).run(demands)
        for packet in report.packets:
            assert packet.latency >= packet.propagation - 1e-9

    @given(demands=demand_lists())
    @settings(max_examples=30, deadline=None)
    def test_latency_decomposes_exactly(self, demands):
        # Conservation law: latency = propagation + per-hop service +
        # queueing, exactly.  (Mean queueing is NOT monotone in service
        # time: slower links can de-synchronize packets that would
        # otherwise collide, so no such property is asserted.)
        service = 0.7
        report = TrafficSimulator(_SCHEME, service_time=service).run(
            demands
        )
        for packet in report.packets:
            hops = len(packet.links)
            assert packet.latency == pytest.approx(
                packet.propagation + hops * service + packet.queueing
            )

    @given(demands=demand_lists())
    @settings(max_examples=30, deadline=None)
    def test_deterministic_replay(self, demands):
        first = TrafficSimulator(_SCHEME).run(demands)
        second = TrafficSimulator(_SCHEME).run(demands)
        assert [p.delivered_at for p in first.packets] == [
            p.delivered_at for p in second.packets
        ]

    @given(demands=demand_lists())
    @settings(max_examples=30, deadline=None)
    def test_propagation_is_true_distance_for_oracle(self, demands):
        report = TrafficSimulator(_SCHEME).run(demands)
        for packet in report.packets:
            want = _METRIC.distance(
                packet.demand.source, packet.demand.target
            )
            assert packet.propagation == pytest.approx(want)
