"""Route-decision tracing and build profiling (repro.observability).

The load-bearing property: for every scheme, replaying a recorded trace
reproduces the returned ``RouteResult.path`` bit-for-bit and the per-leg
costs sum to ``RouteResult.cost`` — a trace is a proof that the route
was assembled only from per-node table decisions.
"""

from __future__ import annotations

import json

import pytest

from repro.core.params import SchemeParameters
from repro.graphs.generators import exponential_path, grid_2d
from repro.metric.graph_metric import GraphMetric
from repro.observability.catalog import (
    SCHEMES,
    resolve_graph,
    resolve_scheme,
)
from repro.observability.profile import BuildProfile
from repro.observability.trace import (
    NULL_TRACER,
    RecordingTracer,
    RouteTrace,
    TraceEvent,
    Tracer,
    format_trace,
    replay,
)
from repro.pipeline.context import BuildContext
from repro.resilience.degraded import DegradedNetwork
from repro.resilience.failure_plan import EventKind, FailureEvent
from repro.resilience.router import ResilientRouter
from repro.runtime.simulator import Demand, TrafficSimulator
from repro.schemes import base as schemes_base
from repro.schemes.shortest_path import ShortestPathScheme


@pytest.fixture(scope="module", params=["grid5", "exp10"])
def small_metric(request):
    """Tiny fixtures where routing all ordered pairs is cheap."""
    if request.param == "grid5":
        return GraphMetric(grid_2d(5))
    return GraphMetric(exponential_path(10))


@pytest.fixture(scope="module")
def small_schemes(small_metric):
    """All six catalogued schemes built on the small fixture."""
    context = BuildContext()
    params = SchemeParameters(epsilon=0.5)
    return [
        context.scheme(cls, small_metric, params)
        for cls in SCHEMES.values()
    ]


# ---------------------------------------------------------------------------
# The replay property
# ---------------------------------------------------------------------------


class TestTraceReplay:
    def test_every_scheme_every_pair(self, small_metric, small_schemes):
        for scheme in small_schemes:
            for u in small_metric.nodes:
                for v in small_metric.nodes:
                    if u == v:
                        continue
                    result, trace = scheme.trace_route(u, v)
                    assert replay(trace).matches(result.path, result.cost), (
                        scheme.name,
                        u,
                        v,
                    )
                    assert trace.delivered_to == result.target
                    assert trace.header_bits == result.header_bits
                    assert trace.events, "a multi-hop route must decide"

    def test_traced_route_equals_plain_route(self, small_schemes):
        for scheme in small_schemes:
            n = scheme.metric.n
            plain = scheme.route(0, n - 1)
            traced, _ = scheme.trace_route(0, n - 1)
            assert traced.path == plain.path
            assert traced.cost == plain.cost
            again = scheme.route(0, n - 1)
            assert again.path == plain.path

    def test_tracer_restored_even_on_failure(self, small_schemes):
        scheme = small_schemes[0]
        assert scheme.tracer is NULL_TRACER
        with pytest.raises(Exception):
            scheme.trace_route(0, 10**9)
        assert scheme.tracer is NULL_TRACER

    def test_sampled_pairs_on_session_schemes(
        self, grid_metric, labeled_sf, nameind_sf, nameind_simple
    ):
        pairs = [(0, grid_metric.n - 1), (7, 22), (35, 3), (17, 18)]
        for scheme in (labeled_sf, nameind_sf, nameind_simple):
            for u, v in pairs:
                result, trace = scheme.trace_route(u, v)
                assert replay(trace).matches(result.path, result.cost)


# ---------------------------------------------------------------------------
# Trace data model
# ---------------------------------------------------------------------------


class TestTraceModel:
    def test_null_tracer_is_disabled_noop(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.event(node=0, phase="walk", nodes=(1,), cost=2.0)

    def test_recording_tracer_appends(self):
        trace = RouteTrace(scheme="t", source=0, destination=3)
        tracer = RecordingTracer(trace)
        assert tracer.enabled
        tracer.event(node=0, phase="walk", nodes=(1, 2), cost=2.0, level=1)
        tracer.event(node=2, phase="final", nodes=(3,), cost=1.0)
        assert trace.path == [0, 1, 2, 3]
        assert trace.cost == pytest.approx(3.0)
        assert trace.phases() == {"walk": 1, "final": 1}

    def test_json_roundtrip(self, small_schemes):
        scheme = small_schemes[0]
        _, trace = scheme.trace_route(0, scheme.metric.n - 1)
        data = json.loads(trace.to_json())
        assert data["path"] == trace.path
        assert data["source"] == trace.source
        assert len(data["events"]) == len(trace.events)
        for event_dict, event in zip(data["events"], trace.events):
            assert event_dict["node"] == event.node
            assert event_dict["phase"] == event.phase
            assert event_dict["nodes"] == list(event.nodes)

    def test_event_to_dict_omits_none_fields(self):
        bare = TraceEvent(node=1, phase="walk").to_dict()
        assert set(bare) == {"node", "phase", "nodes", "cost"}
        rich = TraceEvent(
            node=1, phase="walk", level=2, entry="x", header_after={"a": 1}
        ).to_dict()
        assert rich["level"] == 2 and rich["header_after"] == {"a": 1}

    def test_format_trace_is_readable(self, small_schemes):
        scheme = small_schemes[0]
        _, trace = scheme.trace_route(0, scheme.metric.n - 1)
        text = format_trace(trace)
        assert scheme.name in text
        assert len(text.splitlines()) == len(trace.events) + 1

    def test_replay_match_rejects_wrong_path_and_cost(self):
        trace = RouteTrace(scheme="t", source=0, destination=1)
        trace.events.append(TraceEvent(node=0, phase="walk", nodes=(1,), cost=1.0))
        assert replay(trace).matches([0, 1], 1.0)
        assert not replay(trace).matches([0, 2], 1.0)
        assert not replay(trace).matches([0, 1], 2.0)

    def test_subclass_tracer_interface(self):
        class Counting(Tracer):
            __slots__ = ("count",)
            enabled = True

            def __init__(self):
                self.count = 0

            def event(self, node, phase, **kwargs):
                self.count += 1

        scheme_metric = GraphMetric(grid_2d(3))
        scheme = ShortestPathScheme(scheme_metric)
        counter = Counting()
        scheme._tracer = counter
        scheme.route(0, 8)
        scheme._tracer = NULL_TRACER
        assert counter.count > 0


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------


class TestCatalog:
    def test_resolves_known_names(self):
        graph = resolve_graph("exp-path-16")
        assert graph.number_of_nodes() == 16
        assert resolve_scheme("shortest-path") is ShortestPathScheme

    def test_unknown_names_list_alternatives(self):
        with pytest.raises(ValueError, match="grid-8x8"):
            resolve_graph("nope")
        with pytest.raises(ValueError, match="nameind-sf"):
            resolve_scheme("nope")


# ---------------------------------------------------------------------------
# Build profiling
# ---------------------------------------------------------------------------


class TestBuildProfile:
    def test_add_and_timed_accumulate(self):
        profile = BuildProfile()
        profile.add("build", "metric", 0.25)
        profile.add("build", "metric", 0.25)
        with profile.timed("disk_load", "scheme"):
            pass
        assert profile.build_seconds["metric"] == pytest.approx(0.5)
        assert profile.disk_load_seconds["scheme"] >= 0.0
        assert profile.total_build_seconds() == pytest.approx(0.5)

    def test_report_merges_stats(self):
        profile = BuildProfile()
        profile.add("build", "metric", 1.0)
        context = BuildContext()
        context.stats.record("metric", "misses")
        context.stats.record("metric", "hits")
        merged = profile.report(context.stats)
        row = merged["kinds"]["metric"]
        assert row["build_seconds"] == pytest.approx(1.0)
        assert row["hits"] == 1 and row["misses"] == 1
        json.loads(profile.to_json(context.stats))

    def test_context_populates_profile(self, tmp_path):
        context = BuildContext(cache_dir=str(tmp_path))
        metric = context.metric(grid_2d(4))
        context.hierarchy(metric)
        context.scheme(ShortestPathScheme, metric)
        report = context.profile_report()
        assert report["total_build_seconds"] > 0.0
        assert {"metric", "hierarchy", "scheme"} <= set(report["kinds"])
        assert report["kinds"]["metric"]["misses"] == 1
        # Second context over the same cache dir loads from disk.
        warm = BuildContext(cache_dir=str(tmp_path))
        warm.metric(grid_2d(4))
        row = warm.profile_report()["kinds"]["metric"]
        assert row["disk_hits"] == 1
        assert row.get("disk_load_seconds", 0.0) >= 0.0

    def test_unkeyable_scheme_path_is_profiled(self, grid_metric):
        context = BuildContext()
        hierarchy = context.hierarchy(grid_metric)
        from repro.schemes.labeled_nonscalefree import (
            NonScaleFreeLabeledScheme,
        )

        context.scheme(
            NonScaleFreeLabeledScheme, grid_metric, hierarchy=hierarchy
        )
        assert context.profile.build_seconds.get("scheme", 0.0) > 0.0


# ---------------------------------------------------------------------------
# Simulator and resilient-router integration
# ---------------------------------------------------------------------------


class TestRuntimeTraces:
    def test_simulator_attaches_traces_on_request(self):
        metric = GraphMetric(grid_2d(4))
        simulator = TrafficSimulator(ShortestPathScheme(metric))
        demands = [Demand(0, 15, 0.0), Demand(5, 5, 1.0), Demand(3, 12, 2.0)]
        plain = simulator.run(demands)
        assert all(p.trace is None for p in plain.packets)
        traced = simulator.run(demands, trace=True)
        for packet, reference in zip(traced.packets, plain.packets):
            assert packet.path == reference.path
            assert packet.delivered_at == reference.delivered_at
            if packet.demand.source == packet.demand.target:
                assert packet.trace is None
            else:
                assert replay(packet.trace).matches(
                    packet.path, packet.trace.cost
                )

    def test_resilient_router_tags_fallback_activations(self):
        metric = GraphMetric(grid_2d(4))
        degraded = DegradedNetwork(metric)
        degraded.apply(FailureEvent(0.0, EventKind.LINK_DOWN, edge=(1, 2)))
        router = ResilientRouter(
            ShortestPathScheme(metric), degraded, policy="local-detour"
        )
        result, trace = router.trace_route(0, 3)
        assert result.delivered
        assert replay(trace).matches(result.path, result.cost)
        fallbacks = [e for e in trace.events if e.phase == "fallback"]
        assert len(fallbacks) == result.detours > 0
        assert all(e.entry == "local-detour" for e in fallbacks)
        assert all(not e.nodes and e.cost == 0.0 for e in fallbacks)

    def test_resilient_router_trace_without_failures(self):
        metric = GraphMetric(grid_2d(3))
        router = ResilientRouter(
            ShortestPathScheme(metric), DegradedNetwork(metric)
        )
        result, trace = router.trace_route(0, 8)
        assert replay(trace).matches(result.path, result.cost)
        assert trace.phases() == {"forward": len(result.path) - 1}
        assert router._tracer is NULL_TRACER


# ---------------------------------------------------------------------------
# Evaluation-state hygiene (the module-global leak fix)
# ---------------------------------------------------------------------------


class TestEvaluationStateCleared:
    def test_serial_fallback_clears_global(self, grid_metric, monkeypatch):
        scheme = ShortestPathScheme(grid_metric)
        # Force resolve_jobs(0) -> 1 so parallel_map takes its serial
        # fallback and runs the initializer *in this process* — the
        # scenario that used to pin the scheme in the module global.
        monkeypatch.setattr(
            "repro.pipeline.parallel.os.cpu_count", lambda: 1
        )
        assert schemes_base._EVALUATION_SCHEME is None
        evaluation = scheme.evaluate([(0, 1), (1, 2), (2, 3)], jobs=0)
        assert evaluation.pair_count == 3
        assert schemes_base._EVALUATION_SCHEME is None

    def test_cleared_even_when_routing_raises(self, grid_metric, monkeypatch):
        scheme = ShortestPathScheme(grid_metric)
        monkeypatch.setattr(
            "repro.pipeline.parallel.os.cpu_count", lambda: 1
        )
        with pytest.raises(Exception):
            scheme.evaluate([(0, 10**9), (0, 1)], jobs=0)
        assert schemes_base._EVALUATION_SCHEME is None
