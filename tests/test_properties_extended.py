"""Extended property tests: scale-free schemes across epsilon values,
oracle/scheme consistency, and substrate cross-checks on random graphs.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.params import SchemeParameters
from repro.metric.graph_metric import GraphMetric
from repro.oracle.distance_oracle import DistanceOracle
from repro.packing.ballpacking import BallPacking
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.trees.heavy_path import HeavyPathRouter
from repro.trees.spt import ShortestPathTree
from repro.trees.tree_router import TreeRouter

from tests.test_rnet import random_connected_graph

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestScaleFreeAcrossEpsilon:
    @given(
        graph=random_connected_graph(),
        eps_percent=st.sampled_from([15, 25, 40, 50]),
    )
    @SLOW
    def test_labeled_scalefree_envelope(self, graph, eps_percent):
        eps = eps_percent / 100.0
        metric = GraphMetric(graph)
        scheme = ScaleFreeLabeledScheme(
            metric, SchemeParameters(epsilon=eps)
        )
        for u in metric.nodes:
            for v in metric.nodes:
                result = scheme.route(u, v)
                assert result.target == v
                if u != v:
                    assert result.stretch <= 1 + 8 * eps + 1e-6
        assert scheme.fallback_count == 0

    @given(graph=random_connected_graph())
    @SLOW
    def test_heavy_path_substrate_equivalent(self, graph):
        """Interval and heavy-path substrates give identical stretch."""
        metric = GraphMetric(graph)
        params = SchemeParameters(epsilon=0.5)
        interval = ScaleFreeLabeledScheme(
            metric, params, tree_router_cls=TreeRouter
        )
        heavy = ScaleFreeLabeledScheme(
            metric,
            params,
            hierarchy=interval.hierarchy,
            packing=interval.packing,
            tree_router_cls=HeavyPathRouter,
        )
        for u in metric.nodes:
            for v in metric.nodes:
                a = interval.route(u, v)
                b = heavy.route(u, v)
                assert a.cost == pytest.approx(b.cost, rel=1e-9, abs=1e-9)


class TestOracleSchemeConsistency:
    @given(graph=random_connected_graph())
    @SLOW
    def test_oracle_lower_bounds_any_route(self, graph):
        """The oracle estimate upper-bounds d, which lower-bounds every
        scheme's route cost: est >= d and cost >= d, both anchored to
        the same metric."""
        metric = GraphMetric(graph)
        params = SchemeParameters(epsilon=0.25)
        oracle = DistanceOracle(metric, params)
        scheme = ScaleFreeLabeledScheme(metric, params)
        for u in metric.nodes:
            for v in metric.nodes:
                if u == v:
                    continue
                d = metric.distance(u, v)
                assert oracle.estimate(u, v) >= d - 1e-9
                assert scheme.route(u, v).cost >= d - 1e-9


class TestSubstrateCrossChecks:
    @given(graph=random_connected_graph())
    @SLOW
    def test_voronoi_trees_partition_within_level(self, graph):
        """Every node belongs to exactly one Voronoi cell per level, and
        its cell's tree contains it."""
        from repro.trees.spt import voronoi_partition

        metric = GraphMetric(graph)
        packing = BallPacking(metric)
        for j in packing.levels:
            cells = voronoi_partition(metric, packing.centers(j))
            seen = sorted(v for cell in cells.values() for v in cell)
            assert seen == list(metric.nodes)
            for c, cell in cells.items():
                tree = ShortestPathTree(metric, c, cell)
                for v in cell:
                    assert tree.contains(v)

    @given(graph=random_connected_graph())
    @SLOW
    def test_packing_sizes_clamp_consistently(self, graph):
        metric = GraphMetric(graph)
        packing = BallPacking(metric)
        top = packing.top_level
        assert len(packing.packing(top)) == 1
        assert packing.packing(top)[0].members == frozenset(metric.nodes)
