"""Tests for doubling-dimension and growth-bound estimation."""

from repro.graphs.generators import (
    grid_with_holes,
    path_graph,
    star_graph,
)
from repro.metric.doubling import (
    doubling_dimension,
    growth_bound_constant,
    is_doubling_with_dimension,
)
from repro.metric.graph_metric import GraphMetric


class TestDoublingDimension:
    def test_path_has_small_dimension(self):
        metric = GraphMetric(path_graph(32))
        # A line's true doubling dimension is 1; greedy covers stay <= 2.
        assert doubling_dimension(metric) <= 2.0

    def test_grid_has_bounded_dimension(self, grid_metric):
        # The plane's dimension is 2; greedy covers allow some slack.
        assert doubling_dimension(grid_metric) <= 4.0

    def test_grid_with_holes_still_doubling(self, holes_metric):
        assert doubling_dimension(holes_metric) <= 4.5

    def test_star_has_large_dimension(self):
        # A star's ball of radius 2 at the center needs one r/2-ball per
        # leaf pair: dimension grows with log n.
        metric = GraphMetric(star_graph(33))
        assert doubling_dimension(metric) >= 4.0

    def test_monotone_threshold_helper(self, grid_metric):
        alpha = doubling_dimension(grid_metric)
        assert is_doubling_with_dimension(grid_metric, alpha)
        assert not is_doubling_with_dimension(grid_metric, alpha - 0.5)

    def test_dimension_at_least_zero(self, any_metric):
        assert doubling_dimension(any_metric) >= 0.0

    def test_explicit_centers_subset(self, grid_metric):
        full = doubling_dimension(grid_metric)
        sampled = doubling_dimension(grid_metric, centers=[0, 5, 17])
        assert sampled <= full + 1e-9


class TestGrowthBound:
    def test_path_growth_is_bounded(self):
        metric = GraphMetric(path_graph(64))
        assert growth_bound_constant(metric) <= 4.0

    def test_grid_growth_is_bounded(self, grid_metric):
        assert growth_bound_constant(grid_metric) <= 8.0

    def test_exponential_path_breaks_growth_bound(self, exponential_metric):
        # Doubling the radius around the light end swallows a constant
        # number of extra nodes, but near weight jumps the ratio spikes.
        assert growth_bound_constant(exponential_metric) >= 1.0

    def test_star_growth_unbounded(self):
        # At a leaf, B(1) = {leaf, center} but B(2) is the whole star:
        # growth scales with n even though the metric is trivial.
        metric = GraphMetric(star_graph(40))
        assert growth_bound_constant(metric) >= 10.0

    def test_holes_keep_growth_finite(self):
        holey = GraphMetric(
            grid_with_holes(9, hole_fraction=0.35, seed=1)
        )
        assert growth_bound_constant(holey) <= 12.0
