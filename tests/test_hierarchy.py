"""Tests for the net hierarchy, zooming sequences, netting-tree labels."""

import pytest

from repro.core.types import PreprocessingError
from repro.metric.graph_metric import GraphMetric
from repro.nets.hierarchy import NetHierarchy
from repro.nets.rnet import is_rnet


class TestNets:
    def test_bottom_net_is_everything(self, grid_hierarchy, grid_metric):
        assert grid_hierarchy.net(0) == list(grid_metric.nodes)

    def test_top_net_is_singleton_root(self, grid_hierarchy):
        assert grid_hierarchy.net(grid_hierarchy.top_level) == [0]

    def test_nets_are_nested(self, grid_hierarchy):
        for i in range(grid_hierarchy.top_level):
            assert set(grid_hierarchy.net(i + 1)) <= set(
                grid_hierarchy.net(i)
            )

    def test_every_level_is_valid_rnet(self, any_metric):
        hierarchy = NetHierarchy(any_metric)
        for i in hierarchy.levels:
            assert is_rnet(any_metric, float(2**i), hierarchy.net(i))

    def test_in_net(self, grid_hierarchy):
        top = grid_hierarchy.top_level
        assert grid_hierarchy.in_net(0, top)
        for x in grid_hierarchy.net(1):
            assert grid_hierarchy.in_net(x, 1)

    def test_highest_level_of(self, grid_hierarchy):
        assert (
            grid_hierarchy.highest_level_of(0) == grid_hierarchy.top_level
        )
        for x in grid_hierarchy.net(0):
            h = grid_hierarchy.highest_level_of(x)
            assert grid_hierarchy.in_net(x, h)
            if h < grid_hierarchy.top_level:
                assert not grid_hierarchy.in_net(x, h + 1)

    def test_custom_root(self, grid_metric):
        hierarchy = NetHierarchy(grid_metric, root=5)
        assert hierarchy.net(hierarchy.top_level) == [5]

    def test_bad_root_rejected(self, grid_metric):
        with pytest.raises(PreprocessingError):
            NetHierarchy(grid_metric, root=grid_metric.n)


class TestZoomingSequences:
    def test_starts_at_node(self, grid_hierarchy, grid_metric):
        for u in grid_metric.nodes:
            assert grid_hierarchy.zooming_sequence(u)[0] == u

    def test_ends_at_root(self, grid_hierarchy, grid_metric):
        for u in grid_metric.nodes:
            assert grid_hierarchy.zooming_sequence(u)[-1] == 0

    def test_members_belong_to_their_nets(self, grid_hierarchy):
        for u in (0, 7, 20, 35):
            seq = grid_hierarchy.zooming_sequence(u)
            for i, x in enumerate(seq):
                assert grid_hierarchy.in_net(x, i)

    def test_eqn_2_cumulative_bound(self, any_metric):
        """Paper Eqn. (2): sum of zoom hops up to level i is < 2^{i+1}."""
        hierarchy = NetHierarchy(any_metric)
        for u in any_metric.nodes:
            seq = hierarchy.zooming_sequence(u)
            total = 0.0
            for i in range(1, len(seq)):
                total += any_metric.distance(seq[i - 1], seq[i])
                assert total < 2.0 ** (i + 1) + 1e-6

    def test_each_hop_bounded_by_level_radius(self, any_metric):
        hierarchy = NetHierarchy(any_metric)
        for u in any_metric.nodes:
            seq = hierarchy.zooming_sequence(u)
            for i in range(1, len(seq)):
                assert any_metric.distance(seq[i - 1], seq[i]) <= (
                    2.0**i + 1e-9
                )

    def test_zoom_matches_sequence(self, grid_hierarchy):
        for u in (3, 14, 30):
            seq = grid_hierarchy.zooming_sequence(u)
            for i in grid_hierarchy.levels:
                assert grid_hierarchy.zoom(u, i) == seq[i]

    def test_parent_requires_valid_level(self, grid_hierarchy):
        with pytest.raises(ValueError):
            grid_hierarchy.parent(0, 0)


class TestNettingTreeLabels:
    def test_labels_are_a_permutation(self, grid_hierarchy, grid_metric):
        labels = sorted(grid_hierarchy.label(v) for v in grid_metric.nodes)
        assert labels == list(range(grid_metric.n))

    def test_label_in_range_iff_ancestor(self, any_metric):
        """The §4.1 key fact: l(u) ∈ Range(x, i) iff x = u(i)."""
        hierarchy = NetHierarchy(any_metric)
        for u in any_metric.nodes:
            seq = hierarchy.zooming_sequence(u)
            label = hierarchy.label(u)
            for i in hierarchy.levels:
                for x in hierarchy.net(i):
                    expected = x == seq[i]
                    assert hierarchy.label_in_range(label, x, i) == expected

    def test_root_range_covers_everything(self, grid_hierarchy, grid_metric):
        lo, hi = grid_hierarchy.range_of(0, grid_hierarchy.top_level)
        assert (lo, hi) == (0, grid_metric.n - 1)

    def test_level_zero_ranges_are_singletons(
        self, grid_hierarchy, grid_metric
    ):
        for v in grid_metric.nodes:
            label = grid_hierarchy.label(v)
            assert grid_hierarchy.range_of(v, 0) == (label, label)

    def test_ranges_disjoint_within_level(self, grid_hierarchy):
        for i in grid_hierarchy.levels:
            intervals = sorted(
                grid_hierarchy.range_of(x, i) for x in grid_hierarchy.net(i)
            )
            for (_, hi), (lo, _) in zip(intervals, intervals[1:]):
                assert hi < lo

    def test_ranges_nest_up_the_tree(self, grid_hierarchy, grid_metric):
        for u in grid_metric.nodes:
            seq = grid_hierarchy.zooming_sequence(u)
            prev = grid_hierarchy.range_of(seq[0], 0)
            for i in range(1, grid_hierarchy.top_level + 1):
                cur = grid_hierarchy.range_of(seq[i], i)
                assert cur[0] <= prev[0] and prev[1] <= cur[1]
                prev = cur

    def test_node_with_label_inverts(self, grid_hierarchy, grid_metric):
        for v in (0, 9, 35):
            assert grid_hierarchy.node_with_label(
                grid_hierarchy.label(v)
            ) == v

    def test_single_node_graph(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_node(0)
        hierarchy = NetHierarchy(GraphMetric(graph))
        assert hierarchy.top_level == 0
        assert hierarchy.label(0) == 0
