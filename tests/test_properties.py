"""Property-based tests: scheme correctness on random graphs/namings.

These are the heaviest hypothesis tests: they build full schemes on
random connected weighted graphs and assert the end-to-end invariants —
every route terminates at its target, cost is consistent, stretch obeys
the theorem envelopes, and name-independence genuinely holds under
arbitrary namings.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.params import SchemeParameters
from repro.metric.graph_metric import GraphMetric
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme

from tests.test_rnet import random_connected_graph

PARAMS = SchemeParameters(epsilon=0.5)
SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestLabeledSchemesOnRandomGraphs:
    @given(graph=random_connected_graph())
    @SLOW
    def test_nonscalefree_routes_everywhere(self, graph):
        metric = GraphMetric(graph)
        scheme = NonScaleFreeLabeledScheme(metric, PARAMS)
        for u in metric.nodes:
            for v in metric.nodes:
                result = scheme.route(u, v)
                assert result.target == v
                assert result.cost >= result.optimal - 1e-9
                if u != v:
                    assert result.stretch <= 1 + 8 * PARAMS.epsilon + 1e-6

    @given(graph=random_connected_graph())
    @SLOW
    def test_scalefree_routes_everywhere(self, graph):
        metric = GraphMetric(graph)
        scheme = ScaleFreeLabeledScheme(metric, PARAMS)
        for u in metric.nodes:
            for v in metric.nodes:
                result = scheme.route(u, v)
                assert result.target == v
                if u != v:
                    assert result.stretch <= 1 + 8 * PARAMS.epsilon + 1e-6
        assert scheme.fallback_count == 0


class TestNameIndependentSchemesOnRandomGraphs:
    @given(
        graph=random_connected_graph(),
        shift=st.integers(min_value=1, max_value=1000),
    )
    @SLOW
    def test_simple_scheme_any_naming(self, graph, shift):
        metric = GraphMetric(graph)
        step = shift % metric.n
        if math.gcd(step, metric.n) != 1:
            step = 1
        naming = [(v * step + shift) % metric.n for v in metric.nodes]
        if sorted(naming) != list(range(metric.n)):
            naming = list(metric.nodes)
        scheme = SimpleNameIndependentScheme(metric, PARAMS, naming=naming)
        for u in metric.nodes:
            for v in metric.nodes:
                if u == v:
                    continue
                result = scheme.route_to_name(u, naming[v])
                assert result.target == v
                assert result.cost >= result.optimal - 1e-9

    @given(graph=random_connected_graph())
    @SLOW
    def test_scalefree_scheme_reaches_targets(self, graph):
        metric = GraphMetric(graph)
        scheme = ScaleFreeNameIndependentScheme(metric, PARAMS)
        for u in metric.nodes:
            for v in metric.nodes:
                assert scheme.route(u, v).target == v

    @given(graph=random_connected_graph())
    @SLOW
    def test_claim_3_9_on_random_graphs(self, graph):
        metric = GraphMetric(graph)
        scheme = ScaleFreeNameIndependentScheme(metric, PARAMS)
        bound = 4 * max(1, metric.log_n)
        for u in metric.nodes:
            assert scheme.h_link_count(u) <= bound


class TestStretchEnvelopeProperty:
    @given(
        graph=random_connected_graph(),
        eps_percent=st.sampled_from([20, 30, 40]),
    )
    @SLOW
    def test_nameind_envelope_below_half(self, graph, eps_percent):
        """Lemma 3.4's exact Eqn.-6 envelope on random graphs, eps<1/2."""
        eps = eps_percent / 100.0
        metric = GraphMetric(graph)
        scheme = SimpleNameIndependentScheme(
            metric, SchemeParameters(epsilon=eps)
        )
        inv = 1.0 / eps
        bound = (1.0 + 8.0 * (inv + 1.0) / (inv - 2.0)) * 1.05
        for u in metric.nodes:
            for v in metric.nodes:
                if u != v:
                    assert scheme.route(u, v).stretch <= bound
