"""Tests for the stepwise (per-node state machine) execution engine."""

import pytest

from repro.core.params import SchemeParameters
from repro.core.types import RouteFailure
from repro.runtime.stepwise import StepwiseLabeledRouter
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme


@pytest.fixture(scope="module")
def stepwise(grid_metric):
    scheme = NonScaleFreeLabeledScheme(grid_metric, SchemeParameters())
    return scheme, StepwiseLabeledRouter.extract(scheme)


class TestLocality:
    def test_local_nodes_hold_no_global_references(self, stepwise):
        _, router = stepwise
        node = router.local_node(0)
        for attr in vars(node).values():
            # Only plain ids/labels/tuples — no metric, no hierarchy.
            assert not hasattr(attr, "distances_from")
            assert not hasattr(attr, "zooming_sequence")

    def test_ring_entries_reference_graph_neighbours(
        self, stepwise, grid_metric
    ):
        _, router = stepwise
        for u in grid_metric.nodes:
            node = router.local_node(u)
            for entries in node.rings.values():
                for _, _, next_hop in entries:
                    assert next_hop == u or grid_metric.graph.has_edge(
                        u, next_hop
                    )


class TestEquivalence:
    def test_paths_match_monolithic_implementation(
        self, stepwise, grid_metric
    ):
        scheme, router = stepwise
        for u in range(0, grid_metric.n, 5):
            for v in range(0, grid_metric.n, 3):
                if u == v:
                    continue
                monolithic = scheme.route(u, v).path
                local = router.route_to_node(u, v)
                assert local == monolithic

    def test_all_families(self, any_metric, params):
        scheme = NonScaleFreeLabeledScheme(any_metric, params)
        router = StepwiseLabeledRouter.extract(scheme)
        for u in range(0, any_metric.n, 6):
            for v in range(0, any_metric.n, 4):
                if u == v:
                    continue
                assert router.route_to_node(u, v) == scheme.route(u, v).path

    def test_self_route(self, stepwise):
        _, router = stepwise
        assert router.route_to_node(7, 7) == [7]


class TestSerialization:
    def test_header_is_codec_sized(self, stepwise):
        _, router = stepwise
        data, bits = router.codec.encode({"target_label": 5})
        assert bits == router.codec.total_bits
        assert len(data) == (bits + 7) // 8

    def test_forward_rejects_uncovered_label(self, stepwise):
        scheme, router = stepwise
        node = router.local_node(0)
        # Strip all but level-0 rings; a far label is then uncovered.
        node_rings = dict(node.rings)
        try:
            node.rings = {0: node.rings[0]}
            far_label = scheme.routing_label(scheme.metric.n - 1)
            data, bits = router.codec.encode(
                {"target_label": far_label}
            )
            with pytest.raises(RouteFailure):
                node.forward(data, bits, router.codec)
        finally:
            node.rings = node_rings
