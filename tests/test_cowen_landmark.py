"""Tests for the Cowen stretch-3 landmark baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import SchemeParameters
from repro.core.types import PreprocessingError
from repro.metric.graph_metric import GraphMetric
from repro.schemes.cowen_landmark import CowenLandmarkScheme

from tests.test_rnet import random_connected_graph


class TestConstruction:
    @pytest.fixture(scope="class")
    def scheme(self, grid_metric):
        return CowenLandmarkScheme(grid_metric, SchemeParameters())

    def test_default_landmark_count(self, scheme, grid_metric):
        assert len(scheme.landmarks) == round(grid_metric.n ** (1 / 3))

    def test_landmarks_are_nodes(self, scheme, grid_metric):
        assert all(0 <= lm < grid_metric.n for lm in scheme.landmarks)

    def test_home_is_nearest_landmark(self, scheme, grid_metric):
        for v in grid_metric.nodes:
            best = min(
                grid_metric.distance(v, lm) for lm in scheme.landmarks
            )
            assert grid_metric.distance(
                v, scheme.home_landmark(v)
            ) == pytest.approx(best)

    def test_cluster_definition(self, scheme, grid_metric):
        """C(u) = {v : d(u,v) < d(v, L(v))}."""
        for u in range(0, grid_metric.n, 7):
            cluster = scheme.cluster(u)
            for v in grid_metric.nodes:
                strictly_closer = grid_metric.distance(
                    u, v
                ) < grid_metric.distance(
                    v, scheme.home_landmark(v)
                ) - 1e-12
                assert (v in cluster) == strictly_closer

    def test_landmarks_have_empty_self_distance_clusters(self, scheme):
        # A landmark's own home is itself, so no node has it in a
        # cluster via the strict inequality with distance 0 ... except
        # the trivial consequence that landmarks are never in clusters.
        for u in range(0, scheme.metric.n, 5):
            for lm in scheme.landmarks:
                assert lm not in scheme.cluster(u)

    def test_bad_landmark_count_rejected(self, grid_metric):
        with pytest.raises(PreprocessingError):
            CowenLandmarkScheme(
                grid_metric, SchemeParameters(), landmark_count=0
            )

    def test_label_packs_node_and_home(self, scheme, grid_metric):
        for v in (0, 13, 35):
            node, home = scheme.unpack_label(scheme.routing_label(v))
            assert node == v
            assert home == scheme.home_landmark(v)


class TestRouting:
    @pytest.fixture(scope="class")
    def scheme(self, grid_metric):
        return CowenLandmarkScheme(grid_metric, SchemeParameters())

    def test_reaches_all_targets(self, scheme, grid_metric):
        for u in range(0, grid_metric.n, 4):
            for v in grid_metric.nodes:
                if u != v:
                    assert scheme.route(u, v).target == v

    def test_stretch_at_most_three(self, scheme):
        ev = scheme.evaluate()
        assert ev.max_stretch <= 3.0 + 1e-9

    def test_cluster_targets_routed_optimally(self, scheme, grid_metric):
        for u in range(0, grid_metric.n, 6):
            for v in scheme.cluster(u):
                if u != v:
                    assert scheme.route(u, v).stretch == pytest.approx(1.0)

    def test_landmark_targets_routed_optimally(self, scheme):
        for u in range(0, scheme.metric.n, 5):
            for lm in scheme.landmarks:
                if u != lm:
                    assert scheme.route(u, lm).stretch == pytest.approx(1.0)

    def test_works_on_all_families(self, any_metric, params):
        scheme = CowenLandmarkScheme(any_metric, params)
        for u in range(0, any_metric.n, 5):
            for v in range(0, any_metric.n, 3):
                if u != v:
                    result = scheme.route(u, v)
                    assert result.target == v
                    assert result.stretch <= 3.0 + 1e-9

    @given(graph=random_connected_graph(), count=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_stretch_three_on_random_graphs(self, graph, count):
        metric = GraphMetric(graph)
        scheme = CowenLandmarkScheme(
            metric,
            SchemeParameters(),
            landmark_count=min(count, metric.n),
        )
        for u in metric.nodes:
            for v in metric.nodes:
                if u != v:
                    assert scheme.route(u, v).stretch <= 3.0 + 1e-9


class TestStorage:
    def test_table_counts_landmarks_plus_cluster(self, grid_metric):
        scheme = CowenLandmarkScheme(grid_metric, SchemeParameters())
        u = 0
        expected = (
            len(scheme.landmarks) + len(scheme.cluster(u))
        ) * 2 * 6
        assert scheme.table_bits(u) == expected

    def test_more_landmarks_shrink_clusters(self, grid_metric):
        few = CowenLandmarkScheme(
            grid_metric, SchemeParameters(), landmark_count=2
        )
        many = CowenLandmarkScheme(
            grid_metric, SchemeParameters(), landmark_count=12
        )
        total_few = sum(len(few.cluster(u)) for u in grid_metric.nodes)
        total_many = sum(len(many.cluster(u)) for u in grid_metric.nodes)
        assert total_many <= total_few

    def test_label_bits_two_ids(self, grid_metric):
        scheme = CowenLandmarkScheme(grid_metric, SchemeParameters())
        assert scheme.label_bits() == 12

    def test_stretch_guarantee(self, grid_metric):
        scheme = CowenLandmarkScheme(grid_metric, SchemeParameters())
        assert scheme.stretch_guarantee() == 3.0
