"""Tests for the non-scale-free (1+eps)-stretch labeled scheme (Lemma 3.1)."""

import pytest

from repro.core.bitcount import bits_for_id
from repro.core.params import SchemeParameters
from repro.core.types import PreprocessingError, RouteFailure
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme


class TestConstruction:
    def test_large_epsilon_rejected(self, grid_metric):
        with pytest.raises(PreprocessingError):
            NonScaleFreeLabeledScheme(
                grid_metric, SchemeParameters(epsilon=0.75)
            )

    def test_labels_are_netting_tree_labels(self, labeled_nonsf):
        hierarchy = labeled_nonsf.hierarchy
        for v in labeled_nonsf.metric.nodes:
            assert labeled_nonsf.routing_label(v) == hierarchy.label(v)

    def test_label_bits_is_ceil_log_n(self, labeled_nonsf, grid_metric):
        assert labeled_nonsf.label_bits() == bits_for_id(grid_metric.n)

    def test_rings_cover_all_levels(self, labeled_nonsf, grid_metric):
        """Non-scale-free: EVERY level is stored (the log-Delta factor)."""
        hierarchy = labeled_nonsf.hierarchy
        for u in range(0, grid_metric.n, 7):
            for i in hierarchy.levels:
                ring = labeled_nonsf.ring_entries(u, i)
                expected = hierarchy.ring(u, i, 0.5)
                assert sorted(ring) == sorted(expected)

    def test_ring_entries_carry_true_distance(self, labeled_nonsf, grid_metric):
        for u in (0, 13, 30):
            for i in labeled_nonsf.hierarchy.levels:
                for x, (_, _, dist) in labeled_nonsf.ring_entries(
                    u, i
                ).items():
                    assert dist == pytest.approx(grid_metric.distance(u, x))


class TestRouting:
    def test_reaches_every_destination(self, labeled_nonsf, grid_metric):
        for u in range(0, grid_metric.n, 5):
            for v in grid_metric.nodes:
                if u == v:
                    continue
                result = labeled_nonsf.route(u, v)
                assert result.target == v

    def test_stretch_bound(self, labeled_nonsf, grid_metric):
        """Measured stretch obeys 1 + O(eps) (constant-8 envelope)."""
        eps = labeled_nonsf.params.epsilon
        ev = labeled_nonsf.evaluate()
        assert ev.max_stretch <= 1 + 8 * eps

    def test_path_is_hop_by_hop(self, labeled_nonsf, grid_metric):
        result = labeled_nonsf.route(0, grid_metric.n - 1)
        for a, b in zip(result.path, result.path[1:]):
            assert grid_metric.graph.has_edge(a, b)

    def test_self_route(self, labeled_nonsf):
        result = labeled_nonsf.route(4, 4)
        assert result.cost == 0.0
        assert result.path == [4]

    def test_bad_label_rejected(self, labeled_nonsf, grid_metric):
        with pytest.raises(RouteFailure):
            labeled_nonsf.route_to_label(0, grid_metric.n)

    def test_min_level_hit_finds_zoom_ancestor(
        self, labeled_nonsf, grid_metric
    ):
        hierarchy = labeled_nonsf.hierarchy
        for u, v in [(0, 35), (12, 3), (20, 21)]:
            i, x, _ = labeled_nonsf.min_level_hit(
                u, labeled_nonsf.routing_label(v)
            )
            assert x == hierarchy.zoom(v, i)

    def test_smaller_epsilon_tightens_stretch(self, grid_metric):
        loose = NonScaleFreeLabeledScheme(
            grid_metric, SchemeParameters(epsilon=0.5)
        )
        tight = NonScaleFreeLabeledScheme(
            grid_metric, SchemeParameters(epsilon=0.125)
        )
        pairs = [(u, v) for u in range(0, 36, 4) for v in range(1, 36, 5)
                 if u != v]
        assert tight.evaluate(pairs).max_stretch <= (
            loose.evaluate(pairs).max_stretch + 1e-9
        )

    def test_works_on_all_families(self, any_metric, params):
        scheme = NonScaleFreeLabeledScheme(any_metric, params)
        pairs = [
            (u, v)
            for u in range(0, any_metric.n, 5)
            for v in range(0, any_metric.n, 3)
            if u != v
        ]
        ev = scheme.evaluate(pairs)
        assert ev.max_stretch <= 1 + 8 * params.epsilon


class TestStorage:
    def test_header_is_one_label(self, labeled_nonsf):
        assert labeled_nonsf.header_bits() == labeled_nonsf.label_bits()

    def test_table_bits_counts_ring_entries(self, labeled_nonsf):
        u = 0
        entries = sum(
            len(labeled_nonsf.ring_entries(u, i))
            for i in labeled_nonsf.hierarchy.levels
        )
        assert labeled_nonsf.table_bits(u) == entries * 3 * 6

    def test_storage_grows_with_log_delta(self, exponential_metric, params):
        """The log-Delta dependence this scheme is named for."""
        from repro.graphs.generators import exponential_path
        from repro.metric.graph_metric import GraphMetric

        small_delta = GraphMetric(exponential_path(14, base=1.2))
        big_delta = exponential_metric  # base 2.0, same n
        assert big_delta.log_diameter > small_delta.log_diameter
        small_scheme = NonScaleFreeLabeledScheme(small_delta, params)
        big_scheme = NonScaleFreeLabeledScheme(big_delta, params)
        assert (
            big_scheme.max_table_bits() > small_scheme.max_table_bits()
        )
