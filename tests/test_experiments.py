"""Tests for the experiment harness and each table/figure module."""

import pytest

from repro.experiments import ablation, congestion, fig1, fig2, fig3
from repro.experiments import related_work, relaxed, scalefree
from repro.experiments import structures, sweeps, table1, table2
from repro.experiments.harness import (
    ExperimentTable,
    sample_pairs,
    standard_suite,
)
from repro.graphs.generators import grid_2d
from repro.metric.graph_metric import GraphMetric

TINY_SUITE = [("grid 5x5", grid_2d(5))]


class TestHarness:
    def test_standard_suite_shapes(self):
        small = standard_suite("small")
        assert len(small) == 4
        names = [name for name, _ in small]
        assert any("holes" in n for n in names)
        assert any("exp" in n for n in names)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            standard_suite("galactic")

    def test_sample_pairs_deterministic(self, grid_metric):
        assert sample_pairs(grid_metric, 50, seed=1) == sample_pairs(
            grid_metric, 50, seed=1
        )

    def test_sample_pairs_distinct(self, grid_metric):
        pairs = sample_pairs(grid_metric, 60, seed=2)
        assert len(set(pairs)) == 60
        assert all(u != v for u, v in pairs)

    def test_sample_pairs_all_for_tiny(self):
        metric = GraphMetric(grid_2d(2))
        pairs = sample_pairs(metric, 10**6)
        assert len(pairs) == 4 * 3

    def test_table_formatting(self):
        table = ExperimentTable(
            title="T",
            columns=["a", "b"],
            rows=[[1, 2.5], ["x", 3]],
            notes=["hello"],
        )
        text = table.formatted()
        assert "T" in text and "2.500" in text and "note: hello" in text

    def test_row_dicts(self):
        table = ExperimentTable(title="T", columns=["a"], rows=[[7]])
        assert table.row_dicts() == [{"a": 7}]

    def test_build_scheme_defaults(self, grid_metric):
        from repro.experiments.harness import build_scheme
        from repro.schemes.shortest_path import ShortestPathScheme

        scheme = build_scheme(ShortestPathScheme, grid_metric)
        assert scheme.params.epsilon == 0.5
        assert scheme.route(0, 1).stretch == 1.0


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(pair_count=60, suite=TINY_SUITE)

    def test_three_schemes_per_graph(self, result):
        assert len(result.rows) == 3

    def test_baseline_stretch_one(self, result):
        baseline = result.rows[0]
        assert baseline[2] == pytest.approx(1.0)

    def test_compact_schemes_within_bound(self, result):
        for row in result.rows[1:]:
            assert row[2] <= 9 + 8 * 0.5

    def test_compact_tables_smaller_than_baseline_scales(self, result):
        # Baseline tables are n*(2 log n); compact are polylog * consts.
        baseline_bits = result.rows[0][4]
        assert baseline_bits > 0


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(pair_count=60, suite=TINY_SUITE)

    def test_labels_are_log_n(self, result):
        for row in result.rows:
            assert row[7] == 5  # ceil(log2 25)

    def test_labeled_stretch_bound(self, result):
        for row in result.rows[1:]:
            assert row[2] <= 1 + 8 * 0.5


class TestFigures:
    def test_fig1_shares_sum_to_one(self):
        result = fig1.run(pair_count=40, suite=TINY_SUITE)
        for row in result.rows:
            assert row[2] + row[3] + row[4] == pytest.approx(1.0, abs=0.01)

    def test_fig2_shares_sum_to_one(self):
        result = fig2.run(pair_count=40, suite=TINY_SUITE)
        for row in result.rows:
            assert row[1] + row[2] + row[3] + row[4] == pytest.approx(
                1.0, abs=0.01
            )

    def test_fig2_zero_fallbacks(self):
        result = fig2.run(pair_count=40, suite=TINY_SUITE)
        for row in result.rows:
            assert row[8] == 0

    def test_fig3_construction_rows(self):
        result = fig3.run_construction(epsilons=[6.0], n=256)
        assert len(result.rows) == 1
        eps, p, q, n = result.rows[0][:4]
        assert (p, q) == (18, 4)
        assert n == 256

    def test_fig3_counting_rows_verified(self):
        result = fig3.run_counting(epsilons=[2.0, 6.0])
        for row in result.rows:
            assert row[4] is True   # Claim 5.10 base
            assert row[7] is True   # Claim 5.11

    def test_fig3_adversary_runs(self):
        result = fig3.run_adversary(
            epsilon=6.0, n=128, namings=2, routes_per_naming=5
        )
        worst = result.rows[-1][2]
        assert worst >= 1.0


class TestScaleFreeAblation:
    def test_scale_free_columns_flat(self):
        result = scalefree.run(n=14, bases=[1.5, 8.0])
        first, last = result.rows[0], result.rows[-1]
        # log Delta grows a lot...
        assert last[1] > 2 * first[1]
        # ...non-scale-free storage grows...
        assert last[2] > first[2]
        assert last[4] > first[4]
        # ...scale-free storage roughly flat.
        assert last[3] <= 2.0 * first[3]
        assert last[5] <= 2.0 * first[5]


class TestSweeps:
    def test_stretch_sweep_monotone_bounds(self):
        result = sweeps.run_stretch_sweep(
            epsilons=[0.25, 0.5], grid_side=5, pair_count=50
        )
        for row in result.rows:
            eps = row[0]
            assert row[1] <= 1 + 8 * eps  # labeled non-SF
            assert row[2] <= 1 + 8 * eps  # labeled SF

    def test_storage_scaling_increases_with_n(self):
        result = sweeps.run_storage_scaling(sizes=[32, 64])
        small, large = result.rows
        assert large[2] >= small[2]

    def test_storage_scaling_label_bits(self):
        result = sweeps.run_storage_scaling(sizes=[64])
        assert result.rows[0][-1] == 6


class TestRelatedWork:
    def test_cowen_vs_theorem_1_2(self):
        result = related_work.run(pair_count=40, suite=TINY_SUITE)
        cowen, thm12 = result.rows
        assert cowen[2] <= 3.0 + 1e-9
        assert thm12[2] <= 1 + 8 * 0.5
        # The doubling-metric scheme buys better guarantees with more
        # (but still polylog) storage.
        assert thm12[6] < cowen[6]


class TestAblations:
    def test_a1_same_stretch_both_routers(self):
        result = ablation.run_tree_router(pair_count=40)
        by_graph = {}
        for row in result.rows:
            by_graph.setdefault(row[0], []).append(row[2])
        for stretches in by_graph.values():
            assert stretches[0] == stretches[1]

    def test_a2_savings_increase_with_delta(self):
        result = ablation.run_ring_restriction(sizes=[1.5, 16.0])
        assert result.rows[-1][4] > result.rows[0][4]

    def test_a3_served_fraction_high(self):
        result = ablation.run_packing_service(epsilons=[0.25])
        assert result.rows[0][3] >= 0.5


class TestCongestion:
    def test_compact_schemes_cost_more_traffic(self):
        result = congestion.run(packet_count=60, suite=TINY_SUITE)
        baseline, thm14, thm11 = result.rows
        assert thm14[5] >= baseline[5]
        assert thm11[5] >= baseline[5]

    def test_all_rows_have_positive_latency(self):
        result = congestion.run(packet_count=40, suite=TINY_SUITE)
        for row in result.rows:
            assert row[2] > 0


class TestRelaxed:
    def test_median_below_max(self):
        result = relaxed.run(pair_count=60, suite=TINY_SUITE)
        for row in result.rows:
            assert row[2] <= row[4]

    def test_fractions_are_probabilities(self):
        result = relaxed.run(pair_count=60, suite=TINY_SUITE)
        for row in result.rows:
            assert 0.0 <= row[5] <= 1.0


class TestStructuresAudit:
    def test_audit_passes_on_tiny_suite(self):
        result = structures.run(suite=TINY_SUITE)
        row = result.rows[0]
        assert row[2] is True          # Lemma 2.3 holds
        assert row[3] <= row[4] + 1e-9  # height within (1+eps) r
        assert row[5] <= row[6]        # H-links within 4 log n


class TestChaosExperiment:
    def test_sweep_regimes_on_tiny_suite(self):
        from repro.experiments import chaos

        result = chaos.run(
            pair_count=30, losses=(0.0, 0.3), suite=TINY_SUITE
        )
        # six schemes x two losses x two regimes
        assert len(result.rows) == 6 * 2 * 2
        by_key = {
            (r[1], r[2], r[3]): r for r in result.rows
        }
        for _, label in chaos.SCHEME_LINEUP:
            # Heavy loss without ARQ loses packets; ARQ recovers more.
            failfast = by_key[(label, 0.3, "off")]
            reliable = by_key[(label, 0.3, "on")]
            assert failfast[5] < 1.0
            assert reliable[5] > failfast[5]

    def test_loss_flag_collapses_sweep(self):
        from repro.experiments import chaos

        result = chaos.run(pair_count=10, loss=0.1, suite=TINY_SUITE)
        assert {r[2] for r in result.rows} == {0.1}

    def test_audit_heals_on_tiny_suite(self):
        from repro.experiments import chaos

        result = chaos.run_audit(corrupt_count=3, suite=TINY_SUITE)
        for row in result.rows:
            assert row[4] == 1.0      # detection rate
            assert row[6] == "yes"    # clean after healing
            assert row[7] > 0         # cold-identical pairs compared


class TestScaleExperiment:
    def test_trajectory_on_tiny_sizes(self):
        from repro.experiments import scale

        result = scale.run(pair_count=20, sizes=(48, 64))
        assert len(result.rows) == 2 * 4  # two sizes x four families
        for row in result.rows:
            n, rows_materialized, stretch = row[1], row[3], row[5]
            assert rows_materialized < n
            assert stretch >= 1.0

    def test_doubling_degradation_table(self):
        from repro.experiments import scale

        result = scale.run_doubling(pair_count=20, sizes=(48,))
        by_key = {(r[0], r[2]): r for r in result.rows}
        # The doubling scheme pays more bits on the power-law family
        # than on the doubling one; the landmark scheme is
        # family-agnostic at fixed n.
        assert (
            by_key[("pref-attach m=2", "Thm 1.4 (doubling)")][3]
            > by_key[("geometric", "Thm 1.4 (doubling)")][3]
        )
        assert (
            by_key[("pref-attach m=2", "landmark (KFY)")][3]
            == by_key[("geometric", "landmark (KFY)")][3]
        )

    def test_registered_in_cli_registry(self):
        from repro.pipeline.registry import REGISTRY

        assert "scale" in REGISTRY
