"""Tests for the workload graph generators."""

import networkx as nx
import pytest

from repro.graphs.generators import (
    balanced_tree,
    caterpillar,
    clustered_backbone,
    exponential_path,
    exponential_ring,
    grid_2d,
    grid_with_holes,
    hypercube,
    internet_as_like,
    path_graph,
    preferential_attachment,
    random_geometric,
    ring_graph,
    star_graph,
    uniform_random_weights,
)


def _assert_valid(graph: nx.Graph):
    assert nx.is_connected(graph)
    assert sorted(graph.nodes()) == list(range(graph.number_of_nodes()))
    for _, _, data in graph.edges(data=True):
        assert data["weight"] > 0


class TestGrid:
    def test_size(self):
        assert grid_2d(4).number_of_nodes() == 16

    def test_rectangular(self):
        graph = grid_2d(3, 5)
        assert graph.number_of_nodes() == 15
        _assert_valid(graph)

    def test_unit_weights(self):
        for _, _, data in grid_2d(3).edges(data=True):
            assert data["weight"] == 1.0

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            grid_2d(0)


class TestGridWithHoles:
    def test_remains_connected(self):
        _assert_valid(grid_with_holes(8, hole_fraction=0.3, seed=1))

    def test_removes_roughly_requested_fraction(self):
        graph = grid_with_holes(10, hole_fraction=0.25, seed=2)
        assert graph.number_of_nodes() <= 100 - 15

    def test_zero_fraction_is_full_grid(self):
        assert grid_with_holes(5, hole_fraction=0.0).number_of_nodes() == 25

    def test_deterministic_for_seed(self):
        a = grid_with_holes(6, seed=9)
        b = grid_with_holes(6, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            grid_with_holes(5, hole_fraction=1.0)


class TestRandomGeometric:
    def test_connected_and_valid(self):
        _assert_valid(random_geometric(40, seed=3))

    def test_deterministic_for_seed(self):
        a = random_geometric(30, seed=4)
        b = random_geometric(30, seed=4)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_positions_attached(self):
        graph = random_geometric(10, seed=0)
        assert all("pos" in graph.nodes[v] for v in graph.nodes())

    def test_three_dimensional(self):
        graph = random_geometric(25, dim=3, seed=5)
        _assert_valid(graph)
        assert len(graph.nodes[0]["pos"]) == 3

    def test_bad_n_rejected(self):
        with pytest.raises(ValueError):
            random_geometric(0)


class TestSimpleFamilies:
    def test_path(self):
        graph = path_graph(6, weight=2.0)
        _assert_valid(graph)
        assert graph.number_of_edges() == 5

    def test_ring(self):
        graph = ring_graph(6)
        _assert_valid(graph)
        assert graph.number_of_edges() == 6

    def test_star(self):
        graph = star_graph(7)
        _assert_valid(graph)
        assert graph.degree[0] == 6

    def test_star_too_small_rejected(self):
        with pytest.raises(ValueError):
            star_graph(1)

    def test_balanced_tree(self):
        graph = balanced_tree(2, 3)
        _assert_valid(graph)
        assert graph.number_of_nodes() == 15
        assert nx.is_tree(graph)


class TestExponentialFamilies:
    def test_exponential_path_weights(self):
        graph = exponential_path(5, base=2.0)
        weights = [
            graph[i][i + 1]["weight"] for i in range(4)
        ]
        assert weights == [1.0, 2.0, 4.0, 8.0]

    def test_exponential_path_diameter_exponential(self):
        graph = exponential_path(20)
        total = sum(d["weight"] for _, _, d in graph.edges(data=True))
        assert total >= 2**18

    def test_exponential_ring_valid(self):
        graph = exponential_ring(8)
        _assert_valid(graph)
        assert graph.number_of_edges() == 8

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            exponential_path(1)


class TestClusteredBackbone:
    def test_size_and_validity(self):
        graph = clustered_backbone(4, 5, base=2.0)
        _assert_valid(graph)
        assert graph.number_of_nodes() == 20

    def test_backbone_weights_geometric(self):
        graph = clustered_backbone(3, 2, base=4.0)
        assert graph[1][2]["weight"] == pytest.approx(4.0)
        assert graph[3][4]["weight"] == pytest.approx(16.0)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            clustered_backbone(0, 3)
        with pytest.raises(ValueError):
            clustered_backbone(3, 3, base=1.0)


class TestCaterpillar:
    def test_size(self):
        graph = caterpillar(4, 3)
        _assert_valid(graph)
        assert graph.number_of_nodes() == 4 + 12
        assert nx.is_tree(graph)

    def test_spine_degrees(self):
        graph = caterpillar(5, 4)
        # Interior spine nodes: 2 spine edges + 4 legs.
        assert graph.degree[2] == 6

    def test_zero_legs_is_a_path(self):
        graph = caterpillar(6, 0)
        assert graph.number_of_edges() == 5

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            caterpillar(0, 2)


class TestHypercube:
    def test_size(self):
        graph = hypercube(4)
        _assert_valid(graph)
        assert graph.number_of_nodes() == 16
        assert all(graph.degree[v] == 4 for v in graph.nodes())

    def test_dimension_grows_doubling_dimension(self):
        from repro.metric.doubling import doubling_dimension
        from repro.metric.graph_metric import GraphMetric

        small = doubling_dimension(GraphMetric(hypercube(2)))
        large = doubling_dimension(GraphMetric(hypercube(5)))
        assert large > small

    def test_bad_dimension_rejected(self):
        with pytest.raises(ValueError):
            hypercube(0)


class TestUniformRandomWeights:
    def test_weights_in_range(self):
        graph = uniform_random_weights(grid_2d(4), low=1.0, high=3.0, seed=1)
        for _, _, data in graph.edges(data=True):
            assert 1.0 <= data["weight"] <= 3.0

    def test_original_untouched(self):
        original = grid_2d(3)
        uniform_random_weights(original, seed=2)
        assert all(
            d["weight"] == 1.0 for _, _, d in original.edges(data=True)
        )

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            uniform_random_weights(grid_2d(3), low=2.0, high=1.0)


def _tail_exponent(graph: nx.Graph, d_min: int = 4) -> float:
    """Clauset-style MLE of the degree-distribution tail exponent."""
    import math

    tail = [d for _, d in graph.degree() if d >= d_min]
    return 1.0 + len(tail) / sum(math.log(d / (d_min - 0.5)) for d in tail)


class TestPreferentialAttachment:
    def test_connected_and_canonical(self):
        _assert_valid(preferential_attachment(200, m=2, seed=3))

    def test_deterministic(self):
        a = preferential_attachment(300, m=2, seed=5)
        b = preferential_attachment(300, m=2, seed=5)
        assert list(a.edges(data=True)) == list(b.edges(data=True))
        c = preferential_attachment(300, m=2, seed=6)
        assert list(a.edges()) != list(c.edges())

    def test_degree_exponent_near_three(self):
        # Barabasi-Albert tail exponent is 3 in the limit; the MLE on a
        # finite sample should land well inside (2, 4.5).
        graph = preferential_attachment(3000, m=2, seed=1)
        assert 2.0 < _tail_exponent(graph) < 4.5

    def test_heavy_tail_versus_geometric(self):
        # Non-doubling signature: the hub degree dwarfs the median,
        # unlike the geometric family at the same size.
        pa = preferential_attachment(1000, m=2, seed=1)
        geo = random_geometric(1000, seed=11)
        pa_degrees = sorted(d for _, d in pa.degree())
        geo_degrees = sorted(d for _, d in geo.degree())
        assert pa_degrees[-1] > 10 * pa_degrees[len(pa_degrees) // 2]
        assert geo_degrees[-1] <= 5 * geo_degrees[len(geo_degrees) // 2]

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            preferential_attachment(1)
        with pytest.raises(ValueError):
            preferential_attachment(10, m=0)
        with pytest.raises(ValueError):
            preferential_attachment(10, m=10)


class TestInternetASLike:
    def test_connected_and_canonical(self):
        _assert_valid(internet_as_like(200, m=2, seed=3))

    def test_deterministic(self):
        a = internet_as_like(300, m=2, seed=5)
        b = internet_as_like(300, m=2, seed=5)
        assert list(a.edges(data=True)) == list(b.edges(data=True))

    def test_hub_core_is_unit_weight_and_periphery_is_not(self):
        graph = internet_as_like(400, m=2, seed=2)
        weights = {d["weight"] for _, _, d in graph.edges(data=True)}
        assert 1.0 in weights
        assert any(w > 1.0 for w in weights)

    def test_keeps_power_law_tail(self):
        assert 2.0 < _tail_exponent(internet_as_like(3000, m=2, seed=1)) < 4.5

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            internet_as_like(3)


class TestRandomGeometricBuckets:
    def test_bucketed_matches_brute_force(self):
        # The grid-bucketed neighbor search must reproduce the original
        # all-pairs scan bit-for-bit (same edges, same order, same
        # weights) — it is a pure speedup, not a new generator.
        import itertools
        import math
        import random

        for n, seed, dim in ((60, 2, 2), (80, 9, 3)):
            rng = random.Random(seed)
            points = [
                tuple(rng.random() for _ in range(dim)) for _ in range(n)
            ]
            radius = 1.5 * (math.log(max(2, n)) / n) ** (1.0 / dim)
            expected = []
            for u, v in itertools.combinations(range(n), 2):
                d = math.dist(points[u], points[v])
                if d <= radius:
                    expected.append((u, v, max(d, 1e-6)))
            actual = random_geometric(n, seed=seed, dim=dim)
            got = [
                (u, v, d["weight"]) for u, v, d in actual.edges(data=True)
            ]
            # The generator repairs connectivity by adding extra edges;
            # every brute-force edge must appear first, in order.
            assert got[: len(expected)] == expected

    def test_scales_to_ten_thousand(self):
        graph = random_geometric(10_000, seed=11)
        _assert_valid(graph)
        assert graph.number_of_nodes() == 10_000


class TestClusteredBackboneCap:
    def test_max_weight_caps_backbone(self):
        graph = clustered_backbone(2000, 5, max_weight=1e6)
        _assert_valid(graph)
        assert max(d["weight"] for _, _, d in graph.edges(data=True)) <= 1e6

    def test_default_matches_uncapped(self):
        a = clustered_backbone(6, 4)
        b = clustered_backbone(6, 4, max_weight=None)
        assert list(a.edges(data=True)) == list(b.edges(data=True))

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            clustered_backbone(4, 4, max_weight=0.5)
