"""Shared fixtures: cached metrics and schemes for the test suite.

Building a GraphMetric (all-pairs Dijkstra) and the schemes on top is the
expensive part of most tests, so everything reusable is session-scoped.
"""

from __future__ import annotations

import pytest

from repro.core.params import SchemeParameters
from repro.graphs.generators import (
    exponential_path,
    grid_2d,
    grid_with_holes,
    random_geometric,
)
from repro.metric.graph_metric import GraphMetric
from repro.nets.hierarchy import NetHierarchy
from repro.packing.ballpacking import BallPacking
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme


@pytest.fixture(scope="session")
def params():
    return SchemeParameters(epsilon=0.5)


@pytest.fixture(scope="session")
def grid_metric():
    """6x6 unit grid: the canonical growth-bounded testbed."""
    return GraphMetric(grid_2d(6))


@pytest.fixture(scope="session")
def holes_metric():
    """Grid with holes: doubling but not growth-bounded."""
    return GraphMetric(grid_with_holes(7, hole_fraction=0.25, seed=3))


@pytest.fixture(scope="session")
def geometric_metric():
    """Random geometric graph with non-uniform weights."""
    return GraphMetric(random_geometric(48, seed=2))


@pytest.fixture(scope="session")
def exponential_metric():
    """Path with exponentially growing weights: huge normalized diameter."""
    return GraphMetric(exponential_path(14))


@pytest.fixture(
    scope="session",
    params=["grid", "holes", "geometric", "exponential"],
)
def any_metric(request, grid_metric, holes_metric, geometric_metric,
               exponential_metric):
    """Parametrized fixture running a test over all graph families."""
    return {
        "grid": grid_metric,
        "holes": holes_metric,
        "geometric": geometric_metric,
        "exponential": exponential_metric,
    }[request.param]


@pytest.fixture(scope="session")
def grid_hierarchy(grid_metric):
    return NetHierarchy(grid_metric)


@pytest.fixture(scope="session")
def grid_packing(grid_metric):
    return BallPacking(grid_metric)


@pytest.fixture(scope="session")
def labeled_nonsf(grid_metric, params):
    return NonScaleFreeLabeledScheme(grid_metric, params)


@pytest.fixture(scope="session")
def labeled_sf(grid_metric, params):
    return ScaleFreeLabeledScheme(grid_metric, params)


@pytest.fixture(scope="session")
def nameind_simple(grid_metric, params):
    return SimpleNameIndependentScheme(grid_metric, params)


@pytest.fixture(scope="session")
def nameind_sf(grid_metric, params, labeled_sf):
    return ScaleFreeNameIndependentScheme(
        grid_metric, params, underlying=labeled_sf
    )


def lemma_3_4_bound(epsilon: float) -> float:
    """Eqn. 6's exact envelope ``1 + 8(1/ε+1)/(1/ε-2)`` (ε < 1/2).

    For ε = 1/2 the denominator vanishes; callers should use a generous
    fixed cap instead.
    """
    inv = 1.0 / epsilon
    if inv <= 2.0:
        raise ValueError("Lemma 3.4's bound needs epsilon < 1/2")
    return 1.0 + 8.0 * (inv + 1.0) / (inv - 2.0)
