"""Cross-module integration tests: all schemes against all families.

These tests exercise the full pipeline — metric, nets, packings, search
trees, tree routing, schemes — on every graph family and compare schemes
against each other and the baseline oracle.
"""

import pytest

from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme

ALL_SCHEMES = [
    ShortestPathScheme,
    NonScaleFreeLabeledScheme,
    ScaleFreeLabeledScheme,
    SimpleNameIndependentScheme,
    ScaleFreeNameIndependentScheme,
]


@pytest.fixture(scope="module", params=[cls.__name__ for cls in ALL_SCHEMES])
def scheme_cls(request):
    return next(c for c in ALL_SCHEMES if c.__name__ == request.param)


class TestAllSchemesAllFamilies:
    def test_every_route_terminates_at_target(
        self, scheme_cls, any_metric, params
    ):
        scheme = scheme_cls(any_metric, params)
        for u in range(0, any_metric.n, 5):
            for v in range(0, any_metric.n, 3):
                if u == v:
                    continue
                result = scheme.route(u, v)
                assert result.target == v
                assert result.path[-1] == v

    def test_cost_never_below_optimal(self, scheme_cls, any_metric, params):
        scheme = scheme_cls(any_metric, params)
        for u in range(0, any_metric.n, 7):
            for v in range(0, any_metric.n, 4):
                if u == v:
                    continue
                result = scheme.route(u, v)
                assert result.cost >= result.optimal - 1e-9

    def test_path_cost_consistent(self, scheme_cls, any_metric, params):
        """Summing metric legs along result.path reproduces result.cost."""
        scheme = scheme_cls(any_metric, params)
        for u, v in [(0, any_metric.n - 1), (1, any_metric.n // 2)]:
            if u == v:
                continue
            result = scheme.route(u, v)
            leg_sum = sum(
                any_metric.distance(a, b)
                for a, b in zip(result.path, result.path[1:])
            )
            assert leg_sum == pytest.approx(
                result.cost, rel=1e-6, abs=1e-6
            )

    def test_table_bits_all_positive(self, scheme_cls, any_metric, params):
        scheme = scheme_cls(any_metric, params)
        assert all(
            scheme.table_bits(v) > 0 for v in any_metric.nodes
        )

    def test_header_bits_positive(self, scheme_cls, any_metric, params):
        assert scheme_cls(any_metric, params).header_bits() > 0


class TestSchemeComparisons:
    def test_labeled_beats_name_independent_stretch(
        self, grid_metric, params
    ):
        labeled = ScaleFreeLabeledScheme(grid_metric, params)
        nameind = ScaleFreeNameIndependentScheme(
            grid_metric, params, underlying=labeled
        )
        pairs = [(u, v) for u in range(0, 36, 4) for v in range(1, 36, 5)
                 if u != v]
        assert labeled.evaluate(pairs).mean_stretch <= (
            nameind.evaluate(pairs).mean_stretch + 1e-9
        )

    def test_compact_tables_sublinear_vs_baseline(self, params):
        """On a larger graph the compact schemes use far less storage
        than the full-table baseline (the whole point of the paper)."""
        from repro.graphs.generators import grid_2d
        from repro.metric.graph_metric import GraphMetric

        metric = GraphMetric(grid_2d(12))  # n = 144
        baseline = ShortestPathScheme(metric, params)
        labeled = NonScaleFreeLabeledScheme(metric, params)
        assert labeled.max_table_bits() < baseline.max_table_bits()

    def test_shared_substrates_are_reused(self, grid_metric, params):
        labeled = ScaleFreeLabeledScheme(grid_metric, params)
        nameind = ScaleFreeNameIndependentScheme(
            grid_metric, params, underlying=labeled
        )
        assert nameind.underlying is labeled
        assert nameind.hierarchy is labeled.hierarchy
        assert nameind.packing is labeled.packing

    def test_underlying_labels_agree(self, grid_metric, params):
        """Both labeled schemes assign identical (netting-tree) labels
        when sharing a hierarchy."""
        nonsf = NonScaleFreeLabeledScheme(grid_metric, params)
        sf = ScaleFreeLabeledScheme(
            grid_metric, params, hierarchy=nonsf.hierarchy
        )
        for v in grid_metric.nodes:
            assert nonsf.routing_label(v) == sf.routing_label(v)


class TestEvaluateHarness:
    def test_evaluate_all_pairs_default(self, grid_metric, params):
        scheme = ShortestPathScheme(grid_metric, params)
        ev = scheme.evaluate()
        assert ev.pair_count == grid_metric.n * (grid_metric.n - 1)

    def test_evaluate_reports_worst_pair(self, grid_metric, params):
        scheme = SimpleNameIndependentScheme(grid_metric, params)
        pairs = [(0, 1), (0, 35), (17, 18)]
        ev = scheme.evaluate(pairs)
        assert ev.worst_pair in pairs
        worst = scheme.route(*ev.worst_pair)
        assert worst.stretch == pytest.approx(ev.max_stretch)

    def test_evaluate_empty_rejected(self, grid_metric, params):
        scheme = ShortestPathScheme(grid_metric, params)
        with pytest.raises(ValueError):
            scheme.evaluate([])
