"""Tests for the simple name-independent scheme (Theorem 1.4, Alg. 3)."""

import pytest

from repro.core.params import SchemeParameters
from repro.core.types import RouteFailure
from repro.schemes.nameind_simple import SimpleNameIndependentScheme

from tests.conftest import lemma_3_4_bound


class TestConstruction:
    def test_search_trees_exist_per_level_and_net_point(
        self, nameind_simple
    ):
        hierarchy = nameind_simple.hierarchy
        for i in hierarchy.levels:
            for x in hierarchy.net(i):
                tree = nameind_simple.search_tree(x, i)
                assert tree.root == x

    def test_search_trees_store_ball_names(self, nameind_simple, grid_metric):
        """T(x, 2^i/eps) stores (name, label) for every ball member."""
        eps = nameind_simple.params.epsilon
        hierarchy = nameind_simple.hierarchy
        for i in (0, 1):
            for x in hierarchy.net(i)[:5]:
                tree = nameind_simple.search_tree(x, i)
                for v in grid_metric.ball(x, (2.0**i) / eps):
                    assert tree.lookup_everywhere(
                        nameind_simple.name_of(v)
                    )

    def test_top_tree_covers_everything(self, nameind_simple, grid_metric):
        top = nameind_simple.hierarchy.top_level
        tree = nameind_simple.search_tree(0, top)
        assert sorted(tree.nodes) == list(grid_metric.nodes)


class TestRouting:
    def test_reaches_every_destination(self, nameind_simple, grid_metric):
        for u in range(0, grid_metric.n, 6):
            for v in grid_metric.nodes:
                if u == v:
                    continue
                assert nameind_simple.route(u, v).target == v

    def test_stretch_envelope_below_half(self, grid_metric):
        """Lemma 3.4's exact bound holds for eps < 1/2."""
        eps = 0.25
        scheme = SimpleNameIndependentScheme(
            grid_metric, SchemeParameters(epsilon=eps)
        )
        pairs = [
            (u, v)
            for u in range(0, grid_metric.n, 3)
            for v in range(0, grid_metric.n, 4)
            if u != v
        ]
        bound = lemma_3_4_bound(eps) * 1.05
        assert scheme.evaluate(pairs).max_stretch <= bound

    def test_stretch_generous_cap_at_half(self, nameind_simple, grid_metric):
        ev = nameind_simple.evaluate()
        assert ev.max_stretch <= 9 + 8 * 0.5

    def test_legs_sum_to_cost(self, nameind_simple, grid_metric):
        for u, v in [(0, 35), (14, 2), (30, 31)]:
            result = nameind_simple.route(u, v)
            assert sum(result.legs.values()) == pytest.approx(result.cost)

    def test_search_phase_present(self, nameind_simple, grid_metric):
        result = nameind_simple.route(0, grid_metric.n - 1)
        assert result.legs["search"] > 0.0

    def test_route_under_permuted_naming(self, grid_metric, params):
        naming = [(v * 7 + 3) % grid_metric.n for v in grid_metric.nodes]
        scheme = SimpleNameIndependentScheme(
            grid_metric, params, naming=naming
        )
        for u, v in [(0, 1), (5, 30), (20, 8)]:
            result = scheme.route_to_name(u, naming[v])
            assert result.target == v

    def test_naming_does_not_change_tables_much(self, grid_metric, params):
        """Name-independence: storage is naming-agnostic."""
        identity = SimpleNameIndependentScheme(grid_metric, params)
        permuted = SimpleNameIndependentScheme(
            grid_metric,
            params,
            naming=list(reversed(range(grid_metric.n))),
        )
        assert identity.max_table_bits() == permuted.max_table_bits()

    def test_bad_name_rejected(self, nameind_simple, grid_metric):
        with pytest.raises(RouteFailure):
            nameind_simple.route_to_name(0, grid_metric.n)

    def test_works_on_all_families(self, any_metric, params):
        scheme = SimpleNameIndependentScheme(any_metric, params)
        pairs = [
            (u, v)
            for u in range(0, any_metric.n, 5)
            for v in range(0, any_metric.n, 4)
            if u != v
        ]
        for u, v in pairs:
            assert scheme.route(u, v).target == v


class TestMixedStacks:
    def test_simple_scheme_over_scalefree_underlying(
        self, grid_metric, params, labeled_sf
    ):
        """Theorem 1.4's search trees compose with the Theorem 1.2
        underlying scheme too (the §3.3 combination, halfway)."""
        scheme = SimpleNameIndependentScheme(
            grid_metric, params, underlying=labeled_sf
        )
        for u in range(0, grid_metric.n, 7):
            for v in range(0, grid_metric.n, 5):
                if u != v:
                    result = scheme.route(u, v)
                    assert result.target == v
                    assert result.stretch <= 9 + 8 * 0.5 + 3


class TestStorage:
    def test_table_includes_underlying(self, nameind_simple):
        for v in (0, 10, 30):
            assert nameind_simple.table_bits(v) > (
                nameind_simple.underlying.table_bits(v)
            )

    def test_header_bigger_than_underlying(self, nameind_simple):
        assert nameind_simple.header_bits() > (
            nameind_simple.underlying.header_bits()
        )

    def test_stretch_guarantee_is_nine(self, nameind_simple):
        assert nameind_simple.stretch_guarantee() == 9.0

    def test_storage_grows_with_log_delta(self, params):
        from repro.graphs.generators import exponential_path
        from repro.metric.graph_metric import GraphMetric

        small = GraphMetric(exponential_path(14, base=1.2))
        big = GraphMetric(exponential_path(14, base=4.0))
        assert SimpleNameIndependentScheme(
            big, params
        ).max_table_bits() > SimpleNameIndependentScheme(
            small, params
        ).max_table_bits()
