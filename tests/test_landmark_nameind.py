"""Tests for the Internet-scale landmark name-independent scheme."""

import numpy as np
import pytest

from repro.core.types import PreprocessingError, RouteFailure
from repro.graphs.generators import (
    exponential_path,
    grid_2d,
    preferential_attachment,
    random_geometric,
)
from repro.metric.graph_metric import GraphMetric
from repro.schemes.landmark_nameind import LandmarkNameIndependentScheme


@pytest.fixture(scope="module")
def grid_scheme():
    metric = GraphMetric(grid_2d(5))
    naming = list(np.random.default_rng(3).permutation(metric.n))
    return LandmarkNameIndependentScheme(metric, naming=naming), metric


class TestConstruction:
    def test_landmark_count_defaults_to_sqrt_n(self, grid_scheme):
        scheme, metric = grid_scheme
        assert len(scheme.landmarks) == 5  # isqrt(24) + 1

    def test_homes_are_nearest_landmarks(self, grid_scheme):
        scheme, metric = grid_scheme
        for v in metric.nodes:
            home = scheme.home_landmark(v)
            assert metric.distance(v, home) == min(
                metric.distance(v, l) for l in scheme.landmarks
            )

    def test_directory_partitions_names_mod_k(self, grid_scheme):
        scheme, metric = grid_scheme
        k = len(scheme.landmarks)
        for name in range(metric.n):
            assert (
                scheme.directory_landmark(name)
                == scheme.landmarks[name % k]
            )

    def test_vicinity_is_size_bounded(self):
        metric = GraphMetric(grid_2d(6))
        scheme = LandmarkNameIndependentScheme(metric, vicinity_size=4)
        for u in metric.nodes:
            assert len(scheme.vicinity_names(u)) <= 4

    def test_bad_parameters_rejected(self):
        metric = GraphMetric(grid_2d(3))
        with pytest.raises(PreprocessingError):
            LandmarkNameIndependentScheme(metric, landmark_count=0)
        with pytest.raises(PreprocessingError):
            LandmarkNameIndependentScheme(metric, vicinity_size=100)

    def test_no_stretch_guarantee_claimed(self, grid_scheme):
        scheme, _ = grid_scheme
        assert scheme.stretch_guarantee() is None


class TestRouting:
    @pytest.mark.parametrize(
        "graph",
        [grid_2d(5), random_geometric(40, seed=2), exponential_path(12)],
        ids=["grid", "geometric", "exp-path"],
    )
    def test_every_pair_delivered_along_real_edges(self, graph):
        metric = GraphMetric(graph)
        naming = list(np.random.default_rng(9).permutation(metric.n))
        scheme = LandmarkNameIndependentScheme(metric, naming=naming)
        for u in metric.nodes:
            for v in metric.nodes:
                result = scheme.route(u, v)
                assert result.path[0] == u and result.path[-1] == v
                assert result.cost >= result.optimal - 1e-9
                for a, b in zip(result.path, result.path[1:]):
                    assert metric.graph.has_edge(a, b)

    def test_self_route_is_free(self, grid_scheme):
        scheme, metric = grid_scheme
        result = scheme.route(7, 7)
        assert result.path == [7] and result.cost == 0.0

    def test_vicinity_pairs_route_optimally(self, grid_scheme):
        # A target inside the source's vicinity is reached on the
        # shortest path — the vicinity table stores exact next hops.
        scheme, metric = grid_scheme
        for u in metric.nodes:
            for name in scheme.vicinity_names(u):
                result = scheme.route_to_name(u, name)
                assert result.cost == pytest.approx(result.optimal)

    def test_unknown_name_raises(self, grid_scheme):
        scheme, metric = grid_scheme
        with pytest.raises(RouteFailure):
            scheme.route_to_name(0, metric.n + 5)

    def test_routes_identical_across_strategies(self):
        graph = random_geometric(40, seed=2)
        results = []
        for strategy in ("dense", "lazy"):
            metric = GraphMetric(graph, strategy=strategy)
            scheme = LandmarkNameIndependentScheme(metric)
            results.append(
                [
                    (r.path, r.cost)
                    for u in range(0, metric.n, 3)
                    for v in range(0, metric.n, 3)
                    for r in [scheme.route(u, v)]
                ]
            )
        assert results[0] == results[1]

    def test_naming_permutation_does_not_change_delivery(self):
        metric = GraphMetric(grid_2d(4))
        for seed in (0, 1, 2):
            naming = list(
                np.random.default_rng(seed).permutation(metric.n)
            )
            scheme = LandmarkNameIndependentScheme(metric, naming=naming)
            for u in metric.nodes:
                for v in metric.nodes:
                    assert scheme.route(u, v).path[-1] == v


class TestAccounting:
    def test_header_bits_positive_and_bounded(self, grid_scheme):
        scheme, metric = grid_scheme
        bits = scheme.header_bits()
        unit = metric.n.bit_length()
        assert bits > 0
        # name + label + flags + one tree-depth source route.
        assert bits <= (3 + metric.n) * unit + 2

    def test_landmarks_pay_for_directory_and_tree(self, grid_scheme):
        scheme, metric = grid_scheme
        landmark_bits = min(scheme.table_bits(l) for l in scheme.landmarks)
        plain = [
            v for v in metric.nodes if v not in set(scheme.landmarks)
        ]
        assert landmark_bits > max(scheme.table_bits(v) for v in plain)

    def test_sublinear_tables_on_power_law_graph(self):
        # The point of the scheme: per-node state stays ~sqrt(n) even
        # on a non-doubling graph (hubs included).
        n = 1024
        metric = GraphMetric(
            preferential_attachment(n, m=2, seed=1), strategy="lazy"
        )
        scheme = LandmarkNameIndependentScheme(metric)
        unit = (n - 1).bit_length()
        non_landmarks = set(metric.nodes) - set(scheme.landmarks)
        worst = max(scheme.table_bits(v) for v in non_landmarks)
        assert worst <= 8 * int(n**0.5) * unit
        assert int(metric.substrate_stats()["rows_materialized"]) < n // 4


class TestLazyAcceptance:
    def test_builds_and_routes_without_dense_matrix(self):
        # ISSUE acceptance: a name-independent scheme on a power-law
        # graph, lazy substrate, rows materialized << n.
        n = 2000
        metric = GraphMetric(
            preferential_attachment(n, m=2, seed=1), strategy="lazy"
        )
        scheme = LandmarkNameIndependentScheme(metric)
        rng = np.random.default_rng(4)
        for u, v in rng.integers(0, n, size=(40, 2)):
            result = scheme.route(int(u), int(v))
            assert result.path[-1] == int(v)
        rows = int(metric.substrate_stats()["rows_materialized"])
        assert rows < n // 4, f"materialized {rows} rows at n={n}"
