"""Unit tests for bit accounting (repro.core.bitcount)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitcount import (
    BitCounter,
    bits_for_count,
    bits_for_distance,
    bits_for_id,
)


class TestBitsForId:
    def test_singleton_universe_costs_one_bit(self):
        assert bits_for_id(1) == 1

    def test_degenerate_universe_costs_one_bit(self):
        assert bits_for_id(0) == 1

    def test_power_of_two(self):
        assert bits_for_id(256) == 8

    def test_rounds_up(self):
        assert bits_for_id(257) == 9

    def test_two_items_one_bit(self):
        assert bits_for_id(2) == 1

    @given(st.integers(min_value=2, max_value=10**9))
    def test_universe_fits(self, n):
        bits = bits_for_id(n)
        assert 2**bits >= n
        assert 2 ** (bits - 1) < n


class TestBitsForCount:
    def test_zero_max(self):
        assert bits_for_count(0) == 1

    def test_matches_id_of_plus_one(self):
        assert bits_for_count(7) == bits_for_id(8) == 3

    @given(st.integers(min_value=0, max_value=10**6))
    def test_range_fits(self, m):
        assert 2 ** bits_for_count(m) >= m + 1


class TestBitsForDistance:
    def test_matches_log_n(self):
        assert bits_for_distance(1024) == 10

    def test_minimum_one_bit(self):
        assert bits_for_distance(1) >= 1


class TestBitCounter:
    def test_empty_total_zero(self):
        assert BitCounter().total() == 0

    def test_charge_accumulates(self):
        ledger = BitCounter()
        ledger.charge("a", 10)
        ledger.charge("a", 5)
        assert ledger.total() == 15
        assert ledger.breakdown() == {"a": 15}

    def test_categories_are_separate(self):
        ledger = BitCounter()
        ledger.charge("a", 1)
        ledger.charge("b", 2)
        assert ledger.breakdown() == {"a": 1, "b": 2}

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            BitCounter().charge("a", -1)

    def test_merge(self):
        lhs, rhs = BitCounter(), BitCounter()
        lhs.charge("a", 1)
        rhs.charge("a", 2)
        rhs.charge("b", 3)
        lhs.merge(rhs)
        assert lhs.breakdown() == {"a": 3, "b": 3}

    def test_breakdown_is_copy(self):
        ledger = BitCounter()
        ledger.charge("a", 1)
        ledger.breakdown()["a"] = 999
        assert ledger.total() == 1
