"""Tests for the §5 lower bound: tree construction and counting."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import PreprocessingError
from repro.lowerbound.counting import (
    averaging_bound,
    congruent_naming_log_count,
    implied_stretch,
    lower_bound_parameters,
    partition_sizes,
    sequence_ratio_witness,
    table_size_threshold_bits,
    verify_claim_5_10_base,
    verify_claim_5_11,
)
from repro.lowerbound.tree import lower_bound_tree
from repro.metric.graph_metric import GraphMetric


class TestParameters:
    def test_paper_constants(self):
        params = lower_bound_parameters(4.0)
        assert params.p == math.ceil(72 / 4) + 6 == 24
        assert params.q == math.ceil(48 / 4) - 4 == 8
        assert params.c == 192

    def test_c_below_60_over_eps_squared(self):
        # Holds exactly at these eps; isolated eps need the paper's
        # implicit constant slack (see lower_bound_parameters).
        for eps in (0.5, 1.0, 2.0, 4.0, 7.5):
            params = lower_bound_parameters(eps)
            assert params.c < (60.0 / eps) ** 2

    def test_stretch_is_nine_minus_eps(self):
        assert lower_bound_parameters(1.5).stretch == pytest.approx(7.5)

    def test_out_of_range_rejected(self):
        for bad in (0.0, 8.0, -1.0, 9.0):
            with pytest.raises(ValueError):
                lower_bound_parameters(bad)

    def test_dimension_bound(self):
        assert lower_bound_parameters(
            2.0
        ).doubling_dimension_bound == pytest.approx(5.0)

    def test_table_threshold(self):
        assert table_size_threshold_bits(6.0, 2**20) == pytest.approx(
            (2**20) ** 0.01, rel=1e-9
        )


class TestTreeConstruction:
    @pytest.fixture(scope="class")
    def tree6(self):
        return lower_bound_tree(6.0, 512)

    def test_exact_node_count(self, tree6):
        assert tree6.n == 512

    def test_is_a_tree(self, tree6):
        assert nx.is_tree(tree6.graph)

    def test_all_spokes_present(self, tree6):
        assert len(tree6.path_nodes) == tree6.p * tree6.q
        for ids in tree6.path_nodes.values():
            assert len(ids) >= 1

    def test_spoke_weights_formula(self, tree6):
        for (i, j), w in tree6.spoke_weight.items():
            assert w == pytest.approx((2.0**i) * (tree6.q + j))

    def test_spoke_weights_increase(self, tree6):
        ordered = [
            tree6.spoke_weight[(i, j)]
            for i in range(tree6.p)
            for j in range(tree6.q)
        ]
        assert ordered == sorted(ordered)

    def test_path_edges_light(self, tree6):
        for (i, j), ids in tree6.path_nodes.items():
            for a, b in zip(ids, ids[1:]):
                assert tree6.graph[a][b]["weight"] == pytest.approx(
                    1.0 / tree6.n
                )

    def test_root_attached_to_middles(self, tree6):
        for key, middle in tree6.path_middle.items():
            assert tree6.graph.has_edge(tree6.root, middle)
            assert tree6.graph[tree6.root][middle][
                "weight"
            ] == pytest.approx(tree6.spoke_weight[key])

    def test_diameter_bound(self, tree6):
        metric = GraphMetric(tree6.graph)
        assert metric.diameter <= tree6.diameter_bound()

    def test_path_sizes_respect_ideal_ordering(self, tree6):
        """Later spokes are (weakly) larger, as n^{k/c} growth demands."""
        sizes = [
            len(tree6.path_nodes[(i, j)])
            for i in range(tree6.p)
            for j in range(tree6.q)
        ]
        # The last spoke is the largest (it holds ~n - n^{(c-1)/c} nodes).
        assert sizes[-1] == max(sizes)
        assert sizes[-1] > sum(sizes) / len(sizes)

    def test_too_small_n_rejected(self):
        with pytest.raises(PreprocessingError):
            lower_bound_tree(6.0, 50)

    def test_epsilon_out_of_range_rejected(self):
        with pytest.raises(PreprocessingError):
            lower_bound_tree(9.0, 512)

    def test_doubling_dimension_near_bound(self):
        tree = lower_bound_tree(6.0, 512)
        metric = GraphMetric(tree.graph)
        from repro.metric.doubling import doubling_dimension

        measured = doubling_dimension(
            metric,
            centers=[tree.root, tree.path_middle[(0, 0)]],
        )
        assert measured <= tree.doubling_dimension_bound() + 1.0


class TestCounting:
    def test_congruent_count_decreases_with_i(self):
        values = [
            congruent_naming_log_count(1024, 32.0, i, 8) for i in range(9)
        ]
        assert values == sorted(values, reverse=True)

    def test_congruent_count_positive_for_small_tables(self):
        """With beta = o(n^{1/c}) the congruent family stays huge."""
        n = 2**16
        beta = n ** (1 / 8) / 100
        assert congruent_naming_log_count(n, beta, 7, 8) > 0

    def test_congruent_count_bad_index_rejected(self):
        with pytest.raises(ValueError):
            congruent_naming_log_count(16, 1.0, 9, 8)

    def test_partition_sizes_sum_to_n(self):
        for n, c in [(4096, 12), (1 << 20, 192)]:
            assert sum(partition_sizes(n, c)) == pytest.approx(n)

    def test_partition_first_class_singleton(self):
        assert partition_sizes(1024, 10)[0] == 1.0

    def test_claim_5_10_base_all_eps(self):
        for eps in (0.5, 1.0, 2.0, 4.0, 6.0, 7.9):
            assert verify_claim_5_10_base(eps)

    def test_averaging_bound_monotone(self):
        values = [averaging_bound(m) for m in range(7, 200, 10)]
        assert values == sorted(values)

    def test_averaging_bound_limits_to_four(self):
        assert averaging_bound(10**6) == pytest.approx(4.0, abs=1e-4)

    def test_averaging_bound_small_m_rejected(self):
        with pytest.raises(ValueError):
            averaging_bound(3)

    def test_claim_5_11_holds_for_valid_eps(self):
        for eps in (0.5, 1.0, 2.0, 4.0, 6.0):
            assert verify_claim_5_11(eps)

    @given(st.floats(min_value=0.2, max_value=7.5))
    @settings(max_examples=50, deadline=None)
    def test_claim_5_11_property(self, eps):
        assert verify_claim_5_11(eps)

    def test_implied_stretch(self):
        # Searching cost A then delivering at distance d costs 2A + d.
        assert implied_stretch(4.0, 1.0) == pytest.approx(9.0)

    def test_implied_stretch_zero_distance_rejected(self):
        with pytest.raises(ValueError):
            implied_stretch(1.0, 0.0)

    def test_sequence_ratio_witness_geometric(self):
        """For b_i = 4^i the witness ratio approaches (1+4+...)/b ~ 16/3."""
        b = [4.0**i for i in range(10)]
        witness = sequence_ratio_witness(b)
        assert witness >= 4.0

    def test_sequence_ratio_witness_rejects_non_increasing(self):
        with pytest.raises(ValueError):
            sequence_ratio_witness([1.0, 1.0])

    def test_sequence_ratio_witness_any_strategy_pays(self):
        """No strictly increasing weight schedule keeps the witness
        ratio below 4 - the heart of Claim 5.11."""
        for ratio in (1.5, 2.0, 3.0, 4.0, 8.0):
            b = [ratio**i for i in range(40)]
            assert sequence_ratio_witness(b) > 3.0
