"""Tests for the stretch-1 full-table baseline scheme."""

import pytest

from repro.core.params import SchemeParameters
from repro.core.types import PreprocessingError
from repro.schemes.shortest_path import ShortestPathScheme


class TestShortestPathScheme:
    @pytest.fixture(scope="class")
    def scheme(self, grid_metric):
        return ShortestPathScheme(grid_metric)

    def test_stretch_exactly_one(self, scheme, grid_metric):
        for u in range(0, grid_metric.n, 3):
            for v in range(0, grid_metric.n, 5):
                if u == v:
                    continue
                assert scheme.route(u, v).stretch == pytest.approx(1.0)

    def test_path_uses_graph_edges(self, scheme, grid_metric):
        result = scheme.route(0, grid_metric.n - 1)
        for a, b in zip(result.path, result.path[1:]):
            assert grid_metric.graph.has_edge(a, b)

    def test_table_bits_linear(self, scheme, grid_metric):
        expected = (grid_metric.n - 1) * 2 * 6
        assert scheme.table_bits(0) == expected

    def test_header_is_log_n(self, scheme):
        assert scheme.header_bits() == 6

    def test_respects_naming(self, grid_metric):
        naming = list(reversed(range(grid_metric.n)))
        scheme = ShortestPathScheme(
            grid_metric, SchemeParameters(), naming=naming
        )
        result = scheme.route_to_name(0, naming[10])
        assert result.target == 10

    def test_bad_naming_rejected(self, grid_metric):
        with pytest.raises(PreprocessingError):
            ShortestPathScheme(
                grid_metric, SchemeParameters(), naming=[0] * grid_metric.n
            )

    def test_evaluate_summary(self, scheme):
        ev = scheme.evaluate([(0, 1), (0, 2), (3, 4)])
        assert ev.pair_count == 3
        assert ev.max_stretch == pytest.approx(1.0)
        assert ev.mean_stretch == pytest.approx(1.0)

    def test_stretch_guarantee(self, scheme):
        assert scheme.stretch_guarantee() == 1.0

    def test_name_round_trip(self, scheme, grid_metric):
        for v in range(0, grid_metric.n, 7):
            assert scheme.node_with_name(scheme.name_of(v)) == v
