"""Unit tests for the shortest-path metric substrate."""

import networkx as nx
import pytest

from repro.core.types import PreprocessingError
from repro.graphs.generators import path_graph
from repro.metric.graph_metric import GraphMetric, stretch_of


class TestConstruction:
    def test_empty_graph_rejected(self):
        with pytest.raises(PreprocessingError):
            GraphMetric(nx.Graph())

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=1.0)
        graph.add_node(2)
        with pytest.raises(PreprocessingError):
            GraphMetric(graph)

    def test_nonpositive_weight_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=0.0)
        with pytest.raises(PreprocessingError):
            GraphMetric(graph)

    def test_nodes_relabelled_consecutively(self):
        graph = nx.Graph()
        graph.add_edge("a", "c", weight=2.0)
        graph.add_edge("c", "b", weight=2.0)
        metric = GraphMetric(graph)
        assert list(metric.nodes) == [0, 1, 2]

    def test_weights_normalized_to_min_one(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=0.5)
        graph.add_edge(1, 2, weight=2.0)
        metric = GraphMetric(graph)
        assert metric.distance(0, 1) == pytest.approx(1.0)
        assert metric.distance(1, 2) == pytest.approx(4.0)

    def test_normalization_can_be_disabled(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=0.5)
        metric = GraphMetric(graph, normalize=False)
        assert metric.distance(0, 1) == pytest.approx(0.5)

    def test_singleton_graph(self):
        graph = nx.Graph()
        graph.add_node(0)
        metric = GraphMetric(graph)
        assert metric.n == 1
        assert metric.diameter == 1.0  # degenerate convention
        assert metric.log_diameter == 0


class TestDistances:
    def test_path_distances(self):
        metric = GraphMetric(path_graph(5))
        assert metric.distance(0, 4) == pytest.approx(4.0)
        assert metric.distance(2, 2) == 0.0

    def test_symmetry(self, grid_metric):
        for u in range(0, grid_metric.n, 7):
            for v in range(0, grid_metric.n, 5):
                assert grid_metric.distance(u, v) == pytest.approx(
                    grid_metric.distance(v, u)
                )

    def test_triangle_inequality(self, grid_metric):
        nodes = list(range(0, grid_metric.n, 6))
        for u in nodes:
            for v in nodes:
                for w in nodes:
                    assert grid_metric.distance(u, v) <= (
                        grid_metric.distance(u, w)
                        + grid_metric.distance(w, v)
                        + 1e-9
                    )

    def test_diameter_matches_max(self, grid_metric):
        explicit = max(
            grid_metric.distance(u, v)
            for u in grid_metric.nodes
            for v in grid_metric.nodes
        )
        assert grid_metric.diameter == pytest.approx(explicit)

    def test_log_diameter(self):
        metric = GraphMetric(path_graph(9))  # diameter 8
        assert metric.log_diameter == 3

    def test_log_n(self):
        assert GraphMetric(path_graph(9)).log_n == 4

    def test_eccentricity(self):
        metric = GraphMetric(path_graph(5))
        assert metric.eccentricity(0) == pytest.approx(4.0)
        assert metric.eccentricity(2) == pytest.approx(2.0)


class TestBalls:
    def test_ball_contains_center(self, any_metric):
        for u in range(0, any_metric.n, 5):
            assert u in any_metric.ball(u, 0.0)

    def test_ball_membership_inclusive(self):
        metric = GraphMetric(path_graph(5))
        assert set(metric.ball(1, 1.0)) == {0, 1, 2}

    def test_ball_monotone_in_radius(self, grid_metric):
        u = 0
        small = set(grid_metric.ball(u, 2.0))
        large = set(grid_metric.ball(u, 4.0))
        assert small <= large

    def test_ball_size_agrees_with_ball(self, grid_metric):
        for r in (0.5, 1.0, 3.0, 100.0):
            assert grid_metric.ball_size(0, r) == len(grid_metric.ball(0, r))

    def test_size_ball_has_exact_size(self, any_metric):
        for size in (1, 2, any_metric.n // 2, any_metric.n):
            assert len(any_metric.size_ball(0, size)) == size

    def test_size_radius_consistent(self, grid_metric):
        for size in (1, 4, 9, grid_metric.n):
            r = grid_metric.size_radius(0, size)
            # At least `size` nodes within r; fewer within anything less.
            assert grid_metric.ball_size(0, r) >= size

    def test_size_ball_ties_broken_by_id(self):
        metric = GraphMetric(path_graph(5))
        # nodes 1 and 3 are both at distance 1 from node 2.
        assert metric.size_ball(2, 2) == [2, 1]

    def test_r_u_at_zero_is_zero(self, grid_metric):
        assert grid_metric.r_u(0, 0) == 0.0

    def test_r_u_clamped_at_top(self, grid_metric):
        top = grid_metric.log_n
        assert grid_metric.r_u(0, top + 3) == grid_metric.r_u(0, top)

    def test_size_radius_bad_size_rejected(self, grid_metric):
        with pytest.raises(ValueError):
            grid_metric.size_radius(0, 0)
        with pytest.raises(ValueError):
            grid_metric.size_radius(0, grid_metric.n + 1)

    def test_nearest_in(self):
        metric = GraphMetric(path_graph(7))
        assert metric.nearest_in(0, [3, 5, 6]) == 3

    def test_nearest_in_tie_break_by_id(self):
        metric = GraphMetric(path_graph(5))
        assert metric.nearest_in(2, [1, 3]) == 1

    def test_nearest_in_empty_rejected(self, grid_metric):
        with pytest.raises(ValueError):
            grid_metric.nearest_in(0, [])


class TestNextHops:
    def test_next_hop_is_neighbour(self, any_metric):
        graph = any_metric.graph
        for u in range(0, any_metric.n, 5):
            for v in range(0, any_metric.n, 3):
                if u == v:
                    continue
                hop = any_metric.next_hop(u, v)
                assert graph.has_edge(u, hop)

    def test_next_hop_to_self(self, grid_metric):
        assert grid_metric.next_hop(3, 3) == 3

    def test_shortest_path_cost_matches_distance(self, any_metric):
        for u in range(0, any_metric.n, 4):
            for v in range(0, any_metric.n, 6):
                path = any_metric.shortest_path(u, v)
                cost = sum(
                    any_metric.edge_weight(a, b)
                    for a, b in zip(path, path[1:])
                )
                want = any_metric.distance(u, v)
                assert cost == pytest.approx(want, rel=1e-9, abs=1e-9)

    def test_paths_from_one_source_form_tree(self, grid_metric):
        # Consistency: next hops toward a fixed target never cycle.
        target = grid_metric.n - 1
        for u in grid_metric.nodes:
            seen = {u}
            current = u
            while current != target:
                current = grid_metric.next_hop(current, target)
                assert current not in seen
                seen.add(current)


class TestStretchOf:
    def test_direct_path(self, grid_metric):
        cost, optimal = stretch_of(grid_metric, [0, grid_metric.n - 1])
        assert cost == pytest.approx(optimal)

    def test_detour_costs_more(self, grid_metric):
        far = grid_metric.n - 1
        cost, optimal = stretch_of(grid_metric, [0, far, 0, far])
        assert cost == pytest.approx(3 * optimal)

    def test_empty_rejected(self, grid_metric):
        with pytest.raises(ValueError):
            stretch_of(grid_metric, [])
