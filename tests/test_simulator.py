"""Tests for the discrete-event traffic simulator."""

import pytest

from repro.graphs.generators import path_graph
from repro.metric.graph_metric import GraphMetric
from repro.runtime.simulator import (
    Demand,
    TrafficSimulator,
    expand_to_physical_path,
    uniform_demands,
)
from repro.schemes.shortest_path import ShortestPathScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme


@pytest.fixture(scope="module")
def path_scheme():
    return ShortestPathScheme(GraphMetric(path_graph(6)))


class TestBasics:
    def test_all_packets_delivered(self, path_scheme):
        demands = [Demand(0, 5), Demand(5, 0), Demand(2, 3)]
        report = TrafficSimulator(path_scheme).run(demands)
        assert report.delivered == 3

    def test_self_demand_delivered_instantly(self, path_scheme):
        report = TrafficSimulator(path_scheme).run([Demand(2, 2)])
        assert report.packets[0].latency == 0.0

    def test_uncongested_latency_is_propagation_plus_service(
        self, path_scheme
    ):
        report = TrafficSimulator(path_scheme, service_time=1.0).run(
            [Demand(0, 5)]
        )
        packet = report.packets[0]
        # 5 hops of distance 1, each with 1 unit serialization.
        assert packet.latency == pytest.approx(5 + 5)
        assert packet.propagation == pytest.approx(5.0)
        assert packet.queueing == 0.0

    def test_zero_service_time_is_pure_propagation(self, path_scheme):
        report = TrafficSimulator(path_scheme, service_time=0.0).run(
            [Demand(0, 5)]
        )
        assert report.packets[0].latency == pytest.approx(5.0)

    def test_negative_service_time_rejected(self, path_scheme):
        with pytest.raises(ValueError):
            TrafficSimulator(path_scheme, service_time=-1.0)


class TestQueueing:
    def test_simultaneous_packets_queue_on_shared_link(self, path_scheme):
        # Two packets injected together on the same route: the second
        # waits one service slot at every shared link.
        demands = [Demand(0, 5, 0.0), Demand(0, 5, 0.0)]
        report = TrafficSimulator(path_scheme, service_time=1.0).run(
            demands
        )
        first, second = report.packets
        assert first.queueing == 0.0
        assert second.queueing > 0.0
        assert second.delivered_at > first.delivered_at

    def test_fifo_order_preserved_per_link(self, path_scheme):
        demands = [Demand(0, 5, float(i) * 0.01) for i in range(4)]
        report = TrafficSimulator(path_scheme, service_time=1.0).run(
            demands
        )
        times = [p.delivered_at for p in report.packets]
        assert times == sorted(times)

    def test_opposite_directions_do_not_queue(self, path_scheme):
        # Directed links: 0->5 and 5->0 traffic never shares a queue.
        demands = [Demand(0, 5, 0.0), Demand(5, 0, 0.0)]
        report = TrafficSimulator(path_scheme, service_time=1.0).run(
            demands
        )
        assert all(p.queueing == 0.0 for p in report.packets)

    def test_spaced_packets_do_not_queue(self, path_scheme):
        demands = [Demand(0, 5, 0.0), Demand(0, 5, 100.0)]
        report = TrafficSimulator(path_scheme, service_time=1.0).run(
            demands
        )
        assert all(p.queueing == 0.0 for p in report.packets)


class TestReports:
    def test_busiest_links(self, path_scheme):
        demands = [Demand(0, 5), Demand(0, 3), Demand(1, 4)]
        report = TrafficSimulator(path_scheme).run(demands)
        links = dict(report.busiest_links(top=10))
        assert links[(1, 2)] == 3  # all three packets cross 1->2
        assert links[(4, 5)] == 1

    def test_total_traffic(self, path_scheme):
        report = TrafficSimulator(path_scheme).run(
            [Demand(0, 2), Demand(3, 5)]
        )
        assert report.total_traffic() == pytest.approx(4.0)

    def test_statistics(self, path_scheme):
        report = TrafficSimulator(path_scheme, service_time=0.0).run(
            [Demand(0, 1), Demand(0, 5)]
        )
        assert report.mean_latency() == pytest.approx(3.0)
        assert report.max_latency() == pytest.approx(5.0)

    def test_empty_run_reports_zero_statistics(self, path_scheme):
        report = TrafficSimulator(path_scheme).run([])
        assert report.delivered == 0
        assert report.mean_latency() == 0.0
        assert report.max_latency() == 0.0
        assert report.mean_queueing() == 0.0
        assert report.total_traffic() == 0.0
        assert report.busiest_links() == []


class TestPhysicalExpansion:
    def test_expand_virtual_hops(self, path_scheme):
        metric = path_scheme.metric
        assert expand_to_physical_path(metric, [0, 3, 5]) == [
            0, 1, 2, 3, 4, 5,
        ]
        assert expand_to_physical_path(metric, [2]) == [2]

    def test_load_counted_on_physical_links(self, grid_metric, params):
        # Compact-scheme routes contain virtual hops; link occupancy
        # must be charged to the physical edges realizing them.
        scheme = SimpleNameIndependentScheme(grid_metric, params)
        demands = uniform_demands(grid_metric.n, 40, rate=2.0, seed=3)
        report = TrafficSimulator(scheme, service_time=0.5).run(demands)
        links = report.busiest_links(top=10**9)
        assert links
        for (a, b), occupancy in links:
            assert grid_metric.graph.has_edge(a, b)
            assert occupancy >= 1
        # Every delivered packet's physical path is edge-by-edge real.
        for packet in report.packets:
            for a, b in packet.links:
                assert grid_metric.graph.has_edge(a, b)


class TestWithCompactScheme:
    def test_name_independent_scheme_under_load(self, grid_metric, params):
        scheme = SimpleNameIndependentScheme(grid_metric, params)
        demands = uniform_demands(grid_metric.n, 60, rate=2.0, seed=3)
        report = TrafficSimulator(scheme, service_time=0.5).run(demands)
        assert report.delivered == 60
        # Compact-routing detours inflate traffic versus the oracle.
        oracle = ShortestPathScheme(grid_metric, params)
        oracle_report = TrafficSimulator(oracle, service_time=0.5).run(
            demands
        )
        assert report.total_traffic() >= oracle_report.total_traffic()


class TestUniformDemands:
    def test_deterministic(self):
        assert uniform_demands(10, 5, seed=1) == uniform_demands(
            10, 5, seed=1
        )

    def test_times_increasing(self):
        demands = uniform_demands(10, 20, seed=2)
        times = [d.inject_at for d in demands]
        assert times == sorted(times)

    def test_no_self_demands(self):
        assert all(
            d.source != d.target for d in uniform_demands(5, 50, seed=3)
        )

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            uniform_demands(1, 5)
        with pytest.raises(ValueError):
            uniform_demands(5, 5, rate=0.0)


class TestInjectionOrderTies:
    def test_midflight_packet_wins_tie_against_later_injection(self):
        """Regression: ties must break by *injection* order, as documented.

        Packet A (injected first, 0 -> 2) reaches node 1 at t = 2.0,
        exactly when packet B (injected second at t = 2.0, 1 -> 2)
        appears at node 1.  Both want link (1, 2).  The event queue used
        to order ties by a global push sequence, which hands B — whose
        injection event was pushed before A's mid-flight re-queue — the
        link first.  A was injected first, so A must transmit first.
        """
        scheme = ShortestPathScheme(GraphMetric(path_graph(3)))
        simulator = TrafficSimulator(scheme, service_time=1.0)
        report = simulator.run(
            [Demand(0, 2, inject_at=0.0), Demand(1, 2, inject_at=2.0)]
        )
        first, second = report.packets
        assert first.queueing == pytest.approx(0.0)
        assert second.queueing == pytest.approx(1.0)
        assert first.delivered_at < second.delivered_at

    def test_same_time_injections_serve_lower_index_first(self):
        scheme = ShortestPathScheme(GraphMetric(path_graph(3)))
        simulator = TrafficSimulator(scheme, service_time=1.0)
        report = simulator.run(
            [Demand(0, 2, inject_at=0.0), Demand(0, 2, inject_at=0.0)]
        )
        first, second = report.packets
        assert first.queueing == pytest.approx(0.0)
        assert second.queueing >= 1.0
