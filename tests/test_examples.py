"""Execute every example script end-to-end (guards the documented API).

Marked ``slow``: deselect with ``pytest -m 'not slow'`` for quick runs.
"""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.slow
@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs_clean(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_directory_nonempty():
    assert len(EXAMPLES) >= 7
