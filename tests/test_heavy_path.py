"""Tests for heavy-path tree routing (the FG-flavored Lemma 4.1 router)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import RouteFailure
from repro.graphs.generators import balanced_tree, path_graph, star_graph
from repro.metric.graph_metric import GraphMetric
from repro.trees.heavy_path import HeavyPathRouter
from repro.trees.spt import ShortestPathTree
from repro.trees.tree_router import TreeRouter

from tests.test_rnet import random_connected_graph


def _router(metric, root=0):
    tree = ShortestPathTree(metric, root, list(metric.nodes))
    return HeavyPathRouter(tree)


class TestLabels:
    def test_root_label_trivial(self, grid_metric):
        router = _router(grid_metric)
        assert router.label(0) == ((0, -1),)

    def test_labels_unique(self, grid_metric):
        router = _router(grid_metric)
        labels = {router.label(v) for v in grid_metric.nodes}
        assert len(labels) == grid_metric.n

    def test_light_depth_logarithmic(self, any_metric):
        """At most log2(n) light edges on any root-to-node path."""
        router = _router(any_metric)
        bound = math.floor(math.log2(any_metric.n)) if any_metric.n > 1 else 0
        for v in any_metric.nodes:
            assert router.light_depth(v) <= bound

    def test_path_label_single_entry(self):
        # A path rooted at an end is one heavy path: every label is
        # ((depth, -1),).
        metric = GraphMetric(path_graph(10))
        router = _router(metric, root=0)
        for v in metric.nodes:
            assert router.label(v) == ((v, -1),)

    def test_node_with_label_inverts(self, grid_metric):
        router = _router(grid_metric)
        for v in (0, 9, 35):
            assert router.node_with_label(router.label(v)) == v

    def test_label_of_nonmember_rejected(self, grid_metric):
        tree = ShortestPathTree(grid_metric, 0, [0, 1])
        router = HeavyPathRouter(tree)
        with pytest.raises(KeyError):
            router.label(35)


class TestRouting:
    def test_routes_reach_target(self, any_metric):
        router = _router(any_metric)
        for u in range(0, any_metric.n, 4):
            for v in range(0, any_metric.n, 5):
                path = router.route(u, router.label(v))
                assert path[0] == u and path[-1] == v

    def test_route_cost_is_tree_distance(self, grid_metric):
        router = _router(grid_metric)
        tree = router.tree
        for u, v in [(0, 35), (7, 8), (12, 12), (30, 1), (35, 0)]:
            cost = router.route_cost(u, router.label(v))
            assert cost == pytest.approx(tree.tree_distance(u, v))

    def test_optimal_on_star(self):
        metric = GraphMetric(star_graph(14))
        assert _router(metric).verify_optimal()

    def test_optimal_on_balanced_tree(self):
        metric = GraphMetric(balanced_tree(3, 2))
        assert _router(metric).verify_optimal()

    def test_bad_source_rejected(self, grid_metric):
        tree = ShortestPathTree(grid_metric, 0, [0, 1])
        router = HeavyPathRouter(tree)
        with pytest.raises(RouteFailure):
            router.route(35, router.label(0))

    @given(graph=random_connected_graph(), root=st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_optimal_on_random_trees(self, graph, root):
        metric = GraphMetric(graph)
        root = root % metric.n
        tree = ShortestPathTree(metric, root, list(metric.nodes))
        router = HeavyPathRouter(tree)
        for u in metric.nodes:
            for v in metric.nodes:
                cost = router.route_cost(u, router.label(v))
                assert cost == pytest.approx(
                    tree.tree_distance(u, v), rel=1e-9, abs=1e-9
                )


class TestStorageVsIntervalRouter:
    def test_storage_degree_independent(self):
        """On a star, the interval router pays Theta(n log n) at the
        center; the heavy-path router stays polylog."""
        metric = GraphMetric(star_graph(33))
        tree = ShortestPathTree(metric, 0, list(metric.nodes))
        interval = TreeRouter(tree)
        heavy = HeavyPathRouter(tree)
        assert heavy.storage_bits(0) < interval.storage_bits(0) / 4

    def test_label_bits_polylog(self, any_metric):
        router = _router(any_metric)
        n = any_metric.n
        bound = (math.floor(math.log2(n)) + 1) * (
            2 * (math.ceil(math.log2(max(2, n))) + 1)
        )
        assert router.max_label_bits() <= bound

    def test_same_paths_as_interval_router(self, grid_metric):
        """Both routers walk the same (unique) tree path."""
        tree = ShortestPathTree(grid_metric, 0, list(grid_metric.nodes))
        interval = TreeRouter(tree)
        heavy = HeavyPathRouter(tree)
        for u, v in [(0, 35), (17, 4), (8, 31)]:
            a = interval.route(u, interval.label(v))
            b = heavy.route(u, heavy.label(v))
            assert a == b

    def test_subtree_sizes_consistent(self, grid_metric):
        router = _router(grid_metric)
        assert router._subtree_size[0] == grid_metric.n

    def test_heavy_child_is_largest(self, grid_metric):
        router = _router(grid_metric)
        tree = router.tree
        for v in tree.nodes:
            kids = tree.children_of(v)
            heavy = router._heavy_child[v]
            if not kids:
                assert heavy is None
                continue
            assert router._subtree_size[heavy] == max(
                router._subtree_size[c] for c in kids
            )
