"""Unit tests for core types and scheme parameters."""

import math

import pytest

from repro.core.params import SchemeParameters
from repro.core.types import RouteFailure, RouteResult


class TestRouteResult:
    def _make(self, **kwargs):
        defaults = dict(
            source=0, target=2, path=[0, 1, 2], cost=2.0, optimal=2.0
        )
        defaults.update(kwargs)
        return RouteResult(**defaults)

    def test_stretch_is_ratio(self):
        assert self._make(cost=3.0).stretch == pytest.approx(1.5)

    def test_self_route_stretch_is_one(self):
        result = RouteResult(
            source=0, target=0, path=[0], cost=0.0, optimal=0.0
        )
        assert result.stretch == 1.0

    def test_hops(self):
        assert self._make().hops == 2

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            RouteResult(source=0, target=0, path=[], cost=0, optimal=0)

    def test_path_must_start_at_source(self):
        with pytest.raises(ValueError):
            self._make(path=[1, 2])

    def test_path_must_reach_target(self):
        with pytest.raises(RouteFailure):
            self._make(path=[0, 1])

    def test_legs_optional(self):
        result = self._make(legs={"zoom": 1.0, "final": 1.0})
        assert sum(result.legs.values()) == pytest.approx(2.0)


class TestSchemeParameters:
    def test_default_epsilon(self):
        assert SchemeParameters().epsilon == 0.5

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_epsilon_out_of_range_rejected(self, bad):
        with pytest.raises(ValueError):
            SchemeParameters(epsilon=bad)

    def test_ring_radius_factor(self):
        assert SchemeParameters(epsilon=0.25).ring_radius_factor == 4.0

    def test_frozen(self):
        params = SchemeParameters()
        with pytest.raises(Exception):
            params.epsilon = 0.1

    def test_tie_break_flag_must_stay_true(self):
        with pytest.raises(ValueError):
            SchemeParameters(tie_break_by_id=False)

    @pytest.mark.parametrize(
        "epsilon,radius,expected",
        [
            (0.5, 16.0, 3),       # floor(log2(8)) = 3
            (0.5, 3.0, 0),        # eps*r < 2 -> flat tree
            (0.25, 1024.0, 8),    # floor(log2(256)) = 8
        ],
    )
    def test_search_tree_levels(self, epsilon, radius, expected):
        params = SchemeParameters(epsilon=epsilon)
        assert params.search_tree_levels(radius) == expected

    def test_search_tree_levels_matches_formula(self):
        params = SchemeParameters(epsilon=0.5)
        radius = 100.0
        assert params.search_tree_levels(radius) == int(
            math.floor(math.log2(0.5 * radius))
        )
