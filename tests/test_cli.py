"""Tests for the command-line interface."""

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for name in COMMANDS:
            assert name in text

    def test_epsilon_parsed(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--epsilon", "0.25"])
        assert args.epsilon == 0.25

    def test_report_has_output_option(self):
        parser = build_parser()
        args = parser.parse_args(["report", "--output", "x.md"])
        assert args.output == "x.md"

    def test_chaos_registered_with_loss_flag(self):
        parser = build_parser()
        args = parser.parse_args(["chaos", "--loss", "0.1", "--pairs", "5"])
        assert args.loss == 0.1
        # Default is None: the experiment runs its standard sweep.
        assert parser.parse_args(["chaos"]).loss is None


class TestMain:
    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "table1" in out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        assert "scalefree" in capsys.readouterr().out

    def test_table1_runs(self, capsys):
        assert main(["table1", "--pairs", "20"]) == 0
        out = capsys.readouterr().out
        assert "Table 1 (measured)" in out
        assert "Theorem 1.1" in out

    def test_structures_runs(self, capsys):
        assert main(["structures", "--pairs", "10"]) == 0
        assert "Substrate audit" in capsys.readouterr().out

    def test_storage_audit_runs(self, capsys):
        assert main(["storage-audit", "--pairs", "10"]) == 0
        assert "Storage audit" in capsys.readouterr().out

    def test_relaxed_runs(self, capsys):
        assert main(["relaxed", "--pairs", "20"]) == 0
        assert "Relaxed guarantees" in capsys.readouterr().out

    def test_congestion_runs(self, capsys):
        assert main(["congestion", "--pairs", "30"]) == 0
        assert "Congestion" in capsys.readouterr().out

    def test_related_work_runs(self, capsys):
        assert main(["related-work", "--pairs", "20"]) == 0
        assert "Related work" in capsys.readouterr().out

    def test_fig1_runs(self, capsys):
        assert main(["fig1", "--pairs", "20"]) == 0
        assert "route anatomy" in capsys.readouterr().out

    def test_scalefree_runs(self, capsys):
        assert main(["scalefree", "--pairs", "10"]) == 0
        assert "Scale-free ablation" in capsys.readouterr().out

    def test_storage_scaling_runs(self, capsys):
        assert main(["storage-scaling", "--pairs", "10"]) == 0
        assert "Storage scaling" in capsys.readouterr().out

    def test_report_writes_file(self, tmp_path, capsys):
        target = tmp_path / "EXP.md"
        assert main(
            ["report", "--pairs", "20", "--output", str(target)]
        ) == 0
        content = target.read_text()
        assert "E1 — Table 1" in content
        assert "E10" in content
