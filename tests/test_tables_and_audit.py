"""Tests for table serialization and per-category storage breakdowns."""

import pytest

from repro.experiments import storage_audit
from repro.graphs.generators import grid_2d
from repro.runtime.stepwise import StepwiseLabeledRouter
from repro.runtime.tables import (
    TableLayout,
    deserialize_local_node,
    framing_overhead_bits,
    serialize_local_node,
)
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme


@pytest.fixture(scope="module")
def extracted(grid_metric, params):
    scheme = NonScaleFreeLabeledScheme(grid_metric, params)
    router = StepwiseLabeledRouter.extract(scheme)
    layout = TableLayout(
        grid_metric.n, scheme.hierarchy.top_level + 1
    )
    return scheme, router, layout


class TestSerialization:
    def test_round_trip_every_node(self, extracted, grid_metric):
        _, router, layout = extracted
        for u in grid_metric.nodes:
            node = router.local_node(u)
            data, bits = serialize_local_node(node, layout)
            restored = deserialize_local_node(data, bits, layout)
            assert restored == node

    def test_deserialized_nodes_route_identically(
        self, extracted, grid_metric
    ):
        scheme, router, layout = extracted
        # Rebuild the whole router from serialized blobs only.
        from repro.runtime.stepwise import StepwiseLabeledRouter as SLR

        blobs = {
            u: serialize_local_node(router.local_node(u), layout)
            for u in grid_metric.nodes
        }
        rebuilt_nodes = {
            u: deserialize_local_node(data, bits, layout)
            for u, (data, bits) in blobs.items()
        }
        rebuilt = SLR(
            rebuilt_nodes,
            scheme.header_codec(),
            {u: scheme.routing_label(u) for u in grid_metric.nodes},
        )
        for u, v in [(0, 35), (17, 2), (30, 31)]:
            assert rebuilt.route_to_node(u, v) == scheme.route(u, v).path

    def test_serialized_size_tracks_accounting(self, extracted, grid_metric):
        """Real bytes = accounted bits + measured framing overhead."""
        scheme, router, layout = extracted
        for u in (0, 17, 35):
            node = router.local_node(u)
            _, bits = serialize_local_node(node, layout)
            overhead = framing_overhead_bits(node, layout)
            accounted = scheme.table_bits(u) + layout.id_bits  # own label
            assert bits <= accounted + overhead
            assert bits >= accounted * 0.5  # same order of magnitude

    def test_bad_layout_rejected(self):
        with pytest.raises(ValueError):
            TableLayout(0, 3)


class TestBreakdowns:
    @pytest.mark.parametrize(
        "scheme_cls",
        [
            NonScaleFreeLabeledScheme,
            ScaleFreeLabeledScheme,
            SimpleNameIndependentScheme,
            ScaleFreeNameIndependentScheme,
        ],
    )
    def test_breakdown_sums_to_table_bits(
        self, scheme_cls, grid_metric, params
    ):
        scheme = scheme_cls(grid_metric, params)
        for v in range(0, grid_metric.n, 5):
            ledger = scheme.table_breakdown(v)
            assert ledger.total() == scheme.table_bits(v)

    def test_nameind_breakdown_has_expected_categories(
        self, nameind_sf, grid_metric
    ):
        categories = set(
            nameind_sf.table_breakdown(0).breakdown()
        )
        assert "netting-tree parent label" in categories
        assert "name search trees" in categories

    def test_breakdown_nonnegative(self, nameind_sf, grid_metric):
        for v in grid_metric.nodes:
            for bits in nameind_sf.table_breakdown(v).breakdown().values():
                assert bits >= 0


class TestStorageAuditExperiment:
    def test_shares_sum_to_one(self):
        result = storage_audit.run(
            suite=[("grid 5x5", grid_2d(5))]
        )
        row = result.rows[0]
        shares = row[2:]
        assert sum(shares) == pytest.approx(1.0, abs=0.01)

    def test_avg_bits_positive(self):
        result = storage_audit.run(suite=[("grid 5x5", grid_2d(5))])
        assert result.rows[0][1] > 0
