"""Tests for the locality-aware object directory."""

import pytest

from repro.core.params import SchemeParameters
from repro.core.types import PreprocessingError, RouteFailure
from repro.directory.object_directory import ObjectDirectory
from repro.graphs.generators import grid_2d
from repro.metric.graph_metric import GraphMetric

PARAMS = SchemeParameters(epsilon=0.25)


@pytest.fixture()
def directory():
    return ObjectDirectory(GraphMetric(grid_2d(5)), PARAMS)


class TestPublish:
    def test_publish_records_holder(self, directory):
        directory.publish("obj", 7)
        assert directory.holders("obj") == {7}

    def test_multiple_holders(self, directory):
        directory.publish("obj", 3)
        directory.publish("obj", 21)
        assert directory.holders("obj") == {3, 21}

    def test_registration_count_polylog(self, directory):
        directory.publish("obj", 12)
        count = directory.registration_count("obj")
        levels = directory._hierarchy.top_level + 1
        # (1/eps)^O(alpha) registrations per level, NOT one per node:
        # far below n entries per level.
        assert 0 < count <= 16 * levels
        assert count < directory._metric.n * levels / 2

    def test_publish_bad_holder_rejected(self, directory):
        with pytest.raises(PreprocessingError):
            directory.publish("obj", 999)

    def test_unpublish_removes(self, directory):
        directory.publish("obj", 7)
        directory.unpublish("obj", 7)
        assert directory.holders("obj") == set()
        assert directory.registration_count("obj") == 0

    def test_unpublish_keeps_other_copies(self, directory):
        directory.publish("obj", 7)
        directory.publish("obj", 21)
        directory.unpublish("obj", 7)
        assert directory.holders("obj") == {21}
        result = directory.lookup(0, "obj")
        assert result.holder == 21


class TestLookup:
    def test_unpublished_lookup_raises(self, directory):
        with pytest.raises(RouteFailure):
            directory.lookup(0, "ghost")

    def test_lookup_finds_single_copy(self, directory):
        directory.publish("obj", 24)
        for origin in (0, 7, 12, 24):
            result = directory.lookup(origin, "obj")
            assert result.holder == 24

    def test_lookup_path_starts_at_origin(self, directory):
        directory.publish("obj", 24)
        result = directory.lookup(3, "obj")
        assert result.path[0] == 3
        assert result.path[-1] == 24

    def test_single_copy_locality_meets_lemma_3_4(self, directory):
        """One copy: the paper's 9 + O(eps) bound applies verbatim."""
        directory.publish("obj", 24)
        inv = 1.0 / PARAMS.epsilon
        bound = 1.0 + 8.0 * (inv + 1.0) / (inv - 2.0)
        for origin in directory._metric.nodes:
            if origin == 24:
                continue
            result = directory.lookup(origin, "obj")
            assert result.locality_ratio <= bound * 1.05

    def test_replicated_copies_locality(self, directory):
        """Many copies: cost stays within the directory's envelope of
        the distance to the NEAREST copy."""
        for holder in (0, 4, 20, 24, 12):
            directory.publish("obj", holder)
        bound = directory.locality_guarantee()
        for origin in directory._metric.nodes:
            result = directory.lookup(origin, "obj")
            if result.nearest_copy_distance > 0:
                assert result.locality_ratio <= bound * 1.05

    def test_replication_reduces_cost(self, directory):
        directory.publish("obj", 24)
        single = directory.lookup(0, "obj").cost
        directory.publish("obj", 1)
        replicated = directory.lookup(0, "obj").cost
        assert replicated <= single + 1e-9

    def test_lookup_from_holder_is_free_ish(self, directory):
        directory.publish("obj", 6)
        result = directory.lookup(6, "obj")
        assert result.holder == 6
        # Only the local level-0 search tree is consulted.
        assert result.cost <= 2 * (1 + PARAMS.epsilon) / PARAMS.epsilon

    def test_mobile_object(self, directory):
        directory.publish("obj", 0)
        assert directory.lookup(20, "obj").holder == 0
        directory.unpublish("obj", 0)
        directory.publish("obj", 24)
        assert directory.lookup(20, "obj").holder == 24

    def test_distinct_objects_do_not_interfere(self, directory):
        directory.publish("a", 0)
        directory.publish("b", 24)
        assert directory.lookup(12, "a").holder == 0
        assert directory.lookup(12, "b").holder == 24


class TestDirectoryProperties:
    def test_random_publish_lookup_rounds(self):
        """Randomized churn: publish/unpublish/lookup cycles keep every
        lookup correct and within the locality envelope."""
        import random

        metric = GraphMetric(grid_2d(5))
        directory = ObjectDirectory(metric, PARAMS)
        rng = random.Random(7)
        live = {}
        for step in range(60):
            action = rng.random()
            obj = f"obj-{rng.randrange(4)}"
            if action < 0.45:
                holder = rng.randrange(metric.n)
                directory.publish(obj, holder)
                live.setdefault(obj, set()).add(holder)
            elif action < 0.6 and live.get(obj):
                holder = rng.choice(sorted(live[obj]))
                directory.unpublish(obj, holder)
                live[obj].discard(holder)
                if not live[obj]:
                    del live[obj]
            elif live.get(obj):
                origin = rng.randrange(metric.n)
                result = directory.lookup(origin, obj)
                assert result.holder in live[obj]
                if result.nearest_copy_distance > 0:
                    assert result.locality_ratio <= (
                        directory.locality_guarantee() * 1.05
                    )
        # Final consistency: directory's holder sets match our model.
        for obj, holders in live.items():
            assert directory.holders(obj) == holders
