"""Tests for the compiled batch routing engine (PR 9, E20 substrate).

The anchor property: for every scheme with a compiled lowering, the
batch engine's output is **bit-identical** to the interpreted
``route()`` — same path, same cost (exact float equality, not
approximate), same legs breakdown, same header bits, same delivered
node — and agrees with RouteTrace replay.  Also covers: a degraded
overlay rebuild, sharded == single-process, the determinism contract
(injection-index ordering), and BuildContext caching of compiled
artifacts.
"""

import dataclasses
import gc
import os
import random
import time

import pytest

import numpy as np

from repro.engine import (
    BatchRouter,
    EngineError,
    EngineUnsupported,
    ShardedRouter,
    compile_scheme,
)
from repro.metric.graph_metric import GraphMetric
from repro.observability.trace import replay
from repro.pipeline.context import BuildContext
from repro.resilience import EventKind, FailureEvent
from repro.resilience.degraded import DegradedNetwork
from repro.resilience.repair import surviving_graph
from repro.schemes.base import RoutingScheme
from repro.schemes.cowen_landmark import CowenLandmarkScheme
from repro.schemes.landmark_nameind import LandmarkNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme


def _all_pairs(metric, limit=None, seed=0):
    nodes = list(metric.nodes)
    pairs = [(s, t) for s in nodes for t in nodes]
    if limit is not None and len(pairs) > limit:
        pairs = random.Random(seed).sample(pairs, limit)
    return pairs


def assert_bit_identical(scheme, pairs, metric=None, record_paths=True):
    """Compiled results must equal interpreted route() bit for bit."""
    metric = metric if metric is not None else scheme.metric
    router = BatchRouter(scheme.compile_tables(), metric=metric)
    sources = [s for s, _ in pairs]
    targets = [t for _, t in pairs]
    compiled = router.route_batch(sources, targets, record_paths=record_paths)
    for (s, t), got in zip(pairs, compiled):
        want = scheme.route(s, t)
        assert got.target == want.target, (s, t)
        assert got.cost == want.cost, (s, t, got.cost, want.cost)
        assert got.legs == want.legs, (s, t, got.legs, want.legs)
        assert got.header_bits == want.header_bits
        if record_paths:
            assert got.path == want.path, (s, t)
    return router


# ----------------------------------------------------------------------
# Bit-identity: every scheme x fixture
# ----------------------------------------------------------------------


class TestBitIdentity:
    def test_shortest_path_all_fixtures(self, any_metric):
        scheme = ShortestPathScheme(any_metric)
        assert_bit_identical(scheme, _all_pairs(any_metric, limit=600))

    def test_cowen(self, grid_metric, params):
        scheme = CowenLandmarkScheme(grid_metric, params)
        assert_bit_identical(scheme, _all_pairs(grid_metric))

    def test_cowen_geometric(self, geometric_metric, params):
        scheme = CowenLandmarkScheme(geometric_metric, params)
        assert_bit_identical(
            scheme, _all_pairs(geometric_metric, limit=600)
        )

    def test_labeled_nonsf(self, labeled_nonsf):
        assert_bit_identical(labeled_nonsf, _all_pairs(labeled_nonsf.metric))

    def test_labeled_sf(self, labeled_sf):
        assert_bit_identical(labeled_sf, _all_pairs(labeled_sf.metric))

    def test_nameind_simple(self, nameind_simple):
        assert_bit_identical(
            nameind_simple, _all_pairs(nameind_simple.metric)
        )

    def test_nameind_sf(self, nameind_sf):
        assert_bit_identical(nameind_sf, _all_pairs(nameind_sf.metric))

    def test_landmark(self, grid_metric, params):
        scheme = LandmarkNameIndependentScheme(grid_metric, params)
        assert_bit_identical(scheme, _all_pairs(grid_metric))

    def test_landmark_geometric(self, geometric_metric, params):
        scheme = LandmarkNameIndependentScheme(geometric_metric, params)
        assert_bit_identical(
            scheme, _all_pairs(geometric_metric, limit=600)
        )

    def test_landmark_nontrivial_naming(self, grid_metric, params):
        n = grid_metric.n
        naming = [(v * 7 + 3) % n for v in range(n)]
        scheme = LandmarkNameIndependentScheme(
            grid_metric, params, naming=naming
        )
        assert_bit_identical(scheme, _all_pairs(grid_metric))

    def test_weighted_metric(self, exponential_metric, params):
        scheme = ShortestPathScheme(exponential_metric)
        assert_bit_identical(scheme, _all_pairs(exponential_metric))
        landmark = LandmarkNameIndependentScheme(exponential_metric, params)
        assert_bit_identical(landmark, _all_pairs(exponential_metric))


class TestTraceReplay:
    """Compiled hop sequences must agree with RouteTrace replay."""

    def test_replay_agreement(self, labeled_sf, nameind_simple, params):
        grid = labeled_sf.metric
        schemes = [
            ShortestPathScheme(grid),
            labeled_sf,
            nameind_simple,
            LandmarkNameIndependentScheme(grid, params),
        ]
        pairs = _all_pairs(grid, limit=80, seed=4)
        for scheme in schemes:
            router = BatchRouter(scheme.compile_tables(), metric=grid)
            for s, t in pairs:
                want, trace = scheme.trace_route(s, t)
                got = router.route(s, t)
                rep = replay(trace)
                assert rep.matches(want.path, want.cost)
                assert got.path == rep.path
                assert got.cost == want.cost


class TestDegradedOverlay:
    """A scheme rebuilt on the surviving subgraph compiles bit-identical."""

    def test_degraded_rebuild(self, grid_metric, params):
        degraded = DegradedNetwork(grid_metric)
        for u, v in ((0, 1), (7, 8), (14, 20)):
            degraded.apply(
                FailureEvent(0.0, EventKind.LINK_DOWN, edge=(u, v))
            )
        metric = GraphMetric(surviving_graph(degraded))
        for scheme in (
            ShortestPathScheme(metric),
            LandmarkNameIndependentScheme(metric, params),
        ):
            assert_bit_identical(scheme, _all_pairs(metric), metric=metric)


# ----------------------------------------------------------------------
# Sharded serving mode
# ----------------------------------------------------------------------


def _assert_sharded_equal(single, multi):
    np.testing.assert_array_equal(single["target"], multi["target"])
    np.testing.assert_array_equal(single["cost"], multi["cost"])
    if single["legs"] is None:
        assert multi["legs"] is None
    else:
        np.testing.assert_array_equal(single["legs"], multi["legs"])
    assert ("zerohop" in single) == ("zerohop" in multi)
    if "zerohop" in single:
        np.testing.assert_array_equal(single["zerohop"], multi["zerohop"])


class TestShardedRouter:
    def _compare(self, tables, pairs, shards):
        sources = [s for s, _ in pairs]
        targets = [t for _, t in pairs]
        single = BatchRouter(tables).route_arrays(sources, targets)
        with ShardedRouter(tables, shards=shards) as sharded:
            multi = sharded.route_arrays(sources, targets)
        _assert_sharded_equal(single, multi)

    def test_sharded_matches_single_process(self, grid_metric, params):
        scheme = LandmarkNameIndependentScheme(grid_metric, params)
        pairs = _all_pairs(grid_metric, limit=200, seed=2)
        self._compare(scheme.compile_tables(), pairs, shards=2)

    def test_sharded_doubling_scheme(self, nameind_simple):
        pairs = _all_pairs(nameind_simple.metric, limit=120, seed=5)
        self._compare(nameind_simple.compile_tables(), pairs, shards=3)

    def test_single_shard_fallback(self, grid_metric):
        tables = ShortestPathScheme(grid_metric).compile_tables()
        pairs = _all_pairs(grid_metric, limit=60, seed=6)
        self._compare(tables, pairs, shards=1)

    def test_rejects_bad_shard_count(self, grid_metric):
        tables = ShortestPathScheme(grid_metric).compile_tables()
        with pytest.raises(ValueError):
            ShardedRouter(tables, shards=0)


# ----------------------------------------------------------------------
# Partition slicing (tentpole: CompiledTables.slice_partition)
# ----------------------------------------------------------------------


class TestPartitionSlicing:
    def test_owned_rows_match_full_tables(self, nameind_simple):
        """A slice answers owned-node row lookups exactly like the full
        tables: PartitionRows remaps ``[node]`` to the compacted row."""
        tables = nameind_simple.compile_tables()
        for shards in (2, 3):
            for shard in range(shards):
                sl = tables.slice_partition(shard, shards)
                assert sl.partition == (shard, shards)
                for name in ("NH", "D"):
                    assert name in sl.sliced
                    for node in range(shard, tables.n, shards):
                        np.testing.assert_array_equal(
                            sl.arrays[name][node],
                            tables.arrays[name][node],
                        )

    def test_slices_shrink_resident_bytes(self, nameind_simple):
        tables = nameind_simple.compile_tables()
        for shards in (2, 4):
            for shard in range(shards):
                sl = tables.slice_partition(shard, shards)
                assert sl.nbytes() < tables.nbytes()
                assert (
                    sl.shared_bytes() + sl.sliced_bytes() == sl.nbytes()
                )

    def test_csr_slices_partition_the_key_space(self, grid_metric, params):
        tables = LandmarkNameIndependentScheme(
            grid_metric, params
        ).compile_tables()
        shards = 3
        slices = [
            tables.slice_partition(shard, shards)
            for shard in range(shards)
        ]
        parts = []
        for sl in slices:
            keys = sl.arrays["VIC_KEY"]
            keys = keys[keys >= 0]
            assert (
                (keys // tables.n) % shards == sl.partition[0]
            ).all()
            parts.append(keys)
        rebuilt = np.sort(np.concatenate(parts))
        full = tables.arrays["VIC_KEY"]
        np.testing.assert_array_equal(rebuilt, full[full >= 0])

    def test_landmark_exposes_full_membership_keys(
        self, grid_metric, params
    ):
        """The post-hop shortcut-break membership re-check can land on a
        foreign node, so the slice carries the full key array (shared),
        while the payload columns stay sliced."""
        tables = LandmarkNameIndependentScheme(
            grid_metric, params
        ).compile_tables()
        sl = tables.slice_partition(1, 2)
        assert sl.arrays["VIC_MEMBER_KEY"] is tables.arrays["VIC_KEY"]
        assert "VIC_MEMBER_KEY" not in sl.sliced
        assert "VIC_TGT" in sl.sliced

    def test_identity_slice_and_errors(self, grid_metric):
        tables = ShortestPathScheme(grid_metric).compile_tables()
        ident = tables.slice_partition(0, 1)
        assert ident.partition == (0, 1)
        assert ident.sliced == ()
        with pytest.raises(ValueError):
            tables.slice_partition(2, 2)
        with pytest.raises(ValueError):
            tables.slice_partition(0, 0)
        with pytest.raises(ValueError):
            ident.slice_partition(0, 2)

    def test_router_reports_per_worker_below_replication(
        self, grid_metric, params
    ):
        tables = LandmarkNameIndependentScheme(
            grid_metric, params
        ).compile_tables()
        with ShardedRouter(tables, shards=2) as router:
            resident = router.partition_bytes()
        assert resident["replicated"] == tables.nbytes()
        assert len(resident["per_worker"]) == 2
        for per_worker in resident["per_worker"]:
            assert per_worker < resident["replicated"]


# ----------------------------------------------------------------------
# Multi-router isolation (satellite 1: the aliasing bugfix)
# ----------------------------------------------------------------------


class TestMultiRouterIsolation:
    def test_second_router_does_not_alias_first(
        self, grid_metric, geometric_metric, params
    ):
        """Regression for the shards=1 aliasing bug: the serial fallback
        used to install its tables in module globals shared by every
        router in the process, so constructing a *second* router
        clobbered the first router's tables mid-flight.  Routers must
        answer from their own ``self.tables`` regardless of what other
        routers exist."""
        t_landmark = LandmarkNameIndependentScheme(
            grid_metric, params
        ).compile_tables()
        t_shortest = ShortestPathScheme(geometric_metric).compile_tables()
        pairs = _all_pairs(grid_metric, limit=80, seed=11)
        sources = [s for s, _ in pairs]
        targets = [t for _, t in pairs]
        want = BatchRouter(t_landmark).route_arrays(sources, targets)
        first = ShardedRouter(t_landmark, shards=1)
        second = ShardedRouter(t_shortest, shards=1)
        try:
            got = first.route_arrays(sources, targets)
        finally:
            second.close()
            first.close()
        _assert_sharded_equal(want, got)

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_interleaved_routers_stay_bit_identical(
        self, shards, grid_metric, geometric_metric, params
    ):
        """Two live routers over different schemes and fixtures, served
        in alternating batches: every batch must stay bit-identical to
        its own BatchRouter, for serial and sharded modes alike."""
        tables = [
            LandmarkNameIndependentScheme(
                grid_metric, params
            ).compile_tables(),
            ShortestPathScheme(geometric_metric).compile_tables(),
        ]
        references = [BatchRouter(t) for t in tables]
        routers = [ShardedRouter(t, shards=shards) for t in tables]
        rng = random.Random(17)
        try:
            for _ in range(3):
                for router, reference, t in zip(
                    routers, references, tables
                ):
                    sources = [
                        rng.randrange(t.n) for _ in range(40)
                    ]
                    targets = [
                        rng.randrange(t.n) for _ in range(40)
                    ]
                    want = reference.route_arrays(sources, targets)
                    got = router.route_arrays(sources, targets)
                    _assert_sharded_equal(want, got)
        finally:
            for router in routers:
                router.close()


# ----------------------------------------------------------------------
# Worker-pool lifecycle (satellite 2: no stranded workers)
# ----------------------------------------------------------------------


def _assert_workers_dead(pids, timeout=5.0):
    deadline = time.monotonic() + timeout
    alive = list(pids)
    while alive and time.monotonic() < deadline:
        remaining = []
        for pid in alive:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            remaining.append(pid)
        alive = remaining
        if alive:
            time.sleep(0.05)
    assert not alive, f"shard workers still alive: {alive}"


class TestPoolLifecycle:
    def _capped(self, tables, max_sweeps):
        return dataclasses.replace(
            tables,
            scalars={**tables.scalars, "max_sweeps": max_sweeps},
        )

    def test_raising_route_does_not_strand_workers(self, grid_metric):
        """A worker-side EngineError (sweep cap exceeded mid-round) must
        leave the pool serving and the register segment unlinked; close
        must still reap every worker."""
        tables = self._capped(
            ShortestPathScheme(grid_metric).compile_tables(), 1
        )
        router = ShardedRouter(tables, shards=2)
        try:
            pids = router.worker_pids()
            assert len(pids) == 2
            shm_before = set(os.listdir("/dev/shm"))
            with pytest.raises(EngineError):
                # 0 -> 30 walks column 0 of the 6x6 grid: every hop
                # stays on shard 0, so that worker exceeds the cap.
                router.route_arrays([0], [30])
            assert set(os.listdir("/dev/shm")) == shm_before
            out = router.route_arrays([5], [5])
            assert out["target"][0] == 5
        finally:
            router.close()
        _assert_workers_dead(pids)

    def test_driver_raise_unlinks_register_segment(self, grid_metric):
        tables = self._capped(
            ShortestPathScheme(grid_metric).compile_tables(), 0
        )
        router = ShardedRouter(tables, shards=2)
        try:
            shm_before = set(os.listdir("/dev/shm"))
            with pytest.raises(EngineError):
                router.route_arrays([0, 1], [7, 8])
            assert set(os.listdir("/dev/shm")) == shm_before
        finally:
            router.close()

    def test_finalizer_reaps_dropped_router(self, grid_metric):
        tables = ShortestPathScheme(grid_metric).compile_tables()
        router = ShardedRouter(tables, shards=2)
        router.route_arrays([0, 1], [7, 8])
        pids = router.worker_pids()
        names = [seg.name for seg in router._segments]
        assert pids and names
        del router
        gc.collect()
        _assert_workers_dead(pids)
        for name in names:
            assert not os.path.exists(os.path.join("/dev/shm", name))

    def test_close_is_idempotent(self, grid_metric):
        tables = ShortestPathScheme(grid_metric).compile_tables()
        router = ShardedRouter(tables, shards=2)
        pids = router.worker_pids()
        router.close()
        router.close()
        _assert_workers_dead(pids)


# ----------------------------------------------------------------------
# Input contract (satellite 3: validation shared with BatchRouter)
# ----------------------------------------------------------------------


class TestInputContract:
    @pytest.mark.parametrize("mode", ["batch", "sharded1", "sharded2"])
    def test_rejects_bad_inputs(self, grid_metric, mode):
        """Both routers reject malformed batches with the same errors,
        before any worker round runs."""
        tables = ShortestPathScheme(grid_metric).compile_tables()
        n = tables.n
        if mode == "batch":
            router = BatchRouter(tables)
        else:
            router = ShardedRouter(tables, shards=int(mode[-1]))
        try:
            with pytest.raises(ValueError, match="equal-length"):
                router.route_arrays([0, 1], [2])
            for bad_sources, bad_targets in (
                ([-1], [0]),
                ([0], [n]),
                ([n], [0]),
                ([0, 1], [1, -5]),
            ):
                with pytest.raises(
                    ValueError, match="node id out of range"
                ):
                    router.route_arrays(bad_sources, bad_targets)
        finally:
            if isinstance(router, ShardedRouter):
                router.close()


# ----------------------------------------------------------------------
# Determinism contract (satellite 2 regression)
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_injection_index_order(self, grid_metric, params):
        """Results come back in injection-index order: shuffling the
        batch permutes outputs identically — per-pair results do not
        depend on batch composition or position."""
        scheme = LandmarkNameIndependentScheme(grid_metric, params)
        router = BatchRouter(scheme.compile_tables(), metric=grid_metric)
        pairs = _all_pairs(grid_metric, limit=150, seed=7)
        base = router.route_batch(
            [s for s, _ in pairs], [t for _, t in pairs]
        )
        perm = list(range(len(pairs)))
        random.Random(13).shuffle(perm)
        shuffled = router.route_batch(
            [pairs[i][0] for i in perm], [pairs[i][1] for i in perm]
        )
        for slot, i in enumerate(perm):
            assert shuffled[slot] == base[i]

    def test_batch_equals_singleton(self, labeled_sf):
        router = BatchRouter(
            labeled_sf.compile_tables(), metric=labeled_sf.metric
        )
        pairs = _all_pairs(labeled_sf.metric, limit=40, seed=8)
        batch = router.route_batch(
            [s for s, _ in pairs], [t for _, t in pairs]
        )
        for (s, t), got in zip(pairs, batch):
            assert router.route(s, t) == got

    def test_repeated_runs_stable(self, grid_metric):
        router = BatchRouter(ShortestPathScheme(grid_metric).compile_tables())
        pairs = _all_pairs(grid_metric, limit=100, seed=9)
        a = router.route_arrays([s for s, _ in pairs], [t for _, t in pairs])
        b = router.route_arrays([s for s, _ in pairs], [t for _, t in pairs])
        np.testing.assert_array_equal(a["target"], b["target"])
        np.testing.assert_array_equal(a["cost"], b["cost"])


# ----------------------------------------------------------------------
# Compiler edges and caching
# ----------------------------------------------------------------------


class TestCompiler:
    def test_unsupported_scheme_raises(self, grid_metric):
        class Opaque(RoutingScheme):
            name = "opaque"

            def route(self, source, target):  # pragma: no cover
                raise NotImplementedError

            def table_bits(self):  # pragma: no cover
                return [0] * self._metric.n

            def header_bits(self):  # pragma: no cover
                return 0

        with pytest.raises(EngineUnsupported):
            compile_scheme(Opaque(grid_metric))

    def test_tables_report_size(self, grid_metric):
        tables = ShortestPathScheme(grid_metric).compile_tables()
        assert tables.kind == "shortest_path"
        assert tables.n == grid_metric.n
        assert tables.nbytes() > 0
        assert "max_sweeps" in tables.scalars

    def test_empty_batch(self, grid_metric):
        router = BatchRouter(ShortestPathScheme(grid_metric).compile_tables())
        out = router.route_arrays([], [])
        assert out["target"].size == 0
        assert out["sweeps"] == 0

    def test_mismatched_batch_rejected(self, grid_metric):
        router = BatchRouter(ShortestPathScheme(grid_metric).compile_tables())
        with pytest.raises(ValueError):
            router.route_arrays([0, 1], [2])
        with pytest.raises(ValueError):
            router.route_arrays([0], [grid_metric.n])

    def test_route_batch_needs_metric(self, grid_metric):
        router = BatchRouter(ShortestPathScheme(grid_metric).compile_tables())
        from repro.engine import EngineError

        with pytest.raises(EngineError):
            router.route_batch([0], [1])

    def test_context_caches_compiled(self, grid_metric, params):
        context = BuildContext()
        scheme = LandmarkNameIndependentScheme(grid_metric, params)
        first = context.compiled(scheme)
        second = context.compiled(scheme)
        assert first is second
