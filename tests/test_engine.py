"""Tests for the compiled batch routing engine (PR 9, E20 substrate).

The anchor property: for every scheme with a compiled lowering, the
batch engine's output is **bit-identical** to the interpreted
``route()`` — same path, same cost (exact float equality, not
approximate), same legs breakdown, same header bits, same delivered
node — and agrees with RouteTrace replay.  Also covers: a degraded
overlay rebuild, sharded == single-process, the determinism contract
(injection-index ordering), and BuildContext caching of compiled
artifacts.
"""

import random

import pytest

import numpy as np

from repro.engine import (
    BatchRouter,
    EngineUnsupported,
    ShardedRouter,
    compile_scheme,
)
from repro.metric.graph_metric import GraphMetric
from repro.observability.trace import replay
from repro.pipeline.context import BuildContext
from repro.resilience import EventKind, FailureEvent
from repro.resilience.degraded import DegradedNetwork
from repro.resilience.repair import surviving_graph
from repro.schemes.base import RoutingScheme
from repro.schemes.cowen_landmark import CowenLandmarkScheme
from repro.schemes.landmark_nameind import LandmarkNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme


def _all_pairs(metric, limit=None, seed=0):
    nodes = list(metric.nodes)
    pairs = [(s, t) for s in nodes for t in nodes]
    if limit is not None and len(pairs) > limit:
        pairs = random.Random(seed).sample(pairs, limit)
    return pairs


def assert_bit_identical(scheme, pairs, metric=None, record_paths=True):
    """Compiled results must equal interpreted route() bit for bit."""
    metric = metric if metric is not None else scheme.metric
    router = BatchRouter(scheme.compile_tables(), metric=metric)
    sources = [s for s, _ in pairs]
    targets = [t for _, t in pairs]
    compiled = router.route_batch(sources, targets, record_paths=record_paths)
    for (s, t), got in zip(pairs, compiled):
        want = scheme.route(s, t)
        assert got.target == want.target, (s, t)
        assert got.cost == want.cost, (s, t, got.cost, want.cost)
        assert got.legs == want.legs, (s, t, got.legs, want.legs)
        assert got.header_bits == want.header_bits
        if record_paths:
            assert got.path == want.path, (s, t)
    return router


# ----------------------------------------------------------------------
# Bit-identity: every scheme x fixture
# ----------------------------------------------------------------------


class TestBitIdentity:
    def test_shortest_path_all_fixtures(self, any_metric):
        scheme = ShortestPathScheme(any_metric)
        assert_bit_identical(scheme, _all_pairs(any_metric, limit=600))

    def test_cowen(self, grid_metric, params):
        scheme = CowenLandmarkScheme(grid_metric, params)
        assert_bit_identical(scheme, _all_pairs(grid_metric))

    def test_cowen_geometric(self, geometric_metric, params):
        scheme = CowenLandmarkScheme(geometric_metric, params)
        assert_bit_identical(
            scheme, _all_pairs(geometric_metric, limit=600)
        )

    def test_labeled_nonsf(self, labeled_nonsf):
        assert_bit_identical(labeled_nonsf, _all_pairs(labeled_nonsf.metric))

    def test_labeled_sf(self, labeled_sf):
        assert_bit_identical(labeled_sf, _all_pairs(labeled_sf.metric))

    def test_nameind_simple(self, nameind_simple):
        assert_bit_identical(
            nameind_simple, _all_pairs(nameind_simple.metric)
        )

    def test_nameind_sf(self, nameind_sf):
        assert_bit_identical(nameind_sf, _all_pairs(nameind_sf.metric))

    def test_landmark(self, grid_metric, params):
        scheme = LandmarkNameIndependentScheme(grid_metric, params)
        assert_bit_identical(scheme, _all_pairs(grid_metric))

    def test_landmark_geometric(self, geometric_metric, params):
        scheme = LandmarkNameIndependentScheme(geometric_metric, params)
        assert_bit_identical(
            scheme, _all_pairs(geometric_metric, limit=600)
        )

    def test_landmark_nontrivial_naming(self, grid_metric, params):
        n = grid_metric.n
        naming = [(v * 7 + 3) % n for v in range(n)]
        scheme = LandmarkNameIndependentScheme(
            grid_metric, params, naming=naming
        )
        assert_bit_identical(scheme, _all_pairs(grid_metric))

    def test_weighted_metric(self, exponential_metric, params):
        scheme = ShortestPathScheme(exponential_metric)
        assert_bit_identical(scheme, _all_pairs(exponential_metric))
        landmark = LandmarkNameIndependentScheme(exponential_metric, params)
        assert_bit_identical(landmark, _all_pairs(exponential_metric))


class TestTraceReplay:
    """Compiled hop sequences must agree with RouteTrace replay."""

    def test_replay_agreement(self, labeled_sf, nameind_simple, params):
        grid = labeled_sf.metric
        schemes = [
            ShortestPathScheme(grid),
            labeled_sf,
            nameind_simple,
            LandmarkNameIndependentScheme(grid, params),
        ]
        pairs = _all_pairs(grid, limit=80, seed=4)
        for scheme in schemes:
            router = BatchRouter(scheme.compile_tables(), metric=grid)
            for s, t in pairs:
                want, trace = scheme.trace_route(s, t)
                got = router.route(s, t)
                rep = replay(trace)
                assert rep.matches(want.path, want.cost)
                assert got.path == rep.path
                assert got.cost == want.cost


class TestDegradedOverlay:
    """A scheme rebuilt on the surviving subgraph compiles bit-identical."""

    def test_degraded_rebuild(self, grid_metric, params):
        degraded = DegradedNetwork(grid_metric)
        for u, v in ((0, 1), (7, 8), (14, 20)):
            degraded.apply(
                FailureEvent(0.0, EventKind.LINK_DOWN, edge=(u, v))
            )
        metric = GraphMetric(surviving_graph(degraded))
        for scheme in (
            ShortestPathScheme(metric),
            LandmarkNameIndependentScheme(metric, params),
        ):
            assert_bit_identical(scheme, _all_pairs(metric), metric=metric)


# ----------------------------------------------------------------------
# Sharded serving mode
# ----------------------------------------------------------------------


class TestShardedRouter:
    def _compare(self, tables, pairs, shards):
        sources = [s for s, _ in pairs]
        targets = [t for _, t in pairs]
        single = BatchRouter(tables).route_arrays(sources, targets)
        with ShardedRouter(tables, shards=shards) as sharded:
            multi = sharded.route_arrays(sources, targets)
        np.testing.assert_array_equal(single["target"], multi["target"])
        np.testing.assert_array_equal(single["cost"], multi["cost"])
        if single["legs"] is None:
            assert multi["legs"] is None
        else:
            np.testing.assert_array_equal(single["legs"], multi["legs"])

    def test_sharded_matches_single_process(self, grid_metric, params):
        scheme = LandmarkNameIndependentScheme(grid_metric, params)
        pairs = _all_pairs(grid_metric, limit=200, seed=2)
        self._compare(scheme.compile_tables(), pairs, shards=2)

    def test_sharded_doubling_scheme(self, nameind_simple):
        pairs = _all_pairs(nameind_simple.metric, limit=120, seed=5)
        self._compare(nameind_simple.compile_tables(), pairs, shards=3)

    def test_single_shard_fallback(self, grid_metric):
        tables = ShortestPathScheme(grid_metric).compile_tables()
        pairs = _all_pairs(grid_metric, limit=60, seed=6)
        self._compare(tables, pairs, shards=1)

    def test_rejects_bad_shard_count(self, grid_metric):
        tables = ShortestPathScheme(grid_metric).compile_tables()
        with pytest.raises(ValueError):
            ShardedRouter(tables, shards=0)


# ----------------------------------------------------------------------
# Determinism contract (satellite 2 regression)
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_injection_index_order(self, grid_metric, params):
        """Results come back in injection-index order: shuffling the
        batch permutes outputs identically — per-pair results do not
        depend on batch composition or position."""
        scheme = LandmarkNameIndependentScheme(grid_metric, params)
        router = BatchRouter(scheme.compile_tables(), metric=grid_metric)
        pairs = _all_pairs(grid_metric, limit=150, seed=7)
        base = router.route_batch(
            [s for s, _ in pairs], [t for _, t in pairs]
        )
        perm = list(range(len(pairs)))
        random.Random(13).shuffle(perm)
        shuffled = router.route_batch(
            [pairs[i][0] for i in perm], [pairs[i][1] for i in perm]
        )
        for slot, i in enumerate(perm):
            assert shuffled[slot] == base[i]

    def test_batch_equals_singleton(self, labeled_sf):
        router = BatchRouter(
            labeled_sf.compile_tables(), metric=labeled_sf.metric
        )
        pairs = _all_pairs(labeled_sf.metric, limit=40, seed=8)
        batch = router.route_batch(
            [s for s, _ in pairs], [t for _, t in pairs]
        )
        for (s, t), got in zip(pairs, batch):
            assert router.route(s, t) == got

    def test_repeated_runs_stable(self, grid_metric):
        router = BatchRouter(ShortestPathScheme(grid_metric).compile_tables())
        pairs = _all_pairs(grid_metric, limit=100, seed=9)
        a = router.route_arrays([s for s, _ in pairs], [t for _, t in pairs])
        b = router.route_arrays([s for s, _ in pairs], [t for _, t in pairs])
        np.testing.assert_array_equal(a["target"], b["target"])
        np.testing.assert_array_equal(a["cost"], b["cost"])


# ----------------------------------------------------------------------
# Compiler edges and caching
# ----------------------------------------------------------------------


class TestCompiler:
    def test_unsupported_scheme_raises(self, grid_metric):
        class Opaque(RoutingScheme):
            name = "opaque"

            def route(self, source, target):  # pragma: no cover
                raise NotImplementedError

            def table_bits(self):  # pragma: no cover
                return [0] * self._metric.n

            def header_bits(self):  # pragma: no cover
                return 0

        with pytest.raises(EngineUnsupported):
            compile_scheme(Opaque(grid_metric))

    def test_tables_report_size(self, grid_metric):
        tables = ShortestPathScheme(grid_metric).compile_tables()
        assert tables.kind == "shortest_path"
        assert tables.n == grid_metric.n
        assert tables.nbytes() > 0
        assert "max_sweeps" in tables.scalars

    def test_empty_batch(self, grid_metric):
        router = BatchRouter(ShortestPathScheme(grid_metric).compile_tables())
        out = router.route_arrays([], [])
        assert out["target"].size == 0
        assert out["sweeps"] == 0

    def test_mismatched_batch_rejected(self, grid_metric):
        router = BatchRouter(ShortestPathScheme(grid_metric).compile_tables())
        with pytest.raises(ValueError):
            router.route_arrays([0, 1], [2])
        with pytest.raises(ValueError):
            router.route_arrays([0], [grid_metric.n])

    def test_route_batch_needs_metric(self, grid_metric):
        router = BatchRouter(ShortestPathScheme(grid_metric).compile_tables())
        from repro.engine import EngineError

        with pytest.raises(EngineError):
            router.route_batch([0], [1])

    def test_context_caches_compiled(self, grid_metric, params):
        context = BuildContext()
        scheme = LandmarkNameIndependentScheme(grid_metric, params)
        first = context.compiled(scheme)
        second = context.compiled(scheme)
        assert first is second
