"""Tests for the churn subsystem (E17) and incremental invalidation.

Covers: O(1) content-key maintenance against full rehashes, the edit
stream's invariants (determinism, connectivity, scale preservation),
exactness of the dirty set (``GraphMetric.updated`` bit-identical to a
cold Dijkstra over random edit sequences), the acceptance property —
a single-edge weight change on every fixture graph rebuilds strictly
fewer artifacts than a cold build while routing bit-identically — and
the :class:`ChurnDriver` service loop (determinism, overlay semantics,
cold-rebuild verification, repair traces).
"""

import networkx as nx
import numpy as np
import pytest

from repro.churn import ChurnDriver, ChurnVerificationError, EditStream
from repro.core.edits import EditKind, GraphEdit, apply_edit_to_graph
from repro.core.params import SchemeParameters
from repro.experiments.churn import run as run_e17
from repro.experiments.harness import standard_suite
from repro.experiments.resilience import repair_edit_for
from repro.graphs.generators import grid_2d, random_geometric
from repro.metric.graph_metric import DISTANCE_SLACK, GraphMetric
from repro.pipeline.context import (
    BuildContext,
    graph_content_key,
    invalidate_content_key,
)
from repro.pipeline.registry import run_experiment
from repro.pipeline.sampling import sample_ordered_pairs
from repro.resilience.failure_plan import EventKind
from repro.resilience.repair import measure_edit_repair, measure_repair
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme

SCHEMES = [
    ShortestPathScheme,
    SimpleNameIndependentScheme,
    ScaleFreeNameIndependentScheme,
]

PARAMS = SchemeParameters(epsilon=0.5)


def _rehash_key(graph: nx.Graph) -> str:
    """Content key via a full rehash (fresh object, no cached state)."""
    clone = nx.Graph()
    clone.add_nodes_from(graph.nodes())
    for u, v, data in graph.edges(data=True):
        clone.add_edge(u, v, weight=data.get("weight", 1.0))
    return graph_content_key(clone)


# -- content keys -----------------------------------------------------------


class TestContentKey:
    def test_incremental_key_matches_full_rehash(self):
        """The O(1) XOR update tracks a from-scratch rehash edit by edit."""
        graph = grid_2d(4)
        context = BuildContext()
        context.metric(graph)  # prime the cached key state
        stream = EditStream(seed=11)
        for _ in range(25):
            edit = stream.draw(graph)
            context.apply_edit(graph, edit)
            assert graph_content_key(graph) == _rehash_key(graph), (
                f"incremental key diverged after {edit.describe()}"
            )

    def test_out_of_band_weight_poke_needs_invalidate(self):
        """Documented hazard: silent weight pokes keep the stale key."""
        graph = grid_2d(3)
        before = graph_content_key(graph)
        u, v = next(iter(graph.edges()))
        graph[u][v]["weight"] = 9.0
        assert graph_content_key(graph) == before  # (n, m) guard can't see it
        invalidate_content_key(graph)
        after = graph_content_key(graph)
        assert after != before
        assert after == _rehash_key(graph)


# -- the edit stream --------------------------------------------------------


class TestEditStream:
    def test_deterministic_replay(self):
        a_graph, b_graph = grid_2d(4), grid_2d(4)
        a = [e.describe() for e in EditStream(seed=3).take(a_graph, 30)]
        b = [e.describe() for e in EditStream(seed=3).take(b_graph, 30)]
        assert a == b
        assert a != [
            e.describe() for e in EditStream(seed=4).take(grid_2d(4), 30)
        ]

    def test_invariants_hold_along_the_stream(self):
        graph = grid_2d(4)
        min_before = min(
            d.get("weight", 1.0) for _, _, d in graph.edges(data=True)
        )
        stream = EditStream(seed=7)
        for _ in range(60):
            edit = stream.draw(graph)
            apply_edit_to_graph(graph, edit)
            assert nx.is_connected(graph)
            weights = [
                d.get("weight", 1.0) for _, _, d in graph.edges(data=True)
            ]
            # Scale preservation: the minimum raw weight never moves, so
            # a normalized metric's scale divisor survives every edit.
            assert min(weights) == pytest.approx(min_before)
            assert set(graph.nodes()) == set(range(graph.number_of_nodes()))

    def test_weight_only_mix_restricts_kinds(self):
        graph = grid_2d(4)
        stream = EditStream(seed=5, mix={EditKind.WEIGHT: 1.0})
        kinds = {e.kind for e in stream.take(graph, 20)}
        assert kinds == {EditKind.WEIGHT}


# -- exact dirty sets -------------------------------------------------------


class TestIncrementalMetric:
    def test_updated_bit_identical_to_cold_over_random_streams(self):
        """The tentpole invariant at the metric layer: after any edit
        sequence, the incrementally spliced APSP matrix (distances AND
        predecessors) is bitwise equal to a cold Dijkstra, and rows
        outside the reported dirty set were genuinely untouched."""
        for seed in (1, 2, 3):
            graph = grid_2d(4)
            metric = GraphMetric(graph)
            metric.detach_graph()
            stream = EditStream(seed=seed)
            for _ in range(10):
                edit = stream.draw(graph)
                apply_edit_to_graph(graph, edit)
                old_dist = metric._dist
                metric, dirty = metric.updated(graph, edit)
                cold = GraphMetric(graph.copy())
                assert np.array_equal(metric._dist, cold._dist)
                assert np.array_equal(metric._pred, cold._pred)
                if not edit.changes_node_set:
                    clean = [
                        s
                        for s in range(metric.n)
                        if s not in dirty
                    ]
                    assert np.array_equal(
                        metric._dist[clean], old_dist[clean]
                    )
                metric.detach_graph()

    def test_dirty_set_is_partial_on_continuous_weights(self):
        """No ties -> a single weight edit must not dirty everything."""
        graph = random_geometric(32, seed=5)
        metric = GraphMetric(graph)
        metric.detach_graph()
        edit = repair_edit_for(graph)
        apply_edit_to_graph(graph, edit)
        _, dirty = metric.updated(graph, edit)
        assert 0 < len(dirty) < metric.n


# -- acceptance: single-edge weight change on every fixture ----------------


class TestEditRepairAcceptance:
    @pytest.mark.parametrize(
        "graph_name,graph",
        standard_suite("small"),
        ids=[name for name, _ in standard_suite("small")],
    )
    def test_builds_strictly_fewer_and_routes_identically(
        self, graph_name, graph
    ):
        graph = graph.copy()
        cold, incremental, report = measure_edit_repair(
            graph,
            repair_edit_for(graph),
            SCHEMES,
            PARAMS,
            keep_schemes=True,
        )
        # Strictly fewer artifacts constructed than a cold build...
        assert incremental.built_total < cold.built_total, graph_name
        assert 0 < len(report.dirty) <= graph.number_of_nodes()
        # ...and the result is bit-identical: same table bits, same
        # routes, same costs, for every scheme in the lineup.
        n = graph.number_of_nodes()
        pairs = sample_ordered_pairs(n, min(60, n * (n - 1)), seed=3)
        for warm_scheme, cold_scheme in zip(
            incremental.schemes, cold.schemes
        ):
            assert (
                warm_scheme.table_bits_vector()
                == cold_scheme.table_bits_vector()
            )
            for u, v in pairs:
                a = warm_scheme.route(u, v)
                b = cold_scheme.route(u, v)
                assert a.path == b.path
                assert abs(a.cost - b.cost) <= DISTANCE_SLACK

    def test_weight_edit_reuses_untouched_partitions(self):
        """Regression: a single weight change used to rebuild every
        hierarchy; now partitions disjoint from the dirty set carry."""
        suite = dict(standard_suite("small"))
        graph = suite["geometric n=64"].copy()
        _, incremental, report = measure_edit_repair(
            graph, repair_edit_for(graph), SCHEMES, PARAMS
        )
        assert len(report.dirty) < graph.number_of_nodes()
        assert incremental.reused_total > 0
        reused_kinds = set(incremental.reused) - {"metric_row"}
        assert reused_kinds, (
            "only metric rows were reused — hierarchy/ring/search-tree "
            f"partitions all rebuilt: {incremental.built}"
        )


# -- schemes retention (opt-in) --------------------------------------------


class TestRepairMeasurementRetention:
    def test_schemes_dropped_by_default(self):
        graph = grid_2d(3)
        cold, incremental = measure_repair(
            graph, [SimpleNameIndependentScheme], PARAMS
        )
        assert cold.schemes == [] and incremental.schemes == []

    def test_schemes_kept_on_request(self):
        graph = grid_2d(3)
        cold, incremental = measure_repair(
            graph, [SimpleNameIndependentScheme], PARAMS, keep_schemes=True
        )
        assert len(cold.schemes) == 1 and len(incremental.schemes) == 1


# -- the churn driver -------------------------------------------------------


def _round_fingerprint(record):
    return (
        [r.edit.describe() for r in record.edits],
        record.delivered,
        record.unreachable,
        round(record.mean_stretch, 9),
        dict(record.built),
        dict(record.reused),
        record.verified,
    )


class TestChurnDriver:
    def test_deterministic_given_seed(self):
        reports = []
        for _ in range(2):
            driver = ChurnDriver(
                grid_2d(4),
                SimpleNameIndependentScheme,
                policy="local-detour",
                params=PARAMS,
                seed=6,
                edits_per_round=4,
                pairs_per_round=6,
                verify_every=2,
            )
            reports.append(driver.run(edits=12))
        a, b = reports
        assert [_round_fingerprint(r) for r in a.rounds] == [
            _round_fingerprint(r) for r in b.rounds
        ]
        assert a.final_nodes == b.final_nodes

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_random_streams_verify_bit_identical(self, scheme_cls):
        """Property: across random edit streams, every scheduled
        cold-rebuild check passes (paths, costs, table_bits_vector) —
        a divergence raises ChurnVerificationError and fails this."""
        for seed in (1, 2):
            driver = ChurnDriver(
                grid_2d(4),
                scheme_cls,
                policy="fail-fast",
                params=PARAMS,
                seed=seed,
                edits_per_round=3,
                pairs_per_round=4,
                verify_every=1,
                verify_pairs=60,
            )
            report = driver.run(edits=9)
            assert [r.verified for r in report.rounds] == [True] * 3

    def test_verify_detects_divergence(self):
        """A scheme built on a different topology must be rejected."""
        driver = ChurnDriver(
            grid_2d(4), SimpleNameIndependentScheme, params=PARAMS, seed=1
        )
        other = grid_2d(4)
        u, v = next(iter(other.edges()))
        other[u][v]["weight"] = 5.0
        context = BuildContext()
        wrong = context.scheme(
            SimpleNameIndependentScheme, context.metric(other), PARAMS
        )
        with pytest.raises(ChurnVerificationError):
            driver._verify(wrong)

    def test_overlay_semantics(self):
        stale = grid_2d(3)
        factors = {}
        scale = ChurnDriver._overlay_events(
            GraphEdit(kind=EditKind.WEIGHT, edge=(0, 1), weight=2.5),
            stale,
            factors,
        )
        assert [e.kind for e in scale] == [EventKind.WEIGHT_SCALE]
        assert scale[0].factor == pytest.approx(2.5)
        down = ChurnDriver._overlay_events(
            GraphEdit(kind=EditKind.EDGE_REMOVE, edge=(0, 1)), stale, factors
        )
        assert [e.kind for e in down] == [EventKind.LINK_DOWN]
        # Genuinely new capacity is invisible to stale tables.
        assert (
            ChurnDriver._overlay_events(
                GraphEdit(kind=EditKind.EDGE_ADD, edge=(0, 4), weight=1.0),
                stale,
                factors,
            )
            == []
        )
        assert (
            ChurnDriver._overlay_events(
                GraphEdit(
                    kind=EditKind.NODE_JOIN, node=9, attach=((0, 1.0),)
                ),
                stale,
                factors,
            )
            == []
        )
        leave = ChurnDriver._overlay_events(
            GraphEdit(kind=EditKind.NODE_LEAVE, node=8), stale, factors
        )
        assert [e.kind for e in leave] == [EventKind.NODE_DOWN]

    def test_repair_traces_render(self):
        driver = ChurnDriver(
            grid_2d(4),
            ShortestPathScheme,
            params=PARAMS,
            seed=2,
            edits_per_round=3,
            pairs_per_round=4,
            trace_repairs=True,
        )
        report = driver.run(edits=6)
        assert len(report.repair_traces) == 6
        for trace in report.repair_traces:
            assert trace.events
            assert trace.to_json()

    def test_report_serializes(self):
        driver = ChurnDriver(
            grid_2d(3),
            ShortestPathScheme,
            params=PARAMS,
            seed=4,
            edits_per_round=2,
            pairs_per_round=4,
        )
        payload = driver.run(edits=4).to_dict()
        assert payload["total_edits"] == 4
        assert len(payload["rounds"]) == 2
        for record in payload["rounds"]:
            assert 0.0 <= record["delivery_rate"] <= 1.0


# -- experiment E17 ---------------------------------------------------------


class TestExperimentChurn:
    def test_serial_and_parallel_rows_agree(self):
        suite = [("grid 4x4", grid_2d(4))]
        kwargs = dict(pair_count=30, edits=12, suite=suite)
        serial = run_e17(jobs=1, **kwargs)
        parallel = run_e17(jobs=2, **kwargs)
        timing_column = serial.columns.index("repair eps")

        def strip(rows):
            return [
                [c for i, c in enumerate(row) if i != timing_column]
                for row in rows
            ]

        assert strip(serial.rows) == strip(parallel.rows)
        assert len(serial.rows) == 9  # 3 schemes x 3 policies

    def test_registry_forwards_edits_kwarg(self):
        tables = run_experiment(
            "churn", pair_count=20, edits=10, suite=[("g", grid_2d(3))]
        )
        assert len(tables) == 1
        assert all(row[3] == 10 for row in tables[0].rows)

    def test_registry_drops_unknown_kwargs_for_other_runners(self):
        tables = run_experiment("structures", pair_count=10, edits=5)
        assert tables
