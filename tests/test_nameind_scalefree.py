"""Tests for the scale-free name-independent scheme (Theorem 1.1)."""

import math

import pytest

from repro.core.params import SchemeParameters
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme

from tests.conftest import lemma_3_4_bound


class TestConstruction:
    def test_packed_trees_store_extended_ball(self, nameind_sf, grid_metric):
        """Type-B trees index the (j+2)-ball: 4 pairs per tree node."""
        for (j, c), tree in nameind_sf._packed_trees.items():
            size = min(grid_metric.n, 1 << (j + 2))
            for v in grid_metric.size_ball(c, size):
                assert tree.lookup_everywhere(nameind_sf.name_of(v))

    def test_every_level_served_or_owned(self, nameind_sf):
        """Each (i, u in Y_i) has either an own tree or an H-link."""
        hierarchy = nameind_sf.hierarchy
        for i in hierarchy.levels:
            for u in hierarchy.net(i):
                own = (i, u) in nameind_sf._own_trees
                linked = (i, u) in nameind_sf._h_links
                assert own != linked  # exactly one of the two

    def test_h_link_conditions(self, nameind_sf, grid_metric):
        """H(u,i) satisfies the §3.3 serving-ball conditions."""
        eps = nameind_sf.params.epsilon
        for (i, u), (j, c) in nameind_sf._h_links.items():
            outer = (2.0**i) * (1 / eps + 1)
            ball = next(
                b
                for b in nameind_sf.packing.packing(j)
                if b.center == c
            )
            # B subseteq B_u(2^i (1/eps + 1))
            for x in ball.members:
                assert grid_metric.distance(u, x) <= outer + 1e-9
            # B_u(2^i/eps) subseteq B_c(r_c(j+2))
            extended = set(
                grid_metric.size_ball(
                    c, min(grid_metric.n, 1 << (j + 2))
                )
            )
            for v in grid_metric.ball(u, (2.0**i) / eps):
                assert v in extended

    def test_claim_3_9_h_link_budget(self, nameind_sf, grid_metric):
        """Claim 3.9: at most 4 log n serving balls per node."""
        bound = 4 * max(1, grid_metric.log_n)
        for u in grid_metric.nodes:
            assert nameind_sf.h_link_count(u) <= bound

    def test_high_levels_are_linked_not_owned(self, nameind_sf):
        """Top levels (whole-graph balls) must use packed balls."""
        top = nameind_sf.hierarchy.top_level
        assert nameind_sf.h_link(0, top) is not None


class TestRouting:
    def test_reaches_every_destination(self, nameind_sf, grid_metric):
        for u in range(0, grid_metric.n, 6):
            for v in grid_metric.nodes:
                if u == v:
                    continue
                assert nameind_sf.route(u, v).target == v

    def test_stretch_envelope_below_half(self, grid_metric):
        eps = 0.25
        scheme = ScaleFreeNameIndependentScheme(
            grid_metric, SchemeParameters(epsilon=eps)
        )
        pairs = [
            (u, v)
            for u in range(0, grid_metric.n, 3)
            for v in range(0, grid_metric.n, 4)
            if u != v
        ]
        # Algorithm 4 searches cost 2^{i+1}(1/eps + 1) instead of
        # 2^{i+1}/eps: allow the matching (1 + eps) factor on Eqn. 6.
        bound = lemma_3_4_bound(eps) * (1 + eps) + 1e-9
        assert scheme.evaluate(pairs).max_stretch <= bound

    def test_stretch_generous_cap_at_half(self, nameind_sf):
        ev = nameind_sf.evaluate()
        assert ev.max_stretch <= 9 + 8 * 0.5 + 3

    def test_legs_sum_to_cost(self, nameind_sf, grid_metric):
        for u, v in [(0, 35), (14, 2), (30, 31)]:
            result = nameind_sf.route(u, v)
            assert sum(result.legs.values()) == pytest.approx(result.cost)

    def test_route_under_permuted_naming(self, grid_metric, params):
        naming = [(v * 11 + 5) % grid_metric.n for v in grid_metric.nodes]
        scheme = ScaleFreeNameIndependentScheme(
            grid_metric, params, naming=naming
        )
        for u, v in [(0, 1), (5, 30), (20, 8), (35, 0)]:
            assert scheme.route_to_name(u, naming[v]).target == v

    def test_works_on_all_families(self, any_metric, params):
        scheme = ScaleFreeNameIndependentScheme(any_metric, params)
        for u in range(0, any_metric.n, 5):
            for v in range(0, any_metric.n, 4):
                if u != v:
                    assert scheme.route(u, v).target == v


class TestHeavyPathSubstrate:
    def test_end_to_end_with_heavy_path_tree_routing(self, grid_metric, params):
        """Theorem 1.1 over Theorem 1.2 over heavy-path tree routing —
        the full FG-flavored stack."""
        from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
        from repro.trees.heavy_path import HeavyPathRouter

        underlying = ScaleFreeLabeledScheme(
            grid_metric, params, tree_router_cls=HeavyPathRouter
        )
        scheme = ScaleFreeNameIndependentScheme(
            grid_metric, params, underlying=underlying
        )
        for u in range(0, grid_metric.n, 7):
            for v in range(0, grid_metric.n, 5):
                if u != v:
                    result = scheme.route(u, v)
                    assert result.target == v
                    assert result.stretch <= 9 + 8 * 0.5 + 3


class TestStorage:
    def test_scale_free_storage(self, params):
        """Theorem 1.1: tables flat as Delta grows at fixed n."""
        from repro.graphs.generators import exponential_path
        from repro.metric.graph_metric import GraphMetric

        sizes = []
        for base in (1.5, 4.0, 16.0):
            metric = GraphMetric(exponential_path(14, base=base))
            scheme = ScaleFreeNameIndependentScheme(metric, params)
            sizes.append(scheme.max_table_bits())
        assert max(sizes) / min(sizes) <= 2.0

    def test_beats_simple_scheme_on_huge_delta(self, params):
        from repro.graphs.generators import exponential_path
        from repro.metric.graph_metric import GraphMetric
        from repro.schemes.nameind_simple import SimpleNameIndependentScheme

        metric = GraphMetric(exponential_path(14, base=16.0))
        simple = SimpleNameIndependentScheme(metric, params)
        scale_free = ScaleFreeNameIndependentScheme(metric, params)
        assert (
            scale_free.max_table_bits() < simple.max_table_bits()
        )

    def test_lemma_3_5_tree_membership(self, nameind_sf, grid_metric):
        """Each node appears in at most O(log n) * (4/eps)^alpha trees."""
        eps = nameind_sf.params.epsilon
        alpha = 3.2  # measured greedy dimension of the 6x6 grid
        per_node = {v: 0 for v in grid_metric.nodes}
        for tree in nameind_sf._packed_trees.values():
            for v in tree.nodes:
                per_node[v] += 1
        for tree in nameind_sf._own_trees.values():
            for v in tree.nodes:
                per_node[v] += 1
        bound = (
            (4 - math.log2(eps))
            * max(1, grid_metric.log_n)
            * (4 / eps) ** alpha
        )
        assert max(per_node.values()) <= bound

    def test_stretch_guarantee_is_nine(self, nameind_sf):
        assert nameind_sf.stretch_guarantee() == 9.0

    def test_table_bits_positive(self, nameind_sf, grid_metric):
        for v in grid_metric.nodes:
            assert nameind_sf.table_bits(v) > 0
