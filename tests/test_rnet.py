"""Tests for greedy r-net construction (Definition 2.1), incl. hypothesis."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import path_graph
from repro.metric.graph_metric import GraphMetric
from repro.nets.rnet import greedy_rnet, is_rnet


class TestGreedyRNet:
    def test_radius_one_net_is_everything(self, grid_metric):
        net = greedy_rnet(grid_metric, 1.0)
        assert net == list(grid_metric.nodes)

    def test_huge_radius_net_is_singleton(self, grid_metric):
        net = greedy_rnet(grid_metric, 10 * grid_metric.diameter)
        assert len(net) == 1

    def test_is_valid_rnet(self, any_metric):
        for r in (1.0, 2.0, 4.0):
            net = greedy_rnet(any_metric, r)
            assert is_rnet(any_metric, r, net)

    def test_seed_preserved(self, grid_metric):
        coarse = greedy_rnet(grid_metric, 8.0)
        fine = greedy_rnet(grid_metric, 4.0, seed=coarse)
        assert set(coarse) <= set(fine)

    def test_deterministic(self, grid_metric):
        assert greedy_rnet(grid_metric, 3.0) == greedy_rnet(grid_metric, 3.0)

    def test_restricted_universe_covered(self, grid_metric):
        universe = list(range(0, grid_metric.n, 2))
        net = greedy_rnet(grid_metric, 2.0, universe=universe)
        for v in universe:
            assert any(
                grid_metric.distance(v, x) <= 2.0 + 1e-9 for x in net
            )

    def test_nonpositive_radius_rejected(self, grid_metric):
        with pytest.raises(ValueError):
            greedy_rnet(grid_metric, 0.0)

    def test_net_size_decreases_with_radius(self, grid_metric):
        sizes = [
            len(greedy_rnet(grid_metric, float(r))) for r in (1, 2, 4, 8)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_packing_lemma_2_2_bound(self, grid_metric):
        """Lemma 2.2: |B_u(r') ∩ Y| <= (4r'/r)^alpha for an r-net Y."""
        r = 2.0
        net = set(greedy_rnet(grid_metric, r))
        alpha = 3.2  # measured greedy doubling dimension of the 6x6 grid
        for u in grid_metric.nodes:
            for r_prime in (2.0, 4.0, 8.0):
                count = sum(
                    1 for x in grid_metric.ball(u, r_prime) if x in net
                )
                assert count <= (4 * r_prime / r) ** alpha + 1e-9


class TestIsRNet:
    def test_rejects_non_covering(self):
        metric = GraphMetric(path_graph(10))
        assert not is_rnet(metric, 1.0, [0])

    def test_rejects_non_packing(self):
        metric = GraphMetric(path_graph(10))
        assert not is_rnet(metric, 3.0, [0, 1, 5, 9])

    def test_rejects_empty(self, grid_metric):
        assert not is_rnet(grid_metric, 1.0, [])

    def test_accepts_hand_built(self):
        metric = GraphMetric(path_graph(9))
        assert is_rnet(metric, 2.0, [0, 2, 4, 6, 8])


@st.composite
def random_connected_graph(draw):
    """Random connected weighted graph on 4-16 nodes."""
    n = draw(st.integers(min_value=4, max_value=16))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    # Random spanning tree first (guarantees connectivity).
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        weight = draw(st.integers(min_value=1, max_value=8))
        graph.add_edge(parent, v, weight=float(weight))
    # A few extra edges.
    extras = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extras):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and not graph.has_edge(u, v):
            weight = draw(st.integers(min_value=1, max_value=8))
            graph.add_edge(u, v, weight=float(weight))
    return graph


class TestRNetProperties:
    @given(graph=random_connected_graph(), r_exp=st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_greedy_net_always_valid(self, graph, r_exp):
        metric = GraphMetric(graph)
        r = float(2**r_exp)
        net = greedy_rnet(metric, r)
        assert is_rnet(metric, r, net)

    @given(graph=random_connected_graph())
    @settings(max_examples=25, deadline=None)
    def test_nested_nets_stay_valid(self, graph):
        """The paper's top-down expansion yields valid nets at each level."""
        metric = GraphMetric(graph)
        top = metric.log_diameter
        net = [0]
        for i in range(top - 1, -1, -1):
            net = greedy_rnet(metric, float(2**i), seed=net)
            assert is_rnet(metric, float(2**i), net)
