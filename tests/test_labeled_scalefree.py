"""Tests for the scale-free labeled scheme (Theorem 1.2, Algorithm 5)."""

import math

import pytest

from repro.core.bitcount import bits_for_id
from repro.core.params import SchemeParameters
from repro.core.types import PreprocessingError, RouteFailure
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme


class TestConstruction:
    def test_large_epsilon_rejected(self, grid_metric):
        with pytest.raises(PreprocessingError):
            ScaleFreeLabeledScheme(
                grid_metric, SchemeParameters(epsilon=0.9)
            )

    def test_stored_levels_match_R_definition(self, labeled_sf, grid_metric):
        """R(u) = {i : exists j, (eps/6) r_u(j) <= 2^i <= r_u(j)}."""
        eps = labeled_sf.params.epsilon
        top = labeled_sf.hierarchy.top_level
        for u in range(0, grid_metric.n, 7):
            expected = set()
            for j in range(grid_metric.log_n + 1):
                r = grid_metric.r_u(u, j)
                if r <= 0:
                    continue
                for i in range(top + 1):
                    if (eps / 6) * r <= 2.0**i <= r:
                        expected.add(i)
            assert set(labeled_sf.stored_levels(u)) == expected

    def test_ring_count_independent_of_delta(self, params):
        """Scale-free: stored levels are O(log n / eps), not log Delta."""
        from repro.graphs.generators import exponential_path
        from repro.metric.graph_metric import GraphMetric

        metric = GraphMetric(exponential_path(14, base=8.0))
        scheme = ScaleFreeLabeledScheme(metric, params)
        bound = (
            (math.log2(metric.n) + 1)
            * (math.log2(6 / params.epsilon) + 2)
        )
        for u in metric.nodes:
            assert len(scheme.stored_levels(u)) <= bound
        # log Delta is far larger than the stored-level count here.
        assert metric.log_diameter > bound / 2

    def test_labels_are_netting_tree_labels(self, labeled_sf):
        hierarchy = labeled_sf.hierarchy
        for v in labeled_sf.metric.nodes:
            assert labeled_sf.routing_label(v) == hierarchy.label(v)

    def test_label_bits(self, labeled_sf, grid_metric):
        assert labeled_sf.label_bits() == bits_for_id(grid_metric.n)


class TestRouting:
    def test_reaches_every_destination(self, labeled_sf, grid_metric):
        for u in range(0, grid_metric.n, 5):
            for v in grid_metric.nodes:
                if u == v:
                    continue
                assert labeled_sf.route(u, v).target == v

    def test_stretch_bound(self, labeled_sf):
        eps = labeled_sf.params.epsilon
        ev = labeled_sf.evaluate()
        assert ev.max_stretch <= 1 + 8 * eps

    def test_no_fallbacks_on_grid(self, labeled_sf):
        labeled_sf.evaluate()
        assert labeled_sf.fallback_count == 0

    def test_no_fallbacks_on_all_families(self, any_metric, params):
        scheme = ScaleFreeLabeledScheme(any_metric, params)
        pairs = [
            (u, v)
            for u in range(0, any_metric.n, 4)
            for v in range(0, any_metric.n, 3)
            if u != v
        ]
        ev = scheme.evaluate(pairs)
        assert scheme.fallback_count == 0
        assert ev.max_stretch <= 1 + 8 * params.epsilon

    def test_legs_sum_to_cost(self, labeled_sf, grid_metric):
        for u, v in [(0, 35), (7, 28), (20, 3)]:
            result = labeled_sf.route(u, v)
            assert sum(result.legs.values()) == pytest.approx(result.cost)

    def test_nearby_destination_routes_directly(self, labeled_sf, grid_metric):
        """Adjacent destinations are delivered by the ring walk alone."""
        result = labeled_sf.route(0, 1)
        assert result.legs["search"] == 0.0
        assert result.stretch == pytest.approx(1.0)

    def test_small_epsilon_still_exact_for_neighbours(self, grid_metric):
        scheme = ScaleFreeLabeledScheme(
            grid_metric, SchemeParameters(epsilon=0.125)
        )
        for u, v in [(0, 1), (0, 6), (14, 15), (35, 29)]:
            assert scheme.route(u, v).stretch == pytest.approx(1.0)

    def test_self_route(self, labeled_sf):
        result = labeled_sf.route(9, 9)
        assert result.cost == 0.0

    def test_bad_label_rejected(self, labeled_sf, grid_metric):
        with pytest.raises(RouteFailure):
            labeled_sf.route_to_label(0, -1)

    def test_exponential_path_routes(self, exponential_metric, params):
        scheme = ScaleFreeLabeledScheme(exponential_metric, params)
        ev = scheme.evaluate()
        assert ev.max_stretch <= 1 + 8 * params.epsilon
        assert scheme.fallback_count == 0


class TestStorage:
    def test_scale_free_storage(self, params):
        """Tables do not grow with Delta at fixed n (Theorem 1.2)."""
        from repro.graphs.generators import exponential_path
        from repro.metric.graph_metric import GraphMetric

        sizes = []
        for base in (1.5, 4.0, 16.0):
            metric = GraphMetric(exponential_path(14, base=base))
            scheme = ScaleFreeLabeledScheme(metric, params)
            sizes.append(scheme.max_table_bits())
        spread = max(sizes) / min(sizes)
        assert spread <= 1.5  # flat up to constant wobble

    def test_table_bits_positive(self, labeled_sf, grid_metric):
        for v in grid_metric.nodes:
            assert labeled_sf.table_bits(v) > 0

    def test_header_polylog(self, labeled_sf, grid_metric):
        assert labeled_sf.header_bits() <= 10 * bits_for_id(grid_metric.n)

    def test_size_level_for(self, labeled_sf, grid_metric):
        for u in (0, 17):
            for power in (0.5, 1.0, 2.0, 4.0, 100.0):
                j = labeled_sf._size_level_for(u, power)
                assert grid_metric.r_u(u, j) <= power + 1e-9
                if j < grid_metric.log_n:
                    assert power < grid_metric.r_u(u, j + 1)
