"""Failure-injection tests: corrupted routing state must be *detected*.

A compact routing scheme's tables are distributed state; a production
implementation must fail loudly (misdelivery detection, convergence
guards) rather than silently deliver to the wrong node or loop forever.
These tests corrupt specific table entries and assert the defined
failure behaviour.
"""

import pytest

from repro.core.params import SchemeParameters
from repro.core.types import RouteFailure
from repro.metric.graph_metric import GraphMetric
from repro.graphs.generators import grid_2d
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.searchtree.tree import SearchTree


@pytest.fixture()
def fresh_scheme():
    """A private scheme instance safe to corrupt (function-scoped)."""
    metric = GraphMetric(grid_2d(5))
    return SimpleNameIndependentScheme(metric, SchemeParameters())


class TestMisdeliveryDetection:
    def test_corrupted_search_tree_label_detected(self, fresh_scheme):
        """Swapping a stored label makes the final leg deliver to the
        wrong node; the destination name check must catch it."""
        scheme = fresh_scheme
        metric = scheme.metric
        target = metric.n - 1
        wrong = metric.n - 2
        wrong_label = scheme.underlying.routing_label(wrong)
        name = scheme.name_of(target)
        # Corrupt every copy of (name -> label) in every search tree.
        for level_trees in scheme._trees:
            for tree in level_trees.values():
                for held in tree._pairs_at.values():
                    if name in held:
                        held[name] = wrong_label
        with pytest.raises(RouteFailure, match="misdelivery"):
            scheme.route(0, target)

    def test_uncorrupted_routes_still_work(self, fresh_scheme):
        result = fresh_scheme.route(0, fresh_scheme.metric.n - 1)
        assert result.target == fresh_scheme.metric.n - 1


class TestMissingState:
    def test_missing_pairs_everywhere_raises(self, fresh_scheme):
        """Erasing a name from every search tree (a lost registration)
        must raise rather than loop: the top level reports a miss."""
        scheme = fresh_scheme
        name = scheme.name_of(3)
        for level_trees in scheme._trees:
            for tree in level_trees.values():
                for held in tree._pairs_at.values():
                    held.pop(name, None)
        with pytest.raises(RouteFailure):
            scheme.route(0, 3)

    def test_search_range_corruption_is_a_miss_not_a_crash(self):
        """Corrupting subtree ranges makes lookups miss; Algorithm 2
        still terminates and reports not-found."""
        metric = GraphMetric(grid_2d(4))
        tree = SearchTree(metric, 0, metric.diameter, 0.5)
        tree.store({v: v for v in tree.nodes})
        victim = tree.nodes[-1]
        tree._subtree_range = {
            node: (10**6, 10**6 + 1) for node in tree._subtree_range
        }
        outcome = tree.search(victim)
        assert not outcome.found
        assert outcome.trail[0] == tree.root


class TestEscalation:
    def test_labeled_scalefree_escalates_past_corrupted_search_tree(self):
        """If the prescribed level's search tree loses the target entry
        (Lemma 4.5 violated by corruption), Algorithm 5 escalates to
        coarser packing levels and still delivers — counting fallbacks."""
        from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
        from repro.graphs.generators import exponential_path

        metric = GraphMetric(exponential_path(12))
        scheme = ScaleFreeLabeledScheme(metric, SchemeParameters())
        # Find a route that uses the Voronoi phase, then corrupt the
        # search trees at every level except the global one.
        top = metric.log_n
        for j in range(top):
            for searcher in scheme._searchers[j].values():
                searcher.store({})
        before = scheme.fallback_count
        for u in metric.nodes:
            for v in metric.nodes:
                if u != v:
                    assert scheme.route(u, v).target == v
        # The global (j = log n) level carried the corrupted lookups.
        assert scheme.fallback_count >= before

    def test_global_level_alone_suffices(self):
        """The j = log n Voronoi tree spans V and its search tree holds
        every label — the escalation endpoint is always complete."""
        from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
        from repro.graphs.generators import grid_2d as grid

        metric = GraphMetric(grid(4))
        scheme = ScaleFreeLabeledScheme(metric, SchemeParameters())
        top = metric.log_n
        searchers = scheme._searchers[top]
        assert len(searchers) == 1
        (tree,) = searchers.values()
        for v in metric.nodes:
            assert tree.lookup_everywhere(scheme.routing_label(v))


class TestConvergenceGuards:
    def test_labeled_walk_guard_trips_on_cyclic_hops(self, monkeypatch):
        """If next hops are corrupted into a cycle, the walk guard must
        raise instead of looping forever."""
        metric = GraphMetric(grid_2d(4))
        scheme = NonScaleFreeLabeledScheme(metric, SchemeParameters())

        flip = {0: 1, 1: 0}

        def cyclic_next_hop(u, x):
            return flip.get(u, 1)

        monkeypatch.setattr(metric, "next_hop", cyclic_next_hop)
        with pytest.raises(RouteFailure):
            scheme.route(0, metric.n - 1)

    def test_bad_name_rejected_before_any_hop(self, fresh_scheme):
        with pytest.raises(RouteFailure):
            fresh_scheme.route_to_name(0, -7)
