"""Tests for the Packing Lemma construction (Lemma 2.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import path_graph
from repro.metric.graph_metric import GraphMetric
from repro.packing.ballpacking import BallPacking

from tests.test_rnet import random_connected_graph


class TestPackingStructure:
    def test_level_count_is_log_n_plus_one(self, grid_packing, grid_metric):
        assert grid_packing.top_level == grid_metric.log_n
        assert len(list(grid_packing.levels)) == grid_metric.log_n + 1

    def test_property_1_exact_sizes(self, grid_packing, grid_metric):
        """Lemma 2.3 (1): every ball in B_j has exactly 2^j members."""
        for j in grid_packing.levels:
            for ball in grid_packing.packing(j):
                assert ball.size == min(grid_metric.n, 1 << j)

    def test_balls_disjoint_within_level(self, grid_packing):
        for j in grid_packing.levels:
            seen = set()
            for ball in grid_packing.packing(j):
                assert not (ball.members & seen)
                seen |= ball.members

    def test_level_zero_covers_everything(self, grid_packing, grid_metric):
        covered = set()
        for ball in grid_packing.packing(0):
            covered |= ball.members
        assert covered == set(grid_metric.nodes)

    def test_top_level_single_ball(self, grid_packing, grid_metric):
        top = grid_packing.packing(grid_packing.top_level)
        assert len(top) == 1
        assert top[0].members == frozenset(grid_metric.nodes)

    def test_greedy_order_by_radius(self, grid_packing):
        for j in grid_packing.levels:
            radii = [b.radius for b in grid_packing.packing(j)]
            assert radii == sorted(radii)

    def test_members_within_radius(self, grid_packing, grid_metric):
        for j in grid_packing.levels:
            for ball in grid_packing.packing(j):
                for v in ball.members:
                    assert grid_metric.distance(
                        ball.center, v
                    ) <= ball.radius + 1e-9

    def test_maximality(self, grid_packing, grid_metric):
        """No node's own size-ball is disjoint from all packed balls."""
        for j in grid_packing.levels:
            size = min(grid_metric.n, 1 << j)
            taken = set()
            for ball in grid_packing.packing(j):
                taken |= ball.members
            for u in grid_metric.nodes:
                own = set(grid_metric.size_ball(u, size))
                assert own & taken


class TestProperty2:
    def test_nearby_ball_bounds(self, any_metric):
        """Lemma 2.3 (2): r_c(j) <= r_u(j) and d(u,c) <= 2 r_u(j)."""
        packing = BallPacking(any_metric)
        for j in packing.levels:
            for u in any_metric.nodes:
                ball = packing.nearby_ball(u, j)
                r = any_metric.r_u(u, j)
                assert ball.radius <= r + 1e-9
                assert any_metric.distance(u, ball.center) <= 2 * r + 1e-9

    @given(graph=random_connected_graph(), j=st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_property_2_random_graphs(self, graph, j):
        metric = GraphMetric(graph)
        packing = BallPacking(metric)
        j = min(j, packing.top_level)
        for u in metric.nodes:
            ball = packing.nearby_ball(u, j)
            r = metric.r_u(u, j)
            assert ball.radius <= r + 1e-9
            assert metric.distance(u, ball.center) <= 2 * r + 1e-9


class TestLookups:
    def test_ball_containing_is_consistent(self, grid_packing, grid_metric):
        for j in grid_packing.levels:
            for ball in grid_packing.packing(j):
                for v in ball.members:
                    assert grid_packing.ball_containing(v, j) is ball

    def test_ball_containing_none_for_uncovered(self):
        metric = GraphMetric(path_graph(6))
        packing = BallPacking(metric)
        top = packing.top_level
        for j in packing.levels:
            covered = set()
            for ball in packing.packing(j):
                covered |= ball.members
            for v in metric.nodes:
                got = packing.ball_containing(v, j)
                assert (got is not None) == (v in covered)

    def test_voronoi_center_is_a_center(self, grid_packing, grid_metric):
        for j in grid_packing.levels:
            centers = set(grid_packing.centers(j))
            for u in range(0, grid_metric.n, 5):
                assert grid_packing.voronoi_center(u, j) in centers

    def test_voronoi_center_is_nearest(self, grid_packing, grid_metric):
        for j in grid_packing.levels:
            centers = grid_packing.centers(j)
            for u in range(0, grid_metric.n, 7):
                c = grid_packing.voronoi_center(u, j)
                best = min(
                    grid_metric.distance(u, x) for x in centers
                )
                assert grid_metric.distance(u, c) == pytest.approx(best)

    def test_centers_listed_in_selection_order(self, grid_packing):
        for j in grid_packing.levels:
            assert grid_packing.centers(j) == [
                b.center for b in grid_packing.packing(j)
            ]
