"""Tests for the (1+eps)-approximate distance-labeling oracle."""

import pytest
from hypothesis import given, settings

from repro.core.params import SchemeParameters
from repro.core.types import PreprocessingError
from repro.metric.graph_metric import GraphMetric
from repro.oracle.distance_oracle import DistanceOracle

from tests.test_rnet import random_connected_graph

PARAMS = SchemeParameters(epsilon=0.25)


class TestConstruction:
    def test_large_epsilon_rejected(self, grid_metric):
        with pytest.raises(PreprocessingError):
            DistanceOracle(grid_metric, SchemeParameters(epsilon=0.75))

    def test_labels_contain_all_levels_of_rings(self, grid_metric):
        oracle = DistanceOracle(grid_metric, PARAMS)
        hierarchy = oracle.hierarchy
        for u in (0, 17, 35):
            label = oracle.label(u)
            for i in hierarchy.levels:
                expected = hierarchy.ring(u, i, PARAMS.epsilon)
                assert sorted(label.get(i, {})) == sorted(expected)

    def test_label_distances_exact(self, grid_metric):
        oracle = DistanceOracle(grid_metric, PARAMS)
        for u in (0, 20):
            for i, ring in oracle.label(u).items():
                for x, d in ring.items():
                    assert d == pytest.approx(grid_metric.distance(u, x))

    def test_label_bits_positive(self, grid_metric):
        oracle = DistanceOracle(grid_metric, PARAMS)
        assert oracle.max_label_bits() > 0
        for u in grid_metric.nodes:
            assert oracle.label_bits(u) > 0


class TestEstimates:
    def test_self_distance_zero(self, grid_metric):
        oracle = DistanceOracle(grid_metric, PARAMS)
        assert oracle.estimate(4, 4) == 0.0

    def test_estimate_never_underestimates(self, grid_metric):
        oracle = DistanceOracle(grid_metric, PARAMS)
        for u in range(0, grid_metric.n, 4):
            for v in range(0, grid_metric.n, 3):
                if u != v:
                    assert oracle.estimate(u, v) >= (
                        grid_metric.distance(u, v) - 1e-9
                    )

    def test_estimate_within_guarantee(self, any_metric):
        oracle = DistanceOracle(any_metric, PARAMS)
        bound = oracle.guarantee()
        pairs = [
            (u, v)
            for u in range(0, any_metric.n, 3)
            for v in range(0, any_metric.n, 4)
            if u != v
        ]
        worst, mean = oracle.verify(pairs)
        assert worst <= bound + 1e-9
        assert mean <= worst

    def test_close_pairs_estimated_exactly(self, grid_metric):
        """Within 1/eps, the destination is in the level-0 ring."""
        oracle = DistanceOracle(grid_metric, PARAMS)
        for u in range(0, grid_metric.n, 5):
            for v in grid_metric.ball(u, 1.0 / PARAMS.epsilon):
                if u != v:
                    assert oracle.estimate(u, v) == pytest.approx(
                        grid_metric.distance(u, v)
                    )

    def test_estimate_from_labels_is_static(self, grid_metric):
        oracle = DistanceOracle(grid_metric, PARAMS)
        u, v = 0, grid_metric.n - 1
        est = DistanceOracle.estimate_from_labels(
            oracle.label(u), oracle.label(v)
        )
        assert est == pytest.approx(oracle.estimate(u, v))

    def test_guarantee_formula(self):
        oracle_params = SchemeParameters(epsilon=0.25)
        expected = 1.0 + 8.0 / (4.0 - 2.0)
        assert DistanceOracle(
            GraphMetricForTest(), oracle_params
        ).guarantee() == pytest.approx(expected)

    def test_smaller_epsilon_tightens_estimates(self, grid_metric):
        loose = DistanceOracle(grid_metric, SchemeParameters(epsilon=0.4))
        tight = DistanceOracle(grid_metric, SchemeParameters(epsilon=0.125))
        pairs = [(0, 35), (5, 30), (17, 18)]
        assert tight.verify(pairs)[0] <= loose.verify(pairs)[0] + 1e-9

    @given(graph=random_connected_graph())
    @settings(max_examples=20, deadline=None)
    def test_guarantee_on_random_graphs(self, graph):
        metric = GraphMetric(graph)
        oracle = DistanceOracle(metric, PARAMS)
        bound = oracle.guarantee()
        for u in metric.nodes:
            for v in metric.nodes:
                if u == v:
                    continue
                ratio = oracle.estimate(u, v) / metric.distance(u, v)
                assert 1.0 - 1e-9 <= ratio <= bound + 1e-9


def GraphMetricForTest():
    from repro.graphs.generators import path_graph

    return GraphMetric(path_graph(4))
