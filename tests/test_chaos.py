"""Tests for the chaos subsystem: lossy channels, ARQ, table auditing."""

import random

import pytest

from repro.chaos import ArqConfig, ChaosConfig, ChaosNetwork, TransportStatus
from repro.chaos.audit import (
    CorruptionInjector,
    TableAuditor,
    TableIntegrityError,
    quarantine_and_repair,
    verify_against_cold,
)
from repro.core.seeding import derive_seed
from repro.graphs.generators import grid_2d, path_graph
from repro.metric.graph_metric import GraphMetric
from repro.pipeline.context import BuildContext
from repro.runtime.simulator import (
    Demand,
    DeliveredPacket,
    SimulationReport,
    TrafficSimulator,
    uniform_demands,
)
from repro.schemes.cowen_landmark import CowenLandmarkScheme
from repro.schemes.shortest_path import ShortestPathScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme


@pytest.fixture(scope="module")
def path_scheme():
    return ShortestPathScheme(GraphMetric(path_graph(6)))


def _grid_demands(n, count=40, seed=3):
    return uniform_demands(n, count, rate=2.0, seed=seed)


# ----------------------------------------------------------------------
# Seed splitting
# ----------------------------------------------------------------------


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "chaos", 1, 2) == derive_seed(7, "chaos", 1, 2)

    def test_streams_independent(self):
        assert derive_seed(7, "chaos") != derive_seed(7, "demands")
        assert derive_seed(7, "chaos", 0) != derive_seed(7, "chaos", 1)
        assert derive_seed(7, "chaos") != derive_seed(8, "chaos")

    def test_range(self):
        for idx in range(50):
            value = derive_seed(1, "s", idx)
            assert 0 <= value < 2**64


# ----------------------------------------------------------------------
# Channel configuration and fault draws
# ----------------------------------------------------------------------


class TestChaosConfig:
    def test_defaults_are_faultless(self):
        assert ChaosConfig().faultless

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(loss=-0.1)
        with pytest.raises(ValueError):
            ChaosConfig(loss=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(jitter=-1.0)
        with pytest.raises(ValueError):
            ChaosConfig(corruption_bits=0)

    def test_arq_validation(self):
        with pytest.raises(ValueError):
            ArqConfig(ack_timeout=0.0)
        with pytest.raises(ValueError):
            ArqConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ArqConfig(backoff_cap=0.5)
        with pytest.raises(ValueError):
            ArqConfig(max_retries=-1)


class TestLinkFaults:
    def test_faultless_network_never_faults(self, path_scheme):
        chaos = ChaosNetwork(path_scheme.metric, seed=4)
        for packet in range(20):
            faults = chaos.link_faults(packet, 0, 0, header_bits=16)
            assert not faults.dropped
            assert faults.extra_delay == 0.0
            assert not faults.duplicated
            assert faults.corrupt_bits == ()
        assert not chaos.ack_dropped(0, 0, [(0, 1)])

    def test_draws_are_stateless_and_order_free(self, path_scheme):
        config = ChaosConfig(loss=0.3, jitter=1.0, duplication=0.2)
        first = ChaosNetwork(path_scheme.metric, config, seed=9)
        second = ChaosNetwork(path_scheme.metric, config, seed=9)
        keys = [(3, 0, 2), (1, 1, 0), (3, 0, 2), (0, 0, 0)]
        draws_a = [first.link_faults(*k) for k in keys]
        draws_b = [second.link_faults(*k) for k in reversed(keys)]
        assert draws_a[0] == draws_a[2]  # same key, same faults
        assert draws_a[0] == draws_b[1]  # order of queries irrelevant
        assert draws_a[3] == draws_b[0]
        assert draws_a[1] == draws_b[2]

    def test_distance_delegates_to_base(self, path_scheme):
        metric = path_scheme.metric
        chaos = ChaosNetwork(metric, ChaosConfig(loss=0.5), seed=1)
        assert chaos.distance(0, 1) == metric.distance(0, 1)
        assert chaos.metric is metric


# ----------------------------------------------------------------------
# Zero-fault identity (satellite 1)
# ----------------------------------------------------------------------


def _run_pair(scheme, demands, trace=False):
    sim = TrafficSimulator(scheme)
    plain = sim.run(demands, trace=trace)
    degenerate = sim.run(
        demands, trace=trace, chaos=ChaosNetwork(scheme.metric, seed=0)
    )
    return plain, degenerate


def _all_six(grid_metric, params, labeled_nonsf, labeled_sf,
             nameind_simple, nameind_sf):
    return [
        ShortestPathScheme(grid_metric, params),
        CowenLandmarkScheme(grid_metric, params),
        labeled_nonsf,
        labeled_sf,
        nameind_simple,
        nameind_sf,
    ]


class TestZeroFaultIdentity:
    def test_bit_identical_across_all_schemes(
        self, grid_metric, params, labeled_nonsf, labeled_sf,
        nameind_simple, nameind_sf,
    ):
        """A faultless ChaosNetwork reproduces the plain simulator bit
        for bit: paths, costs, latencies, queueing, link occupancy."""
        demands = _grid_demands(grid_metric.n)
        schemes = _all_six(
            grid_metric, params, labeled_nonsf, labeled_sf,
            nameind_simple, nameind_sf,
        )
        for scheme in schemes:
            plain, degenerate = _run_pair(scheme, demands)
            assert len(plain.packets) == len(degenerate.packets)
            for p, d in zip(plain.packets, degenerate.packets):
                assert p.path == d.path
                assert p.physical_path == d.physical_path
                assert p.delivered_at == d.delivered_at  # bitwise
                assert p.queueing == d.queueing
                assert p.propagation == d.propagation
            assert plain.busiest_links(10) == degenerate.busiest_links(10)
            assert degenerate.delivery_rate() == 1.0
            assert degenerate.retransmissions() == 0

    def test_traces_identical(self, nameind_sf):
        demands = _grid_demands(nameind_sf.metric.n, count=12)
        plain, degenerate = _run_pair(nameind_sf, demands, trace=True)
        for p, d in zip(plain.packets, degenerate.packets):
            assert (p.trace is None) == (d.trace is None)
            if p.trace is not None:
                assert p.trace.to_json() == d.trace.to_json()

    def test_self_demand(self, path_scheme):
        report = TrafficSimulator(path_scheme).run(
            [Demand(2, 2, inject_at=1.5)],
            chaos=ChaosNetwork(path_scheme.metric, seed=0),
        )
        assert report.delivery_rate() == 1.0
        assert report.packets[0].delivered_at == 1.5


# ----------------------------------------------------------------------
# Transport: loss, ARQ, duplication, corruption
# ----------------------------------------------------------------------


class TestTransport:
    def test_loss_without_arq_drops_packets(self, path_scheme):
        demands = _grid_demands(6, count=60)
        chaos = ChaosNetwork(
            path_scheme.metric, ChaosConfig(loss=0.3), seed=2
        )
        report = TrafficSimulator(path_scheme).run(demands, chaos=chaos)
        assert report.delivery_rate() < 1.0
        counts = report.status_counts()
        assert counts["delivered"] == report.delivered
        assert counts["gave-up"] == report.offered - report.delivered
        # One attempt each: a lost packet dies on its only flight.
        assert all(o.attempts == 1 for o in report.outcomes)

    def test_arq_recovers_delivery(self, path_scheme):
        demands = _grid_demands(6, count=60)
        chaos = ChaosNetwork(
            path_scheme.metric, ChaosConfig(loss=0.2), seed=2
        )
        report = TrafficSimulator(path_scheme).run(
            demands, chaos=chaos, arq=ArqConfig(max_retries=40)
        )
        assert report.delivery_rate() == 1.0
        assert report.retransmissions() > 0
        assert report.retransmission_overhead() > 0.0

    def test_total_loss_gives_up_after_budget(self, path_scheme):
        demands = [Demand(0, 5), Demand(4, 1, inject_at=0.5)]
        chaos = ChaosNetwork(
            path_scheme.metric, ChaosConfig(loss=1.0), seed=2
        )
        arq = ArqConfig(max_retries=3)
        report = TrafficSimulator(path_scheme).run(
            demands, chaos=chaos, arq=arq
        )
        assert report.delivered == 0
        for outcome in report.outcomes:
            assert outcome.status is TransportStatus.GAVE_UP
            assert outcome.attempts == 1 + arq.max_retries

    def test_duplicates_suppressed_but_counted(self, path_scheme):
        demands = _grid_demands(6, count=40)
        chaos = ChaosNetwork(
            path_scheme.metric, ChaosConfig(duplication=0.5), seed=7
        )
        report = TrafficSimulator(path_scheme).run(
            demands, chaos=chaos, arq=ArqConfig(max_retries=4)
        )
        # Duplication alone never loses anything, and the receiver
        # delivers each sequence number exactly once.
        assert report.delivery_rate() == 1.0
        assert report.delivered == len(demands)
        assert report.duplicate_deliveries() > 0

    def test_corruption_detected_with_arq(self, path_scheme):
        demands = _grid_demands(6, count=60)
        chaos = ChaosNetwork(
            path_scheme.metric, ChaosConfig(corruption=0.3), seed=5
        )
        report = TrafficSimulator(path_scheme).run(
            demands, chaos=chaos, arq=ArqConfig(max_retries=40)
        )
        # Single-bit flips never slip past the CRC; every corrupted
        # copy is detected, dropped, and eventually retransmitted.
        assert report.corrupt_detected() > 0
        assert report.corrupt_undetected() == 0
        assert report.delivery_rate() == 1.0

    def test_corruption_fatal_without_checksum(self, path_scheme):
        demands = _grid_demands(6, count=60)
        chaos = ChaosNetwork(
            path_scheme.metric, ChaosConfig(corruption=0.3), seed=5
        )
        report = TrafficSimulator(path_scheme).run(demands, chaos=chaos)
        assert report.corrupt_undetected() > 0
        assert report.corrupt_detected() == 0
        assert report.delivery_rate() < 1.0
        statuses = {o.status for o in report.outcomes}
        assert TransportStatus.CORRUPT_UNDETECTED in statuses

    def test_delivery_monotone_in_loss(self, path_scheme):
        """Fixed-seed coupling: raising only the loss rate can never
        deliver a packet the lower rate lost."""
        demands = _grid_demands(6, count=80)
        sim = TrafficSimulator(path_scheme)
        rates = []
        for loss in (0.0, 0.1, 0.2, 0.4, 0.7, 1.0):
            chaos = ChaosNetwork(
                path_scheme.metric, ChaosConfig(loss=loss), seed=11
            )
            rates.append(sim.run(demands, chaos=chaos).delivery_rate())
        assert rates[0] == 1.0
        assert rates[-1] == 0.0
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_runs_deterministic(self, path_scheme):
        demands = _grid_demands(6, count=40)
        config = ChaosConfig(
            loss=0.15, jitter=0.8, duplication=0.1, corruption=0.05
        )
        sim = TrafficSimulator(path_scheme)

        def snapshot():
            chaos = ChaosNetwork(path_scheme.metric, config, seed=13)
            report = sim.run(
                demands, chaos=chaos, arq=ArqConfig(max_retries=10)
            )
            return [
                (
                    o.seq,
                    o.status,
                    o.attempts,
                    o.transmissions,
                    o.delivered_at,
                    o.duplicates,
                    o.corrupt_detected,
                )
                for o in report.outcomes
            ]

        assert snapshot() == snapshot()

    def test_truncated_walk_counts_as_undelivered(self, path_scheme):
        demands = [Demand(0, 5), Demand(1, 4, inject_at=0.1)]
        walks = [[0, 1, 2], [1, 2, 3, 4]]  # first stops short of 5
        chaos = ChaosNetwork(path_scheme.metric, seed=0)
        report = TrafficSimulator(path_scheme).run(
            demands, paths=walks, chaos=chaos, arq=ArqConfig(max_retries=2)
        )
        assert report.delivered == 1
        statuses = [o.status for o in report.outcomes]
        assert statuses[0] is TransportStatus.GAVE_UP
        assert statuses[1] is TransportStatus.DELIVERED

    def test_arq_requires_codec(self, grid_metric, params):
        class NoCodec(ShortestPathScheme):
            def header_codec(self):
                raise AttributeError("no codec")

        scheme = NoCodec(grid_metric, params)
        scheme.header_codec = None  # type: ignore[assignment]
        with pytest.raises(ValueError):
            TrafficSimulator(scheme).run(
                [Demand(0, 1)], arq=ArqConfig(max_retries=1)
            )


# ----------------------------------------------------------------------
# busiest_links determinism (satellite 4)
# ----------------------------------------------------------------------


class TestBusiestLinksTieBreak:
    def test_transmission_counts_tie_break_by_link_id(self):
        # Adversarial insertion order; every link has the same count.
        links = [(9, 1), (0, 3), (4, 4), (0, 2), (1, 0)]
        report = SimulationReport(
            packets=[], link_transmissions={k: 7 for k in links}
        )
        assert report.busiest_links(len(links)) == [
            ((0, 2), 7),
            ((0, 3), 7),
            ((1, 0), 7),
            ((4, 4), 7),
            ((9, 1), 7),
        ]

    def test_mixed_counts_rank_before_tie_break(self):
        report = SimulationReport(
            packets=[],
            link_transmissions={(5, 6): 1, (0, 1): 2, (3, 4): 2},
        )
        assert report.busiest_links(3) == [
            ((0, 1), 2),
            ((3, 4), 2),
            ((5, 6), 1),
        ]

    def test_plain_run_occupancy_tie_break(self):
        def packet(a, b):
            return DeliveredPacket(
                demand=Demand(a, b),
                path=[a, b],
                delivered_at=1.0,
                propagation=1.0,
                queueing=0.0,
                physical_path=[a, b],
            )

        report = SimulationReport(
            packets=[packet(5, 6), packet(1, 2), packet(3, 4)]
        )
        assert report.busiest_links(3) == [
            ((1, 2), 1),
            ((3, 4), 1),
            ((5, 6), 1),
        ]


# ----------------------------------------------------------------------
# Table-integrity auditing
# ----------------------------------------------------------------------


def _fresh_grid_context():
    context = BuildContext()
    metric = context.metric(grid_2d(5))
    return context, metric


class TestTableAudit:
    def test_clean_tables_audit_clean(self):
        _, metric = _fresh_grid_context()
        auditor = TableAuditor(metric)
        assert auditor.audit() == []
        auditor.verify()  # must not raise

    def test_injector_detected_exactly(self):
        _, metric = _fresh_grid_context()
        auditor = TableAuditor(metric)
        injected = CorruptionInjector(seed=3).corrupt(metric, [11, 4, 19])
        assert injected == [4, 11, 19]
        assert auditor.audit() == [4, 11, 19]
        with pytest.raises(TableIntegrityError):
            auditor.verify()

    def test_injector_rejects_bad_node(self):
        _, metric = _fresh_grid_context()
        with pytest.raises(ValueError):
            CorruptionInjector().corrupt(metric, [metric.n])

    def test_quarantine_and_repair_heals(self):
        context, metric = _fresh_grid_context()
        auditor = TableAuditor(metric)
        victims = [2, 7, 13, 21]
        injected = CorruptionInjector(seed=8).corrupt(metric, victims)
        report = quarantine_and_repair(context, auditor, injected=injected)
        assert report.detection_rate == 1.0
        assert report.detected == sorted(victims)
        assert report.rows_respliced == len(victims)
        assert report.clean_after
        assert auditor.audit() == []
        # The healed rows are accounted as rebuilt partitions.
        assert context.stats.built("metric_row") >= len(victims)

    def test_repaired_scheme_bit_identical_to_cold(self):
        context, metric = _fresh_grid_context()
        scheme = context.scheme(SimpleNameIndependentScheme, metric)
        auditor = TableAuditor(metric)
        injected = CorruptionInjector(seed=1).corrupt(metric, [6, 17])
        quarantine_and_repair(context, auditor, injected=injected)
        pairs = verify_against_cold(
            scheme, SimpleNameIndependentScheme, seed=5
        )
        assert pairs > 0

    def test_verify_against_cold_flags_divergence(self):
        context, metric = _fresh_grid_context()
        scheme = context.scheme(ShortestPathScheme, metric)
        true_route = scheme.route

        def lying_route(source, target):
            result = true_route(source, target)
            result.cost += 1.0
            return result

        scheme.route = lying_route
        try:
            with pytest.raises(TableIntegrityError):
                verify_against_cold(scheme, ShortestPathScheme, seed=5)
        finally:
            scheme.route = true_route

    def test_repair_rows_empty_is_noop(self):
        context, metric = _fresh_grid_context()
        assert context.repair_rows(metric, []) == 0

    def test_row_digest_sensitive_and_stable(self):
        _, metric = _fresh_grid_context()
        before = metric.row_digest(3)
        assert before == metric.row_digest(3)
        rng = random.Random(0)
        CorruptionInjector(seed=rng.randrange(2**32)).corrupt(metric, [3])
        assert metric.row_digest(3) != before
        assert metric.row_digest(4) == metric.row_digest(4)
