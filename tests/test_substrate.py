"""Strategy-equivalence property suite: lazy must equal dense, bitwise.

The substrate refactor (``repro.metric.substrate``) put two strategies
behind the ``GraphMetric`` facade; the contract is that every query
answers *byte-identically* on both — distances, balls, size-radii,
next hops, digests, and the churn dirty-set machinery.  These tests hold
that contract on every fixture family, plus exercise the lazy-only
surfaces (row-store budget/eviction, partial-row reuse, copy-on-write
mutation, double-sweep diameter bound, pickling of materialized rows).
"""

from __future__ import annotations

import pickle
import random

import networkx as nx
import numpy as np
import pytest

from repro.core.edits import EditKind, GraphEdit, apply_edit_to_graph
from repro.graphs.generators import (
    exponential_path,
    grid_2d,
    grid_with_holes,
    random_geometric,
)
from repro.metric.graph_metric import DISTANCE_SLACK, GraphMetric
from repro.metric.substrate import (
    DENSE_NODE_LIMIT,
    EXACT_DIAMETER_LIMIT,
    RowStore,
    _Row,
)

FAMILIES = {
    "grid": lambda: grid_2d(6),
    "holes": lambda: grid_with_holes(7, hole_fraction=0.25, seed=3),
    "geometric": lambda: random_geometric(48, seed=2),
    "exponential": lambda: exponential_path(14),
}


@pytest.fixture(scope="module", params=sorted(FAMILIES))
def metric_pair(request):
    graph = FAMILIES[request.param]()
    dense = GraphMetric(graph, strategy="dense")
    lazy = GraphMetric(graph.copy(), strategy="lazy")
    return dense, lazy


# ----------------------------------------------------------------------
# Query-surface bit-identity
# ----------------------------------------------------------------------


def test_strategy_resolution():
    grid = grid_2d(4)
    assert GraphMetric(grid).strategy == "dense"  # auto, small n
    assert GraphMetric(grid, strategy="lazy").strategy == "lazy"
    assert 16 <= DENSE_NODE_LIMIT  # auto keeps every fixture dense
    from repro.core.types import PreprocessingError

    with pytest.raises(PreprocessingError):
        GraphMetric(grid, strategy="bogus")


def test_distances_rows_and_eccentricity_match(metric_pair):
    dense, lazy = metric_pair
    for u in dense.nodes:
        assert np.array_equal(dense.distances_from(u), lazy.distances_from(u))
        assert np.array_equal(
            dense.predecessors_from(u), lazy.predecessors_from(u)
        )
        assert dense.eccentricity(u) == lazy.eccentricity(u)
    rng = random.Random(7)
    for _ in range(200):
        u = rng.randrange(dense.n)
        v = rng.randrange(dense.n)
        assert dense.distance(u, v) == lazy.distance(u, v)


def test_balls_match(metric_pair):
    dense, lazy = metric_pair
    rng = random.Random(11)
    radii = [0.0, 1.0, dense.diameter / 3.0, dense.diameter, 2 * dense.diameter]
    radii += [rng.uniform(0, dense.diameter) for _ in range(5)]
    for u in dense.nodes:
        for r in radii:
            assert dense.ball(u, r) == lazy.ball(u, r)
            assert dense.ball_size(u, r) == lazy.ball_size(u, r)
            assert dense.ball_set(u, r) == lazy.ball_set(u, r)
        ids_d, dist_d = dense.ball_with_distances(u, radii[2])
        ids_l, dist_l = lazy.ball_with_distances(u, radii[2])
        assert np.array_equal(ids_d, ids_l)
        assert np.array_equal(dist_d, dist_l)


def test_size_radii_match(metric_pair):
    dense, lazy = metric_pair
    for u in dense.nodes:
        for size in range(1, dense.n + 1):
            assert dense.size_radius(u, size) == lazy.size_radius(u, size)
            assert dense.size_ball(u, size) == lazy.size_ball(u, size)
        for j in range(dense.log_n + 1):
            assert dense.r_u(u, j) == lazy.r_u(u, j)
        r, members = lazy.size_ball_with_radius(u, max(1, dense.n // 2))
        assert r == dense.size_radius(u, max(1, dense.n // 2))
        assert members == dense.size_ball(u, max(1, dense.n // 2))
    for bad in (0, dense.n + 1):
        with pytest.raises(ValueError):
            lazy.size_radius(0, bad)
        with pytest.raises(ValueError):
            lazy.size_ball(0, bad)


def test_nearest_and_max_distance_match(metric_pair):
    dense, lazy = metric_pair
    rng = random.Random(13)
    for _ in range(60):
        u = rng.randrange(dense.n)
        k = rng.randrange(1, dense.n)
        cands = rng.sample(range(dense.n), k)
        assert dense.nearest_in(u, cands) == lazy.nearest_in(u, cands)
        for tol in (0.0, DISTANCE_SLACK, 1.0):
            # A wrong hint must never change the answer, only the work.
            hint = rng.choice([None, 0.5, dense.diameter])
            assert dense.nearest_among(u, cands, tol=tol) == lazy.nearest_among(
                u, cands, tol=tol, hint=hint
            )
        assert dense.max_distance_to(u, cands) == lazy.max_distance_to(
            u, cands, hint=rng.choice([None, 1.0])
        )
    with pytest.raises(ValueError):
        lazy.nearest_in(0, [])


def test_next_hops_and_paths_match(metric_pair):
    dense, lazy = metric_pair
    for u in dense.nodes:
        for v in dense.nodes:
            assert dense.next_hop(u, v) == lazy.next_hop(u, v)
    rng = random.Random(17)
    for _ in range(40):
        u = rng.randrange(dense.n)
        v = rng.randrange(dense.n)
        assert dense.shortest_path(u, v) == lazy.shortest_path(u, v)


def test_digests_diameter_and_scalars_match(metric_pair):
    dense, lazy = metric_pair
    assert dense.diameter == lazy.diameter
    assert lazy.diameter_is_exact
    assert dense.log_diameter == lazy.log_diameter
    assert dense.log_n == lazy.log_n
    assert dense.scale == lazy.scale
    for u in dense.nodes:
        assert dense.row_digest(u) == lazy.row_digest(u)


def test_lazy_stats_track_materialization(metric_pair):
    dense, lazy = metric_pair
    stats = lazy.substrate_stats()
    assert stats["strategy"] == "lazy"
    assert 0 < stats["rows_materialized"] <= dense.n
    assert stats["stored_bytes"] > 0
    dense_stats = dense.substrate_stats()
    assert dense_stats["strategy"] == "dense"
    assert dense_stats["rows_materialized"] == dense.n


# ----------------------------------------------------------------------
# Bounded searches really are bounded
# ----------------------------------------------------------------------


def test_small_balls_do_not_materialize_full_rows():
    metric = GraphMetric(grid_2d(12), strategy="lazy")
    for u in range(metric.n):
        metric.ball(u, 1.0)
        metric.size_radius(u, 4)
    stats = metric.substrate_stats()
    assert stats["rows_materialized"] == 0
    assert stats["bounded_searches"] >= metric.n
    # Partial entries answer within their limit without re-searching.
    searches = stats["bounded_searches"]
    metric.ball(0, 1.0)
    assert metric.substrate_stats()["bounded_searches"] == searches


def test_row_store_budget_evicts_but_answers_stay_exact():
    graph = grid_2d(8)
    dense = GraphMetric(graph, strategy="dense")
    n = dense.n
    # Budget fits only a couple of full rows (each row stores 4 arrays).
    tiny = GraphMetric(graph.copy(), strategy="lazy", row_budget_bytes=4096)
    assert tiny.row_budget_bytes == 4096
    for u in range(n):
        assert np.array_equal(dense.distances_from(u), tiny.distances_from(u))
    stats = tiny.substrate_stats()
    assert stats["evictions"] > 0
    assert stats["stored_bytes"] <= 4096
    # Evicted rows recompute identically.
    assert np.array_equal(dense.distances_from(0), tiny.distances_from(0))
    assert dense.ball(0, 3.0) == tiny.ball(0, 3.0)


def test_row_store_admits_oversized_single_entry():
    store = RowStore(budget_bytes=1)
    dist = np.arange(64, dtype=float)
    pred = np.arange(64, dtype=np.int32)
    store.put(0, _Row(dist, pred, float("inf"), True))
    assert store.get(0) is not None  # never livelocks on one huge row
    store.put(1, _Row(dist.copy(), pred.copy(), float("inf"), True))
    assert store.get(1) is not None
    assert store.get(0) is None  # LRU victim
    assert store.evictions == 1


# ----------------------------------------------------------------------
# Churn: updated() dirty sets and spliced rows
# ----------------------------------------------------------------------


def _random_edit(graph: nx.Graph, rng: random.Random) -> GraphEdit:
    n = graph.number_of_nodes()
    while True:
        kind = rng.choice(
            [EditKind.WEIGHT, EditKind.WEIGHT, EditKind.EDGE_ADD,
             EditKind.EDGE_REMOVE]
        )
        if kind is EditKind.WEIGHT:
            u, v = rng.choice(sorted(graph.edges()))
            w = graph[u][v].get("weight", 1.0) * rng.uniform(0.6, 2.5)
            return GraphEdit(kind=kind, edge=(u, v), weight=w)
        if kind is EditKind.EDGE_ADD:
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u != v and not graph.has_edge(u, v):
                return GraphEdit(
                    kind=kind, edge=(u, v), weight=rng.uniform(1.0, 4.0)
                )
            continue
        u, v = rng.choice(sorted(graph.edges()))
        trial = graph.copy()
        trial.remove_edge(u, v)
        if nx.is_connected(trial):
            return GraphEdit(kind=kind, edge=(u, v))


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_updated_matches_dense_and_cold(family):
    graph = FAMILIES[family]()
    dense = GraphMetric(graph.copy(), strategy="dense")
    lazy = GraphMetric(graph.copy(), strategy="lazy")
    rng = random.Random(hash(family) % (2**32))
    # Warm the lazy store with a mix of partial and full rows so the
    # dirty-set machinery must invalidate through real cached state.
    for u in range(0, lazy.n, 3):
        lazy.ball(u, 2.0)
    for u in range(0, lazy.n, 5):
        lazy.distances_from(u)
        lazy.next_hop(u, (u + 1) % lazy.n)
    for step in range(6):
        edit = _random_edit(dense.graph, rng)
        post_dense = dense.graph.copy()
        post_lazy = lazy.graph.copy()
        apply_edit_to_graph(post_dense, edit)
        apply_edit_to_graph(post_lazy, edit)
        dense, dirty_dense = dense.updated(post_dense, edit)
        lazy, dirty_lazy = lazy.updated(post_lazy, edit)
        assert dirty_dense == dirty_lazy
        cold = GraphMetric(post_dense.copy(), strategy="dense")
        assert np.array_equal(dense._dist, cold._dist)
        assert np.array_equal(dense._pred, cold._pred)
        for u in range(0, dense.n, 4):
            assert np.array_equal(
                cold.distances_from(u), lazy.distances_from(u)
            )
            assert cold.row_digest(u) == lazy.row_digest(u)
        assert dense.diameter == lazy.diameter == cold.diameter


def test_updated_carries_clean_lazy_rows_without_research():
    graph = grid_2d(6)
    metric = GraphMetric(graph.copy(), strategy="lazy")
    far_corner = metric.n - 1
    metric.distances_from(far_corner)
    # Reweight an edge near node 0; the far corner's row may or may not
    # change, but if it is clean it must be carried, not re-searched.
    edit = GraphEdit(kind=EditKind.WEIGHT, edge=(0, 1), weight=5.0)
    post = metric.graph.copy()
    apply_edit_to_graph(post, edit)
    new_metric, dirty = metric.updated(post, edit)
    if far_corner not in dirty:
        searches = new_metric.substrate_stats()["bounded_searches"]
        new_metric.distances_from(far_corner)
        assert new_metric.substrate_stats()["bounded_searches"] == searches


def test_splice_rows_equivalent_across_strategies(metric_pair):
    dense, lazy = metric_pair
    dense = GraphMetric(dense.graph.copy(), strategy="dense")
    lazy = GraphMetric(lazy.graph.copy(), strategy="lazy")
    rows = [0, dense.n // 2, dense.n - 1]
    dense.splice_rows(rows)
    lazy.splice_rows(rows)
    for u in rows:
        assert np.array_equal(dense.distances_from(u), lazy.distances_from(u))
        assert dense.row_digest(u) == lazy.row_digest(u)
    from repro.core.types import PreprocessingError

    with pytest.raises(PreprocessingError):
        lazy.splice_rows([dense.n])


# ----------------------------------------------------------------------
# Mutation (chaos injector) surface
# ----------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ["dense", "lazy"])
def test_mutable_row_feeds_derived_caches(strategy):
    metric = GraphMetric(grid_2d(5), strategy=strategy)
    reference = GraphMetric(grid_2d(5), strategy="dense")
    before = metric.row_digest(3)
    dist_row, pred_row = metric.mutable_row(3)
    dist_row[7] *= 10.0
    metric.invalidate_derived(3)
    assert metric.row_digest(3) != before
    # Derived views must read the corrupted value, not a stale cache.
    assert metric.distances_from(3)[7] == reference.distances_from(3)[7] * 10.0
    assert 7 in metric.ball(3, reference.distances_from(3)[7] * 10.0)
    metric.splice_rows([3])
    assert metric.row_digest(3) == before


def test_lazy_mutable_row_is_copy_on_write():
    metric = GraphMetric(grid_2d(6), strategy="lazy")
    for u in range(metric.n):
        metric.distances_from(u)  # materialize, then snapshot via updated()
    edit = GraphEdit(kind=EditKind.WEIGHT, edge=(0, 1), weight=3.0)
    post = metric.graph.copy()
    apply_edit_to_graph(post, edit)
    snapshot, dirty = metric.updated(post, edit)
    carried = sorted(set(metric.nodes) - dirty)
    assert carried  # a local reweight cannot dirty every source
    victim = carried[0]
    before = metric.distances_from(victim).copy()
    dist_row, _ = metric.mutable_row(victim)
    dist_row[4] *= 7.0
    metric.invalidate_derived(victim)
    # The shared snapshot must not see the corruption.
    assert np.array_equal(snapshot.distances_from(victim), before)


# ----------------------------------------------------------------------
# Diameter: exact fallback and double-sweep bound
# ----------------------------------------------------------------------


def test_lazy_diameter_exact_below_limit(metric_pair):
    dense, lazy = metric_pair
    assert lazy.n <= EXACT_DIAMETER_LIMIT
    assert lazy.diameter == dense.diameter
    assert lazy.diameter_is_exact


def test_double_sweep_bound_on_large_graph(monkeypatch):
    import repro.metric.substrate as substrate

    # Force the bound path on a graph small enough to verify exactly.
    monkeypatch.setattr(substrate, "EXACT_DIAMETER_LIMIT", 8)
    graph = random_geometric(64, seed=5)
    exact = GraphMetric(graph.copy(), strategy="dense").diameter
    lazy = GraphMetric(graph.copy(), strategy="lazy")
    assert not lazy.diameter_is_exact
    assert exact / 2 - DISTANCE_SLACK <= lazy.diameter <= exact + DISTANCE_SLACK
    # Trees: the double sweep is exact.
    tree = nx.random_labeled_tree(64, seed=4)
    nx.set_edge_attributes(tree, 1.0, "weight")
    exact_tree = GraphMetric(tree.copy(), strategy="dense").diameter
    lazy_tree = GraphMetric(tree.copy(), strategy="lazy")
    assert lazy_tree.diameter == exact_tree


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ["dense", "lazy"])
def test_pickle_round_trip(strategy):
    metric = GraphMetric(random_geometric(32, seed=9), strategy=strategy)
    metric.distances_from(3)
    metric.ball(5, 1.0)
    clone = pickle.loads(pickle.dumps(metric))
    assert clone.strategy == strategy
    assert clone.n == metric.n
    assert clone.scale == metric.scale
    for u in range(metric.n):
        assert np.array_equal(
            clone.distances_from(u), metric.distances_from(u)
        )
        assert clone.row_digest(u) == metric.row_digest(u)
    assert clone.diameter == metric.diameter


def test_lazy_pickle_stores_only_materialized_rows():
    metric = GraphMetric(random_geometric(40, seed=1), strategy="lazy")
    metric.distances_from(0)
    metric.distances_from(7)
    for u in range(metric.n):
        metric.ball(u, 0.5)  # partial entries: not persisted
    clone = pickle.loads(pickle.dumps(metric))
    assert clone.substrate_stats()["rows_materialized"] == 2
    reference = GraphMetric(metric.graph.copy(), strategy="dense")
    assert np.array_equal(clone.distances_from(7), reference.distances_from(7))
    assert clone.ball(3, 0.5) == reference.ball(3, 0.5)
