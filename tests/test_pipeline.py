"""Tests for the shared-substrate build pipeline (repro.pipeline)."""

from __future__ import annotations

import pytest

from repro.core.params import SchemeParameters
from repro.experiments.harness import sample_pairs
from repro.experiments.table1 import SCHEMES as TABLE1_SCHEMES
from repro.graphs.generators import grid_2d, random_geometric
from repro.pipeline.context import BuildContext, graph_content_key
from repro.pipeline.registry import REGISTRY, run_experiment
from repro.pipeline.parallel import chunk_evenly, resolve_jobs
from repro.pipeline.sampling import sample_ordered_pairs
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme


@pytest.fixture(scope="module")
def graph():
    return grid_2d(5)


# -- substrate sharing ------------------------------------------------------


def test_two_schemes_share_substrates(graph):
    """Two schemes built from one context hold the *same* substrate objects."""
    context = BuildContext()
    metric = context.metric(graph)
    params = SchemeParameters(epsilon=0.5)
    simple = context.scheme(SimpleNameIndependentScheme, metric, params)
    scalefree = context.scheme(ScaleFreeNameIndependentScheme, metric, params)
    assert simple.hierarchy is scalefree.hierarchy
    assert scalefree.underlying.packing is context.packing(metric)
    assert simple.hierarchy is context.hierarchy(metric)


def test_table1_schemes_build_each_substrate_once(graph):
    """All Table-1 schemes on one graph: APSP, hierarchy, packing once each."""
    context = BuildContext()
    params = SchemeParameters(epsilon=0.5)
    metric = context.metric(graph)
    for scheme_cls, _label in TABLE1_SCHEMES:
        context.scheme(scheme_cls, metric, params)
    assert context.stats.built("metric") == 1
    assert context.stats.built("hierarchy") == 1
    assert context.stats.built("packing") == 1


def test_repeated_builds_hit_the_cache(graph):
    context = BuildContext()
    metric = context.metric(graph)
    assert context.metric(graph) is metric
    first = context.scheme(SimpleNameIndependentScheme, metric)
    again = context.scheme(SimpleNameIndependentScheme, metric)
    assert first is again
    assert context.stats.hits.get("scheme", 0) >= 1
    assert context.stats.built("scheme") >= 1  # the underlying + the wrapper


# -- cache-key sensitivity --------------------------------------------------


def test_epsilon_change_misses_scheme_cache(graph):
    context = BuildContext()
    metric = context.metric(graph)
    coarse = context.scheme(
        SimpleNameIndependentScheme, metric, SchemeParameters(epsilon=0.5)
    )
    fine = context.scheme(
        SimpleNameIndependentScheme, metric, SchemeParameters(epsilon=0.25)
    )
    assert coarse is not fine
    # ...but the epsilon-independent hierarchy is still shared.
    assert context.stats.built("hierarchy") == 1


def test_edge_weight_change_misses_metric_cache():
    context = BuildContext()
    g1 = grid_2d(4)
    g2 = grid_2d(4)
    u, v = next(iter(g2.edges()))
    g2[u][v]["weight"] = 7.0
    assert graph_content_key(g1) != graph_content_key(g2)
    m1 = context.metric(g1)
    m2 = context.metric(g2)
    assert m1 is not m2
    assert context.stats.built("metric") == 2


def test_graph_content_key_is_content_based():
    assert graph_content_key(grid_2d(4)) == graph_content_key(grid_2d(4))


# -- on-disk cache ----------------------------------------------------------


def test_disk_cache_round_trip(tmp_path, graph):
    cache_dir = str(tmp_path / "repro-cache")
    params = SchemeParameters(epsilon=0.5)

    first = BuildContext(cache_dir=cache_dir)
    metric = first.metric(graph)
    scheme = first.scheme(ScaleFreeNameIndependentScheme, metric, params)
    pairs = first.pairs(metric, 40)
    want = [scheme.route(u, v) for u, v in pairs]
    assert first.stats.built("metric") == 1

    second = BuildContext(cache_dir=cache_dir)
    metric2 = second.metric(graph)
    scheme2 = second.scheme(ScaleFreeNameIndependentScheme, metric2, params)
    assert second.stats.built("metric") == 0  # loaded, not rebuilt
    assert sum(second.stats.disk_hits.values()) >= 1
    got = [scheme2.route(u, v) for u, v in second.pairs(metric2, 40)]
    assert [(r.path, r.stretch) for r in got] == [
        (r.path, r.stretch) for r in want
    ]


@pytest.mark.parametrize(
    "junk", [b"not a pickle", b"garbage\n", b"", b"\x80\x05trunc"]
)
def test_corrupt_disk_entry_is_rebuilt(tmp_path, graph, junk):
    cache_dir = tmp_path / "repro-cache"
    first = BuildContext(cache_dir=str(cache_dir))
    first.metric(graph)
    for entry in cache_dir.iterdir():
        entry.write_bytes(junk)
    second = BuildContext(cache_dir=str(cache_dir))
    second.metric(graph)
    assert second.stats.built("metric") == 1


# -- parallel evaluation ----------------------------------------------------


def test_parallel_evaluate_matches_serial(graph):
    context = BuildContext()
    metric = context.metric(graph)
    scheme = context.scheme(
        ScaleFreeNameIndependentScheme, metric, SchemeParameters(epsilon=0.5)
    )
    pairs = context.pairs(metric, 60)
    serial = scheme.evaluate(pairs)
    parallel = scheme.evaluate(pairs, jobs=2)
    assert parallel == serial  # dataclass equality: every field bit-identical


def test_chunk_evenly_preserves_order_and_content():
    items = list(range(13))
    chunks = chunk_evenly(items, 4)
    assert [x for chunk in chunks for x in chunk] == items
    assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-2)


# -- pair sampling ----------------------------------------------------------


def test_sample_pairs_exclusion_predicate(graph):
    context = BuildContext()
    metric = context.metric(graph)
    forbidden = {0, 1, 2}
    pairs = sample_pairs(
        metric, 50, exclude=lambda u, v: u in forbidden or v in forbidden
    )
    assert pairs
    assert all(u not in forbidden and v not in forbidden for u, v in pairs)
    assert all(u != v for u, v in pairs)


def test_sample_ordered_pairs_deterministic_and_distinct():
    a = sample_ordered_pairs(30, 100, seed=5)
    b = sample_ordered_pairs(30, 100, seed=5)
    assert a == b
    assert len(set(a)) == len(a) == 100
    assert sample_ordered_pairs(30, 100, seed=6) != a


def test_sample_ordered_pairs_exhaustive_when_count_exceeds_pairs():
    pairs = sample_ordered_pairs(4, 1000)
    assert len(pairs) == 4 * 3
    assert len(set(pairs)) == 12


# -- registry ---------------------------------------------------------------


def test_registry_covers_every_experiment_module():
    assert "table1" in REGISTRY and "storage-audit" in REGISTRY
    assert len(REGISTRY) >= 14


def test_run_experiment_unknown_name_raises():
    with pytest.raises(KeyError):
        run_experiment("no-such-experiment")


def test_run_experiment_shares_context_across_calls():
    context = BuildContext()
    suite_graph = random_geometric(24, seed=3)
    # Prime the context, then confirm a registry run reuses its artifacts.
    context.metric(suite_graph)
    tables = run_experiment(
        "structures", epsilon=0.5, pair_count=20, context=context
    )
    assert tables and all(t.rows for t in tables)


# -- metric cache identity (normalization and object lifetime) --------------


def test_normalized_and_raw_metrics_never_share_artifacts():
    """Regression: ``normalize=False`` used to inherit normalized artifacts.

    On a graph with min edge weight != 1 the two metrics have different
    distances, so hierarchies/packings/pairs/schemes built for one are
    wrong for the other.  The metric key must carry the applied scale.
    """
    import networkx as nx

    graph = nx.path_graph(8)
    for u, v in graph.edges():
        graph[u][v]["weight"] = 4.0
    context = BuildContext()
    normalized = context.metric(graph, normalize=True)
    raw = context.metric(graph, normalize=False)
    assert normalized.distance(0, 1) == pytest.approx(1.0)
    assert raw.distance(0, 1) == pytest.approx(4.0)
    assert context.metric_key(normalized) != context.metric_key(raw)
    h_norm = context.hierarchy(normalized)
    h_raw = context.hierarchy(raw)
    assert h_norm is not h_raw
    assert context.packing(normalized) is not context.packing(raw)
    s_norm = context.scheme(SimpleNameIndependentScheme, normalized)
    s_raw = context.scheme(SimpleNameIndependentScheme, raw)
    assert s_norm is not s_raw
    assert s_raw.metric is raw


def test_normalize_flag_shares_artifacts_when_scale_is_one(graph):
    """With min weight 1 both flags define the same metric: share away."""
    context = BuildContext()
    normalized = context.metric(graph, normalize=True)
    raw = context.metric(graph, normalize=False)
    assert context.metric_key(normalized) == context.metric_key(raw)
    assert context.hierarchy(normalized) is context.hierarchy(raw)


def test_metric_key_survives_id_reuse():
    """Regression: id()-keyed cache could serve a dead metric's key.

    The mapping must hold the metric weakly by object, so a collected
    metric's entry disappears instead of waiting for a new object to
    reuse the id and inherit the wrong content hash.
    """
    import gc
    import weakref

    from repro.metric.graph_metric import GraphMetric

    context = BuildContext()
    keys = []
    refs = []
    for n in (12, 16):
        metric = GraphMetric(random_geometric(n, seed=n))
        keys.append(context.metric_key(metric))
        refs.append(weakref.ref(metric))
        del metric
        gc.collect()
        assert refs[-1]() is None, "context must not keep the metric alive"
        assert len(context._metric_keys) == 0
    assert keys[0] != keys[1]
    # A fresh metric (plausibly reusing a freed id) gets its own key.
    fresh = GraphMetric(random_geometric(12, seed=12))
    assert context.metric_key(fresh) == keys[0]


def test_profile_report_shape(graph):
    context = BuildContext()
    context.metric(graph)
    report = context.profile_report()
    assert report["kinds"]["metric"]["misses"] == 1
    assert report["kinds"]["metric"]["build_seconds"] > 0.0


def test_metric_strategies_are_distinct_cache_entries(graph):
    context = BuildContext()
    dense = context.metric(graph, strategy="dense")
    lazy = context.metric(graph, strategy="lazy")
    assert dense is not lazy
    assert dense.strategy == "dense" and lazy.strategy == "lazy"
    # Same key -> same object; strategy is part of the metric key only.
    assert context.metric(graph, strategy="lazy") is lazy
    # Downstream artifacts are keyed by (content, scale) and shared.
    assert context.metric_key(dense) == context.metric_key(lazy)
    assert context.hierarchy(dense) is context.hierarchy(lazy)


def test_lazy_metric_disk_cache_stores_materialized_rows(tmp_path, graph):
    cache_dir = str(tmp_path / "cache")
    warm = BuildContext(cache_dir=cache_dir)
    metric = warm.metric(graph, strategy="lazy")
    metric.distances_from(0)
    # Rebuild through a second context: the artifact was pickled at
    # build time (zero materialized rows) and must answer identically.
    cold = BuildContext(cache_dir=cache_dir)
    loaded = cold.metric(graph, strategy="lazy")
    assert cold.stats.disk_hits.get("metric") == 1
    assert (loaded.distances_from(0) == metric.distances_from(0)).all()


def test_profile_report_substrate_section(graph):
    context = BuildContext()
    metric = context.metric(graph, strategy="lazy")
    metric.ball(0, 1.5)
    report = context.profile_report()
    section = report["substrate"]
    assert section["bounded_searches"] >= 1
    assert section["rows_materialized"] == 0
    assert "row_store_hit_rate" in section
