"""Tests for Voronoi partitions, shortest-path trees, and tree routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import RouteFailure
from repro.graphs.generators import path_graph, star_graph
from repro.metric.graph_metric import GraphMetric
from repro.trees.spt import ShortestPathTree, voronoi_partition
from repro.trees.tree_router import TreeRouter

from tests.test_rnet import random_connected_graph


class TestVoronoiPartition:
    def test_is_a_partition(self, grid_metric):
        cells = voronoi_partition(grid_metric, [0, 17, 35])
        seen = sorted(v for cell in cells.values() for v in cell)
        assert seen == list(grid_metric.nodes)

    def test_centers_in_own_cells(self, grid_metric):
        cells = voronoi_partition(grid_metric, [0, 17, 35])
        for c, cell in cells.items():
            assert c in cell

    def test_assignment_is_nearest(self, grid_metric):
        centers = [0, 17, 35]
        cells = voronoi_partition(grid_metric, centers)
        for c, cell in cells.items():
            for v in cell:
                best = min(grid_metric.distance(v, x) for x in centers)
                assert grid_metric.distance(v, c) == pytest.approx(best)

    def test_tie_break_least_id(self):
        metric = GraphMetric(path_graph(5))
        cells = voronoi_partition(metric, [0, 4])
        assert 2 in cells[0]  # equidistant, goes to the smaller id

    def test_single_center_takes_all(self, grid_metric):
        cells = voronoi_partition(grid_metric, [3])
        assert sorted(cells[3]) == list(grid_metric.nodes)

    def test_empty_centers_rejected(self, grid_metric):
        with pytest.raises(ValueError):
            voronoi_partition(grid_metric, [])


class TestShortestPathTree:
    def test_spans_members(self, grid_metric):
        tree = ShortestPathTree(grid_metric, 0, [5, 11, 30])
        for v in (0, 5, 11, 30):
            assert tree.contains(v)

    def test_depth_equals_metric_distance(self, any_metric):
        members = list(range(0, any_metric.n, 3))
        tree = ShortestPathTree(any_metric, 0, members)
        assert tree.verify_shortest()

    def test_tree_edges_are_graph_edges(self, grid_metric):
        tree = ShortestPathTree(grid_metric, 0, list(grid_metric.nodes))
        for v in tree.nodes:
            if v != tree.root:
                assert grid_metric.graph.has_edge(v, tree.parent_of(v))

    def test_tree_path_endpoints(self, grid_metric):
        tree = ShortestPathTree(grid_metric, 0, list(grid_metric.nodes))
        path = tree.tree_path(7, 29)
        assert path[0] == 7 and path[-1] == 29

    def test_tree_distance_symmetric(self, grid_metric):
        tree = ShortestPathTree(grid_metric, 0, list(grid_metric.nodes))
        assert tree.tree_distance(3, 20) == pytest.approx(
            tree.tree_distance(20, 3)
        )

    def test_root_path_trivial(self, grid_metric):
        tree = ShortestPathTree(grid_metric, 0, list(grid_metric.nodes))
        assert tree.tree_path(0, 0) == [0]

    def test_children_sorted(self, grid_metric):
        tree = ShortestPathTree(grid_metric, 0, list(grid_metric.nodes))
        for v in tree.nodes:
            kids = tree.children_of(v)
            assert kids == sorted(kids)


class TestTreeRouter:
    def _full_router(self, metric, root=0):
        tree = ShortestPathTree(metric, root, list(metric.nodes))
        return TreeRouter(tree)

    def test_labels_are_a_permutation(self, grid_metric):
        router = self._full_router(grid_metric)
        labels = sorted(router.label(v) for v in grid_metric.nodes)
        assert labels == list(range(grid_metric.n))

    def test_root_label_zero(self, grid_metric):
        router = self._full_router(grid_metric, root=9)
        assert router.label(9) == 0

    def test_route_reaches_target(self, any_metric):
        router = self._full_router(any_metric)
        for u in range(0, any_metric.n, 4):
            for v in range(0, any_metric.n, 5):
                path = router.route(u, router.label(v))
                assert path[0] == u and path[-1] == v

    def test_route_cost_is_tree_distance(self, grid_metric):
        router = self._full_router(grid_metric)
        tree = router.tree
        for u, v in [(0, 35), (7, 8), (12, 12), (30, 1)]:
            cost = router.route_cost(u, router.label(v))
            assert cost == pytest.approx(tree.tree_distance(u, v))

    def test_next_hop_uses_local_state_only(self, grid_metric):
        # next_hop must return either the parent or a child of v.
        router = self._full_router(grid_metric)
        tree = router.tree
        for v in tree.nodes:
            for target in (0, grid_metric.n - 1):
                hop = router.next_hop(v, router.label(target))
                if hop == v:
                    continue
                neighbours = set(tree.children_of(v))
                if v != tree.root:
                    neighbours.add(tree.parent_of(v))
                assert hop in neighbours

    def test_verify_optimal_small(self):
        metric = GraphMetric(path_graph(9))
        router = TreeRouter(
            ShortestPathTree(metric, 4, list(metric.nodes))
        )
        assert router.verify_optimal()

    def test_star_routing(self):
        metric = GraphMetric(star_graph(12))
        router = TreeRouter(
            ShortestPathTree(metric, 0, list(metric.nodes))
        )
        assert router.verify_optimal()

    def test_label_of_nonmember_rejected(self, grid_metric):
        tree = ShortestPathTree(grid_metric, 0, [0, 1])
        router = TreeRouter(tree)
        with pytest.raises(KeyError):
            router.label(grid_metric.n - 1)

    def test_bad_label_rejected(self, grid_metric):
        router = self._full_router(grid_metric)
        with pytest.raises(RouteFailure):
            router.next_hop(0, grid_metric.n + 5)

    def test_storage_bits_positive(self, grid_metric):
        router = self._full_router(grid_metric)
        for v in router.tree.nodes:
            assert router.storage_bits(v) > 0

    def test_storage_scales_with_degree(self, grid_metric):
        router = self._full_router(grid_metric)
        tree = router.tree
        leaf = next(
            v for v in tree.nodes if not tree.children_of(v)
        )
        busy = max(tree.nodes, key=lambda v: len(tree.children_of(v)))
        assert router.storage_bits(leaf) < router.storage_bits(busy)

    @given(graph=random_connected_graph(), root=st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_routing_optimal_on_random_graphs(self, graph, root):
        metric = GraphMetric(graph)
        root = root % metric.n
        tree = ShortestPathTree(metric, root, list(metric.nodes))
        router = TreeRouter(tree)
        for u in metric.nodes:
            for v in metric.nodes:
                cost = router.route_cost(u, router.label(v))
                assert cost == pytest.approx(
                    tree.tree_distance(u, v), rel=1e-9, abs=1e-9
                )
