"""Quickstart: compact routing on a small grid network.

Builds an 8x8 grid, constructs the paper's two headline schemes — the
(1+eps)-stretch labeled scheme (Theorem 1.2) and the (9+eps)-stretch
name-independent scheme (Theorem 1.1) — and routes a few packets,
printing the stretch and the per-node storage compared to the trivial
full-table baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    GraphMetric,
    ScaleFreeLabeledScheme,
    ScaleFreeNameIndependentScheme,
    SchemeParameters,
    ShortestPathScheme,
)
from repro.graphs import grid_2d


def main() -> None:
    metric = GraphMetric(grid_2d(8))
    params = SchemeParameters(epsilon=0.5)
    print(f"network: 8x8 grid, n={metric.n}, diameter={metric.diameter:g}")
    print()

    baseline = ShortestPathScheme(metric, params)
    labeled = ScaleFreeLabeledScheme(metric, params)
    name_independent = ScaleFreeNameIndependentScheme(
        metric, params, underlying=labeled
    )

    corner_to_corner = (0, metric.n - 1)
    neighbours = (27, 28)
    for source, target in (corner_to_corner, neighbours):
        print(f"routing {source} -> {target} "
              f"(shortest path = {metric.distance(source, target):g}):")
        for scheme in (baseline, labeled, name_independent):
            result = scheme.route(source, target)
            print(
                f"  {scheme.name:45s} cost={result.cost:7.3f} "
                f"stretch={result.stretch:5.3f} hops={result.hops}"
            )
        print()

    print("per-node routing tables (max, bits):")
    for scheme in (baseline, labeled, name_independent):
        print(
            f"  {scheme.name:45s} {scheme.max_table_bits():7d} bits, "
            f"header {scheme.header_bits()} bits"
        )
    print()
    print(
        "the labeled scheme guarantees stretch 1+O(eps); the "
        "name-independent scheme 9+O(eps) —\nboth with polylog(n) "
        "tables, versus the baseline's Theta(n log n)."
    )


if __name__ == "__main__":
    main()
