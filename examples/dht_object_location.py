"""DHT-style object location over name-independent compact routing.

The paper motivates name-independent routing with distributed hash
tables: node names are *hashes*, assigned independently of topology, and
a lookup must reach the node responsible for a key knowing only that
hash.  This example builds a random geometric overlay, assigns every
node a random hash-like name (a permutation of [n]), stores objects at
the nodes whose names are closest to the object's key, and serves GET
requests with the Theorem 1.1 scheme — measuring the locality the paper
promises: lookup cost within 9 + O(eps) of the true distance, no matter
how adversarial the name assignment is.

Run:  python examples/dht_object_location.py
"""

import random
import statistics

from repro import (
    GraphMetric,
    ScaleFreeNameIndependentScheme,
    SchemeParameters,
)
from repro.graphs import random_geometric


def responsible_node(key: int, n: int) -> int:
    """Consistent-hashing successor: the name that owns ``key``."""
    return key % n


def main() -> None:
    rng = random.Random(42)
    n = 128
    metric = GraphMetric(random_geometric(n, seed=7))

    # Hash-like naming: a random permutation, exactly the "intrinsic
    # requirements on node names" setting (paper §1, DHT references).
    naming = list(range(n))
    rng.shuffle(naming)

    scheme = ScaleFreeNameIndependentScheme(
        metric, SchemeParameters(epsilon=0.5), naming=naming
    )
    print(f"overlay: geometric graph, n={n}; names = random permutation")
    print(f"per-node routing state: max {scheme.max_table_bits()} bits "
          f"({scheme.max_table_bits() / 8:.0f} bytes)")
    print()

    # Serve 200 GETs from random requesters for random keys.
    stretches = []
    total_cost = 0.0
    for _ in range(200):
        requester = rng.randrange(n)
        key = rng.randrange(10**9)
        owner_name = responsible_node(key, n)
        result = scheme.route_to_name(requester, owner_name)
        if result.source == result.target:
            continue
        stretches.append(result.stretch)
        total_cost += result.cost

    print("GET request routing (200 lookups, arbitrary keys):")
    print(f"  mean stretch   : {statistics.fmean(stretches):.3f}")
    print(f"  median stretch : {statistics.median(stretches):.3f}")
    print(f"  max stretch    : {max(stretches):.3f}  "
          f"(guarantee: 9 + O(eps))")
    print()

    # The adversarial check: rename everything and nothing degrades.
    rng.shuffle(naming)
    adversarial = ScaleFreeNameIndependentScheme(
        metric, SchemeParameters(epsilon=0.5), naming=naming
    )
    worst = max(
        adversarial.route_to_name(u, naming[v]).stretch
        for u in range(0, n, 11)
        for v in range(0, n, 13)
        if u != v
    )
    print(f"after re-hashing every name: worst sampled stretch "
          f"{worst:.3f} — the guarantee is naming-independent.")


if __name__ == "__main__":
    main()
