"""Sensor field with obstacles: routing where growth-boundedness fails.

A sensor network deployed over terrain with obstacles induces exactly
the metric the paper highlights: a grid with holes is still *doubling*
(it lives in the plane) but not *growth-bounded* (ball populations jump
across hole boundaries), so growth-bounded routing schemes lose their
guarantees while this paper's schemes do not.

The example deploys a 14x14 field with 30% of cells removed, then
compares all four schemes on stretch vs storage — the trade-off a sensor
deployment (RAM-constrained nodes) actually cares about.

Run:  python examples/sensor_grid_with_holes.py
"""

from repro import (
    GraphMetric,
    NonScaleFreeLabeledScheme,
    ScaleFreeLabeledScheme,
    ScaleFreeNameIndependentScheme,
    SchemeParameters,
    ShortestPathScheme,
    SimpleNameIndependentScheme,
    doubling_dimension,
    growth_bound_constant,
)
from repro.experiments.harness import sample_pairs
from repro.graphs import grid_with_holes


def main() -> None:
    graph = grid_with_holes(14, hole_fraction=0.3, seed=23)
    metric = GraphMetric(graph)
    params = SchemeParameters(epsilon=0.5)

    print(f"sensor field: 14x14 grid minus obstacles -> n={metric.n}")
    print(f"  doubling dimension (greedy)   : "
          f"{doubling_dimension(metric):.2f}")
    print(f"  growth-bound constant observed: "
          f"{growth_bound_constant(metric):.2f} "
          f"(unbounded families exist here)")
    print()

    pairs = sample_pairs(metric, 400, seed=1)
    print(f"{'scheme':46s} {'max':>6s} {'mean':>6s} {'table(B)':>9s} "
          f"{'hdr(b)':>7s}")
    for cls in (
        ShortestPathScheme,
        NonScaleFreeLabeledScheme,
        ScaleFreeLabeledScheme,
        SimpleNameIndependentScheme,
        ScaleFreeNameIndependentScheme,
    ):
        scheme = cls(metric, params)
        ev = scheme.evaluate(pairs)
        print(
            f"{scheme.name:46s} {ev.max_stretch:6.2f} "
            f"{ev.mean_stretch:6.2f} {ev.max_table_bits // 8:9d} "
            f"{ev.header_bits:7d}"
        )
    print()
    print("reading: the labeled schemes deliver near-optimal paths; the")
    print("name-independent schemes stay within the 9+O(eps) guarantee")
    print("with tables orders of magnitude below the full-table baseline")
    print("as the field grows.")


if __name__ == "__main__":
    main()
