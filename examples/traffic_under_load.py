"""Compact routing under traffic load: latency and hot links.

Stretch bounds speak to a single packet; deployments care what the
detours do under load.  This example injects a reproducible Poisson
stream of packets into a grid network and compares the shortest-path
oracle with the paper's two name-independent schemes in a
store-and-forward discrete-event simulation: delivered latency, queueing
delay, total network traffic, and the busiest links (the search-tree
round trips concentrate load near net centers — measurable here).

Run:  python examples/traffic_under_load.py
"""

from repro import (
    GraphMetric,
    ScaleFreeNameIndependentScheme,
    SchemeParameters,
    ShortestPathScheme,
    SimpleNameIndependentScheme,
)
from repro.graphs import grid_2d
from repro.runtime import TrafficSimulator, uniform_demands


def main() -> None:
    metric = GraphMetric(grid_2d(8))
    params = SchemeParameters(epsilon=0.5)
    demands = uniform_demands(metric.n, 250, rate=3.0, seed=11)
    print(f"network: 8x8 grid; workload: {len(demands)} packets, "
          f"Poisson rate 3.0")
    print()
    print(f"{'scheme':46s} {'mean lat':>9s} {'max lat':>8s} "
          f"{'queueing':>9s} {'traffic':>8s}")
    schemes = (
        ShortestPathScheme(metric, params),
        SimpleNameIndependentScheme(metric, params),
        ScaleFreeNameIndependentScheme(metric, params),
    )
    reports = {}
    for scheme in schemes:
        report = TrafficSimulator(scheme, service_time=0.25).run(demands)
        reports[scheme.name] = report
        print(
            f"{scheme.name:46s} {report.mean_latency():9.2f} "
            f"{report.max_latency():8.2f} {report.mean_queueing():9.3f} "
            f"{report.total_traffic():8.0f}"
        )
    print()
    for name, report in reports.items():
        hottest = report.busiest_links(top=3)
        pretty = ", ".join(f"{a}->{b} x{c}" for (a, b), c in hottest)
        print(f"hot links [{name}]: {pretty}")
    print()
    print("reading: compact routing trades ~3x traffic (the 9+eps")
    print("detours) for polylog tables; hot links cluster around the")
    print("net points that host the search trees.")


if __name__ == "__main__":
    main()
