"""Replicated content location: the paper's motivating network service.

A content network replicates popular objects at several nodes; a request
should find the *nearest* copy without any central index.  This example
builds the locality-aware object directory (the Awerbuch–Peleg-style
application the paper's introduction cites) on a geometric network:

* publish a cold object at one node and a popular object at five;
* issue lookups from everywhere, measuring cost against the distance to
  the nearest copy (the directory's locality guarantee);
* move an object (mobile-object tracking: unpublish + republish);
* bonus: use the companion (1+eps) distance-labeling oracle to *choose*
  where to place the next replica (the node minimizing estimated
  worst-case distance).

Run:  python examples/replicated_content.py
"""

import statistics

from repro import (
    DistanceOracle,
    GraphMetric,
    ObjectDirectory,
    SchemeParameters,
)
from repro.graphs import random_geometric


def main() -> None:
    params = SchemeParameters(epsilon=0.25)
    metric = GraphMetric(random_geometric(80, seed=5))
    directory = ObjectDirectory(metric, params)
    print(f"network: geometric n={metric.n}; eps={params.epsilon}")

    directory.publish("cold-object", 0)
    for holder in (3, 19, 40, 61, 77):
        directory.publish("popular-object", holder)
    print(f"published: cold-object at 1 node "
          f"({directory.registration_count('cold-object')} directory "
          f"entries), popular-object at 5 nodes "
          f"({directory.registration_count('popular-object')} entries)")
    print()

    for obj in ("cold-object", "popular-object"):
        ratios = []
        costs = []
        for origin in metric.nodes:
            result = directory.lookup(origin, obj)
            costs.append(result.cost)
            if result.nearest_copy_distance > 0:
                ratios.append(result.locality_ratio)
        print(f"{obj}: mean lookup cost {statistics.fmean(costs):.2f}, "
              f"worst locality ratio {max(ratios):.2f} "
              f"(guarantee {directory.locality_guarantee():.1f})")
    print()

    # Mobile object: the copy at node 3 migrates to node 55.
    directory.unpublish("popular-object", 3)
    directory.publish("popular-object", 55)
    moved = directory.lookup(50, "popular-object")
    print(f"after migration 3 -> 55: lookup from 50 reaches holder "
          f"{moved.holder} at cost {moved.cost:.2f}")
    print()

    # Replica placement via the distance oracle: pick the node whose
    # worst estimated distance to current holders is largest (the most
    # under-served node) as the next replica site.
    oracle = DistanceOracle(metric, params, hierarchy=directory._hierarchy)
    holders = directory.holders("popular-object")
    underserved = max(
        metric.nodes,
        key=lambda v: min(oracle.estimate(v, h) for h in holders),
    )
    directory.publish("popular-object", underserved)
    print(f"distance-oracle replica placement: new copy at node "
          f"{underserved}")
    after = statistics.fmean(
        directory.lookup(origin, "popular-object").cost
        for origin in metric.nodes
    )
    print(f"mean lookup cost after placement: {after:.2f}")


if __name__ == "__main__":
    main()
