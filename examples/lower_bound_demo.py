"""The 9 - eps lower bound, end to end (paper §5 / Theorem 1.3).

Builds the counterexample tree of Figure 3, audits its promised
properties (node count, diameter, doubling dimension), evaluates the
exact counting arithmetic behind the proof, and then runs the paper's
own Theorem 1.4 scheme on it under several random namings — exhibiting
the squeeze: no compact name-independent scheme can beat 9 - eps on this
family, and the paper's schemes achieve 9 + O(eps).

Run:  python examples/lower_bound_demo.py
"""

import random

from repro import GraphMetric, SchemeParameters, SimpleNameIndependentScheme
from repro.lowerbound import (
    lower_bound_parameters,
    lower_bound_tree,
    table_size_threshold_bits,
    verify_claim_5_10_base,
    verify_claim_5_11,
)
from repro.metric.doubling import doubling_dimension


def main() -> None:
    eps = 6.0
    n = 512
    params = lower_bound_parameters(eps)
    tree = lower_bound_tree(eps, n)
    metric = GraphMetric(tree.graph)

    print(f"counterexample G(eps={eps}, n={n}):")
    print(f"  spokes            : p x q = {tree.p} x {tree.q} "
          f"= {params.c} paths")
    print(f"  nodes             : {tree.n} (exact)")
    print(f"  normalized diam.  : {metric.diameter:.3g} "
          f"(bound {tree.diameter_bound():.3g})")
    alpha = doubling_dimension(
        metric, centers=[tree.root, tree.path_middle[(0, 0)]]
    )
    print(f"  doubling dim.     : {alpha:.2f} greedy "
          f"(Lemma 5.8 bound {tree.doubling_dimension_bound():.2f})")
    print()
    print("Theorem 1.3 arithmetic:")
    print(f"  forbidden stretch : < {params.stretch:.1f}")
    print(f"  for tables of     : o(n^{params.table_exponent:.4f}) = "
          f"o({table_size_threshold_bits(eps, n):.2f}) bits at n={n}")
    print(f"  Claim 5.10 base   : {verify_claim_5_10_base(eps)}")
    print(f"  Claim 5.11        : {verify_claim_5_11(eps)}")
    print()

    rng = random.Random(1)
    scheme_eps = 0.5
    print(f"empirical squeeze (Theorem 1.4 scheme, eps={scheme_eps}):")
    worst = 0.0
    for trial in range(3):
        naming = list(metric.nodes)
        rng.shuffle(naming)
        scheme = SimpleNameIndependentScheme(
            metric, SchemeParameters(epsilon=scheme_eps), naming=naming
        )
        targets = tree.farthest_spoke_nodes()[:20]
        stretch = max(
            scheme.route(tree.root, v).stretch
            for v in targets
            if v != tree.root
        )
        worst = max(worst, stretch)
        print(f"  naming #{trial}: max stretch from root -> outer spokes "
              f"= {stretch:.3f}")
    print()
    print(f"observed worst stretch {worst:.3f} sits inside the window "
          f"[{params.stretch:.0f} - eps', 9 + O(eps)] that")
    print("Theorems 1.1/1.4 (upper) and 1.3 (lower) pin down for "
          "compact name-independent routing.")


if __name__ == "__main__":
    main()
