"""Scale-free routing on a network with an enormous weight range.

Real networks mix link costs spanning many orders of magnitude
(datacenter hop vs transcontinental fiber), so the normalized diameter
Delta can be exponential in n and any routing table with a log(Delta)
factor stops being compact.  This example builds such a network — a ring
of regional clusters whose inter-cluster links grow geometrically — and
shows the paper's headline contrast:

* the Theorem 1.4 scheme (and the Lemma 3.1 labeled scheme) store one
  level per power of two of Delta: their tables keep growing as link
  weights stretch;
* the Theorem 1.1/1.2 scale-free schemes store O(log n) packing levels:
  their tables stay flat, with the same stretch guarantees.

Run:  python examples/internet_like_scalefree.py
"""

from repro import (
    GraphMetric,
    NonScaleFreeLabeledScheme,
    ScaleFreeLabeledScheme,
    ScaleFreeNameIndependentScheme,
    SchemeParameters,
    SimpleNameIndependentScheme,
)
from repro.graphs import clustered_backbone


def main() -> None:
    params = SchemeParameters(epsilon=0.5)
    print(f"{'backbone base':>13s} {'log Delta':>9s} "
          f"{'Thm1.4 tbl':>11s} {'Thm1.1 tbl':>11s} "
          f"{'Lem3.1 tbl':>11s} {'Thm1.2 tbl':>11s} {'stretch':>8s}")
    for base in (2.0, 8.0, 32.0, 128.0):
        metric = GraphMetric(clustered_backbone(6, 4, base))
        nonsf_ni = SimpleNameIndependentScheme(metric, params)
        sf_ni = ScaleFreeNameIndependentScheme(metric, params)
        nonsf_l = NonScaleFreeLabeledScheme(metric, params)
        sf_l = ScaleFreeLabeledScheme(metric, params)
        worst = max(
            sf_ni.route(u, v).stretch
            for u in range(0, metric.n, 5)
            for v in range(0, metric.n, 3)
            if u != v
        )
        print(
            f"{base:13g} {metric.log_diameter:9d} "
            f"{nonsf_ni.max_table_bits():11d} "
            f"{sf_ni.max_table_bits():11d} "
            f"{nonsf_l.max_table_bits():11d} "
            f"{sf_l.max_table_bits():11d} {worst:8.2f}"
        )
    print()
    print("columns 3 and 5 (non-scale-free) grow with log Delta;")
    print("columns 4 and 6 (Theorems 1.1/1.2) stay flat while the")
    print("stretch guarantee is unchanged.")


if __name__ == "__main__":
    main()
