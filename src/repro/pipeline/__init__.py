"""Shared-substrate build pipeline.

The expensive artifacts behind every experiment — APSP ``GraphMetric``,
``NetHierarchy``, ``BallPacking``, and fully-built routing schemes — are
deterministic functions of ``(graph, parameters)``.  This layer builds
each exactly once per run and shares it everywhere:

* :class:`~repro.pipeline.context.BuildContext` — memoizing factory for
  substrates and schemes, keyed by graph content hash + parameters, with
  an optional on-disk artifact cache under ``.repro-cache/``;
* :mod:`~repro.pipeline.registry` — the declarative experiment registry
  (``name -> spec -> runner``) the CLI dispatches through;
* :mod:`~repro.pipeline.parallel` — deterministic ordered fan-out over
  independent work items (pair chunks, (graph, scheme) cells);
* :mod:`~repro.pipeline.sampling` — the single source-destination pair
  sampler every workload generator draws from.
"""

from repro.pipeline.context import BuildContext, BuildStats
from repro.pipeline.parallel import parallel_map
from repro.pipeline.registry import (
    REGISTRY,
    ExperimentSpec,
    run_experiment,
)
from repro.pipeline.sampling import draw_pair, sample_ordered_pairs

__all__ = [
    "BuildContext",
    "BuildStats",
    "ExperimentSpec",
    "REGISTRY",
    "draw_pair",
    "parallel_map",
    "run_experiment",
    "sample_ordered_pairs",
]
