"""Deterministic source-destination pair sampling.

One sampler, shared by the experiment harness (stretch measurements),
the traffic simulator (Poisson demands), and any future workload
generator — so "the same seed" means the same pairs everywhere and the
rejection loop is written exactly once.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.core.types import NodeId

#: Predicate deciding that an ordered pair must not be sampled.
PairExclusion = Callable[[NodeId, NodeId], bool]


def draw_pair(
    rng: random.Random,
    n: int,
    exclude: Optional[PairExclusion] = None,
) -> Tuple[NodeId, NodeId]:
    """One ordered pair ``(u, v)`` with ``u != v`` and not excluded.

    Rejection-samples from the uniform distribution over allowed pairs;
    the exclusion predicate must leave at least one ordered pair
    allowed or this loops forever (callers pass light filters such as
    "not in the already-seen set" or "not adjacent").
    """
    if n < 2:
        raise ValueError("need at least two nodes to draw a pair")
    while True:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if exclude is not None and exclude(u, v):
            continue
        return u, v


def sample_ordered_pairs(
    n: int,
    count: int,
    seed: int = 0,
    exclude: Optional[PairExclusion] = None,
) -> List[Tuple[NodeId, NodeId]]:
    """Deterministic sample of distinct ordered pairs over ``[n]``.

    Samples without replacement when possible; falls back to
    enumerating all allowed pairs when ``count`` covers them.
    """
    allowed_total = n * (n - 1)
    if count >= allowed_total:
        return [
            (u, v)
            for u in range(n)
            for v in range(n)
            if u != v and (exclude is None or not exclude(u, v))
        ]
    rng = random.Random(seed)
    seen: set = set()
    pairs: List[Tuple[NodeId, NodeId]] = []
    while len(pairs) < count:
        u, v = draw_pair(rng, n, exclude)
        if (u, v) in seen:
            continue
        seen.add((u, v))
        pairs.append((u, v))
    return pairs
