"""Declarative experiment registry: ``name -> spec -> runner``.

The CLI and the report generator dispatch through :data:`REGISTRY`
instead of hand-wiring each experiment module.  A spec names the module
and runner functions; :func:`run_experiment` resolves them lazily (so
importing the pipeline never drags in every experiment), passes each
runner exactly the keyword arguments it accepts (``epsilon``,
``pair_count``, ``context``, ``jobs``), and normalizes the result to a
list of :class:`~repro.experiments.harness.ExperimentTable`.

Because every runner receives the *same* :class:`BuildContext`, graph
suites, pair samples, and substrates are deduplicated across
experiments — running ``table1`` then ``fig1`` builds each shared
scheme once.
"""

from __future__ import annotations

import dataclasses
import importlib
import inspect
from typing import Any, Dict, List, Optional, Tuple

from repro.pipeline.context import BuildContext


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment.

    Args:
        name: CLI command name.
        help: One-line description shown by ``python -m repro list``.
        module: Dotted module path holding the runner functions.
        funcs: Runner function names, executed in order; each returns an
            ``ExperimentTable`` or a list of them.
        rename: Keyword-argument renames applied before dispatch, e.g.
            ``(("pair_count", "packet_count"),)`` for the congestion
            simulator.
    """

    name: str
    help: str
    module: str
    funcs: Tuple[str, ...] = ("run",)
    rename: Tuple[Tuple[str, str], ...] = ()

    def runners(self) -> List[Any]:
        mod = importlib.import_module(self.module)
        return [getattr(mod, fn) for fn in self.funcs]


_SPECS = [
    ExperimentSpec(
        "table1",
        "name-independent schemes on the standard suite (paper Table 1)",
        "repro.experiments.table1",
    ),
    ExperimentSpec(
        "table2",
        "labeled schemes on the standard suite (paper Table 2)",
        "repro.experiments.table2",
    ),
    ExperimentSpec(
        "fig1",
        "stretch vs epsilon for labeled and name-independent schemes",
        "repro.experiments.fig1",
        funcs=("run", "run_scalefree"),
    ),
    ExperimentSpec(
        "fig2",
        "per-node storage distribution across the suite",
        "repro.experiments.fig2",
    ),
    ExperimentSpec(
        "fig3",
        "construction cost, net counting, and adversarial lower-bound trees",
        "repro.experiments.fig3",
        funcs=("run_construction", "run_counting", "run_adversary"),
    ),
    ExperimentSpec(
        "scalefree",
        "scale-free vs non-scale-free storage comparison",
        "repro.experiments.scalefree",
    ),
    ExperimentSpec(
        "stretch-sweep",
        "stretch of every scheme as epsilon sweeps",
        "repro.experiments.sweeps",
        funcs=("run_stretch_sweep",),
    ),
    ExperimentSpec(
        "storage-scaling",
        "table size growth with n",
        "repro.experiments.sweeps",
        funcs=("run_storage_scaling",),
    ),
    ExperimentSpec(
        "structures",
        "net hierarchy and ball packing structure audit",
        "repro.experiments.structures",
    ),
    ExperimentSpec(
        "related-work",
        "comparison against related-work baselines (Cowen landmarks, oracle)",
        "repro.experiments.related_work",
    ),
    ExperimentSpec(
        "ablations",
        "tree-router, ring-restriction, and packing-service ablations",
        "repro.experiments.ablation",
        funcs=("run_tree_router", "run_ring_restriction", "run_packing_service"),
    ),
    ExperimentSpec(
        "congestion",
        "queueing simulation under uniform demands",
        "repro.experiments.congestion",
        rename=(("pair_count", "packet_count"),),
    ),
    ExperimentSpec(
        "relaxed",
        "relaxed-guarantee scheme variants",
        "repro.experiments.relaxed",
    ),
    ExperimentSpec(
        "storage-audit",
        "bit-level audit of every table entry",
        "repro.experiments.storage_audit",
    ),
    ExperimentSpec(
        "resilience",
        "delivery and stretch under link failures, plus recovery cost",
        "repro.experiments.resilience",
        funcs=("run", "run_repair"),
    ),
    ExperimentSpec(
        "churn",
        "incremental maintenance under continuous edits and load",
        "repro.experiments.churn",
    ),
    ExperimentSpec(
        "chaos",
        "delivery under lossy links, ARQ recovery, and table healing",
        "repro.experiments.chaos",
        funcs=("run", "run_degraded", "run_audit"),
    ),
    ExperimentSpec(
        "scale",
        "lazy-substrate scaling and power-law degradation (E19)",
        "repro.experiments.scale",
        funcs=("run", "run_doubling", "run_landmark_sweep"),
    ),
    ExperimentSpec(
        "throughput",
        "compiled batch engine routes/sec vs batch, shards, and n (E20)",
        "repro.experiments.throughput",
        funcs=("run", "run_shards"),
    ),
]

REGISTRY: Dict[str, ExperimentSpec] = {spec.name: spec for spec in _SPECS}


def _call_with_accepted(func: Any, kwargs: Dict[str, Any]) -> Any:
    """Call ``func`` with the subset of ``kwargs`` it accepts."""
    signature = inspect.signature(func)
    accepted = {
        name: value
        for name, value in kwargs.items()
        if name in signature.parameters
    }
    return func(**accepted)


def run_experiment(
    name: str,
    epsilon: float = 0.5,
    pair_count: int = 300,
    context: Optional[BuildContext] = None,
    jobs: int = 1,
    **extra: Any,
) -> List[Any]:
    """Run one registered experiment; returns its ``ExperimentTable`` list.

    ``context`` defaults to a fresh in-memory :class:`BuildContext`;
    pass a shared one to reuse substrates across experiments.  Extra
    keyword arguments are forwarded to runners that accept them (e.g.
    ``edits`` for the churn experiment) and silently dropped otherwise.
    """
    spec = REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {name!r} (known: {known})")
    if context is None:
        context = BuildContext()
    kwargs = {
        "epsilon": epsilon,
        "pair_count": pair_count,
        "context": context,
        "jobs": jobs,
        **extra,
    }
    for old, new in spec.rename:
        kwargs[new] = kwargs.pop(old)
    tables: List[Any] = []
    for runner in spec.runners():
        result = _call_with_accepted(runner, kwargs)
        if isinstance(result, list):
            tables.extend(result)
        else:
            tables.append(result)
    return tables
