"""Memoizing build context for substrates and schemes.

Every scheme in this library is a deterministic function of
``(graph, SchemeParameters, construction kwargs)``, and the expensive
intermediates — the APSP :class:`GraphMetric`, the :class:`NetHierarchy`,
the :class:`BallPacking` — are shared by several schemes.  A
:class:`BuildContext` builds each artifact exactly once per key and hands
the same object to every consumer:

* ``context.metric(graph)`` — APSP matrix computed once per graph
  (keyed by a content hash of nodes, edges, and weights);
* ``context.hierarchy(metric)`` / ``context.packing(metric)`` — one
  substrate per metric, shared across all schemes built on it;
* ``context.scheme(cls, metric, params)`` — resolves the scheme's
  substrate dependencies through the context (see
  ``RoutingScheme.from_context``) and memoizes the built scheme;
* ``context.pairs(metric, count, seed)`` — the evaluation pair sample,
  deduplicated across experiments.

With ``cache_dir`` set (conventionally ``.repro-cache/``), artifacts are
additionally pickled to disk keyed by the same content hash, so a second
process — or a second run — skips construction entirely.  Delete the
directory (``rm -rf .repro-cache``) to drop all cached artifacts; keys
include a format version, so stale caches are never silently reused
across incompatible library versions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import time
import weakref
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple, Type

import networkx as nx

from repro.core.edits import EditKind, GraphEdit, apply_edit_to_graph
from repro.core.params import SchemeParameters
from repro.core.types import NodeId
from repro.metric.graph_metric import GraphMetric
from repro.nets.hierarchy import NetHierarchy
from repro.observability.profile import BuildProfile
from repro.observability.trace import RouteTrace, TraceEvent
from repro.packing.ballpacking import BallPacking
from repro.pipeline.sampling import sample_ordered_pairs

#: Bump when artifact layout changes so on-disk caches self-invalidate.
#: v2: metric keys carry the normalization scale; schemes carry tracers.
#: v3: XOR-aggregated content keys + dependency-tracked invalidation.
#: v4: strategy-tagged metric cache keys; lazy metrics pickle only their
#: materialized rows (partial search state is recomputed on demand).
CACHE_FORMAT_VERSION = 4


@dataclasses.dataclass
class BuildStats:
    """Hit/miss counters per artifact kind (for tests and logging).

    Two granularities share these counters: whole artifacts ("metric",
    "hierarchy", "scheme", ...) recorded by the context's memoizer, and
    the partitions inside them ("metric_row", "hierarchy_level",
    "ring_block", "search_tree", "zoom_parent") folded in by the
    builders so incremental rebuilds can be audited against the dirty
    set of an edit rather than whole-graph cache hits.
    """

    hits: Dict[str, int] = dataclasses.field(default_factory=dict)
    misses: Dict[str, int] = dataclasses.field(default_factory=dict)
    disk_hits: Dict[str, int] = dataclasses.field(default_factory=dict)

    def record(self, kind: str, outcome: str) -> None:
        counter = getattr(self, outcome)
        counter[kind] = counter.get(kind, 0) + 1

    def fold(self, report: Dict[str, Tuple[int, int]]) -> None:
        """Merge a ``{kind: (reused, built)}`` partition report."""
        for kind, (reused, built) in report.items():
            if reused:
                self.hits[kind] = self.hits.get(kind, 0) + reused
            if built:
                self.misses[kind] = self.misses.get(kind, 0) + built

    def built(self, kind: str) -> int:
        """Number of artifacts of ``kind`` actually constructed."""
        return self.misses.get(kind, 0)


# -- content keys -------------------------------------------------------
#
# The content key of a graph is a hash of an XOR-aggregate of per-node
# and per-edge tokens.  XOR makes the aggregate incrementally
# maintainable: one edit XORs out the old tokens and XORs in the new
# ones, O(1) per edit instead of re-hashing the full edge list.  The
# aggregate is cached per graph *object* (weakly); the (n, m) guard
# catches structural mutations that bypassed the edit path, but weight
# mutations must flow through ``BuildContext.apply_edit`` (or
# ``invalidate_content_key``) to keep the cached key exact.


@dataclasses.dataclass
class _KeyState:
    node_acc: int
    edge_acc: int
    n: int
    m: int
    key: str


_KEY_STATES: "weakref.WeakKeyDictionary[nx.Graph, _KeyState]" = (
    weakref.WeakKeyDictionary()
)


def _token(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:16], "big")


def _node_token(v: Any) -> int:
    return _token(f"N{v!r};")


def _edge_token(u: Any, v: Any, w: Any) -> int:
    a, b = (u, v) if not v < u else (v, u)
    return _token(f"E{a!r},{b!r},{float(w)!r};")


def _aggregate_key(n: int, node_acc: int, edge_acc: int) -> str:
    text = (
        f"v{CACHE_FORMAT_VERSION}|n={n}|N={node_acc:032x}|E={edge_acc:032x}"
    )
    return hashlib.sha256(text.encode()).hexdigest()


def _fresh_key_state(graph: nx.Graph) -> _KeyState:
    node_acc = 0
    for v in graph.nodes():
        node_acc ^= _node_token(v)
    edge_acc = 0
    for u, v, data in graph.edges(data=True):
        edge_acc ^= _edge_token(u, v, data.get("weight", 1.0))
    n = graph.number_of_nodes()
    state = _KeyState(
        node_acc=node_acc,
        edge_acc=edge_acc,
        n=n,
        m=graph.number_of_edges(),
        key=_aggregate_key(n, node_acc, edge_acc),
    )
    _KEY_STATES[graph] = state
    return state


def graph_content_key(graph: nx.Graph) -> str:
    """Content hash of a graph: nodes, edges, and exact weights.

    Any change to the node set, the edge set, or a single edge weight
    changes the key — so cached artifacts can never be reused across
    different inputs.  The key is cached on the graph object and
    maintained incrementally through :meth:`BuildContext.apply_edit`;
    mutate a graph by any other means and you must call
    :func:`invalidate_content_key` (structural changes are caught by an
    (n, m) guard, silent weight pokes are not).
    """
    state = _KEY_STATES.get(graph)
    if (
        state is not None
        and state.n == graph.number_of_nodes()
        and state.m == graph.number_of_edges()
    ):
        return state.key
    return _fresh_key_state(graph).key


def invalidate_content_key(graph: nx.Graph) -> None:
    """Drop the cached content key after an out-of-band mutation."""
    _KEY_STATES.pop(graph, None)


def _advance_key_state(graph: nx.Graph, edit: GraphEdit) -> Tuple[int, int, int]:
    """Pre-edit half of the O(1) key update; returns new aggregates.

    Must be called *before* the edit is applied (old weights are read
    off the graph); commit the result with :func:`_commit_key_state`
    after the mutation.
    """
    state = _KEY_STATES.get(graph)
    if (
        state is None
        or state.n != graph.number_of_nodes()
        or state.m != graph.number_of_edges()
    ):
        state = _fresh_key_state(graph)
    node_acc, edge_acc, n = state.node_acc, state.edge_acc, state.n
    if edit.kind is EditKind.WEIGHT:
        u, v = edit.edge
        old_w = graph[u][v].get("weight", 1.0)
        edge_acc ^= _edge_token(u, v, old_w) ^ _edge_token(u, v, edit.weight)
    elif edit.kind is EditKind.EDGE_ADD:
        u, v = edit.edge
        edge_acc ^= _edge_token(u, v, edit.weight)
    elif edit.kind is EditKind.EDGE_REMOVE:
        u, v = edit.edge
        edge_acc ^= _edge_token(u, v, graph[u][v].get("weight", 1.0))
    elif edit.kind is EditKind.NODE_JOIN:
        node_acc ^= _node_token(edit.node)
        for x, w in edit.attach:
            edge_acc ^= _edge_token(edit.node, x, w)
        n += 1
    elif edit.kind is EditKind.NODE_LEAVE:
        node_acc ^= _node_token(edit.node)
        for x in graph[edit.node]:
            edge_acc ^= _edge_token(
                edit.node, x, graph[edit.node][x].get("weight", 1.0)
            )
        n -= 1
    return node_acc, edge_acc, n


def _commit_key_state(
    graph: nx.Graph, aggregates: Tuple[int, int, int]
) -> str:
    node_acc, edge_acc, n = aggregates
    state = _KeyState(
        node_acc=node_acc,
        edge_acc=edge_acc,
        n=n,
        m=graph.number_of_edges(),
        key=_aggregate_key(n, node_acc, edge_acc),
    )
    _KEY_STATES[graph] = state
    return state.key


def _rekey(obj: Any, old: str, new: str) -> Any:
    """Replace the old content hash inside a (nested) key tuple."""
    if obj == old:
        return new
    if isinstance(obj, tuple):
        return tuple(_rekey(item, old, new) for item in obj)
    return obj


def _mentions(obj: Any, key: str) -> bool:
    if obj == key:
        return True
    if isinstance(obj, tuple):
        return any(_mentions(item, key) for item in obj)
    return False


def params_key(params: SchemeParameters) -> Tuple[float, bool]:
    """Canonical cache key of a :class:`SchemeParameters`."""
    return (params.epsilon, params.tie_break_by_id)


def _canonical_kwarg(value: Any) -> Any:
    """Hashable canonical form of a construction kwarg, or None.

    Substrate objects (hierarchies, schemes, ...) are intentionally not
    canonicalized: passing one explicitly bypasses memoization, since
    the context cannot prove two instances interchangeable.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, type):
        return f"{value.__module__}.{value.__qualname__}"
    if isinstance(value, (list, tuple)):
        items = [_canonical_kwarg(v) for v in value]
        if any(item is _UNKEYABLE for item in items):
            return _UNKEYABLE
        return tuple(items)
    return _UNKEYABLE


_UNKEYABLE = object()


@dataclasses.dataclass
class EditReport:
    """What one :meth:`BuildContext.apply_edit` call did to the cache.

    Attributes:
        edit: The applied edit.
        old_key / new_key: Graph content keys before and after.
        dirty: Nodes whose metric rows the edit may have changed (the
            edit's *dirty set*; every node on a full rebuild).
        rows_rebuilt / rows_reused: APSP row splice accounting, summed
            over every cached metric of the graph.
        carried: Artifacts moved to the new key untouched, per kind
            (dependency set provably disjoint from ``dirty``).
        stashed: Artifacts parked for partial rebuild on next demand.
        dropped: Artifacts discarded outright (full-rebuild edits).
        full_rebuild: Whether the edit dirtied everything (node
            join/leave, normalization-scale change, or no cached metric
            to diff against).
        seconds: Wall-clock time spent repairing the cache.
    """

    edit: GraphEdit
    old_key: str
    new_key: str
    dirty: FrozenSet[NodeId]
    rows_rebuilt: int
    rows_reused: int
    carried: Dict[str, int]
    stashed: Dict[str, int]
    dropped: Dict[str, int]
    full_rebuild: bool
    seconds: float

    def to_trace(self) -> RouteTrace:
        """The repair as a route-style trace (observability tie-in).

        Repair events render and serialize exactly like forwarding
        decisions: one ``repair`` event for the edit itself, one
        ``splice`` event for the row surgery, and one ``carry`` event
        per artifact disposition.
        """
        anchor = (
            self.edit.edge[0] if self.edit.edge is not None else
            (self.edit.node if self.edit.node is not None else 0)
        )
        trace = RouteTrace(
            scheme="repair", source=anchor, destination=self.edit.describe()
        )
        trace.events.append(
            TraceEvent(
                node=anchor,
                phase="repair",
                entry=f"{self.edit.describe()}: key {self.old_key[:12]} "
                f"-> {self.new_key[:12]}",
            )
        )
        trace.events.append(
            TraceEvent(
                node=anchor,
                phase="splice",
                cost=self.seconds,
                entry=f"dirty={len(self.dirty)} rows_rebuilt="
                f"{self.rows_rebuilt} rows_reused={self.rows_reused}"
                + (" (full rebuild)" if self.full_rebuild else ""),
            )
        )
        for verb, counts in (
            ("carried", self.carried),
            ("stashed", self.stashed),
            ("dropped", self.dropped),
        ):
            for kind in sorted(counts):
                trace.events.append(
                    TraceEvent(
                        node=anchor,
                        phase="carry",
                        entry=f"{verb} {counts[kind]} x {kind}",
                    )
                )
        trace.delivered_to = anchor
        return trace


class BuildContext:
    """Shared-substrate factory: build once, reuse everywhere.

    Args:
        cache_dir: Optional directory for the on-disk artifact cache
            (conventionally ``.repro-cache/``).  ``None`` (the default)
            keeps the cache in memory only.
    """

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self._memory: Dict[Tuple, Any] = {}
        # Keyed by the metric *object* (weakly, so the cache never keeps
        # a metric alive): an id()-keyed dict would let a collected
        # metric's id be reused by a new one, which would then silently
        # inherit the wrong content key.
        self._metric_keys: "weakref.WeakKeyDictionary[GraphMetric, Tuple[str, float]]" = (
            weakref.WeakKeyDictionary()
        )
        # Stash of pre-edit artifacts awaiting partial rebuild, keyed by
        # their *post-edit* full key: full_key -> (artifact, dirty set
        # accumulated over every edit since the artifact was built).
        # Disjoint from _memory by construction (apply_edit moves
        # entries out; builders move them back in, possibly promoted).
        self._previous: Dict[Tuple, Tuple[Any, FrozenSet[NodeId]]] = {}
        self._cache_dir = cache_dir
        self.stats = BuildStats()
        self.profile = BuildProfile()
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    # -- keys -----------------------------------------------------------

    def metric_key(self, metric: GraphMetric) -> Tuple[str, float]:
        """Cache identity of a metric: ``(graph content hash, scale)``.

        Works for metrics built outside the context too: the key is
        computed from the underlying (relabelled) graph.  The applied
        normalization scale is part of the key — ``GraphMetric(g)`` and
        ``GraphMetric(g, normalize=False)`` over a graph with min edge
        weight != 1 define *different* metrics and must never share
        hierarchies, packings, pairs, or schemes.
        """
        key = self._metric_keys.get(metric)
        if key is None:
            key = (graph_content_key(metric.graph), float(metric.scale))
            self._metric_keys[metric] = key
        return key

    # -- generic memoization -------------------------------------------

    def _get_or_build(
        self, kind: str, key: Tuple, builder, previous: Any = None
    ) -> Any:
        full_key = (kind,) + key
        if full_key in self._memory:
            self.stats.record(kind, "hits")
            return self._memory[full_key]
        artifact = self._disk_load(kind, full_key)
        if artifact is None:
            # Timings are inclusive: a scheme's builder resolves its
            # substrates through the context, so their build time shows
            # up both under their own kind and inside the scheme's.
            with self.profile.timed("build", kind):
                artifact = builder()
            # A partial rebuild that proves its output identical to the
            # stashed pre-edit artifact *promotes* it (returns the same
            # object) — that is a reuse, not a construction.
            promoted = previous is not None and artifact is previous
            self.stats.record(kind, "hits" if promoted else "misses")
            report = getattr(artifact, "build_report", None)
            if report:
                self.stats.fold(report)
            self._disk_store(kind, full_key, artifact)
        else:
            self.stats.record(kind, "disk_hits")
        self._memory[full_key] = artifact
        return artifact

    def _disk_path(self, kind: str, full_key: Tuple) -> Optional[str]:
        if self._cache_dir is None:
            return None
        digest = hashlib.sha256(repr(full_key).encode()).hexdigest()[:24]
        return os.path.join(self._cache_dir, f"{kind}-{digest}.pkl")

    def _disk_load(self, kind: str, full_key: Tuple) -> Any:
        path = self._disk_path(kind, full_key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle, self.profile.timed(
                "disk_load", kind
            ):
                stored_key, artifact = pickle.load(handle)
        except Exception:
            # Corrupt, truncated, or stale entries raise a grab-bag of
            # exceptions from deep inside pickle; any failure to load
            # just means "rebuild".
            return None
        if stored_key != full_key:  # digest collision (vanishingly rare)
            return None
        return artifact

    def _disk_store(self, kind: str, full_key: Tuple, artifact: Any) -> None:
        path = self._disk_path(kind, full_key)
        if path is None:
            return
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle, self.profile.timed(
                "disk_store", kind
            ):
                pickle.dump((full_key, artifact), handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError, RecursionError):
            # Unpicklable or disk-full artifacts simply stay memory-only.
            if os.path.exists(tmp):
                os.remove(tmp)

    # -- substrates -----------------------------------------------------

    def metric(
        self,
        graph: nx.Graph,
        normalize: bool = True,
        strategy: str = "auto",
        row_budget_bytes: Optional[int] = None,
    ) -> GraphMetric:
        """The shortest-path metric of ``graph``, built once per key.

        ``strategy`` and ``row_budget_bytes`` select and configure the
        substrate (see :class:`GraphMetric`) and are part of the cache
        key: a dense and a lazy metric over the same graph are distinct
        cached artifacts (a lazy pickle holds only materialized rows),
        but both answer queries identically, so everything *downstream*
        — hierarchies, packings, pairs, schemes — is keyed by
        :meth:`metric_key` (content hash + scale) and shared freely
        across strategies.
        """
        key = (graph_content_key(graph), normalize, strategy, row_budget_bytes)

        def build() -> GraphMetric:
            built = GraphMetric(
                graph,
                normalize=normalize,
                strategy=strategy,
                row_budget_bytes=row_budget_bytes,
            )
            rows = int(built.substrate_stats()["rows_materialized"])
            self.stats.fold({"metric_row": (0, rows)})
            return built

        metric = self._get_or_build("metric", key, build)
        # Register the *applied* scale (not the normalize flag): with
        # min edge weight 1 both flags build the same metric, and keying
        # on the scale lets them share downstream artifacts.
        self._metric_keys.setdefault(metric, (key[0], float(metric.scale)))
        return metric

    def hierarchy(
        self, metric: GraphMetric, root: Optional[NodeId] = None
    ) -> NetHierarchy:
        """The ``2^i``-net hierarchy of ``metric``, built once.

        After an edit, a stashed pre-edit hierarchy is rebuilt level by
        level: net levels whose members all have clean rows replay
        identically and are reused; if every level and every zooming
        parent survives, the stashed object itself is promoted.
        """
        key = (self.metric_key(metric), root)
        prev = self._previous.pop(("hierarchy",) + key, None)

        def build() -> NetHierarchy:
            if prev is not None:
                return NetHierarchy.rebuilt(metric, prev[0], prev[1], root=root)
            return NetHierarchy(metric, root=root)

        return self._get_or_build(
            "hierarchy", key, build, previous=None if prev is None else prev[0]
        )

    def packing(self, metric: GraphMetric) -> BallPacking:
        """The Lemma 2.3 ball packings of ``metric``, built once.

        Packings read every node's size-radius (their dependency set is
        all of ``V``), so a dirtied packing is rebuilt in full — but an
        unchanged result is detected and the stashed object promoted,
        preserving identity for downstream reuse checks.
        """
        key = (self.metric_key(metric),)
        prev = self._previous.pop(("packing",) + key, None)

        def build() -> BallPacking:
            if prev is not None:
                return BallPacking.rebuilt(metric, prev[0])
            return BallPacking(metric)

        return self._get_or_build(
            "packing", key, build, previous=None if prev is None else prev[0]
        )

    def pairs(
        self, metric: GraphMetric, count: int, seed: int = 0
    ) -> List[Tuple[NodeId, NodeId]]:
        """Deterministic evaluation pairs, deduplicated across callers."""
        key = (self.metric_key(metric), metric.n, count, seed)
        return self._get_or_build(
            "pairs",
            key,
            lambda: sample_ordered_pairs(metric.n, count, seed=seed),
        )

    # -- schemes --------------------------------------------------------

    def scheme(
        self,
        scheme_cls: Type,
        metric: GraphMetric,
        params: Optional[SchemeParameters] = None,
        **kwargs: Any,
    ) -> Any:
        """Build ``scheme_cls`` with substrates resolved via this context.

        The built scheme is memoized by ``(graph, class, params,
        kwargs)`` when every kwarg has a canonical value (ints, strings,
        classes, tuples of those).  Passing a live substrate object
        (``hierarchy=...``, ``underlying=...``) bypasses memoization of
        the scheme itself, but the substrates the class resolves through
        ``from_context`` are still shared.
        """
        if params is None:
            params = SchemeParameters()
        canonical = tuple(
            (name, _canonical_kwarg(value))
            for name, value in sorted(kwargs.items())
        )
        cls_name = f"{scheme_cls.__module__}.{scheme_cls.__qualname__}"
        if any(value is _UNKEYABLE for _, value in canonical):
            self.stats.record("scheme", "misses")
            with self.profile.timed("build", "scheme"):
                return scheme_cls.from_context(self, metric, params, **kwargs)
        key = (self.metric_key(metric), cls_name, params_key(params), canonical)
        prev = self._previous.pop(("scheme",) + key, None)
        supports_partial = getattr(scheme_cls, "supports_partial_rebuild", False)

        def build() -> Any:
            if prev is not None and supports_partial:
                return scheme_cls.from_context(
                    self,
                    metric,
                    params,
                    _previous=prev[0],
                    _dirty=prev[1],
                    **kwargs,
                )
            return scheme_cls.from_context(self, metric, params, **kwargs)

        return self._get_or_build(
            "scheme", key, build, previous=None if prev is None else prev[0]
        )

    # -- compiled engine tables -----------------------------------------

    def compiled(self, scheme: Any) -> Any:
        """Batch-engine tables for a built scheme, memoized per content.

        Keyed by the metric identity, scheme class, parameters, and a
        digest of the scheme's instance-level identity (naming
        permutation, landmark set) so two same-class schemes with
        different namings never share compiled artifacts.  Lives under
        the ``engine`` artifact kind of the v4 key scheme, so disk
        caching and ``apply_edit`` invalidation come for free.
        """
        cls_name = (
            f"{type(scheme).__module__}.{type(scheme).__qualname__}"
        )
        digest = hashlib.sha256()
        name_of = getattr(scheme, "_name_of", None)
        if name_of is not None:
            digest.update(repr(list(name_of)).encode())
        landmarks = getattr(scheme, "_landmarks", None)
        if landmarks is not None:
            digest.update(repr(sorted(landmarks)).encode())
            vicinity = getattr(scheme, "_vicinity", None)
            if vicinity is not None:
                digest.update(
                    repr([sorted(v) for v in vicinity]).encode()
                )
        key = (
            self.metric_key(scheme.metric),
            cls_name,
            params_key(scheme.params),
            digest.hexdigest(),
        )
        return self._get_or_build("engine", key, scheme.compile_tables)

    # -- incremental maintenance (churn) --------------------------------

    def apply_edit(self, graph: nx.Graph, edit: GraphEdit) -> EditReport:
        """Apply ``edit`` to ``graph`` and repair the cache around it.

        The graph is mutated in place and its content key advanced in
        O(1).  Every cached metric of the graph is repaired eagerly by
        splicing only the edit's dirty rows; every other artifact keyed
        to the old content hash is either *carried* (dependency set
        provably untouched — evaluation pairs), *stashed* for partial
        rebuild on next demand, or *dropped* (full-rebuild edits).
        Stale metrics handed out earlier keep a coherent pre-edit
        snapshot of the graph, which is what the staleness-window
        routing in :mod:`repro.churn` relies on.
        """
        start = time.perf_counter()
        old_key = graph_content_key(graph)
        aggregates = _advance_key_state(graph, edit)

        metric_items = [
            (full_key, artifact)
            for full_key, artifact in self._memory.items()
            if full_key[0] == "metric" and full_key[1] == old_key
        ]
        for _, old_metric in metric_items:
            if old_metric.graph is graph:
                old_metric.detach_graph()

        apply_edit_to_graph(graph, edit)
        new_key = _commit_key_state(graph, aggregates)

        # Repair cached metrics by row splicing; union their dirty sets
        # (they only differ when normalize=True/False coexist).
        dirty: FrozenSet[NodeId] = frozenset()
        rows_rebuilt = rows_reused = 0
        any_metric = False
        full_rebuild = edit.changes_node_set
        for full_key, old_metric in metric_items:
            any_metric = True
            with self.profile.timed("build", "metric"):
                new_metric, metric_dirty = old_metric.updated(graph, edit)
            del self._memory[full_key]
            self._memory[_rekey(full_key, old_key, new_key)] = new_metric
            self._metric_keys[new_metric] = (new_key, float(new_metric.scale))
            dirty |= metric_dirty
            rebuilt = len(metric_dirty)
            rows_rebuilt += rebuilt
            rows_reused += new_metric.n - rebuilt
            self.stats.fold(
                {"metric_row": (new_metric.n - rebuilt, rebuilt)}
            )
            if len(metric_dirty) == new_metric.n:
                full_rebuild = True
                self.stats.record("metric", "misses")
            else:
                self.stats.record("metric", "hits")
        if not any_metric:
            # Nothing to diff against: treat everything as dirty.
            dirty = frozenset(range(graph.number_of_nodes()))
            full_rebuild = True

        carried: Dict[str, int] = {}
        stashed: Dict[str, int] = {}
        dropped: Dict[str, int] = {}
        stale_keys = [
            full_key
            for full_key in self._memory
            if full_key[0] != "metric" and _mentions(full_key, old_key)
        ]
        for full_key in stale_keys:
            artifact = self._memory.pop(full_key)
            kind = full_key[0]
            new_full_key = _rekey(full_key, old_key, new_key)
            if kind == "pairs":
                # Pair samples depend only on (n, count, seed) — carry
                # unless the node set changed (then the key's n field is
                # stale anyway and the entry would never be hit).
                if not edit.changes_node_set:
                    self._memory[new_full_key] = artifact
                    carried[kind] = carried.get(kind, 0) + 1
                    self.stats.record(kind, "hits")
                else:
                    dropped[kind] = dropped.get(kind, 0) + 1
                continue
            if full_rebuild:
                # Every partition is dirty; a stash could never promote
                # or reuse anything, so drop the artifact outright.
                dropped[kind] = dropped.get(kind, 0) + 1
                continue
            self._previous[new_full_key] = (artifact, dirty)
            stashed[kind] = stashed.get(kind, 0) + 1
        # Artifacts stashed by an earlier edit and never rebuilt:
        # re-key them and widen their accumulated dirty set.
        stale_stash = [
            full_key
            for full_key in self._previous
            if _mentions(full_key, old_key)
        ]
        for full_key in stale_stash:
            artifact, accumulated = self._previous.pop(full_key)
            if full_rebuild:
                dropped[full_key[0]] = dropped.get(full_key[0], 0) + 1
                continue
            self._previous[_rekey(full_key, old_key, new_key)] = (
                artifact,
                accumulated | dirty,
            )
            stashed[full_key[0]] = stashed.get(full_key[0], 0) + 1

        return EditReport(
            edit=edit,
            old_key=old_key,
            new_key=new_key,
            dirty=dirty,
            rows_rebuilt=rows_rebuilt,
            rows_reused=rows_reused,
            carried=carried,
            stashed=stashed,
            dropped=dropped,
            full_rebuild=full_rebuild,
            seconds=time.perf_counter() - start,
        )

    def repair_rows(self, metric: GraphMetric, nodes: Iterable[NodeId]) -> int:
        """Re-fetch corrupted table rows through the row-splice path.

        The table-integrity auditor (:mod:`repro.chaos.audit`) detects
        in-memory corruption of a metric's per-node rows; this method
        heals the quarantined nodes with the same per-row Dijkstra
        splice :meth:`apply_edit` uses for churn repair — the repaired
        rows are bit-identical to a cold rebuild — and accounts the
        work in this context's build stats and profile.

        Returns the number of rows respliced.
        """
        dirty = sorted({int(v) for v in nodes})
        if not dirty:
            return 0
        with self.profile.timed("build", "metric"):
            metric.splice_rows(dirty)
        self.stats.fold({"metric_row": (metric.n - len(dirty), len(dirty))})
        return len(dirty)

    # -- observability --------------------------------------------------

    def substrate_stats(self) -> Dict[str, int]:
        """Row-store counters summed over every live metric of this context.

        Aggregates :meth:`GraphMetric.substrate_stats` across the
        metrics this context has handed out (weakly tracked — collected
        metrics drop out).  ``rows_materialized`` is the headline
        number: how many full Dijkstra rows were ever solved, versus the
        ``sum(n)`` an eager APSP would have paid.
        """
        totals = {
            "rows_materialized": 0,
            "row_hits": 0,
            "row_misses": 0,
            "bounded_searches": 0,
            "evictions": 0,
            "stored_bytes": 0,
        }
        for metric in list(self._metric_keys):
            stats = metric.substrate_stats()
            for key in totals:
                totals[key] += int(stats[key])
        return totals

    def profile_report(self) -> Dict[str, Any]:
        """Merged timing + hit/miss report (see ``BuildProfile.report``)."""
        return self.profile.report(self.stats, substrate=self.substrate_stats())

    # -- maintenance ----------------------------------------------------

    def clear_memory(self) -> None:
        """Drop every in-memory artifact (disk entries are kept)."""
        self._memory.clear()
        self._previous.clear()
        self._metric_keys.clear()

    def __repr__(self) -> str:
        kinds = sorted(
            set(self.stats.hits) | set(self.stats.misses) | set(self.stats.disk_hits)
        )
        parts = ", ".join(
            f"{kind}: {self.stats.hits.get(kind, 0)}h/"
            f"{self.stats.misses.get(kind, 0)}m"
            for kind in kinds
        )
        disk = "on" if self._cache_dir else "off"
        return f"BuildContext(disk={disk}, {parts})"
