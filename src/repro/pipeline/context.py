"""Memoizing build context for substrates and schemes.

Every scheme in this library is a deterministic function of
``(graph, SchemeParameters, construction kwargs)``, and the expensive
intermediates — the APSP :class:`GraphMetric`, the :class:`NetHierarchy`,
the :class:`BallPacking` — are shared by several schemes.  A
:class:`BuildContext` builds each artifact exactly once per key and hands
the same object to every consumer:

* ``context.metric(graph)`` — APSP matrix computed once per graph
  (keyed by a content hash of nodes, edges, and weights);
* ``context.hierarchy(metric)`` / ``context.packing(metric)`` — one
  substrate per metric, shared across all schemes built on it;
* ``context.scheme(cls, metric, params)`` — resolves the scheme's
  substrate dependencies through the context (see
  ``RoutingScheme.from_context``) and memoizes the built scheme;
* ``context.pairs(metric, count, seed)`` — the evaluation pair sample,
  deduplicated across experiments.

With ``cache_dir`` set (conventionally ``.repro-cache/``), artifacts are
additionally pickled to disk keyed by the same content hash, so a second
process — or a second run — skips construction entirely.  Delete the
directory (``rm -rf .repro-cache``) to drop all cached artifacts; keys
include a format version, so stale caches are never silently reused
across incompatible library versions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import weakref
from typing import Any, Dict, List, Optional, Tuple, Type

import networkx as nx

from repro.core.params import SchemeParameters
from repro.core.types import NodeId
from repro.metric.graph_metric import GraphMetric
from repro.nets.hierarchy import NetHierarchy
from repro.observability.profile import BuildProfile
from repro.packing.ballpacking import BallPacking
from repro.pipeline.sampling import sample_ordered_pairs

#: Bump when artifact layout changes so on-disk caches self-invalidate.
#: v2: metric keys carry the normalization scale; schemes carry tracers.
CACHE_FORMAT_VERSION = 2


@dataclasses.dataclass
class BuildStats:
    """Hit/miss counters per artifact kind (for tests and logging)."""

    hits: Dict[str, int] = dataclasses.field(default_factory=dict)
    misses: Dict[str, int] = dataclasses.field(default_factory=dict)
    disk_hits: Dict[str, int] = dataclasses.field(default_factory=dict)

    def record(self, kind: str, outcome: str) -> None:
        counter = getattr(self, outcome)
        counter[kind] = counter.get(kind, 0) + 1

    def built(self, kind: str) -> int:
        """Number of artifacts of ``kind`` actually constructed."""
        return self.misses.get(kind, 0)


def graph_content_key(graph: nx.Graph) -> str:
    """Content hash of a graph: nodes, edges, and exact weights.

    Any change to the node set, the edge set, or a single edge weight
    changes the key — so cached artifacts can never be reused across
    different inputs.
    """
    hasher = hashlib.sha256()
    hasher.update(f"v{CACHE_FORMAT_VERSION}|n={graph.number_of_nodes()}|".encode())
    for v in sorted(graph.nodes()):
        hasher.update(f"N{v!r};".encode())
    edges = sorted(
        (min(u, v), max(u, v), float(d.get("weight", 1.0)))
        for u, v, d in graph.edges(data=True)
    )
    for u, v, w in edges:
        hasher.update(f"E{u!r},{v!r},{w!r};".encode())
    return hasher.hexdigest()


def params_key(params: SchemeParameters) -> Tuple[float, bool]:
    """Canonical cache key of a :class:`SchemeParameters`."""
    return (params.epsilon, params.tie_break_by_id)


def _canonical_kwarg(value: Any) -> Any:
    """Hashable canonical form of a construction kwarg, or None.

    Substrate objects (hierarchies, schemes, ...) are intentionally not
    canonicalized: passing one explicitly bypasses memoization, since
    the context cannot prove two instances interchangeable.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, type):
        return f"{value.__module__}.{value.__qualname__}"
    if isinstance(value, (list, tuple)):
        items = [_canonical_kwarg(v) for v in value]
        if any(item is _UNKEYABLE for item in items):
            return _UNKEYABLE
        return tuple(items)
    return _UNKEYABLE


_UNKEYABLE = object()


class BuildContext:
    """Shared-substrate factory: build once, reuse everywhere.

    Args:
        cache_dir: Optional directory for the on-disk artifact cache
            (conventionally ``.repro-cache/``).  ``None`` (the default)
            keeps the cache in memory only.
    """

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self._memory: Dict[Tuple, Any] = {}
        # Keyed by the metric *object* (weakly, so the cache never keeps
        # a metric alive): an id()-keyed dict would let a collected
        # metric's id be reused by a new one, which would then silently
        # inherit the wrong content key.
        self._metric_keys: "weakref.WeakKeyDictionary[GraphMetric, Tuple[str, float]]" = (
            weakref.WeakKeyDictionary()
        )
        self._cache_dir = cache_dir
        self.stats = BuildStats()
        self.profile = BuildProfile()
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    # -- keys -----------------------------------------------------------

    def metric_key(self, metric: GraphMetric) -> Tuple[str, float]:
        """Cache identity of a metric: ``(graph content hash, scale)``.

        Works for metrics built outside the context too: the key is
        computed from the underlying (relabelled) graph.  The applied
        normalization scale is part of the key — ``GraphMetric(g)`` and
        ``GraphMetric(g, normalize=False)`` over a graph with min edge
        weight != 1 define *different* metrics and must never share
        hierarchies, packings, pairs, or schemes.
        """
        key = self._metric_keys.get(metric)
        if key is None:
            key = (graph_content_key(metric.graph), float(metric.scale))
            self._metric_keys[metric] = key
        return key

    # -- generic memoization -------------------------------------------

    def _get_or_build(self, kind: str, key: Tuple, builder) -> Any:
        full_key = (kind,) + key
        if full_key in self._memory:
            self.stats.record(kind, "hits")
            return self._memory[full_key]
        artifact = self._disk_load(kind, full_key)
        if artifact is None:
            self.stats.record(kind, "misses")
            # Timings are inclusive: a scheme's builder resolves its
            # substrates through the context, so their build time shows
            # up both under their own kind and inside the scheme's.
            with self.profile.timed("build", kind):
                artifact = builder()
            self._disk_store(kind, full_key, artifact)
        else:
            self.stats.record(kind, "disk_hits")
        self._memory[full_key] = artifact
        return artifact

    def _disk_path(self, kind: str, full_key: Tuple) -> Optional[str]:
        if self._cache_dir is None:
            return None
        digest = hashlib.sha256(repr(full_key).encode()).hexdigest()[:24]
        return os.path.join(self._cache_dir, f"{kind}-{digest}.pkl")

    def _disk_load(self, kind: str, full_key: Tuple) -> Any:
        path = self._disk_path(kind, full_key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle, self.profile.timed(
                "disk_load", kind
            ):
                stored_key, artifact = pickle.load(handle)
        except Exception:
            # Corrupt, truncated, or stale entries raise a grab-bag of
            # exceptions from deep inside pickle; any failure to load
            # just means "rebuild".
            return None
        if stored_key != full_key:  # digest collision (vanishingly rare)
            return None
        return artifact

    def _disk_store(self, kind: str, full_key: Tuple, artifact: Any) -> None:
        path = self._disk_path(kind, full_key)
        if path is None:
            return
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle, self.profile.timed(
                "disk_store", kind
            ):
                pickle.dump((full_key, artifact), handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError, RecursionError):
            # Unpicklable or disk-full artifacts simply stay memory-only.
            if os.path.exists(tmp):
                os.remove(tmp)

    # -- substrates -----------------------------------------------------

    def metric(self, graph: nx.Graph, normalize: bool = True) -> GraphMetric:
        """The APSP metric of ``graph``, built once per content hash."""
        key = (graph_content_key(graph), normalize)
        metric = self._get_or_build(
            "metric", key, lambda: GraphMetric(graph, normalize=normalize)
        )
        # Register the *applied* scale (not the normalize flag): with
        # min edge weight 1 both flags build the same metric, and keying
        # on the scale lets them share downstream artifacts.
        self._metric_keys.setdefault(metric, (key[0], float(metric.scale)))
        return metric

    def hierarchy(
        self, metric: GraphMetric, root: Optional[NodeId] = None
    ) -> NetHierarchy:
        """The ``2^i``-net hierarchy of ``metric``, built once."""
        key = (self.metric_key(metric), root)
        return self._get_or_build(
            "hierarchy", key, lambda: NetHierarchy(metric, root=root)
        )

    def packing(self, metric: GraphMetric) -> BallPacking:
        """The Lemma 2.3 ball packings of ``metric``, built once."""
        key = (self.metric_key(metric),)
        return self._get_or_build("packing", key, lambda: BallPacking(metric))

    def pairs(
        self, metric: GraphMetric, count: int, seed: int = 0
    ) -> List[Tuple[NodeId, NodeId]]:
        """Deterministic evaluation pairs, deduplicated across callers."""
        key = (self.metric_key(metric), metric.n, count, seed)
        return self._get_or_build(
            "pairs",
            key,
            lambda: sample_ordered_pairs(metric.n, count, seed=seed),
        )

    # -- schemes --------------------------------------------------------

    def scheme(
        self,
        scheme_cls: Type,
        metric: GraphMetric,
        params: Optional[SchemeParameters] = None,
        **kwargs: Any,
    ) -> Any:
        """Build ``scheme_cls`` with substrates resolved via this context.

        The built scheme is memoized by ``(graph, class, params,
        kwargs)`` when every kwarg has a canonical value (ints, strings,
        classes, tuples of those).  Passing a live substrate object
        (``hierarchy=...``, ``underlying=...``) bypasses memoization of
        the scheme itself, but the substrates the class resolves through
        ``from_context`` are still shared.
        """
        if params is None:
            params = SchemeParameters()
        canonical = tuple(
            (name, _canonical_kwarg(value))
            for name, value in sorted(kwargs.items())
        )
        cls_name = f"{scheme_cls.__module__}.{scheme_cls.__qualname__}"
        if any(value is _UNKEYABLE for _, value in canonical):
            self.stats.record("scheme", "misses")
            with self.profile.timed("build", "scheme"):
                return scheme_cls.from_context(self, metric, params, **kwargs)
        key = (self.metric_key(metric), cls_name, params_key(params), canonical)
        return self._get_or_build(
            "scheme",
            key,
            lambda: scheme_cls.from_context(self, metric, params, **kwargs),
        )

    # -- observability --------------------------------------------------

    def profile_report(self) -> Dict[str, Any]:
        """Merged timing + hit/miss report (see ``BuildProfile.report``)."""
        return self.profile.report(self.stats)

    # -- maintenance ----------------------------------------------------

    def clear_memory(self) -> None:
        """Drop every in-memory artifact (disk entries are kept)."""
        self._memory.clear()
        self._metric_keys.clear()

    def __repr__(self) -> str:
        kinds = sorted(
            set(self.stats.hits) | set(self.stats.misses) | set(self.stats.disk_hits)
        )
        parts = ", ".join(
            f"{kind}: {self.stats.hits.get(kind, 0)}h/"
            f"{self.stats.misses.get(kind, 0)}m"
            for kind in kinds
        )
        disk = "on" if self._cache_dir else "off"
        return f"BuildContext(disk={disk}, {parts})"
