"""Deterministic parallel fan-out over independent work items.

A thin wrapper over :mod:`concurrent.futures` with the two properties
every caller in this library needs:

* **ordered results** — ``parallel_map(fn, items)`` returns results in
  the order of ``items``, regardless of worker scheduling, so parallel
  runs are bit-identical to serial ones;
* **serial fallback** — ``jobs <= 1`` (or fewer than two items) runs a
  plain loop in-process, so the parallel path is always optional and
  the worker function only needs to be picklable when it is actually
  fanned out.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Callable, List, Optional, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` → all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def parallel_map(
    fn: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    jobs: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: tuple = (),
) -> List[ResultT]:
    """Apply ``fn`` to every item, preserving item order in the result.

    With ``jobs > 1`` the items are dispatched to a process pool
    (``fn`` and the items must be picklable: use module-level worker
    functions, not closures).  Worker exceptions propagate to the
    caller exactly as in the serial path.

    ``initializer(*initargs)`` runs once per worker process before any
    item — the place to ship one large shared object (e.g. a routing
    scheme) across the process boundary once instead of once per item.
    The serial fallback calls it once in-process, so ``fn`` may rely on
    the initializer unconditionally.
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) < 2:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]
    workers = min(jobs, len(items))
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=initargs
    ) as pool:
        return list(pool.map(fn, items))


def chunk_evenly(items: Sequence[ItemT], chunks: int) -> List[List[ItemT]]:
    """Split into at most ``chunks`` contiguous, near-equal runs.

    Contiguity is what makes chunked fan-out order-preserving: the
    concatenation of the returned runs is exactly ``items``.
    """
    chunks = min(max(chunks, 1), len(items)) if items else 0
    if chunks == 0:
        return []
    base, extra = divmod(len(items), chunks)
    runs: List[List[ItemT]] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        runs.append(list(items[start : start + size]))
        start += size
    return runs
