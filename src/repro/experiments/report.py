"""Generate EXPERIMENTS.md: the paper-vs-measured record for E1-E10.

Run:  python -m repro.experiments.report [output-path]

Runs every experiment at the documentation scale and writes a Markdown
record pairing each paper artifact (table, figure, theorem) with the
measured outcome and a short pass/fail interpretation.  CI-grade checks
of the same facts live in tests/ and benchmarks/; this module exists so
the committed EXPERIMENTS.md is regenerable from one command.
"""

from __future__ import annotations

import sys
from typing import List

from typing import Optional

from repro.experiments import ablation, congestion, fig1, fig2, fig3
from repro.experiments import related_work, relaxed, resilience, scalefree
from repro.experiments import storage_audit, structures, sweeps
from repro.experiments import table1, table2
from repro.experiments import chaos as chaos_experiment
from repro.experiments import churn as churn_experiment
from repro.experiments import scale as scale_experiment
from repro.experiments import throughput as throughput_experiment
from repro.experiments.harness import ExperimentTable
from repro.pipeline.context import BuildContext


def _block(table: ExperimentTable) -> str:
    return "```\n" + table.formatted() + "\n```\n"


def generate(
    pair_count: int = 300,
    context: Optional[BuildContext] = None,
    jobs: int = 1,
    provenance: bool = False,
) -> str:
    """Build the full EXPERIMENTS.md content (runs every experiment).

    One shared :class:`BuildContext` feeds every experiment, so the
    suite's metrics, hierarchies, packings, pair samples, and schemes
    are each built once for the whole report.  ``jobs`` parallelizes
    the medium-scale table cells (the dominant single block); the
    small-scale experiments stay serial to maximize sharing.

    With ``provenance=True``, an appendix records where the build time
    went (per-artifact-kind seconds and cache counters from the shared
    context) and one example route-decision trace per scheme, so the
    report carries its own audit trail.
    """
    if context is None:
        context = BuildContext()
    sections: List[str] = []
    sections.append(
        "# EXPERIMENTS — paper vs measured\n\n"
        "Regenerate with `python -m repro.experiments.report`.  Every\n"
        "experiment is deterministic (fixed seeds).  The paper states\n"
        "asymptotic bounds; the *measured* columns below are concrete\n"
        "bits/stretch under the charging model described in README.md.\n"
    )

    t1 = table1.run(epsilon=0.5, pair_count=pair_count, context=context)
    sections.append(
        "## E1 — Table 1 (name-independent schemes)\n\n"
        "**Paper:** Theorem 1.4 routes with stretch `9+ε` using\n"
        "`(1/ε)^O(α) log Δ log n`-bit tables and `O(log n)`-bit headers;\n"
        "Theorem 1.1 keeps the stretch with `(1/ε)^O(α) log³ n`-bit\n"
        "tables and `O(log²n/log log n)`-bit headers.\n\n"
        "**Measured (ε = 0.5):**\n\n" + _block(t1) +
        "\n**Reading:** both compact schemes stay inside `9 + 8ε`; table\n"
        "sizes are a few kilobits regardless of family, versus the\n"
        "baseline's `Θ(n log n)` (which overtakes them as `n` grows —\n"
        "see E8).  Header ordering matches the paper: Theorem 1.1 pays\n"
        "a larger header than Theorem 1.4 for scale-freeness.\n"
    )

    t2 = table2.run(epsilon=0.5, pair_count=pair_count, context=context)
    sections.append(
        "## E2 — Table 2 (labeled schemes)\n\n"
        "**Paper:** `(1+ε)`-stretch labeled routing; both our Lemma 3.1\n"
        "implementation and Theorem 1.2 use optimal `⌈log n⌉`-bit\n"
        "labels; Theorem 1.2 removes the `log Δ` table factor.\n\n"
        "**Measured (ε = 0.5):**\n\n" + _block(t2) +
        "\n**Reading:** stretch stays within `1 + 8ε` everywhere; labels\n"
        "are exactly `⌈log n⌉` bits.  On these small-`Δ` families the\n"
        "non-scale-free tables are *smaller* — exactly the paper's\n"
        "remark that Theorem 1.4/Lemma 3.1 win when `Δ` is polynomial\n"
        "in `n`; E6 shows the reversal when `Δ` grows.\n"
    )

    f1 = fig1.run(epsilon=0.5, pair_count=pair_count // 2, context=context)
    f1sf = fig1.run_scalefree(
        epsilon=0.5, pair_count=pair_count // 2, context=context
    )
    sections.append(
        "## E3 — Figure 1 (name-independent route anatomy)\n\n"
        "**Paper:** Algorithm 3 alternates zooming-sequence legs with\n"
        "search-tree round trips; Lemma 3.4's arithmetic (Eqn. 4-6)\n"
        "charges the bulk of the `9+O(ε)` stretch to the searches.\n\n"
        "**Measured (Theorem 1.4 / Theorem 1.1):**\n\n"
        + _block(f1) + "\n" + _block(f1sf) +
        "\n**Reading:** the search phase carries ~55-60% of the route\n"
        "cost and dominates the zoom phase by ~6x, the shape Eqn. 6\n"
        "(`8(1/ε+1)/(1/ε−2)` search term vs `1·d` direct term)\n"
        "predicts.\n"
    )

    f2 = fig2.run(epsilon=0.5, pair_count=pair_count // 2, context=context)
    sections.append(
        "## E4 — Figure 2 (labeled route anatomy)\n\n"
        "**Paper:** Algorithm 5's ring walk does almost all the work;\n"
        "the Voronoi-center detour and search are `O(ε)·d(u,v)`\n"
        "(Claim 4.6, Lemma 4.7); Lemma 4.5 guarantees the search never\n"
        "misses.\n\n**Measured (Theorem 1.2):**\n\n" + _block(f2) +
        "\n**Reading:** on small-`Δ` families the walk alone delivers\n"
        "(the Voronoi phase is exercised on the exponential-weight\n"
        "family); zero Lemma 4.5 fallbacks everywhere.\n"
    )

    c1 = fig3.run_construction(epsilons=[2.0, 4.0, 6.0], n=768)
    c2 = fig3.run_counting()
    c3 = fig3.run_adversary(epsilon=6.0, n=384, namings=4,
                            routes_per_naming=25)
    sections.append(
        "## E5 — Figure 3 + Theorem 1.3 (lower bound)\n\n"
        "**Paper:** the spoke-tree `G(ε,n)` has `n` nodes, diameter\n"
        "`O(2^{1/ε} n)`, doubling dimension `≤ 6 − log ε` (Lemma 5.8),\n"
        "and forces stretch `≥ 9 − ε` on any name-independent scheme\n"
        "with `o(n^{(ε/60)²})`-bit tables.\n\n**Measured:**\n\n"
        + _block(c1) + "\n" + _block(c2) + "\n" + _block(c3) +
        "\n**Reading:** construction invariants hold exactly (node\n"
        "count, diameter bound; the greedy dimension estimate sits at\n"
        "or within +1 of the analytic bound, as expected of an upper\n"
        "estimator).  The counting-side claims (5.10 base, 5.11\n"
        "averaging) verify exactly across ε.  Routing the paper's own\n"
        "Theorem 1.4 scheme on the tree lands inside the\n"
        "`[9−ε′, 9+O(ε)]` window — the squeeze the two theorems pin\n"
        "down.\n"
    )

    e6 = scalefree.run(n=20, bases=[1.5, 2.0, 4.0, 8.0], context=context)
    sections.append(
        "## E6 — scale-free ablation (Theorem 1.1/1.2 vs 1.4/Lemma 3.1)\n\n"
        "**Paper:** the non-scale-free schemes store one level per\n"
        "power of two of `Δ`; the scale-free schemes replace them with\n"
        "`log n + 1` ball packings.\n\n**Measured (fixed n = 20):**\n\n"
        + _block(e6) +
        "\n**Reading:** as `log Δ` grows ~4.5x the Theorem 1.4 tables\n"
        "grow ~3x and Lemma 3.1's ~3x, while Theorems 1.1/1.2 stay\n"
        "flat — the headline SODA-2007 result.\n"
    )

    e7 = sweeps.run_stretch_sweep(pair_count=pair_count, context=context)
    sections.append(
        "## E7 — stretch vs ε (Theorems 1.1, 1.2, 1.4)\n\n"
        "**Measured (8x8 grid):**\n\n" + _block(e7) +
        "\n**Reading:** labeled stretch degrades linearly in ε inside\n"
        "the `1+8ε` envelope; name-independent stretch stays inside\n"
        "Lemma 3.4's exact envelope `1 + 8(1/ε+1)/(1/ε−2)` for\n"
        "ε < 1/2.\n"
    )

    e8 = sweeps.run_storage_scaling(context=context)
    sections.append(
        "## E8 — storage vs n (Theorems 1.1, 1.2)\n\n"
        "**Measured (geometric graphs):**\n\n" + _block(e8) +
        "\n**Reading:** an 8x increase in `n` grows compact tables\n"
        "~3-5x — consistent with polylog scaling, far from the 8x of\n"
        "linear tables; labels are exactly `⌈log n⌉` bits.\n"
    )

    e9 = structures.run(context=context)
    sections.append(
        "## E9 — substrate lemma audit (Lemmas 2.2/2.3, Eqn. 3, "
        "Claim 3.9)\n\n**Measured:**\n\n" + _block(e9) +
        "\n**Reading:** the Packing Lemma holds exactly on every\n"
        "family; search-tree heights respect `(1+ε)r`; per-node H-link\n"
        "counts stay within Claim 3.9's `4 log n`.\n"
    )

    sections.append(
        "## E10 — lower-bound arithmetic grid\n\n"
        "`benchmarks/bench_lowerbound.py` sweeps ε over (0, 7.8) in\n"
        "steps of 0.1 and checks, for each: the `9−ε` bound, Claim\n"
        "5.10's base case, Claim 5.11's averaging inequality, and\n"
        "Lemma 5.4's pigeonhole count (log-space).  All 77 ε values\n"
        "pass; see bench output.  One paper constant needed explicit\n"
        "slack: `pq < (60/ε)²` fails by <2% at isolated ε (e.g.\n"
        "ε ≈ 2.664) when the ceilings are taken literally — recorded\n"
        "in `repro.lowerbound.counting`.\n"
    )

    rw = related_work.run(epsilon=0.5, pair_count=pair_count, context=context)
    sections.append(
        "## E13 — related work (§1.2): general-graph landmark routing\n\n"
        "**Paper context:** on general graphs stretch < 3 needs\n"
        "`Ω(√n)`-bit tables; Cowen's landmark scheme is the classic\n"
        "stretch-3 point.  Restricting to doubling metrics buys\n"
        "`1 + ε` with polylog tables.\n\n**Measured:**\n\n" + _block(rw) +
        "\n**Reading:** the landmark baseline respects (and on easy\n"
        "inputs beats) its stretch-3 guarantee but cannot *guarantee*\n"
        "better; Theorem 1.2 guarantees `1+O(ε)` on these families.\n"
    )

    a1 = ablation.run_tree_router(pair_count=pair_count // 2, context=context)
    a2 = ablation.run_ring_restriction(context=context)
    a3 = ablation.run_packing_service(context=context)
    sections.append(
        "## E14 — ablations of the design choices (DESIGN.md)\n\n"
        "**A1, Lemma 4.1 substrate** — DFS-interval vs heavy-path tree\n"
        "routing inside Theorem 1.2:\n\n" + _block(a1) +
        "\n**A2, the `R(u)` ring restriction** — entries stored vs the\n"
        "all-levels (Lemma 3.1) layout as `Δ` grows:\n\n" + _block(a2) +
        "\n**A3, packed-ball service in Theorem 1.1** — share of\n"
        "`(i, u)` levels served by `H(u,i)` links vs own trees:\n\n"
        + _block(a3) +
        "\n**Reading:** A1 — identical stretch, storage/header trade\n"
        "as designed.  A2 — the savings factor grows linearly with\n"
        "`log Δ`: this is the scale-free mechanism, isolated.  A3 —\n"
        "the ball packings absorb the large search balls at every ε,\n"
        "within Claim 3.9's link budget.\n"
    )

    e11 = congestion.run(packet_count=pair_count // 2, context=context)
    sections.append(
        "## E11 — routing under load (beyond the paper)\n\n"
        "Store-and-forward simulation of a Poisson workload:\n\n"
        + _block(e11) +
        "\n**Reading:** aggregate traffic inflates by ~3x (mean stretch\n"
        "in aggregate), and peak per-link load shows the search-tree\n"
        "hot spots — the operational cost of the `9+ε` guarantee.\n"
    )

    e12 = relaxed.run(pair_count=pair_count, context=context)
    sections.append(
        "## E12 — the conclusion's open problem, measured\n\n"
        "Stretch and storage *distributions* behind the worst cases:\n\n"
        + _block(e12) +
        "\n**Reading:** median stretch sits near 3 and under 20% of\n"
        "pairs exceed 5 — empirical room for the fraction-relaxed\n"
        "schemes the paper conjectures in its conclusion.\n"
    )

    from repro.experiments.harness import standard_suite

    t1m = table1.run(
        epsilon=0.5,
        pair_count=pair_count,
        suite=standard_suite("medium"),
        context=context,
        jobs=jobs,
    )
    t2m = table2.run(
        epsilon=0.5,
        pair_count=pair_count,
        suite=standard_suite("medium"),
        context=context,
        jobs=jobs,
    )
    sections.append(
        "## E1b/E2b — Tables 1-2 at medium scale (n ≈ 256)\n\n"
        "The same measurements on 4x-larger networks, checking that\n"
        "the shapes persist as `n` grows:\n\n" + _block(t1m) + "\n"
        + _block(t2m) +
        "\n**Reading:** stretch bounds hold unchanged; compact tables\n"
        "grew polylogarithmically (compare E1/E2: ~4x the nodes, far\n"
        "less than 4x the bits) while baseline tables grew linearly.\n"
    )

    e15 = storage_audit.run(context=context)
    sections.append(
        "## E15 — storage audit (Lemma 3.8's accounting, itemized)\n\n"
        + _block(e15) +
        "\n**Reading:** the Theorem 1.1 table decomposes exactly into\n"
        "the proof's named parts (underlying labeled state, netting-\n"
        "tree parent label, Claim-3.9 H-links, Lemma-3.5 search\n"
        "trees); the breakdown sums to `table_bits` bit-for-bit\n"
        "(asserted in tests/test_tables_and_audit.py).\n"
    )

    e16 = resilience.run(
        epsilon=0.5, pair_count=pair_count // 3, context=context, jobs=jobs
    )
    e16r = resilience.run_repair(epsilon=0.5, context=context)
    sections.append(
        "## E16 — resilience under failures (beyond the paper)\n\n"
        "10% of links fail after the tables are built; packets forward\n"
        "with *stale* tables under three fallback policies, and stretch\n"
        "is charged against the post-failure optimum:\n\n"
        + _block(e16) + "\n" + _block(e16r) +
        "\n**Reading:** fail-fast shows the schemes' raw fragility\n"
        "(roughly half the connected pairs die at the first dead\n"
        "link); a hop-bounded local detour restores delivery to every\n"
        "connected pair at small extra stretch, and net-hierarchy\n"
        "level-escalation lands in between — recovery via the paper's\n"
        "own zooming structure.  Every packet terminates with a typed\n"
        "outcome (no hangs), and rebuilding after recovery through the\n"
        "warm BuildContext is orders of magnitude cheaper than a cold\n"
        "build (artifact counts above; wall-clock in\n"
        "BENCH_resilience.json).\n"
    )

    e17 = churn_experiment.run(
        epsilon=0.5, pair_count=pair_count, edits=150, jobs=jobs
    )
    sections.append(
        "## E17 — incremental maintenance under churn (beyond the "
        "paper)\n\n"
        "A deterministic edit stream (60% weight changes, 24% link\n"
        "churn, 16% node churn) mutates the grid while packets keep\n"
        "flowing: each batch of 10 edits commits, the round's demands\n"
        "route against the now-stale tables under a fallback policy,\n"
        "then the tables are repaired *incrementally* through the warm\n"
        "BuildContext — only artifact partitions whose node\n"
        "dependencies intersect the edits' dirty set are rebuilt:\n\n"
        + _block(e17) +
        "\n**Reading:** repair keeps up with hundreds of edits per\n"
        "second of rebuild time, and the delivery/stretch columns show\n"
        "what staleness costs between repairs: fail-fast loses packets\n"
        "at every changed link, while local-detour delivers nearly\n"
        "everything at modest extra stretch.  The `verified` column\n"
        "counts rounds whose incrementally maintained tables were\n"
        "asserted **bit-identical** (routes, costs, table bits) to a\n"
        "cold rebuild of the current graph — incremental maintenance\n"
        "is exact, not approximate.  The 500-edit service run with\n"
        "per-round staleness-stretch vs repair-throughput curves is\n"
        "recorded in BENCH_churn.json; single-edit repair locality is\n"
        "itemized in BENCH_resilience.json.\n"
    )

    e18 = chaos_experiment.run(
        epsilon=0.5, pair_count=pair_count // 3, context=context, jobs=jobs
    )
    e18a = chaos_experiment.run_audit(epsilon=0.5, corrupt_count=4)
    sections.append(
        "## E18 — serving over an unreliable network (beyond the "
        "paper)\n\n"
        "The built tables are correct, but the channel is not: every\n"
        "link drops, delays, duplicates, and occasionally bit-flips\n"
        "headers under seeded per-link fault processes (drop rate as\n"
        "shown, jitter up to 50% of the link weight, corruption 0.5%\n"
        "per hop).  Each scheme serves the same demands twice — fail-\n"
        "fast (one attempt, no acks) and reliable (per-packet CRC-8\n"
        "header checksums, end-to-end acks, exponential-backoff\n"
        "retransmission):\n\n"
        + _block(e18) + "\n" + _block(e18a) +
        "\n**Reading:** at 5% per-link loss, fail-fast delivery decays\n"
        "with path length (long Theorem-1.4 routes suffer most), while\n"
        "ARQ restores ≥ 99% delivery for every scheme at the cost of\n"
        "the retransmission overhead shown — routing tables built for\n"
        "a perfect network serve an imperfect one with a transport\n"
        "wrapper, no table changes.  Every corrupted header is caught\n"
        "by its checksum (zero undetected), and the audit table shows\n"
        "the other half of the story: deliberately corrupted routing\n"
        "tables are detected row-by-row by digest, quarantined, healed\n"
        "through the warm BuildContext, and verified bit-identical to\n"
        "a cold rebuild.  The full loss sweep, the composed regime\n"
        "(chaos on top of 10% failed links with resilient re-routing),\n"
        "and wall-clock numbers live in BENCH_chaos.json.\n"
    )

    e19 = scale_experiment.run(
        pair_count=pair_count // 3, context=context
    )
    e19b = scale_experiment.run_doubling(
        epsilon=0.5, pair_count=pair_count // 3, context=context
    )
    e19c = scale_experiment.run_landmark_sweep(
        pair_count=pair_count // 3, context=context
    )
    sections.append(
        "## E19 — the Internet-scale regime on the lazy substrate "
        "(beyond the paper)\n\n"
        "The two-tier metric substrate materializes shortest-path rows\n"
        "on demand instead of paying the Θ(n²) APSP up front, which\n"
        "opens sizes the dense matrix cannot reach.  The landmark\n"
        "name-independent scheme (Krioukov–Fall–Yang regime, see\n"
        "PAPERS.md) builds from √n full rows plus one size-bounded\n"
        "vicinity search per node:\n\n"
        + _block(e19) + "\n" + _block(e19b) +
        "\n**Reading:** rows materialized stays ≈ √n ≪ n at every\n"
        "size — `python -m repro scale --sizes 256,2048,10000` extends\n"
        "the trajectory to n = 10⁴, where the scheme still builds from\n"
        "~100 rows while an eager APSP would need 10⁴ rows (~1.6 GB).\n"
        "The degradation table shows why the paper's doubling\n"
        "assumption matters: on power-law graphs Theorem 1.4's tables\n"
        "inflate several-fold (hub balls have unbounded doubling\n"
        "constant) while the landmark tables are family-agnostic — but\n"
        "only the doubling scheme carries a worst-case stretch\n"
        "guarantee, and the exponential-weight backbone family shows\n"
        "the landmark scheme's unbounded worst case.  Build-time and\n"
        "peak-memory trajectories are recorded in BENCH_substrate.json.\n"
        "The sizing sweep shows the Krioukov-Fall-Yang trade concretely:\n"
        "growing vicinities past the sqrt(n) default buys mean stretch\n"
        "toward 1 at linear table-bit cost:\n\n" + _block(e19c)
    )

    e20 = throughput_experiment.run(
        pair_count=pair_count, context=context
    )
    e20b = throughput_experiment.run_shards(
        pair_count=pair_count, context=context
    )
    sections.append(
        "## E20 — compiled serving throughput (beyond the paper)\n\n"
        "Every scheme's built tables lower to flat numpy arrays\n"
        "(`RoutingScheme.compile_tables()`), and the batch engine\n"
        "advances all live packets one hop per vectorized sweep with\n"
        "output bit-identical to the interpreted `route()` loop —\n"
        "path, cost, legs breakdown, and header bits, exact float\n"
        "equality, property-tested over every scheme x fixture in\n"
        "tests/test_engine.py.  Throughput on the E19 power-law\n"
        "fixture (landmark scheme, lazy substrate):\n\n"
        + _block(e20) + "\n" + _block(e20b) +
        "\n**Reading:** the speedup is the python-per-hop overhead the\n"
        "engine removes, so it grows with route length (and hence n);\n"
        "the committed trajectory (BENCH_throughput.json) clears the\n"
        "10x acceptance floor at n = 2048 with ~60x and reaches ~450x\n"
        "at n = 10^4.  Sharded serving pays one process round-trip per\n"
        "ownership migration, so it only wins once per-shard sweep work\n"
        "dominates migration — at these sizes the in-process engine is\n"
        "faster; the mode exists for serving-state partition, not\n"
        "speed (DESIGN.md, engine section).\n"
    )

    if provenance:
        sections.append(_provenance_appendix(context))
    return "\n".join(sections)


def _provenance_appendix(context: BuildContext) -> str:
    """Build-profile + example-trace appendix (``--provenance``)."""
    import json

    from repro.observability.catalog import SCHEMES
    from repro.observability.trace import replay

    lines = [
        "## Appendix — provenance\n",
        "Where the build time went (seconds per artifact kind, with\n"
        "cache hit/miss counts from the shared BuildContext):\n",
        "```json\n"
        + json.dumps(context.profile_report(), indent=2)
        + "\n```\n",
        "One example route per scheme on the 8x8 grid (0 -> 63),\n"
        "decision counts by phase; each trace replays to the exact\n"
        "returned path and cost (asserted here at generation time):\n",
    ]
    from repro.graphs.generators import grid_2d

    metric = context.metric(grid_2d(8))
    rows = []
    for slug, scheme_cls in SCHEMES.items():
        scheme = context.scheme(scheme_cls, metric)
        result, trace = scheme.trace_route(0, metric.n - 1)
        assert replay(trace).matches(result.path, result.cost)
        phases = ", ".join(
            f"{phase}: {count}" for phase, count in sorted(trace.phases().items())
        )
        rows.append(
            f"* `{slug}` — {len(trace.events)} decisions "
            f"({phases}); stretch {result.stretch:.3f}, "
            f"header {trace.header_bits} bits"
        )
    lines.append("\n".join(rows) + "\n")
    return "\n".join(lines)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    content = generate()
    with open(path, "w") as handle:
        handle.write(content)
    print(f"wrote {path} ({len(content)} bytes)")


if __name__ == "__main__":
    main()
