"""E17 — churn: incremental maintenance under continuous edits and load.

Each cell drives one scheme through the *same* deterministic edit
stream on the same starting topology (grid 8x8) while packets keep
flowing: edits commit in batches, the round's demands are routed with
**stale** tables under a fallback policy, then the tables are repaired
incrementally through the warm :class:`BuildContext` — only artifact
partitions whose node dependencies intersect the edits' dirty set are
rebuilt.  Reported per cell: repair throughput (edits per second of
apply + rebuild time), delivery rate and stretch inside the staleness
windows, and the built/reused artifact totals that make the incremental
saving auditable.  Every ``VERIFY_EVERY``-th round the warm scheme is
asserted bit-identical to a cold rebuild of the current graph; a
divergence raises :class:`~repro.churn.driver.ChurnVerificationError`
and fails the experiment.

Cells are independent (each owns a private warm context — that *is*
the system under test) and fan out over ``--jobs`` processes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.churn.driver import ChurnDriver
from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable, standard_suite
from repro.pipeline.parallel import parallel_map
from repro.resilience.router import POLICIES
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme

#: Same trio as E11/E16: the honest baseline and both paper theorems.
SCHEME_LINEUP = (
    (ShortestPathScheme, "baseline"),
    (SimpleNameIndependentScheme, "Theorem 1.4"),
    (ScaleFreeNameIndependentScheme, "Theorem 1.1"),
)

#: Master seed: every cell replays the identical edit stream, so the
#: scheme/policy comparison is paired, not sampled.
CHURN_SEED = 23

#: Cold-rebuild bit-identity check cadence, in rounds.
VERIFY_EVERY = 5


def _churn_cell(payload) -> List[object]:
    """Process-pool worker: one (scheme, policy) churn run."""
    (
        graph_name,
        graph,
        scheme_cls,
        label,
        policy,
        epsilon,
        edits,
        edits_per_round,
        pairs_per_round,
        verify_every,
    ) = payload
    driver = ChurnDriver(
        graph,
        scheme_cls,
        policy=policy,
        params=SchemeParameters(epsilon=epsilon),
        seed=CHURN_SEED,
        edits_per_round=edits_per_round,
        pairs_per_round=pairs_per_round,
        verify_every=verify_every,
    )
    report = driver.run(edits=edits)
    verified = sum(1 for r in report.rounds if r.verified)
    return [
        graph_name,
        label,
        policy,
        report.total_edits,
        len(report.rounds),
        f"{report.initial_nodes}->{report.final_nodes}",
        round(report.repair_throughput, 1),
        round(report.mean_delivery_rate(), 4),
        round(report.mean_stretch(), 4),
        round(report.max_stretch(), 4),
        report.total_built,
        report.total_reused,
        verified,
    ]


def run(
    epsilon: float = 0.5,
    pair_count: int = 300,
    edits: int = 150,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    jobs: int = 1,
) -> ExperimentTable:
    """Scheme x policy churn matrix on the grid fixture.

    ``pair_count`` is spread over the staleness windows (~15 rounds at
    the default batch width), so the CLI's ``--pairs`` keeps its usual
    meaning of total routed demands.  No shared context parameter: each
    cell must own its warm context, because the incremental state *is*
    the subject of the experiment.
    """
    if suite is None:
        suite = [standard_suite("small")[0]]  # grid 8x8
    edits_per_round = 10
    pairs_per_round = max(4, pair_count // 15)
    cells = []
    for graph_name, graph in suite:
        for scheme_cls, label in SCHEME_LINEUP:
            for policy in POLICIES:
                cells.append(
                    (
                        graph_name,
                        graph.copy(),
                        scheme_cls,
                        label,
                        policy,
                        epsilon,
                        edits,
                        edits_per_round,
                        pairs_per_round,
                        VERIFY_EVERY,
                    )
                )
    rows = parallel_map(_churn_cell, cells, jobs=jobs)
    return ExperimentTable(
        title=(
            f"Churn (E17): {edits} edits in batches of {edits_per_round}, "
            f"continuous load, eps={epsilon}, seed {CHURN_SEED}"
        ),
        columns=[
            "graph",
            "scheme",
            "policy",
            "edits",
            "rounds",
            "nodes",
            "repair eps",
            "delivery",
            "mean stretch*",
            "max stretch*",
            "built",
            "reused",
            "verified",
        ],
        rows=rows,
        notes=[
            "* stretch of packets delivered during the staleness windows, "
            "vs the POST-edit shortest paths (the honest optimum on the "
            "current topology)",
            "repair eps = edits committed per second of repair "
            "(apply_edit + incremental rebuild) wall-clock time — varies "
            "run to run; built/reused artifact counts are deterministic",
            f"verified = rounds whose warm tables were asserted "
            f"bit-identical (routes + table_bits_vector) to a cold "
            f"rebuild of the current graph (every {VERIFY_EVERY} rounds)",
            "every cell replays the identical seeded edit stream, so "
            "scheme/policy columns are a paired comparison",
            "node joins/leaves force a full rebuild of that round "
            "(the node set changed); weight/edge edits repair only the "
            "partitions intersecting their dirty set",
        ],
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
