"""E9 — audit of the substrate lemmas: nets (Lemma 2.2), packings
(Lemma 2.3), search trees (Eqn. 3), and the scale-free counting claims
(Claims 3.6/3.7/3.9, Lemma 3.5).

For every graph in the suite this measures:

* the largest observed ``|B_u(r') ∩ Y| · (r/4r')^α`` witness for the net
  packing bound of Lemma 2.2 (reported as the max net points seen in a
  ball of radius ``2r``, ``4r``);
* both Packing Lemma properties, exactly;
* search-tree heights against the ``(1+ε)r`` bound of Eqn. 3;
* the per-node counts behind Theorem 1.1's storage: search trees
  containing a node (Lemma 3.5) and ``H(u, i)`` links per node
  (Claim 3.9's ``4 log n``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable, standard_suite
from repro.pipeline.context import BuildContext
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.searchtree.tree import SearchTree


def run(
    epsilon: float = 0.5,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    if suite is None:
        suite = standard_suite("small")
    if context is None:
        context = BuildContext()
    params = SchemeParameters(epsilon=epsilon)
    rows: List[List[object]] = []
    for graph_name, graph in suite:
        metric = context.metric(graph)
        hierarchy = context.hierarchy(metric)
        packing = context.packing(metric)

        # Lemma 2.2 witness: net points within radius 2 * 2^i.
        lemma22 = 0
        for i in hierarchy.levels:
            net = set(hierarchy.net(i))
            for u in metric.nodes:
                in_ball = sum(
                    1 for x in metric.ball(u, 2.0 * 2.0**i) if x in net
                )
                lemma22 = max(lemma22, in_ball)

        # Lemma 2.3 properties, exactly.
        packing_ok = True
        for j in packing.levels:
            for u in metric.nodes:
                ball = packing.nearby_ball(u, j)
                r = metric.r_u(u, j)
                if ball.radius > r + 1e-9 or metric.distance(
                    u, ball.center
                ) > 2 * r + 1e-9:
                    packing_ok = False

        # Search-tree height vs Eqn. 3.
        radius = metric.diameter / 2.0
        tree = SearchTree(metric, 0, radius, epsilon)
        height_ratio = tree.height() / radius if radius > 0 else 0.0

        # Theorem 1.1 counting claims.
        scheme = context.scheme(ScaleFreeNameIndependentScheme, metric, params)
        max_h_links = max(
            scheme.h_link_count(u) for u in metric.nodes
        )
        claim39_bound = 4 * max(1, metric.log_n)

        rows.append(
            [
                graph_name,
                lemma22,
                packing_ok,
                round(height_ratio, 3),
                round(1.0 + epsilon, 3),
                max_h_links,
                claim39_bound,
                scheme.own_tree_count(),
            ]
        )
    return ExperimentTable(
        title=f"Substrate audit (E9), eps={epsilon}",
        columns=[
            "graph",
            "max net pts in 2r-ball",
            "Lemma 2.3 holds",
            "search height / r",
            "(1+eps) bound",
            "max H-links/node",
            "4 log n bound",
            "surviving A-trees",
        ],
        rows=rows,
        notes=[
            "Lemma 2.2 bounds net points in a ball of radius r' by "
            "(4r'/r)^alpha — the measured column is the witness count",
        ],
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
