"""E18 — chaos: delivery under lossy links, ARQ recovery, table healing.

Three tables:

* :func:`run` — the loss sweep.  Every scheme serves the same demand
  set over a :class:`ChaosNetwork` (Bernoulli drop + latency jitter +
  header corruption), once fail-fast (no ARQ: a dropped or corrupted
  copy is simply lost) and once in reliability mode (checksummed
  headers, duplicate suppression, sender ARQ).  Reported per cell:
  delivery rate, goodput, retransmission overhead, duplicate and
  corruption counters, mean latency of delivered packets.
* :func:`run_degraded` — the composed regime: ``ChaosNetwork`` over a
  ``DegradedNetwork`` with stale tables and a ``ResilientRouter``
  fallback policy, i.e. *topology* faults (E16) and *channel* faults
  (E18) at once.  The router's actual walks — detours, truncated drops
  and all — are pushed through the chaos simulator via ``paths=``.
* :func:`run_audit` — table-integrity self-healing: corrupt stored
  routing-table rows on a sample of nodes, detect them all via sealed
  digests, re-fetch the rows through the churn repair path, and verify
  the healed scheme routes bit-identically to a cold rebuild.

Seed hygiene: every random stream is derived from :data:`MASTER_SEED`
through :func:`repro.core.seeding.derive_seed` with a distinct stream
tag (``"demands"``, ``"chaos"``, ``"failures"``, ``"corrupt-sample"``),
so composed experiments cannot silently correlate — see DESIGN.md,
"Seed-splitting convention".

The suite drops ``grid-with-holes 9x9`` deliberately: Theorem 1.4
walks reach 97 physical links there, where end-to-end ARQ at 5% loss
is theoretically futile (per-attempt success 0.95^97 < 1%) — no honest
retry budget recovers it, and the point of the sweep is the regime
where ARQ *does* restore delivery.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from repro.chaos import ArqConfig, ChaosConfig, ChaosNetwork
from repro.chaos.audit import (
    CorruptionInjector,
    TableAuditor,
    quarantine_and_repair,
    verify_against_cold,
)
from repro.core.params import SchemeParameters
from repro.core.seeding import derive_seed
from repro.experiments.harness import ExperimentTable, standard_suite
from repro.pipeline.context import BuildContext
from repro.pipeline.parallel import parallel_map
from repro.resilience.degraded import DegradedNetwork
from repro.resilience.failure_plan import FailurePlan
from repro.resilience.router import POLICIES, ResilientRouter
from repro.runtime.simulator import TrafficSimulator, uniform_demands
from repro.schemes.cowen_landmark import CowenLandmarkScheme
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme

#: Root of every E18 random stream (see module docstring).
MASTER_SEED = 18

#: All six schemes, the full comparison line-up.
SCHEME_LINEUP = (
    (ShortestPathScheme, "baseline"),
    (CowenLandmarkScheme, "Cowen landmarks"),
    (NonScaleFreeLabeledScheme, "Theorem 1.2"),
    (ScaleFreeLabeledScheme, "Theorem 1.3"),
    (SimpleNameIndependentScheme, "Theorem 1.4"),
    (ScaleFreeNameIndependentScheme, "Theorem 1.1"),
)

#: The trio used for the composed degraded+lossy and audit tables.
TRIO_LINEUP = (
    (ShortestPathScheme, "baseline"),
    (SimpleNameIndependentScheme, "Theorem 1.4"),
    (ScaleFreeNameIndependentScheme, "Theorem 1.1"),
)

#: Loss rates swept by :func:`run`; the ARQ budget is provisioned for
#: the top of this range (see :data:`RELIABLE_ARQ`).
LOSSES = (0.0, 0.02, 0.05)

#: Latency jitter (uniform [0, jitter) per crossing) and header
#: corruption probability shared by every lossy cell.
JITTER = 0.5
CORRUPTION = 0.005

#: The reliability policy of the sweep: a generous retry budget with a
#: capped backoff cadence.  Name-independent walks reach ~45 physical
#: links on the suite, so per-attempt success at 5% loss can be ~10%;
#: the budget must absorb that (DESIGN.md derives the sizing).
RELIABLE_ARQ = ArqConfig(max_retries=128)


def chaos_suite(
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
) -> List[Tuple[str, nx.Graph]]:
    """The standard small suite minus the ARQ-futile holes graph."""
    if suite is None:
        suite = standard_suite("small")
    return [entry for entry in suite if entry[0] != "grid-with-holes 9x9"]


def _sweep_cell(payload) -> List[object]:
    """Process-pool worker: one (graph, scheme, loss, arq) sweep cell."""
    graph_name, scheme, label, loss, arq, demands, chaos_seed = payload
    chaos = ChaosNetwork(
        scheme.metric,
        ChaosConfig(loss=loss, jitter=JITTER, corruption=CORRUPTION),
        seed=chaos_seed,
    )
    report = TrafficSimulator(scheme).run(demands, chaos=chaos, arq=arq)
    return [
        graph_name,
        label,
        loss,
        "on" if arq is not None else "off",
        f"{report.delivered}/{report.offered}",
        round(report.delivery_rate(), 4),
        round(report.goodput(), 4),
        round(report.retransmission_overhead(), 3),
        report.duplicate_deliveries(),
        report.corrupt_detected(),
        report.corrupt_undetected(),
        round(report.mean_latency(), 2),
    ]


def run(
    epsilon: float = 0.5,
    pair_count: int = 300,
    losses: Sequence[float] = LOSSES,
    loss: Optional[float] = None,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    context: Optional[BuildContext] = None,
    jobs: int = 1,
) -> ExperimentTable:
    """Delivery of every scheme × loss rate, fail-fast vs ARQ.

    ``loss`` (the CLI's ``--loss``) collapses the sweep to one point.
    """
    params = SchemeParameters(epsilon=epsilon)
    if loss is not None:
        losses = (loss,)
    suite = chaos_suite(suite)
    if context is None:
        context = BuildContext()
    demand_seed = derive_seed(MASTER_SEED, "demands")
    chaos_seed = derive_seed(MASTER_SEED, "chaos")
    cells = []
    for graph_name, graph in suite:
        metric = context.metric(graph)
        demands = uniform_demands(
            metric.n, pair_count, rate=2.0, seed=demand_seed
        )
        for scheme_cls, label in SCHEME_LINEUP:
            scheme = context.scheme(scheme_cls, metric, params)
            for loss in losses:
                for arq in (None, RELIABLE_ARQ):
                    cells.append(
                        (
                            graph_name,
                            scheme,
                            label,
                            loss,
                            arq,
                            demands,
                            chaos_seed,
                        )
                    )
    rows = parallel_map(_sweep_cell, cells, jobs=jobs)
    return ExperimentTable(
        title=(
            f"Chaos sweep (E18): loss x ARQ, jitter={JITTER}, "
            f"header corruption={CORRUPTION}, eps={epsilon}, "
            f"{pair_count} demands"
        ),
        columns=[
            "graph",
            "scheme",
            "loss",
            "arq",
            "delivered",
            "rate",
            "goodput",
            "retx ovh",
            "dups",
            "crpt det",
            "crpt und",
            "mean lat*",
        ],
        rows=rows,
        notes=[
            "* mean latency of DELIVERED packets (simulated time units); "
            "under ARQ it includes retransmission waits",
            f"arq=on: max_retries={RELIABLE_ARQ.max_retries}, backoff "
            f"{RELIABLE_ARQ.backoff}x capped at "
            f"{RELIABLE_ARQ.backoff_cap:.0f}x, "
            f"{RELIABLE_ARQ.checksum_bits}-bit header CRC; arq=off: "
            "fail-fast, one attempt, no checksum",
            "grid-with-holes 9x9 omitted: Theorem 1.4 walks reach 97 "
            "physical links there — end-to-end ARQ at 5% loss cannot "
            "recover a path that long (per-attempt success < 1%)",
            "single-bit header flips are always CAUGHT under ARQ (the "
            "CRC polynomials detect any odd number of flips), so "
            "'crpt und' can be nonzero only with arq=off",
        ],
    )


def _degraded_cell(payload) -> List[object]:
    """Worker: one (scheme, policy) composed stale+lossy cell."""
    graph_name, scheme, label, policy, fraction, loss, demands = payload
    metric = scheme.metric
    plan = FailurePlan.uniform_links(
        metric, fraction, seed=derive_seed(MASTER_SEED, "failures")
    )
    degraded = DegradedNetwork.from_plan(metric, plan)
    router = ResilientRouter(scheme, degraded, policy=policy)
    walks = [
        router.route(demand.source, demand.target).path
        for demand in demands
    ]
    routed = sum(
        1
        for demand, walk in zip(demands, walks)
        if walk and walk[-1] == demand.target
    )
    chaos = ChaosNetwork(
        degraded,
        ChaosConfig(loss=loss, jitter=JITTER, corruption=CORRUPTION),
        seed=derive_seed(MASTER_SEED, "chaos"),
    )
    report = TrafficSimulator(scheme).run(
        demands, paths=walks, chaos=chaos, arq=RELIABLE_ARQ
    )
    return [
        graph_name,
        label,
        policy,
        round(routed / len(demands), 4),
        f"{report.delivered}/{report.offered}",
        round(report.delivery_rate(), 4),
        round(report.retransmission_overhead(), 3),
        round(report.goodput(), 4),
    ]


def run_degraded(
    epsilon: float = 0.5,
    pair_count: int = 200,
    fail_fraction: float = 0.10,
    loss: float = 0.05,
    context: Optional[BuildContext] = None,
    jobs: int = 1,
) -> ExperimentTable:
    """Composed regime: stale tables + dead links + lossy channel.

    The routing plane (E16's ``ResilientRouter`` over a
    ``DegradedNetwork``) decides each packet's walk; the transport
    plane (ARQ over ``ChaosNetwork`` wrapping the *degraded* overlay)
    decides whether it survives the channel.  End-to-end delivery is
    the product of the two: a truncated walk counts as undelivered no
    matter how hard the transport retries.
    """
    params = SchemeParameters(epsilon=epsilon)
    if context is None:
        context = BuildContext()
    graph_name, graph = chaos_suite()[0]
    metric = context.metric(graph)
    demands = uniform_demands(
        metric.n,
        pair_count,
        rate=2.0,
        seed=derive_seed(MASTER_SEED, "demands"),
    )
    cells = []
    for scheme_cls, label in TRIO_LINEUP:
        scheme = context.scheme(scheme_cls, metric, params)
        for policy in POLICIES:
            cells.append(
                (
                    graph_name,
                    scheme,
                    label,
                    policy,
                    fail_fraction,
                    loss,
                    demands,
                )
            )
    rows = parallel_map(_degraded_cell, cells, jobs=jobs)
    return ExperimentTable(
        title=(
            f"Composed chaos (E18): {fail_fraction:.0%} links failed + "
            f"{loss:.0%} loss, stale tables, ARQ on, {graph_name}"
        ),
        columns=[
            "graph",
            "scheme",
            "policy",
            "routed",
            "delivered",
            "rate",
            "retx ovh",
            "goodput",
        ],
        rows=rows,
        notes=[
            "routed = fraction of walks that reach the target on the "
            "degraded topology (the routing-plane ceiling on delivery)",
            "the chaos channel wraps the DEGRADED overlay: propagation "
            "is charged at post-failure weights, and faults hit the "
            "detoured links the router actually used",
            "truncated walks never ack, so the sender burns its whole "
            "retry budget on them — the inflated retx overhead under "
            "fail-fast is the cost of pointing ARQ at a routing-plane "
            "black hole, not a transport bug",
        ],
    )


def run_audit(
    epsilon: float = 0.5,
    corrupt_count: int = 6,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
) -> ExperimentTable:
    """Detect, quarantine, and heal corrupted routing-table rows.

    Every cell uses a **private** :class:`BuildContext`: the injector
    writes through the metric's internal arrays, and a shared
    content-hash cache must never serve corrupted substrates to other
    experiments.  After healing, :func:`verify_against_cold` asserts
    the scheme routes bit-identically to a from-scratch rebuild.
    """
    params = SchemeParameters(epsilon=epsilon)
    suite = chaos_suite(suite)
    rows: List[List[object]] = []
    for graph_name, graph in suite:
        for scheme_cls, label in TRIO_LINEUP:
            context = BuildContext()
            metric = context.metric(graph)
            scheme = context.scheme(scheme_cls, metric, params)
            auditor = TableAuditor(metric)
            rng = random.Random(
                derive_seed(MASTER_SEED, "corrupt-sample")
            )
            victims = sorted(
                rng.sample(range(metric.n), min(corrupt_count, metric.n))
            )
            injector = CorruptionInjector(
                seed=derive_seed(MASTER_SEED, "corrupt")
            )
            injected = injector.corrupt(metric, victims)
            report = quarantine_and_repair(
                context, auditor, injected=injected
            )
            pairs_checked = verify_against_cold(
                scheme,
                scheme_cls,
                params,
                seed=derive_seed(MASTER_SEED, "verify-pairs"),
            )
            rows.append(
                [
                    graph_name,
                    label,
                    len(report.injected),
                    len(report.detected),
                    round(report.detection_rate, 4),
                    report.rows_respliced,
                    "yes" if report.clean_after else "NO",
                    pairs_checked,
                ]
            )
    return ExperimentTable(
        title=(
            "Table-integrity audit (E18): inject, detect, quarantine, "
            f"heal via row splicing ({corrupt_count} nodes per cell)"
        ),
        columns=[
            "graph",
            "scheme",
            "injected",
            "detected",
            "det rate",
            "respliced",
            "clean",
            "cold-identical pairs",
        ],
        rows=rows,
        notes=[
            "detected rows are re-fetched through the churn repair "
            "path (BuildContext.repair_rows -> GraphMetric.splice_rows)",
            "cold-identical pairs = routes compared bit-identical "
            "against a cold rebuild after healing "
            "(TableIntegrityError otherwise)",
        ],
    )


def main() -> None:
    run().print()
    run_degraded().print()
    run_audit().print()


if __name__ == "__main__":
    main()
