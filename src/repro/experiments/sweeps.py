"""E7/E8 — parameter sweeps: stretch vs ``ε`` and storage vs ``n``.

E7 verifies the stretch theorems quantitatively: measured maximum stretch
of each scheme as ``ε`` shrinks, against the guarantees ``9 + O(ε)``
(Theorems 1.1, 1.4) and ``1 + O(ε)`` (Theorem 1.2, Lemma 3.1).

E8 verifies the storage theorems: maximum per-node table bits as ``n``
grows on the geometric-graph family, reported alongside ``log³ n`` so
the polylogarithmic scaling (and the ``⌈log n⌉``-bit labels) can be read
off directly.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable
from repro.graphs.generators import grid_2d, random_geometric
from repro.pipeline.context import BuildContext
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme

ALL_SCHEMES = (
    ("labeled non-SF", NonScaleFreeLabeledScheme),
    ("labeled SF (1.2)", ScaleFreeLabeledScheme),
    ("name-ind (1.4)", SimpleNameIndependentScheme),
    ("name-ind SF (1.1)", ScaleFreeNameIndependentScheme),
)


def run_stretch_sweep(
    epsilons: Optional[List[float]] = None,
    grid_side: int = 8,
    pair_count: int = 300,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    """E7: measured max stretch vs ``ε`` on a grid."""
    if epsilons is None:
        epsilons = [0.125, 0.25, 0.375, 0.5]
    if context is None:
        context = BuildContext()
    metric = context.metric(grid_2d(grid_side))
    pairs = context.pairs(metric, pair_count)
    rows: List[List[object]] = []
    for eps in epsilons:
        params = SchemeParameters(epsilon=eps)
        row: List[object] = [eps]
        for _, scheme_cls in ALL_SCHEMES:
            scheme = context.scheme(scheme_cls, metric, params)
            ev = scheme.evaluate(pairs)
            row.append(round(ev.max_stretch, 3))
        row.append(round(1 + 8 * eps, 3))
        row.append(round(9 + 8 * eps, 3))
        rows.append(row)
    return ExperimentTable(
        title=f"Stretch sweep (E7): grid {grid_side}x{grid_side}",
        columns=["eps"]
        + [name for name, _ in ALL_SCHEMES]
        + ["1+8eps bound", "9+8eps bound"],
        rows=rows,
        notes=[
            "labeled columns obey 1+O(eps); name-independent columns "
            "obey 9+O(eps) (we chart the constant-8 envelopes)",
        ],
    )


def run_storage_scaling(
    sizes: Optional[List[int]] = None,
    epsilon: float = 0.5,
    seed: int = 5,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    """E8: max table bits vs ``n`` on geometric graphs, vs ``log³ n``."""
    if sizes is None:
        sizes = [32, 64, 128, 256]
    if context is None:
        context = BuildContext()
    params = SchemeParameters(epsilon=epsilon)
    rows: List[List[object]] = []
    for n in sizes:
        metric = context.metric(random_geometric(n, seed=seed))
        row: List[object] = [n, round(math.log2(n) ** 3, 1)]
        for _, scheme_cls in ALL_SCHEMES:
            scheme = context.scheme(scheme_cls, metric, params)
            row.append(scheme.max_table_bits())
        labeled = context.scheme(ScaleFreeLabeledScheme, metric, params)
        row.append(labeled.label_bits())
        rows.append(row)
    return ExperimentTable(
        title=f"Storage scaling (E8): geometric graphs, eps={epsilon}",
        columns=["n", "log^3 n"]
        + [name for name, _ in ALL_SCHEMES]
        + ["label bits"],
        rows=rows,
        notes=[
            "Theorem 1.1/1.2 tables are (1/eps)^O(alpha) log^3 n bits; "
            "labels are exactly ceil(log n) bits",
        ],
    )


def main() -> None:
    run_stretch_sweep().print()
    run_storage_scaling().print()


if __name__ == "__main__":
    main()
