"""E19 — the Internet-scale regime on the lazy substrate.

The paper's schemes are compact *because* the metric is doubling; their
``(1/ε)^O(α)``-size structures assume every ball can be covered by a
constant number of half-radius balls.  Two questions the dense APSP
substrate could never ask:

1. **How far does compact routing scale** when the metric is queried
   lazily?  The :class:`LandmarkNameIndependentScheme` builds from
   ``k ≈ √n`` full Dijkstra rows plus one size-bounded search per node,
   so its build cost — time, rows materialized, peak memory — should
   grow near-linearly while an eager APSP pays ``Θ(n²)`` memory before
   the first query.
2. **What breaks on non-doubling graphs?**  Power-law graphs
   (preferential attachment, Internet-AS-like) have hubs whose balls
   grow linearly — the doubling constant is unbounded — so Theorem
   1.4's per-node tables degrade toward ``Θ(n)``; the Krioukov–Fall–
   Yang observation is that landmark routing stays compact there at the
   price of the worst-case stretch guarantee.

``run`` measures (1): build seconds, full rows materialized (the
substrate's acceptance counter), ``tracemalloc`` peak, average stretch,
and mean table bits per node, for each family and size.  ``run_doubling``
measures (2): Theorem 1.4 versus the landmark scheme on a doubling and a
power-law family at equal (small) sizes, where the doubling scheme is
still buildable.

CLI: ``python -m repro scale [--sizes 256,2048,10000] [--pairs N]``.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from repro.experiments.harness import ExperimentTable
from repro.graphs.generators import (
    clustered_backbone,
    internet_as_like,
    preferential_attachment,
    random_geometric,
)
from repro.pipeline.context import BuildContext
from repro.pipeline.sampling import sample_ordered_pairs
from repro.schemes.landmark_nameind import LandmarkNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme

#: Default size ladder: small enough for the generated report, and the
#: CLI reaches the full regime with ``--sizes 256,2048,10000``.
DEFAULT_SIZES = (256, 1024, 2048)


def _families(n: int) -> List[Tuple[str, "nx.Graph"]]:
    side = max(2, round(n**0.5))
    return [
        ("pref-attach m=2", preferential_attachment(n, m=2, seed=1)),
        ("internet-AS-like", internet_as_like(n, m=2, seed=1)),
        ("geometric", random_geometric(n, seed=11)),
        ("clustered-backbone", clustered_backbone(side, side, max_weight=2.0**20)),
    ]


def _mean_stretch(scheme, metric, pair_count: int, seed: int = 0) -> float:
    pairs = sample_ordered_pairs(metric.n, pair_count, seed=seed)
    total = 0.0
    for u, v in pairs:
        total += scheme.route(u, v).stretch
    return total / len(pairs) if pairs else 1.0


def run(
    pair_count: int = 300,
    context: Optional[BuildContext] = None,
    sizes: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """Build + route cost of the landmark scheme as ``n`` grows.

    Every metric is forced onto the lazy strategy (even below the
    auto-selection threshold) so the rows-materialized column is the
    same counter at every size; peak memory is the ``tracemalloc`` high
    water of graph + metric + scheme construction.
    """
    if context is None:
        context = BuildContext()
    if sizes is None:
        sizes = DEFAULT_SIZES
    rows: List[List[object]] = []
    for n in sizes:
        for family, graph in _families(int(n)):
            tracemalloc.start()
            start = time.perf_counter()
            metric = context.metric(graph, strategy="lazy")
            scheme = LandmarkNameIndependentScheme(metric)
            build_seconds = time.perf_counter() - start
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            stats = metric.substrate_stats()
            stretch = _mean_stretch(
                scheme, metric, min(pair_count, 200)
            )
            rows.append(
                [
                    family,
                    metric.n,
                    round(build_seconds, 3),
                    int(stats["rows_materialized"]),
                    round(peak / 2**20, 1),
                    round(stretch, 3),
                    int(scheme.total_table_bits() / metric.n),
                ]
            )
    return ExperimentTable(
        title="E19: lazy-substrate scaling (landmark name-independent)",
        columns=[
            "family",
            "n",
            "build s",
            "rows materialized",
            "peak MiB",
            "avg stretch",
            "avg table bits",
        ],
        rows=rows,
        notes=[
            "rows materialized counts full Dijkstra rows ever solved; "
            "an eager APSP would pay n rows before the first query",
            "peak MiB is the tracemalloc high water of graph + metric + "
            "scheme construction (routing excluded)",
            "the exponential-weight backbone is the landmark scheme's "
            "worst case (directory detours cross the backbone while "
            "d(u,v) is intra-cluster) — the regime the paper's doubling "
            "schemes cover with a guarantee",
        ],
    )


def run_doubling(
    epsilon: float = 0.5,
    pair_count: int = 300,
    context: Optional[BuildContext] = None,
    sizes: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """Theorem 1.4 vs the landmark scheme off the doubling assumption.

    Runs both schemes on a doubling family (geometric) and a
    non-doubling one (preferential attachment) at sizes where Theorem
    1.4 is still buildable, and reports mean/max table bits: on the
    power-law family the hub balls inflate the doubling scheme's rings
    and search trees toward ``Θ(n)`` per node, while the landmark
    scheme's ``√n`` tables are family-agnostic — the trade being its
    lack of a worst-case stretch guarantee.
    """
    if context is None:
        context = BuildContext()
    if sizes is None:
        sizes = (128, 256)
    rows: List[List[object]] = []
    for n in sizes:
        for family, graph in (
            ("geometric", random_geometric(int(n), seed=11)),
            ("pref-attach m=2", preferential_attachment(int(n), m=2, seed=1)),
        ):
            metric = context.metric(graph)
            for label, scheme in (
                (
                    "Thm 1.4 (doubling)",
                    context.scheme(SimpleNameIndependentScheme, metric),
                ),
                (
                    "landmark (KFY)",
                    context.scheme(LandmarkNameIndependentScheme, metric),
                ),
            ):
                bits = scheme.table_bits_vector()
                rows.append(
                    [
                        family,
                        metric.n,
                        label,
                        int(sum(bits) / len(bits)),
                        int(max(bits)),
                        round(
                            _mean_stretch(
                                scheme, metric, min(pair_count, 150)
                            ),
                            3,
                        ),
                    ]
                )
    return ExperimentTable(
        title="E19b: doubling-scheme degradation on power-law graphs",
        columns=[
            "family",
            "n",
            "scheme",
            "avg table bits",
            "max table bits",
            "avg stretch",
        ],
        rows=rows,
        notes=[
            "the doubling scheme keeps its 9+O(eps) guarantee everywhere "
            "but its tables inflate on the non-doubling family; the "
            "landmark scheme has no worst-case guarantee anywhere",
        ],
    )


def run_landmark_sweep(
    pair_count: int = 300,
    context: Optional[BuildContext] = None,
    vicinity_scale: Optional[Sequence[float]] = None,
    landmarks: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """Landmark/vicinity sizing sweep on the power-law fixture.

    The ``√n`` default sizing (Krioukov–Fall–Yang) lands at mean
    stretch ≈ 2.1–2.6 on preferential-attachment graphs; the KFY
    observation is that Internet-like graphs admit *near-1* mean
    stretch once vicinities grow past the hub scale.  This sweep
    varies ``vicinity_size`` (as multiples of ``√n``) against
    ``landmark_count`` and reports mean/max stretch plus the storage
    each point pays, so the stretch-vs-table-bits frontier is measured
    rather than asserted.

    CLI: ``python -m repro scale --vicinity-scale 1,4,16
    --landmarks 8,16,32``.
    """
    if context is None:
        context = BuildContext()
    n = 256
    root = max(1, round(n**0.5))
    scales = (1.0, 4.0, 16.0) if vicinity_scale is None else vicinity_scale
    counts = (root // 2, root, 2 * root) if landmarks is None else landmarks
    metric = context.metric(
        preferential_attachment(n, m=2, seed=1), strategy="lazy"
    )
    rows: List[List[object]] = []
    for landmark_count in counts:
        for scale in scales:
            vicinity = max(1, min(n, round(root * float(scale))))
            scheme = context.scheme(
                LandmarkNameIndependentScheme,
                metric,
                landmark_count=int(landmark_count),
                vicinity_size=vicinity,
            )
            pairs = sample_ordered_pairs(n, min(pair_count, 200), seed=0)
            stretches = [scheme.route(u, v).stretch for u, v in pairs]
            bits = scheme.table_bits_vector()
            rows.append(
                [
                    int(landmark_count),
                    vicinity,
                    round(sum(stretches) / len(stretches), 3),
                    round(max(stretches), 3),
                    int(sum(bits) / len(bits)),
                    int(max(bits)),
                ]
            )
    return ExperimentTable(
        title=f"E19c: landmark/vicinity sizing sweep (pref-attach n={n})",
        columns=[
            "landmarks",
            "vicinity",
            "mean stretch",
            "max stretch",
            "avg table bits",
            "max table bits",
        ],
        rows=rows,
        notes=[
            "vicinity is set in multiples of sqrt(n); stretch falls "
            "toward 1 as vicinities cover the hub scale while table "
            "bits grow linearly in the vicinity size",
            "the sweep's sqrt(n) diagonal row is recorded in "
            "BENCH_substrate.json (landmark_sweep)",
        ],
    )
