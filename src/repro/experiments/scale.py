"""E19 — the Internet-scale regime on the lazy substrate.

The paper's schemes are compact *because* the metric is doubling; their
``(1/ε)^O(α)``-size structures assume every ball can be covered by a
constant number of half-radius balls.  Two questions the dense APSP
substrate could never ask:

1. **How far does compact routing scale** when the metric is queried
   lazily?  The :class:`LandmarkNameIndependentScheme` builds from
   ``k ≈ √n`` full Dijkstra rows plus one size-bounded search per node,
   so its build cost — time, rows materialized, peak memory — should
   grow near-linearly while an eager APSP pays ``Θ(n²)`` memory before
   the first query.
2. **What breaks on non-doubling graphs?**  Power-law graphs
   (preferential attachment, Internet-AS-like) have hubs whose balls
   grow linearly — the doubling constant is unbounded — so Theorem
   1.4's per-node tables degrade toward ``Θ(n)``; the Krioukov–Fall–
   Yang observation is that landmark routing stays compact there at the
   price of the worst-case stretch guarantee.

``run`` measures (1): build seconds, full rows materialized (the
substrate's acceptance counter), ``tracemalloc`` peak, average stretch,
and mean table bits per node, for each family and size.  ``run_doubling``
measures (2): Theorem 1.4 versus the landmark scheme on a doubling and a
power-law family at equal (small) sizes, where the doubling scheme is
still buildable.

CLI: ``python -m repro scale [--sizes 256,2048,10000] [--pairs N]``.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from repro.experiments.harness import ExperimentTable
from repro.graphs.generators import (
    clustered_backbone,
    internet_as_like,
    preferential_attachment,
    random_geometric,
)
from repro.pipeline.context import BuildContext
from repro.pipeline.sampling import sample_ordered_pairs
from repro.schemes.landmark_nameind import LandmarkNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme

#: Default size ladder: small enough for the generated report, and the
#: CLI reaches the full regime with ``--sizes 256,2048,10000``.
DEFAULT_SIZES = (256, 1024, 2048)


def _families(n: int) -> List[Tuple[str, "nx.Graph"]]:
    side = max(2, round(n**0.5))
    return [
        ("pref-attach m=2", preferential_attachment(n, m=2, seed=1)),
        ("internet-AS-like", internet_as_like(n, m=2, seed=1)),
        ("geometric", random_geometric(n, seed=11)),
        ("clustered-backbone", clustered_backbone(side, side, max_weight=2.0**20)),
    ]


def _mean_stretch(scheme, metric, pair_count: int, seed: int = 0) -> float:
    pairs = sample_ordered_pairs(metric.n, pair_count, seed=seed)
    total = 0.0
    for u, v in pairs:
        total += scheme.route(u, v).stretch
    return total / len(pairs) if pairs else 1.0


def run(
    pair_count: int = 300,
    context: Optional[BuildContext] = None,
    sizes: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """Build + route cost of the landmark scheme as ``n`` grows.

    Every metric is forced onto the lazy strategy (even below the
    auto-selection threshold) so the rows-materialized column is the
    same counter at every size; peak memory is the ``tracemalloc`` high
    water of graph + metric + scheme construction.
    """
    if context is None:
        context = BuildContext()
    if sizes is None:
        sizes = DEFAULT_SIZES
    rows: List[List[object]] = []
    for n in sizes:
        for family, graph in _families(int(n)):
            tracemalloc.start()
            start = time.perf_counter()
            metric = context.metric(graph, strategy="lazy")
            scheme = LandmarkNameIndependentScheme(metric)
            build_seconds = time.perf_counter() - start
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            stats = metric.substrate_stats()
            stretch = _mean_stretch(
                scheme, metric, min(pair_count, 200)
            )
            rows.append(
                [
                    family,
                    metric.n,
                    round(build_seconds, 3),
                    int(stats["rows_materialized"]),
                    round(peak / 2**20, 1),
                    round(stretch, 3),
                    int(scheme.total_table_bits() / metric.n),
                ]
            )
    return ExperimentTable(
        title="E19: lazy-substrate scaling (landmark name-independent)",
        columns=[
            "family",
            "n",
            "build s",
            "rows materialized",
            "peak MiB",
            "avg stretch",
            "avg table bits",
        ],
        rows=rows,
        notes=[
            "rows materialized counts full Dijkstra rows ever solved; "
            "an eager APSP would pay n rows before the first query",
            "peak MiB is the tracemalloc high water of graph + metric + "
            "scheme construction (routing excluded)",
            "the exponential-weight backbone is the landmark scheme's "
            "worst case (directory detours cross the backbone while "
            "d(u,v) is intra-cluster) — the regime the paper's doubling "
            "schemes cover with a guarantee",
        ],
    )


def run_doubling(
    epsilon: float = 0.5,
    pair_count: int = 300,
    context: Optional[BuildContext] = None,
    sizes: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """Theorem 1.4 vs the landmark scheme off the doubling assumption.

    Runs both schemes on a doubling family (geometric) and a
    non-doubling one (preferential attachment) at sizes where Theorem
    1.4 is still buildable, and reports mean/max table bits: on the
    power-law family the hub balls inflate the doubling scheme's rings
    and search trees toward ``Θ(n)`` per node, while the landmark
    scheme's ``√n`` tables are family-agnostic — the trade being its
    lack of a worst-case stretch guarantee.
    """
    if context is None:
        context = BuildContext()
    if sizes is None:
        sizes = (128, 256)
    rows: List[List[object]] = []
    for n in sizes:
        for family, graph in (
            ("geometric", random_geometric(int(n), seed=11)),
            ("pref-attach m=2", preferential_attachment(int(n), m=2, seed=1)),
        ):
            metric = context.metric(graph)
            for label, scheme in (
                (
                    "Thm 1.4 (doubling)",
                    context.scheme(SimpleNameIndependentScheme, metric),
                ),
                (
                    "landmark (KFY)",
                    context.scheme(LandmarkNameIndependentScheme, metric),
                ),
            ):
                bits = scheme.table_bits_vector()
                rows.append(
                    [
                        family,
                        metric.n,
                        label,
                        int(sum(bits) / len(bits)),
                        int(max(bits)),
                        round(
                            _mean_stretch(
                                scheme, metric, min(pair_count, 150)
                            ),
                            3,
                        ),
                    ]
                )
    return ExperimentTable(
        title="E19b: doubling-scheme degradation on power-law graphs",
        columns=[
            "family",
            "n",
            "scheme",
            "avg table bits",
            "max table bits",
            "avg stretch",
        ],
        rows=rows,
        notes=[
            "the doubling scheme keeps its 9+O(eps) guarantee everywhere "
            "but its tables inflate on the non-doubling family; the "
            "landmark scheme has no worst-case guarantee anywhere",
        ],
    )
