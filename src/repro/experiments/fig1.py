"""E3 — regenerate paper Figure 1: anatomy of a name-independent route.

Figure 1 depicts Algorithm 3's route from ``u`` to ``v``: legs along the
zooming sequence ``u(0) → u(1) → ...``, a search-tree round trip at each
level, and a final labeled leg from the level where the destination's
label is found.  We measure that decomposition — zoom cost, search cost,
and final-leg cost — per route, and check each against the exact
inequality it satisfies in Lemma 3.4:

* zoom legs:     ``Σ d(u(i-1), u(i)) < 2^{j+1}``          (Eqn. 2)
* searches:      ``Σ 2 (1+ε) 2^i (1/ε + 1)`` per level    (Alg. 4 cost)
* total:         ``<= (9 + O(ε)) d(u, v)``                (Eqn. 6)

Rows report aggregate shares — on typical inputs the search phase
dominates, exactly as the ``8(1/ε+1)/(1/ε-2)`` term in Eqn. 6 predicts.
"""

from __future__ import annotations

import statistics
from typing import List, Optional, Tuple, Type

import networkx as nx

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable, standard_suite
from repro.pipeline.context import BuildContext
from repro.schemes.base import NameIndependentScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme


def run(
    epsilon: float = 0.5,
    pair_count: int = 200,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    scheme_cls: Type[NameIndependentScheme] = SimpleNameIndependentScheme,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    """Measure the Figure 1 cost decomposition."""
    params = SchemeParameters(epsilon=epsilon)
    if suite is None:
        suite = standard_suite("small")
    if context is None:
        context = BuildContext()
    rows: List[List[object]] = []
    for graph_name, graph in suite:
        metric = context.metric(graph)
        scheme = context.scheme(scheme_cls, metric, params)
        pairs = context.pairs(metric, pair_count)
        zoom_share: List[float] = []
        search_share: List[float] = []
        final_share: List[float] = []
        stretches: List[float] = []
        for u, v in pairs:
            result = scheme.route(u, v)
            total = max(result.cost, 1e-12)
            zoom_share.append(result.legs["zoom"] / total)
            search_share.append(result.legs["search"] / total)
            final_share.append(result.legs["final"] / total)
            stretches.append(result.stretch)
        rows.append(
            [
                graph_name,
                scheme.name,
                round(statistics.fmean(zoom_share), 3),
                round(statistics.fmean(search_share), 3),
                round(statistics.fmean(final_share), 3),
                round(max(stretches), 3),
                round(statistics.fmean(stretches), 3),
            ]
        )
    return ExperimentTable(
        title=(
            "Figure 1 (measured): name-independent route anatomy, "
            f"eps={epsilon}"
        ),
        columns=[
            "graph",
            "scheme",
            "zoom share",
            "search share",
            "final share",
            "max stretch",
            "mean stretch",
        ],
        rows=rows,
        notes=[
            "shares are fractions of total route cost, averaged over pairs",
            "Lemma 3.4 predicts the search phase dominates "
            "(the 8(1/eps+1)/(1/eps-2) term of Eqn. 6)",
        ],
    )


def run_scalefree(
    epsilon: float = 0.5,
    pair_count: int = 200,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    """Same anatomy for the Theorem 1.1 scheme (Algorithm 4 searches)."""
    return run(
        epsilon=epsilon,
        pair_count=pair_count,
        scheme_cls=ScaleFreeNameIndependentScheme,
        context=context,
    )


def main() -> None:
    run().print()
    run_scalefree().print()


if __name__ == "__main__":
    main()
