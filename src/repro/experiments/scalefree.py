"""E6 — the scale-free claim: storage vs ``log Δ`` at fixed ``n``.

Theorem 1.4's tables carry a ``log Δ`` factor (one search-tree level per
``r``-net level); Theorem 1.1 replaces all but ``O(log n)`` of those
levels with ball-packing links and its tables are independent of ``Δ``.
We fix ``n`` and grow ``Δ`` geometrically (paths whose edge weights grow
by a base factor), then record per-node storage for both name-independent
schemes and both labeled schemes.

Expected shape: the non-scale-free columns grow roughly linearly in
``log Δ``; the scale-free columns stay flat.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable
from repro.graphs.generators import exponential_path
from repro.pipeline.context import BuildContext
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme


def run(
    n: int = 24,
    bases: Optional[List[float]] = None,
    epsilon: float = 0.5,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    """Grow ``Δ`` at fixed ``n``; record max table bits per scheme."""
    if bases is None:
        bases = [1.5, 2.0, 3.0, 5.0, 8.0]
    if context is None:
        context = BuildContext()
    params = SchemeParameters(epsilon=epsilon)
    rows: List[List[object]] = []
    for base in bases:
        metric = context.metric(exponential_path(n, base=base))
        row: List[object] = [base, metric.log_diameter]
        for scheme_cls in (
            NonScaleFreeLabeledScheme,
            ScaleFreeLabeledScheme,
            SimpleNameIndependentScheme,
            ScaleFreeNameIndependentScheme,
        ):
            scheme = context.scheme(scheme_cls, metric, params)
            row.append(scheme.max_table_bits())
        rows.append(row)
    return ExperimentTable(
        title=(
            f"Scale-free ablation (E6): storage vs log Delta at n={n}, "
            f"eps={epsilon}"
        ),
        columns=[
            "weight base",
            "log Delta",
            "labeled non-SF",
            "labeled SF (Thm 1.2)",
            "name-ind non-SF (Thm 1.4)",
            "name-ind SF (Thm 1.1)",
        ],
        rows=rows,
        notes=[
            "non-SF columns grow with log Delta; SF columns stay flat "
            "(Theorems 1.1 and 1.2 vs Theorem 1.4 / Lemma 3.1)",
        ],
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
