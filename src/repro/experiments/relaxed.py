"""E12 — the paper's open problem, measured: relaxed guarantees.

The conclusion asks whether better stretch is achievable "if we allow a
small constant fraction of nodes to use larger space, or a small
constant fraction of source-destination pairs to incur larger routing
stretch", and cites the average-stretch lower bound of Abraham et al.
This experiment maps the empirical territory behind that question for
the schemes at hand:

* the stretch *distribution* over pairs — median, 90th/99th percentile,
  and the fraction of pairs exceeding thresholds 3, 5, 7 — showing how
  far below the worst case typical routes sit;
* the storage *distribution* over nodes — median and maximum table
  bits — showing how concentrated the space cost is.

Reading: the `9+ε` guarantee binds a thin tail (typically <10% of
pairs exceed stretch 5 at ε = 0.5), and per-node storage is within a
small factor of the median — both suggesting room for the
fraction-relaxed schemes the paper conjectures.
"""

from __future__ import annotations

import statistics
from typing import List, Optional, Tuple

import networkx as nx

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable, standard_suite
from repro.pipeline.context import BuildContext
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme


def _quantile(values: List[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def run(
    epsilon: float = 0.5,
    pair_count: int = 400,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    params = SchemeParameters(epsilon=epsilon)
    if suite is None:
        suite = standard_suite("small")
    if context is None:
        context = BuildContext()
    rows: List[List[object]] = []
    for graph_name, graph in suite:
        metric = context.metric(graph)
        pairs = context.pairs(metric, pair_count)
        for scheme_cls, label in (
            (SimpleNameIndependentScheme, "Theorem 1.4"),
            (ScaleFreeNameIndependentScheme, "Theorem 1.1"),
        ):
            scheme = context.scheme(scheme_cls, metric, params)
            stretches = [scheme.route(u, v).stretch for u, v in pairs]
            tables = [scheme.table_bits(v) for v in metric.nodes]
            over5 = sum(1 for s in stretches if s > 5.0) / len(stretches)
            rows.append(
                [
                    graph_name,
                    label,
                    round(statistics.median(stretches), 2),
                    round(_quantile(stretches, 0.9), 2),
                    round(max(stretches), 2),
                    round(over5, 3),
                    round(statistics.median(tables)),
                    max(tables),
                ]
            )
    return ExperimentTable(
        title=(
            f"Relaxed guarantees (E12): stretch/storage distributions, "
            f"eps={epsilon}"
        ),
        columns=[
            "graph",
            "scheme",
            "median stretch",
            "p90 stretch",
            "max stretch",
            "frac > 5",
            "median table bits",
            "max table bits",
        ],
        rows=rows,
        notes=[
            "the paper's open problem: can relaxing a small fraction of "
            "pairs/nodes beat the 9-eps barrier? the thin tails here "
            "quantify the empirical room",
        ],
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
