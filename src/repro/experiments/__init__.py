"""Experiment harness regenerating every table and figure of the paper.

Each module exposes a ``run(...)`` function returning a list of result
rows plus a ``main()`` that prints the formatted table.  See DESIGN.md §3
for the experiment index (E1-E10) and EXPERIMENTS.md for recorded
paper-vs-measured outcomes.
"""

from repro.experiments.harness import (
    ExperimentTable,
    build_scheme,
    sample_pairs,
    standard_suite,
)

__all__ = [
    "ExperimentTable",
    "build_scheme",
    "sample_pairs",
    "standard_suite",
]
