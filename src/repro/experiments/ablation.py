"""Ablations of the design choices DESIGN.md calls out.

A1 — **tree-routing substrate** (Lemma 4.1): DFS-interval router vs the
heavy-path router inside the Theorem 1.2 scheme.  Same routes and
stretch by construction; different storage/label/header profile —
interval labels are ``⌈log n⌉`` bits but node storage scales with
degree, heavy-path labels are ``O(log² n)`` bits with degree-free node
storage (the paper's ``O(log²n/log log n)`` header comes from exactly
this trade).

A2 — **ring-level restriction** (``R(u)``, §4.1): count the ring entries
Theorem 1.2 stores versus what storing *every* level ``i ∈ [log Δ]``
(the Lemma 3.1 layout) would cost, across growing ``Δ``.  This isolates
the single change that makes the labeled scheme scale-free.

A3 — **packing service** (§3.3): fraction of ``(i, u ∈ Y_i)`` levels
whose search tree is replaced by an ``H(u, i)`` link to a packed ball,
as ``ε`` varies — the mechanism behind Theorem 1.1's storage bound.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable
from repro.graphs.generators import caterpillar, exponential_path, grid_2d
from repro.pipeline.context import BuildContext
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.trees.heavy_path import HeavyPathRouter
from repro.trees.tree_router import TreeRouter


def run_tree_router(
    epsilon: float = 0.5,
    pair_count: int = 200,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    """A1: interval vs heavy-path tree routing inside Theorem 1.2."""
    if context is None:
        context = BuildContext()
    params = SchemeParameters(epsilon=epsilon)
    rows: List[List[object]] = []
    for graph_name, graph in (
        ("grid 7x7", grid_2d(7)),
        ("caterpillar 8x5", caterpillar(8, 5)),
    ):
        metric = context.metric(graph)
        pairs = context.pairs(metric, pair_count)
        for router_cls, label in (
            (TreeRouter, "DFS intervals"),
            (HeavyPathRouter, "heavy paths (FG-style)"),
        ):
            scheme = context.scheme(
                ScaleFreeLabeledScheme, metric, params, tree_router_cls=router_cls
            )
            ev = scheme.evaluate(pairs)
            rows.append(
                [
                    graph_name,
                    label,
                    round(ev.max_stretch, 3),
                    ev.max_table_bits,
                    ev.header_bits,
                ]
            )
    return ExperimentTable(
        title=f"Ablation A1: Lemma 4.1 substrate, eps={epsilon}",
        columns=[
            "graph",
            "tree router",
            "max stretch",
            "max table bits",
            "header bits",
        ],
        rows=rows,
        notes=[
            "stretch is identical by construction (both route optimally "
            "on the tree); storage shifts between tables (intervals, "
            "degree-dependent) and headers (heavy-path labels)",
        ],
    )


def run_ring_restriction(
    epsilon: float = 0.5,
    sizes: Optional[List[float]] = None,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    """A2: ring entries stored with R(u) vs at every level."""
    if sizes is None:
        sizes = [1.5, 4.0, 16.0]
    if context is None:
        context = BuildContext()
    params = SchemeParameters(epsilon=epsilon)
    rows: List[List[object]] = []
    for base in sizes:
        metric = context.metric(exponential_path(18, base=base))
        scheme = context.scheme(ScaleFreeLabeledScheme, metric, params)
        hierarchy = scheme.hierarchy
        restricted = sum(
            len(scheme.ring_entries(u, i))
            for u in metric.nodes
            for i in scheme.stored_levels(u)
        )
        full = sum(
            len(hierarchy.ring(u, i, epsilon))
            for u in metric.nodes
            for i in hierarchy.levels
        )
        rows.append(
            [
                base,
                metric.log_diameter,
                restricted,
                full,
                round(full / max(1, restricted), 2),
            ]
        )
    return ExperimentTable(
        title=f"Ablation A2: R(u) ring restriction, eps={epsilon}, n=18",
        columns=[
            "weight base",
            "log Delta",
            "entries with R(u)",
            "entries all levels",
            "savings factor",
        ],
        rows=rows,
        notes=[
            "the all-levels column is the Lemma 3.1 layout; its growth "
            "with log Delta is what R(u) removes (Theorem 1.2)",
        ],
    )


def run_packing_service(
    epsilons: Optional[List[float]] = None,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    """A3: fraction of levels served by packed balls vs own trees."""
    if epsilons is None:
        epsilons = [0.125, 0.25, 0.5]
    if context is None:
        context = BuildContext()
    rows: List[List[object]] = []
    metric = context.metric(grid_2d(7))
    for eps in epsilons:
        scheme = context.scheme(
            ScaleFreeNameIndependentScheme,
            metric,
            SchemeParameters(epsilon=eps),
        )
        linked = len(scheme._h_links)
        owned = scheme.own_tree_count()
        rows.append(
            [
                eps,
                owned,
                linked,
                round(linked / max(1, owned + linked), 3),
                max(
                    scheme.h_link_count(u) for u in metric.nodes
                ),
            ]
        )
    return ExperimentTable(
        title="Ablation A3: packed-ball service in Theorem 1.1 (grid 7x7)",
        columns=[
            "eps",
            "own A-trees",
            "H-links",
            "served fraction",
            "max H-links/node",
        ],
        rows=rows,
        notes=[
            "larger eps shrinks search balls, so more levels keep their "
            "own trees; the H-link budget stays within Claim 3.9's "
            "4 log n either way",
        ],
    )


def main() -> None:
    run_tree_router().print()
    run_ring_restriction().print()
    run_packing_service().print()


if __name__ == "__main__":
    main()
