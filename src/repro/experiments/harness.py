"""Shared plumbing for the experiment modules.

Provides the standard graph suite (the network families motivated in the
paper's introduction), deterministic source-destination pair sampling,
scheme construction with shared substrates, and a small ASCII table
type used by every experiment's ``main()``.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple, Type

import networkx as nx

from repro.core.params import SchemeParameters
from repro.core.types import NodeId
from repro.graphs.generators import (
    exponential_path,
    grid_2d,
    grid_with_holes,
    random_geometric,
)
from repro.metric.graph_metric import GraphMetric
from repro.schemes.base import RoutingScheme


def standard_suite(scale: str = "small") -> List[Tuple[str, nx.Graph]]:
    """The graph families every comparison experiment runs on.

    Args:
        scale: ``"small"`` (fast, used by tests and default benches) or
            ``"medium"`` (used for scaling studies).
    """
    if scale == "small":
        return [
            ("grid 8x8", grid_2d(8)),
            ("grid-with-holes 9x9", grid_with_holes(9, hole_fraction=0.25, seed=7)),
            ("geometric n=64", random_geometric(64, seed=11)),
            ("exp-path n=16", exponential_path(16)),
        ]
    if scale == "medium":
        return [
            ("grid 16x16", grid_2d(16)),
            ("grid-with-holes 18x18", grid_with_holes(18, hole_fraction=0.25, seed=7)),
            ("geometric n=256", random_geometric(256, seed=11)),
            ("exp-path n=32", exponential_path(32)),
        ]
    raise ValueError(f"unknown scale {scale!r}")


def sample_pairs(
    metric: GraphMetric, count: int, seed: int = 0
) -> List[Tuple[NodeId, NodeId]]:
    """Deterministic sample of ordered source-destination pairs.

    Samples without replacement when possible; falls back to all pairs
    for tiny graphs.
    """
    n = metric.n
    all_count = n * (n - 1)
    if count >= all_count:
        return [(u, v) for u in metric.nodes for v in metric.nodes if u != v]
    rng = random.Random(seed)
    seen = set()
    pairs: List[Tuple[NodeId, NodeId]] = []
    while len(pairs) < count:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and (u, v) not in seen:
            seen.add((u, v))
            pairs.append((u, v))
    return pairs


def build_scheme(
    scheme_cls: Type[RoutingScheme],
    metric: GraphMetric,
    params: Optional[SchemeParameters] = None,
    **kwargs,
) -> RoutingScheme:
    """Construct a scheme with default parameters."""
    if params is None:
        params = SchemeParameters()
    return scheme_cls(metric, params, **kwargs)


@dataclasses.dataclass
class ExperimentTable:
    """A printable experiment result: header, rows, and notes."""

    title: str
    columns: List[str]
    rows: List[List[object]]
    notes: List[str] = dataclasses.field(default_factory=list)

    def formatted(self) -> str:
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                return f"{cell:.3f}"
            return str(cell)

        grid = [self.columns] + [[fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(row[i]) for row in grid) for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = " | ".join(
            name.ljust(widths[i]) for i, name in enumerate(grid[0])
        )
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in grid[1:]:
            lines.append(
                " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def row_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def print(self) -> None:
        print(self.formatted())
        print()
