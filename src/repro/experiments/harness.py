"""Shared plumbing for the experiment modules.

Provides the standard graph suite (the network families motivated in the
paper's introduction), deterministic source-destination pair sampling,
scheme construction with shared substrates, and a small ASCII table
type used by every experiment's ``main()``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Tuple, Type

import networkx as nx

from repro.core.params import SchemeParameters
from repro.core.types import NodeId
from repro.graphs.generators import (
    exponential_path,
    grid_2d,
    grid_with_holes,
    random_geometric,
)
from repro.metric.graph_metric import GraphMetric
from repro.pipeline.context import BuildContext
from repro.pipeline.sampling import PairExclusion, sample_ordered_pairs
from repro.schemes.base import RoutingScheme


def standard_suite(scale: str = "small") -> List[Tuple[str, nx.Graph]]:
    """The graph families every comparison experiment runs on.

    Args:
        scale: ``"small"`` (fast, used by tests and default benches) or
            ``"medium"`` (used for scaling studies).
    """
    if scale == "small":
        return [
            ("grid 8x8", grid_2d(8)),
            ("grid-with-holes 9x9", grid_with_holes(9, hole_fraction=0.25, seed=7)),
            ("geometric n=64", random_geometric(64, seed=11)),
            ("exp-path n=16", exponential_path(16)),
        ]
    if scale == "medium":
        return [
            ("grid 16x16", grid_2d(16)),
            ("grid-with-holes 18x18", grid_with_holes(18, hole_fraction=0.25, seed=7)),
            ("geometric n=256", random_geometric(256, seed=11)),
            ("exp-path n=32", exponential_path(32)),
        ]
    raise ValueError(f"unknown scale {scale!r}")


def sample_pairs(
    metric: GraphMetric,
    count: int,
    seed: int = 0,
    exclude: Optional[PairExclusion] = None,
) -> List[Tuple[NodeId, NodeId]]:
    """Deterministic sample of ordered source-destination pairs.

    Samples without replacement when possible; falls back to all
    (allowed) pairs for tiny graphs.  ``exclude`` rejects individual
    ordered pairs, e.g. ``lambda u, v: metric.graph.has_edge(u, v)`` to
    measure multi-hop routes only.  Delegates to the shared sampler in
    :mod:`repro.pipeline.sampling`, so the same seed yields the same
    pairs here and in the traffic simulator.
    """
    return sample_ordered_pairs(metric.n, count, seed=seed, exclude=exclude)


def build_scheme(
    scheme_cls: Type[RoutingScheme],
    metric: GraphMetric,
    params: Optional[SchemeParameters] = None,
    context: Optional[BuildContext] = None,
    **kwargs,
) -> RoutingScheme:
    """Construct a scheme with default parameters.

    With ``context`` set, substrates (and the scheme itself) are pulled
    from — and recorded in — the shared build cache.
    """
    if context is not None:
        return context.scheme(scheme_cls, metric, params, **kwargs)
    if params is None:
        params = SchemeParameters()
    return scheme_cls(metric, params, **kwargs)


@dataclasses.dataclass
class ExperimentTable:
    """A printable experiment result: header, rows, and notes."""

    title: str
    columns: List[str]
    rows: List[List[object]]
    notes: List[str] = dataclasses.field(default_factory=list)

    def formatted(self) -> str:
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                return f"{cell:.3f}"
            return str(cell)

        grid = [self.columns] + [[fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(row[i]) for row in grid) for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = " | ".join(
            name.ljust(widths[i]) for i, name in enumerate(grid[0])
        )
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in grid[1:]:
            lines.append(
                " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def row_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: title, columns, row records, and notes."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": self.row_dicts(),
            "notes": list(self.notes),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def print(self) -> None:
        print(self.formatted())
        print()
