"""E5 — Figure 3 + Theorem 1.3: the lower-bound counterexample.

Three parts:

1. **Construction audit** (Figure 3, Lemma 5.8): build ``G(ε, n)`` for a
   range of ``ε``, measure node count, normalized diameter against the
   ``O(2^{1/ε} n)`` bound, and the (greedy-estimated) doubling dimension
   against ``6 - log ε``.

2. **Counting-argument audit** (§5.1, Claims 5.9-5.11): evaluate the
   exact arithmetic of the proof — congruent-naming counts, the base
   case of Claim 5.10, and the Claim 5.11 averaging bound — reporting
   the forbidden stretch ``9 - ε`` and the table-size threshold
   ``n^{(ε/60)²}``.

3. **Empirical adversary**: run the paper's own name-independent scheme
   (Theorem 1.4) on the tree from many root-to-spoke routes under random
   namings and record the worst observed stretch — demonstrating the
   squeeze between the ``9 - ε`` lower and ``9 + ε`` upper bounds.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable
from repro.lowerbound.counting import (
    averaging_bound,
    lower_bound_parameters,
    table_size_threshold_bits,
    verify_claim_5_10_base,
    verify_claim_5_11,
)
from repro.lowerbound.tree import lower_bound_tree
from repro.metric.doubling import doubling_dimension
from repro.metric.graph_metric import GraphMetric
from repro.schemes.nameind_simple import SimpleNameIndependentScheme


def run_construction(
    epsilons: Optional[List[float]] = None, n: int = 1024
) -> ExperimentTable:
    """Part 1: audit the tree construction for several ``ε``."""
    if epsilons is None:
        epsilons = [2.0, 4.0, 6.0]
    rows: List[List[object]] = []
    for eps in epsilons:
        params = lower_bound_parameters(eps)
        size = max(n, params.c + 1)
        tree = lower_bound_tree(eps, size)
        metric = GraphMetric(tree.graph)
        centers = [tree.root, tree.path_middle[(0, 0)], tree.path_middle[
            (tree.p - 1, tree.q - 1)
        ]]
        alpha = doubling_dimension(metric, centers=centers)
        rows.append(
            [
                eps,
                tree.p,
                tree.q,
                tree.n,
                f"{metric.diameter:.3g}",
                f"{tree.diameter_bound():.3g}",
                round(alpha, 2),
                round(tree.doubling_dimension_bound(), 2),
            ]
        )
    return ExperimentTable(
        title="Figure 3 / Lemma 5.8 (measured): lower-bound tree audit",
        columns=[
            "eps",
            "p",
            "q",
            "n",
            "diameter",
            "diameter bound",
            "alpha (greedy)",
            "alpha bound",
        ],
        rows=rows,
        notes=[
            "alpha (greedy) is an upper estimate; it may exceed the "
            "analytic bound by a small additive slack",
        ],
    )


def run_counting(
    epsilons: Optional[List[float]] = None, n: int = 1 << 20
) -> ExperimentTable:
    """Part 2: exact audit of the §5.1 counting argument."""
    if epsilons is None:
        epsilons = [1.0, 2.0, 4.0, 6.0]
    rows: List[List[object]] = []
    for eps in epsilons:
        params = lower_bound_parameters(eps)
        m = params.p // 2
        rows.append(
            [
                eps,
                params.c,
                round(params.stretch, 3),
                f"{table_size_threshold_bits(eps, n):.4g}",
                verify_claim_5_10_base(eps),
                round(averaging_bound(m), 4) if m > 6 else "n/a",
                round(4.0 - eps / 4.0, 4),
                verify_claim_5_11(eps),
            ]
        )
    return ExperimentTable(
        title=f"Theorem 1.3 (exact): counting-argument audit, n={n}",
        columns=[
            "eps",
            "c = pq",
            "stretch bound 9-eps",
            "table threshold n^(eps/60)^2",
            "Claim 5.10 base",
            "Claim 5.11 value",
            "needs > 4-eps/4",
            "Claim 5.11 holds",
        ],
        rows=rows,
    )


def run_adversary(
    epsilon: float = 6.0,
    n: int = 256,
    namings: int = 5,
    routes_per_naming: int = 40,
    scheme_epsilon: float = 0.5,
    seed: int = 0,
) -> ExperimentTable:
    """Part 3: worst observed stretch of Theorem 1.4 on the tree.

    Routes go from the root toward names hidden on the outer spokes —
    exactly the adversarial pattern of the proof (the scheme must search
    outward through ever-heavier spokes before committing).
    """
    tree = lower_bound_tree(epsilon, n)
    metric = GraphMetric(tree.graph)
    rng = random.Random(seed)
    rows: List[List[object]] = []
    worst_overall = 0.0
    for trial in range(namings):
        naming = list(metric.nodes)
        rng.shuffle(naming)
        scheme = SimpleNameIndependentScheme(
            metric, SchemeParameters(epsilon=scheme_epsilon), naming=naming
        )
        targets = tree.farthest_spoke_nodes()
        rng.shuffle(targets)
        targets = targets[:routes_per_naming] or tree.farthest_spoke_nodes()
        worst = 0.0
        for v in targets:
            if v == tree.root:
                continue
            worst = max(worst, scheme.route(tree.root, v).stretch)
        worst_overall = max(worst_overall, worst)
        rows.append([trial, len(targets), round(worst, 3)])
    rows.append(["worst", "-", round(worst_overall, 3)])
    return ExperimentTable(
        title=(
            f"Theorem 1.3 (empirical): Thm-1.4 scheme on G(eps={epsilon}, "
            f"n={n})"
        ),
        columns=["naming", "routes", "max stretch"],
        rows=rows,
        notes=[
            f"theory squeeze: every compact scheme >= {9 - epsilon:.1f} "
            f"on some naming; Thm 1.4 guarantees <= 9 + O({scheme_epsilon})",
        ],
    )


def main() -> None:
    run_construction().print()
    run_counting().print()
    run_adversary().print()


if __name__ == "__main__":
    main()
