"""E4 — regenerate paper Figure 2: anatomy of a labeled route.

Figure 2 depicts Algorithm 5's route: the greedy ring walk
``u_0 → u_1 → ... → u_t``, the leg to the Voronoi center ``c``, the
search-tree round trip inside ``B_c(r_c(j))``, and the final tree leg to
``v``.  We measure those four phases per route and verify the Lemma 4.7
accounting: walk + final phases together stay within ``(1+O(ε)) d(u,v)``
and the center/search detours are charged against
``r_{u_t}(j) < 3ε · d(u_t, v)`` (Claim 4.6).
"""

from __future__ import annotations

import statistics
from typing import List, Optional, Tuple

import networkx as nx

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable, standard_suite
from repro.pipeline.context import BuildContext
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme


def run(
    epsilon: float = 0.5,
    pair_count: int = 200,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    """Measure the Figure 2 cost decomposition for Theorem 1.2."""
    params = SchemeParameters(epsilon=epsilon)
    if suite is None:
        suite = standard_suite("small")
    if context is None:
        context = BuildContext()
    rows: List[List[object]] = []
    for graph_name, graph in suite:
        metric = context.metric(graph)
        scheme = context.scheme(ScaleFreeLabeledScheme, metric, params)
        pairs = context.pairs(metric, pair_count)
        shares = {"walk": [], "to_center": [], "search": [], "final": []}
        stretches: List[float] = []
        voronoi_used = 0
        for u, v in pairs:
            result = scheme.route(u, v)
            total = max(result.cost, 1e-12)
            for phase in shares:
                shares[phase].append(result.legs.get(phase, 0.0) / total)
            if result.legs.get("to_center", 0.0) > 0 or result.legs.get(
                "search", 0.0
            ) > 0:
                voronoi_used += 1
            stretches.append(result.stretch)
        rows.append(
            [
                graph_name,
                round(statistics.fmean(shares["walk"]), 3),
                round(statistics.fmean(shares["to_center"]), 3),
                round(statistics.fmean(shares["search"]), 3),
                round(statistics.fmean(shares["final"]), 3),
                f"{voronoi_used}/{len(pairs)}",
                round(max(stretches), 3),
                round(statistics.fmean(stretches), 3),
                scheme.fallback_count,
            ]
        )
    return ExperimentTable(
        title=f"Figure 2 (measured): labeled route anatomy, eps={epsilon}",
        columns=[
            "graph",
            "walk share",
            "to-center share",
            "search share",
            "final share",
            "voronoi phase used",
            "max stretch",
            "mean stretch",
            "fallbacks",
        ],
        rows=rows,
        notes=[
            "Lemma 4.7: walk+final ~ d(u,v); center/search detours are "
            "O(eps) * d(u,v) (Claim 4.6)",
            "fallbacks counts defensive escalations past Lemma 4.5 "
            "(should be 0)",
        ],
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
