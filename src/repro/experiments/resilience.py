"""E16 — resilience: delivery and stretch under injected failures.

Tables are built once, on the intact topology; then a deterministic
fraction of links fails and every scheme keeps forwarding with *stale*
tables under each fallback policy (fail-fast, local-detour,
level-escalation).  Reported per cell: delivery rate, stretch of
delivered packets against the **post-failure** shortest paths, detour
counts, and the typed outcome breakdown (no packet may hang — every
undelivered packet terminates as dropped / TTL-expired / loop-detected).

A second table measures recovery cost: once the failed link comes back
up, rebuilding the schemes *incrementally* through the shared
:class:`BuildContext` (content-hash cache: unchanged substrates are
reused) versus a cold from-scratch rebuild.

Cells are independent and fan out over ``--jobs`` processes; results
are bit-identical to the serial run (ordered, seeded, no shared state).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.core.edits import EditKind, GraphEdit
from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable, standard_suite
from repro.pipeline.context import BuildContext
from repro.pipeline.parallel import parallel_map
from repro.resilience.degraded import DegradedNetwork
from repro.resilience.failure_plan import FailurePlan
from repro.resilience.repair import (
    measure_edit_repair,
    measure_repair,
    rebuild_through_context,
)
from repro.resilience.router import POLICIES, ResilientRouter
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme

#: The scheme line-up every resilience cell runs (same trio as E11).
SCHEME_LINEUP = (
    (ShortestPathScheme, "baseline"),
    (SimpleNameIndependentScheme, "Theorem 1.4"),
    (ScaleFreeNameIndependentScheme, "Theorem 1.1"),
)

#: Seed for the failure sampler (one draw per graph, shared by cells).
FAILURE_SEED = 17


def _route_cell(payload) -> List[object]:
    """Process-pool worker: one (graph, scheme, policy) resilience cell.

    The payload carries the *built* scheme (tables are pre-failure
    state); the degraded overlay and router are reconstructed in the
    worker, deterministically, from the seeded failure plan.
    """
    graph_name, scheme, label, policy, fraction, seed, pairs = payload
    metric = scheme.metric
    plan = FailurePlan.uniform_links(metric, fraction, seed=seed)
    degraded = DegradedNetwork.from_plan(metric, plan)
    router = ResilientRouter(scheme, degraded, policy=policy)
    report = router.evaluate(pairs)
    counts = report.outcome_counts()
    return [
        graph_name,
        label,
        policy,
        f"{report.delivered}/{report.total}",
        round(report.delivery_rate, 4),
        round(report.mean_stretch(), 4),
        round(report.max_stretch(), 4),
        round(report.mean_detours(), 4),
        counts["dropped"],
        counts["ttl-expired"],
        counts["loop-detected"],
        report.unreachable,
    ]


def run(
    epsilon: float = 0.5,
    pair_count: int = 300,
    fail_fraction: float = 0.10,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    context: Optional[BuildContext] = None,
    jobs: int = 1,
) -> ExperimentTable:
    """Delivery/stretch of every scheme × fallback policy under failures."""
    params = SchemeParameters(epsilon=epsilon)
    if suite is None:
        suite = standard_suite("small")
    if context is None:
        context = BuildContext()
    cells = []
    for graph_name, graph in suite:
        metric = context.metric(graph)
        pairs = context.pairs(metric, pair_count)
        for scheme_cls, label in SCHEME_LINEUP:
            scheme = context.scheme(scheme_cls, metric, params)
            for policy in POLICIES:
                cells.append(
                    (
                        graph_name,
                        scheme,
                        label,
                        policy,
                        fail_fraction,
                        FAILURE_SEED,
                        pairs,
                    )
                )
    rows = parallel_map(_route_cell, cells, jobs=jobs)
    return ExperimentTable(
        title=(
            f"Resilience (E16): {fail_fraction:.0%} links failed, "
            f"stale tables, eps={epsilon}, {pair_count} pairs"
        ),
        columns=[
            "graph",
            "scheme",
            "policy",
            "delivered",
            "rate",
            "mean stretch*",
            "max stretch*",
            "mean detours",
            "dropped",
            "ttl",
            "loops",
            "unreachable",
        ],
        rows=rows,
        notes=[
            "* stretch of delivered packets vs the POST-failure shortest "
            "path (the honest optimum on the surviving topology)",
            "unreachable = pairs disconnected by the failures (no "
            "policy could deliver those)",
            f"failure plan: uniform links, seed {FAILURE_SEED}, one "
            "draw per graph shared by every scheme x policy cell",
        ],
    )


def repair_edit_for(graph: nx.Graph) -> GraphEdit:
    """The deterministic single-edge weight change E16 repairs after.

    A maximum-weight edge is scaled by 1.5x — raising a non-minimum
    weight never moves the normalization scale, so the repair stays
    incremental (a scale change would dirty every row).  Ties (e.g.
    unit-weight grids) are broken toward the *median* edge in
    lexicographic order: a corner edge like (0, 1) would make every
    node's distance to the corner change, turning a local edit into a
    global one, while an interior edge only dirties the rows whose
    shortest paths strictly need it.
    """
    edges = sorted(
        (min(u, v), max(u, v)) for u, v in graph.edges()
    )
    max_w = max(
        float(graph[u][v].get("weight", 1.0)) for u, v in edges
    )
    ties = [
        e
        for e in edges
        if float(graph[e[0]][e[1]].get("weight", 1.0)) == max_w
    ]
    best = ties[len(ties) // 2]
    old_w = float(graph[best[0]][best[1]].get("weight", 1.0))
    return GraphEdit(kind=EditKind.WEIGHT, edge=best, weight=old_w * 1.5)


def run_repair(
    epsilon: float = 0.5,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    """Recovery cost: incremental rebuild (warm context) vs cold rebuild.

    Two events per graph, because they answer different questions:

    * ``recover`` — a link fails and comes back; the topology is
      content-identical to what the warm context already built, so the
      honest dirty set is empty and *everything* is a cache hit.  This
      is the best case, not the typical one.
    * ``edit`` — a real single-edge weight change; the dirty node set is
      computed from the edit, and the incremental rebuild reconstructs
      exactly the artifact partitions (metric rows, hierarchy levels,
      ring blocks, search trees) that intersect it.  Built/reused counts
      are reported against that dirty set — the honest churn-repair
      figure.
    """
    params = SchemeParameters(epsilon=epsilon)
    if suite is None:
        suite = standard_suite("small")
    if context is None:
        context = BuildContext()
    classes = [cls for cls, _ in SCHEME_LINEUP]
    rows: List[List[object]] = []
    for graph_name, graph in suite:
        # Prime the warm context (the pre-failure build a deployment
        # would already have), then measure both rebuild paths.
        rebuild_through_context(
            context, graph, classes, params, label="prime"
        )
        cold, incremental = measure_repair(
            graph, classes, params, warm_context=context
        )
        rows.append(
            _repair_row(graph_name, "recover", 0, graph, cold, incremental)
        )
        # The real-edit measurement runs on a private copy and a private
        # warm context so the shared `context` keeps its pre-edit cache.
        edited = graph.copy()
        cold_e, incremental_e, edit_report = measure_edit_repair(
            edited, repair_edit_for(edited), classes, params
        )
        rows.append(
            _repair_row(
                graph_name,
                "edit",
                len(edit_report.dirty),
                edited,
                cold_e,
                incremental_e,
            )
        )
    return ExperimentTable(
        title="Recovery cost (E16): cold vs incremental rebuild, "
        "after full recovery and after a real weight edit",
        columns=[
            "graph",
            "event",
            "dirty rows",
            "cold s",
            "cold built",
            "incr s",
            "incr built",
            "incr reused",
            "speedup",
        ],
        rows=rows,
        notes=[
            "recover = link failed and came back: content hash unchanged, "
            "dirty set empty, every substrate a cache hit (best case)",
            "edit = single-edge weight change: built/reused counts are "
            "honest against the edit's dirty node set — only partitions "
            "intersecting it are rebuilt, and the result is bit-identical "
            "to a cold build (asserted in tests/test_churn.py)",
            "timing rows are wall-clock and vary run to run; the "
            "built/reused artifact counts are deterministic",
        ],
    )


def _repair_row(
    graph_name: str,
    event: str,
    dirty_rows: int,
    graph: nx.Graph,
    cold,
    incremental,
) -> List[object]:
    speedup = (
        cold.seconds / incremental.seconds
        if incremental.seconds > 0
        else float("inf")
    )
    return [
        graph_name,
        event,
        f"{dirty_rows}/{graph.number_of_nodes()}",
        round(cold.seconds, 4),
        cold.built_total,
        round(incremental.seconds, 4),
        incremental.built_total,
        incremental.reused_total,
        round(speedup, 1),
    ]


def main() -> None:
    run().print()
    run_repair().print()


if __name__ == "__main__":
    main()
