"""E16 — resilience: delivery and stretch under injected failures.

Tables are built once, on the intact topology; then a deterministic
fraction of links fails and every scheme keeps forwarding with *stale*
tables under each fallback policy (fail-fast, local-detour,
level-escalation).  Reported per cell: delivery rate, stretch of
delivered packets against the **post-failure** shortest paths, detour
counts, and the typed outcome breakdown (no packet may hang — every
undelivered packet terminates as dropped / TTL-expired / loop-detected).

A second table measures recovery cost: once the failed link comes back
up, rebuilding the schemes *incrementally* through the shared
:class:`BuildContext` (content-hash cache: unchanged substrates are
reused) versus a cold from-scratch rebuild.

Cells are independent and fan out over ``--jobs`` processes; results
are bit-identical to the serial run (ordered, seeded, no shared state).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable, standard_suite
from repro.pipeline.context import BuildContext
from repro.pipeline.parallel import parallel_map
from repro.resilience.degraded import DegradedNetwork
from repro.resilience.failure_plan import FailurePlan
from repro.resilience.repair import measure_repair, rebuild_through_context
from repro.resilience.router import POLICIES, ResilientRouter
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme

#: The scheme line-up every resilience cell runs (same trio as E11).
SCHEME_LINEUP = (
    (ShortestPathScheme, "baseline"),
    (SimpleNameIndependentScheme, "Theorem 1.4"),
    (ScaleFreeNameIndependentScheme, "Theorem 1.1"),
)

#: Seed for the failure sampler (one draw per graph, shared by cells).
FAILURE_SEED = 17


def _route_cell(payload) -> List[object]:
    """Process-pool worker: one (graph, scheme, policy) resilience cell.

    The payload carries the *built* scheme (tables are pre-failure
    state); the degraded overlay and router are reconstructed in the
    worker, deterministically, from the seeded failure plan.
    """
    graph_name, scheme, label, policy, fraction, seed, pairs = payload
    metric = scheme.metric
    plan = FailurePlan.uniform_links(metric, fraction, seed=seed)
    degraded = DegradedNetwork.from_plan(metric, plan)
    router = ResilientRouter(scheme, degraded, policy=policy)
    report = router.evaluate(pairs)
    counts = report.outcome_counts()
    return [
        graph_name,
        label,
        policy,
        f"{report.delivered}/{report.total}",
        round(report.delivery_rate, 4),
        round(report.mean_stretch(), 4),
        round(report.max_stretch(), 4),
        round(report.mean_detours(), 4),
        counts["dropped"],
        counts["ttl-expired"],
        counts["loop-detected"],
        report.unreachable,
    ]


def run(
    epsilon: float = 0.5,
    pair_count: int = 300,
    fail_fraction: float = 0.10,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    context: Optional[BuildContext] = None,
    jobs: int = 1,
) -> ExperimentTable:
    """Delivery/stretch of every scheme × fallback policy under failures."""
    params = SchemeParameters(epsilon=epsilon)
    if suite is None:
        suite = standard_suite("small")
    if context is None:
        context = BuildContext()
    cells = []
    for graph_name, graph in suite:
        metric = context.metric(graph)
        pairs = context.pairs(metric, pair_count)
        for scheme_cls, label in SCHEME_LINEUP:
            scheme = context.scheme(scheme_cls, metric, params)
            for policy in POLICIES:
                cells.append(
                    (
                        graph_name,
                        scheme,
                        label,
                        policy,
                        fail_fraction,
                        FAILURE_SEED,
                        pairs,
                    )
                )
    rows = parallel_map(_route_cell, cells, jobs=jobs)
    return ExperimentTable(
        title=(
            f"Resilience (E16): {fail_fraction:.0%} links failed, "
            f"stale tables, eps={epsilon}, {pair_count} pairs"
        ),
        columns=[
            "graph",
            "scheme",
            "policy",
            "delivered",
            "rate",
            "mean stretch*",
            "max stretch*",
            "mean detours",
            "dropped",
            "ttl",
            "loops",
            "unreachable",
        ],
        rows=rows,
        notes=[
            "* stretch of delivered packets vs the POST-failure shortest "
            "path (the honest optimum on the surviving topology)",
            "unreachable = pairs disconnected by the failures (no "
            "policy could deliver those)",
            f"failure plan: uniform links, seed {FAILURE_SEED}, one "
            "draw per graph shared by every scheme x policy cell",
        ],
    )


def run_repair(
    epsilon: float = 0.5,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    """Recovery cost: incremental rebuild (warm context) vs cold rebuild.

    One link fails and recovers per graph; the recovered topology is
    content-identical to the original, so the warm context reuses every
    substrate while the cold rebuild constructs them all.
    """
    params = SchemeParameters(epsilon=epsilon)
    if suite is None:
        suite = standard_suite("small")
    if context is None:
        context = BuildContext()
    classes = [cls for cls, _ in SCHEME_LINEUP]
    rows: List[List[object]] = []
    for graph_name, graph in suite:
        # Prime the warm context (the pre-failure build a deployment
        # would already have), then measure both rebuild paths.
        rebuild_through_context(
            context, graph, classes, params, label="prime"
        )
        cold, incremental = measure_repair(
            graph, classes, params, warm_context=context
        )
        speedup = (
            cold.seconds / incremental.seconds
            if incremental.seconds > 0
            else float("inf")
        )
        rows.append(
            [
                graph_name,
                round(cold.seconds, 4),
                cold.built_total,
                round(incremental.seconds, 4),
                incremental.built_total,
                incremental.reused_total,
                round(speedup, 1),
            ]
        )
    return ExperimentTable(
        title="Recovery cost (E16): cold vs incremental rebuild "
        "after one link fails and recovers",
        columns=[
            "graph",
            "cold s",
            "cold built",
            "incr s",
            "incr built",
            "incr reused",
            "speedup",
        ],
        rows=rows,
        notes=[
            "incremental = same BuildContext that built the pre-failure "
            "schemes; content-hash keys make every unchanged substrate "
            "a cache hit, and the rebuilt schemes are bit-identical to "
            "a from-scratch build (asserted in tests/test_resilience.py)",
            "timing rows are wall-clock and vary run to run; the "
            "built/reused artifact counts are deterministic",
        ],
    )


def main() -> None:
    run().print()
    run_repair().print()


if __name__ == "__main__":
    main()
