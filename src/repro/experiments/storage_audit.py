"""E15 — per-category storage audit of the scale-free schemes.

The paper's storage proofs (Lemmas 3.8 and 4.4) account the table bound
as a sum of named parts: the underlying labeled state, the netting-tree
parent label, the ``H(u,i)`` links (Claim 3.9), and the search-tree
machinery (Lemma 3.5).  This experiment itemizes the *measured* tables
the same way, per graph family — so each term of the proof has a
measured counterpart and no storage hides outside the accounted
categories (the breakdown sums to ``table_bits`` exactly; asserted in
tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable, standard_suite
from repro.pipeline.context import BuildContext
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme


def run(
    epsilon: float = 0.5,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    params = SchemeParameters(epsilon=epsilon)
    if suite is None:
        suite = standard_suite("small")
    if context is None:
        context = BuildContext()
    rows: List[List[object]] = []
    columns_seen: List[str] = []
    per_graph: List[Tuple[str, Dict[str, float], int]] = []
    for graph_name, graph in suite:
        metric = context.metric(graph)
        scheme = context.scheme(ScaleFreeNameIndependentScheme, metric, params)
        totals: Dict[str, int] = {}
        for v in metric.nodes:
            for category, bits in scheme.table_breakdown(v).breakdown().items():
                totals[category] = totals.get(category, 0) + bits
        for category in totals:
            if category not in columns_seen:
                columns_seen.append(category)
        per_graph.append((graph_name, totals, metric.n))
    for graph_name, totals, n in per_graph:
        total = sum(totals.values())
        row: List[object] = [graph_name, round(total / n)]
        for category in columns_seen:
            share = totals.get(category, 0) / max(1, total)
            row.append(round(share, 3))
        rows.append(row)
    return ExperimentTable(
        title=(
            f"Storage audit (E15): Theorem 1.1 table composition, "
            f"eps={epsilon}"
        ),
        columns=["graph", "avg bits/node"]
        + [f"{c} share" for c in columns_seen],
        rows=rows,
        notes=[
            "shares itemize Lemma 3.8's accounting: underlying labeled "
            "state, parent label, H-links (Claim 3.9), search trees "
            "(Lemma 3.5)",
        ],
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
