"""E2 — regenerate paper Table 2 (labeled schemes), measured.

Paper Table 2 compares ``(1+ε)``-stretch labeled schemes by table bits,
header bits, and label bits.  We measure the two schemes built here —
the non-scale-free underlying scheme (the Lemma 3.1 row, matching the
Abraham et al. first row) and the Theorem 1.2 scale-free scheme — plus
the full-table baseline, on the standard suite.

Expected shape (paper): both labeled schemes route within ``1 + O(ε)``
of optimal with ``⌈log n⌉``-bit labels; the non-scale-free tables carry a
``log Δ`` factor where Theorem 1.2's do not.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.core.bitcount import bits_for_id
from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable, standard_suite
from repro.pipeline.context import BuildContext
from repro.pipeline.parallel import parallel_map
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.shortest_path import ShortestPathScheme

SCHEMES: Tuple[Tuple[type, str], ...] = (
    (ShortestPathScheme, "baseline (stretch 1)"),
    (NonScaleFreeLabeledScheme, "Lemma 3.1 (log-Delta tables)"),
    (ScaleFreeLabeledScheme, "Theorem 1.2 (scale-free)"),
)


def _rows_for_graph(
    context: BuildContext,
    graph_name: str,
    graph: nx.Graph,
    epsilon: float,
    pair_count: int,
) -> List[List[object]]:
    metric = context.metric(graph)
    pairs = context.pairs(metric, pair_count)
    params = SchemeParameters(epsilon=epsilon)
    rows: List[List[object]] = []
    for scheme_cls, label in SCHEMES:
        scheme = context.scheme(scheme_cls, metric, params)
        ev = scheme.evaluate(pairs)
        label_bits = (
            scheme.label_bits()
            if hasattr(scheme, "label_bits")
            else bits_for_id(metric.n)
        )
        rows.append(
            [
                graph_name,
                label,
                round(ev.max_stretch, 3),
                round(ev.mean_stretch, 3),
                ev.max_table_bits,
                round(ev.avg_table_bits),
                ev.header_bits,
                label_bits,
            ]
        )
    return rows


def _graph_cell(payload) -> List[List[object]]:
    """Process-pool worker: one graph, all schemes (module-level to pickle)."""
    graph_name, graph, epsilon, pair_count = payload
    return _rows_for_graph(BuildContext(), graph_name, graph, epsilon, pair_count)


def run(
    epsilon: float = 0.5,
    pair_count: int = 400,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    context: Optional[BuildContext] = None,
    jobs: int = 1,
) -> ExperimentTable:
    """Measure every Table 2 row on the standard suite.

    ``jobs`` fans the independent per-graph cells out to a process
    pool, preserving serial row order (see :mod:`repro.pipeline`).
    """
    if suite is None:
        suite = standard_suite("small")
    if jobs != 1 and len(suite) >= 2:
        payloads = [
            (graph_name, graph, epsilon, pair_count)
            for graph_name, graph in suite
        ]
        groups = parallel_map(_graph_cell, payloads, jobs=jobs)
    else:
        if context is None:
            context = BuildContext()
        groups = [
            _rows_for_graph(context, graph_name, graph, epsilon, pair_count)
            for graph_name, graph in suite
        ]
    rows = [row for group in groups for row in group]
    return ExperimentTable(
        title=f"Table 2 (measured): labeled schemes, eps={epsilon}",
        columns=[
            "graph",
            "scheme",
            "max stretch",
            "mean stretch",
            "max table bits",
            "avg table bits",
            "header bits",
            "label bits",
        ],
        rows=rows,
        notes=[
            "paper bound: stretch <= 1 + O(eps); labels are exactly "
            "ceil(log n) bits for both compact schemes",
        ],
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
