"""E2 — regenerate paper Table 2 (labeled schemes), measured.

Paper Table 2 compares ``(1+ε)``-stretch labeled schemes by table bits,
header bits, and label bits.  We measure the two schemes built here —
the non-scale-free underlying scheme (the Lemma 3.1 row, matching the
Abraham et al. first row) and the Theorem 1.2 scale-free scheme — plus
the full-table baseline, on the standard suite.

Expected shape (paper): both labeled schemes route within ``1 + O(ε)``
of optimal with ``⌈log n⌉``-bit labels; the non-scale-free tables carry a
``log Δ`` factor where Theorem 1.2's do not.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.core.bitcount import bits_for_id
from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable, sample_pairs, standard_suite
from repro.metric.graph_metric import GraphMetric
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.shortest_path import ShortestPathScheme


def run(
    epsilon: float = 0.5,
    pair_count: int = 400,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
) -> ExperimentTable:
    """Measure every Table 2 row on the standard suite."""
    params = SchemeParameters(epsilon=epsilon)
    if suite is None:
        suite = standard_suite("small")
    rows: List[List[object]] = []
    for graph_name, graph in suite:
        metric = GraphMetric(graph)
        pairs = sample_pairs(metric, pair_count)
        for scheme_cls, label in (
            (ShortestPathScheme, "baseline (stretch 1)"),
            (NonScaleFreeLabeledScheme, "Lemma 3.1 (log-Delta tables)"),
            (ScaleFreeLabeledScheme, "Theorem 1.2 (scale-free)"),
        ):
            scheme = scheme_cls(metric, params)
            ev = scheme.evaluate(pairs)
            label_bits = (
                scheme.label_bits()
                if hasattr(scheme, "label_bits")
                else bits_for_id(metric.n)
            )
            rows.append(
                [
                    graph_name,
                    label,
                    round(ev.max_stretch, 3),
                    round(ev.mean_stretch, 3),
                    ev.max_table_bits,
                    round(ev.avg_table_bits),
                    ev.header_bits,
                    label_bits,
                ]
            )
    return ExperimentTable(
        title=f"Table 2 (measured): labeled schemes, eps={epsilon}",
        columns=[
            "graph",
            "scheme",
            "max stretch",
            "mean stretch",
            "max table bits",
            "avg table bits",
            "header bits",
            "label bits",
        ],
        rows=rows,
        notes=[
            "paper bound: stretch <= 1 + O(eps); labels are exactly "
            "ceil(log n) bits for both compact schemes",
        ],
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
