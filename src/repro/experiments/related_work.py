"""Related-work comparison (paper §1.2): general-graph techniques vs
the doubling-metric schemes on the same networks.

The paper's motivation: on general graphs, stretch below 3 forces
``Ω(√n)``-bit tables (Thorup–Zwick lower bound), and the classic
achievable point is Cowen's stretch-3 landmark scheme with polynomial
tables.  Restricting to low doubling dimension buys stretch ``1 + ε``
with *polylogarithmic* tables.  This experiment runs both on the same
networks so the gap is visible in one table: the landmark scheme's
stretch plateaus near its guarantee of 3 while its cluster tables grow
polynomially; the Theorem 1.2 scheme holds ``1 + O(ε)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable, standard_suite
from repro.pipeline.context import BuildContext
from repro.schemes.cowen_landmark import CowenLandmarkScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme


def run(
    epsilon: float = 0.5,
    pair_count: int = 300,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    params = SchemeParameters(epsilon=epsilon)
    if suite is None:
        suite = standard_suite("small")
    if context is None:
        context = BuildContext()
    rows: List[List[object]] = []
    for graph_name, graph in suite:
        metric = context.metric(graph)
        pairs = context.pairs(metric, pair_count)
        for scheme, label in (
            (context.scheme(CowenLandmarkScheme, metric, params), "Cowen stretch-3"),
            (context.scheme(ScaleFreeLabeledScheme, metric, params), "Theorem 1.2"),
        ):
            ev = scheme.evaluate(pairs)
            rows.append(
                [
                    graph_name,
                    label,
                    round(ev.max_stretch, 3),
                    round(ev.mean_stretch, 3),
                    ev.max_table_bits,
                    ev.header_bits,
                    scheme.stretch_guarantee(),
                ]
            )
    return ExperimentTable(
        title=(
            f"Related work (measured): general-graph landmark routing "
            f"vs Theorem 1.2, eps={epsilon}"
        ),
        columns=[
            "graph",
            "scheme",
            "max stretch",
            "mean stretch",
            "max table bits",
            "header bits",
            "guarantee",
        ],
        rows=rows,
        notes=[
            "Cowen's scheme cannot beat stretch 3 in general; on "
            "doubling metrics Theorem 1.2 reaches 1+O(eps) with "
            "polylog tables",
        ],
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
