"""E1 — regenerate paper Table 1 (name-independent schemes), measured.

Paper Table 1 compares name-independent schemes by stretch, routing-table
bits, and header bits as asymptotic bounds.  We produce the measured
analogue on concrete networks: for each graph in the suite and each
scheme — Theorem 1.4 (simple), Theorem 1.1 (scale-free), and the
stretch-1 full-table baseline — the maximum and mean stretch over sampled
pairs, the max/avg per-node table size, and the header size.

Expected shape (paper): both compact schemes stay within ``9 + O(ε)``
stretch with tables polylogarithmic in ``n`` (versus ``Θ(n log n)`` for
the baseline); on the exponential-weight family the Theorem 1.4 tables
grow with ``log Δ`` while Theorem 1.1's do not (that contrast is measured
in full by E6/bench_scalefree).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable, standard_suite
from repro.pipeline.context import BuildContext
from repro.pipeline.parallel import parallel_map
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme

SCHEMES: Tuple[Tuple[type, str], ...] = (
    (ShortestPathScheme, "baseline (stretch 1)"),
    (SimpleNameIndependentScheme, "Theorem 1.4"),
    (ScaleFreeNameIndependentScheme, "Theorem 1.1"),
)


def _rows_for_graph(
    context: BuildContext,
    graph_name: str,
    graph: nx.Graph,
    epsilon: float,
    pair_count: int,
) -> List[List[object]]:
    metric = context.metric(graph)
    pairs = context.pairs(metric, pair_count)
    params = SchemeParameters(epsilon=epsilon)
    rows: List[List[object]] = []
    for scheme_cls, label in SCHEMES:
        scheme = context.scheme(scheme_cls, metric, params)
        ev = scheme.evaluate(pairs)
        rows.append(
            [
                graph_name,
                label,
                round(ev.max_stretch, 3),
                round(ev.mean_stretch, 3),
                ev.max_table_bits,
                round(ev.avg_table_bits),
                ev.header_bits,
            ]
        )
    return rows


def _graph_cell(payload) -> List[List[object]]:
    """Process-pool worker: one graph, all schemes (module-level to pickle)."""
    graph_name, graph, epsilon, pair_count = payload
    return _rows_for_graph(BuildContext(), graph_name, graph, epsilon, pair_count)


def run(
    epsilon: float = 0.5,
    pair_count: int = 400,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    context: Optional[BuildContext] = None,
    jobs: int = 1,
) -> ExperimentTable:
    """Measure every Table 1 row on the standard suite.

    With ``jobs > 1`` the independent per-graph cells are built and
    evaluated in a process pool (each worker shares substrates across
    its graph's schemes through a private context); row order matches
    the serial path exactly.
    """
    if suite is None:
        suite = standard_suite("small")
    if jobs != 1 and len(suite) >= 2:
        payloads = [
            (graph_name, graph, epsilon, pair_count)
            for graph_name, graph in suite
        ]
        groups = parallel_map(_graph_cell, payloads, jobs=jobs)
    else:
        if context is None:
            context = BuildContext()
        groups = [
            _rows_for_graph(context, graph_name, graph, epsilon, pair_count)
            for graph_name, graph in suite
        ]
    rows = [row for group in groups for row in group]
    return ExperimentTable(
        title=f"Table 1 (measured): name-independent schemes, eps={epsilon}",
        columns=[
            "graph",
            "scheme",
            "max stretch",
            "mean stretch",
            "max table bits",
            "avg table bits",
            "header bits",
        ],
        rows=rows,
        notes=[
            "paper bound: stretch <= 9 + O(eps) for both compact schemes",
            "baseline tables are Theta(n log n) bits; compact schemes are "
            "polylog(n) (Thm 1.1) or polylog(n) * log Delta (Thm 1.4)",
        ],
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
