"""E1 — regenerate paper Table 1 (name-independent schemes), measured.

Paper Table 1 compares name-independent schemes by stretch, routing-table
bits, and header bits as asymptotic bounds.  We produce the measured
analogue on concrete networks: for each graph in the suite and each
scheme — Theorem 1.4 (simple), Theorem 1.1 (scale-free), and the
stretch-1 full-table baseline — the maximum and mean stretch over sampled
pairs, the max/avg per-node table size, and the header size.

Expected shape (paper): both compact schemes stay within ``9 + O(ε)``
stretch with tables polylogarithmic in ``n`` (versus ``Θ(n log n)`` for
the baseline); on the exponential-weight family the Theorem 1.4 tables
grow with ``log Δ`` while Theorem 1.1's do not (that contrast is measured
in full by E6/bench_scalefree).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable, sample_pairs, standard_suite
from repro.metric.graph_metric import GraphMetric
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme


def run(
    epsilon: float = 0.5,
    pair_count: int = 400,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
) -> ExperimentTable:
    """Measure every Table 1 row on the standard suite."""
    params = SchemeParameters(epsilon=epsilon)
    if suite is None:
        suite = standard_suite("small")
    rows: List[List[object]] = []
    for graph_name, graph in suite:
        metric = GraphMetric(graph)
        pairs = sample_pairs(metric, pair_count)
        for scheme_cls, label in (
            (ShortestPathScheme, "baseline (stretch 1)"),
            (SimpleNameIndependentScheme, "Theorem 1.4"),
            (ScaleFreeNameIndependentScheme, "Theorem 1.1"),
        ):
            scheme = scheme_cls(metric, params)
            ev = scheme.evaluate(pairs)
            rows.append(
                [
                    graph_name,
                    label,
                    round(ev.max_stretch, 3),
                    round(ev.mean_stretch, 3),
                    ev.max_table_bits,
                    round(ev.avg_table_bits),
                    ev.header_bits,
                ]
            )
    return ExperimentTable(
        title=f"Table 1 (measured): name-independent schemes, eps={epsilon}",
        columns=[
            "graph",
            "scheme",
            "max stretch",
            "mean stretch",
            "max table bits",
            "avg table bits",
            "header bits",
        ],
        rows=rows,
        notes=[
            "paper bound: stretch <= 9 + O(eps) for both compact schemes",
            "baseline tables are Theta(n log n) bits; compact schemes are "
            "polylog(n) (Thm 1.1) or polylog(n) * log Delta (Thm 1.4)",
        ],
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
