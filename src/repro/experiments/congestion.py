"""E11 — routing under load: the schemes' detours as network traffic.

Beyond worst-case stretch, compact routing changes *where* packets flow:
Algorithm 3's search round trips concentrate traffic near net centers.
This experiment drives a reproducible Poisson workload through the
store-and-forward simulator for the oracle baseline and the two
name-independent schemes, reporting delivered latency, queueing delay,
total traffic (≈ mean stretch, aggregated), and the peak per-link load
ratio against the baseline.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.core.params import SchemeParameters
from repro.experiments.harness import ExperimentTable
from repro.graphs.generators import grid_2d, random_geometric
from repro.pipeline.context import BuildContext
from repro.runtime.simulator import TrafficSimulator, uniform_demands
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme


def run(
    epsilon: float = 0.5,
    packet_count: int = 200,
    rate: float = 3.0,
    service_time: float = 0.25,
    suite: Optional[List[Tuple[str, nx.Graph]]] = None,
    context: Optional[BuildContext] = None,
) -> ExperimentTable:
    params = SchemeParameters(epsilon=epsilon)
    if suite is None:
        suite = [
            ("grid 8x8", grid_2d(8)),
            ("geometric n=64", random_geometric(64, seed=11)),
        ]
    if context is None:
        context = BuildContext()
    rows: List[List[object]] = []
    for graph_name, graph in suite:
        metric = context.metric(graph)
        demands = uniform_demands(metric.n, packet_count, rate=rate, seed=7)
        baseline_peak = None
        for scheme_cls, label in (
            (ShortestPathScheme, "baseline"),
            (SimpleNameIndependentScheme, "Theorem 1.4"),
            (ScaleFreeNameIndependentScheme, "Theorem 1.1"),
        ):
            scheme = context.scheme(scheme_cls, metric, params)
            report = TrafficSimulator(scheme, service_time).run(demands)
            peak = report.busiest_links(top=1)[0][1]
            if baseline_peak is None:
                baseline_peak = peak
            rows.append(
                [
                    graph_name,
                    label,
                    round(report.mean_latency(), 2),
                    round(report.max_latency(), 2),
                    round(report.mean_queueing(), 3),
                    round(report.total_traffic()),
                    round(peak / baseline_peak, 2),
                ]
            )
    return ExperimentTable(
        title=(
            f"Congestion (E11): {packet_count} packets, rate {rate}, "
            f"eps={epsilon}"
        ),
        columns=[
            "graph",
            "scheme",
            "mean latency",
            "max latency",
            "mean queueing",
            "total traffic",
            "peak link load vs baseline",
        ],
        rows=rows,
        notes=[
            "total traffic reflects aggregate stretch; peak link load "
            "shows the search-tree hot spots around net centers",
        ],
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
