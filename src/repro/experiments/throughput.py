"""E20 — serving throughput of the compiled batch engine.

The interpreted ``route()`` loop is the reproduction's semantic ground
truth, but it pays python-object overhead per hop; the batch engine
(:mod:`repro.engine`) lowers the built tables to flat arrays and
advances *all* live packets one hop per numpy sweep, with results
bit-identical to the interpreter (property-tested in
``tests/test_engine.py``).  This experiment measures what that buys:

* ``run`` — routes/second versus batch size and graph size, compiled
  against interpreted, on power-law (preferential-attachment) graphs
  over the lazy substrate — the Internet-like regime of E19, served by
  the landmark name-independent scheme.
* ``run_shards`` — routes/second and per-worker resident table bytes
  versus shard count for the multi-process serving mode, where each
  worker is pinned to a shared-memory partition slice of the compiled
  tables (``CompiledTables.slice_partition``), owns the node partition
  ``node % shards``, and packets migrate between workers as they walk;
  registers live in a per-batch shared segment, so rounds exchange
  only index sets.

CLI: ``python -m repro throughput [--sizes 256,2048] [--batch-sizes
64,512,4096] [--shards 1,2,4]``.  The committed trajectory (through
n = 10⁴) lives in ``BENCH_throughput.json``; regenerate it with
``python benchmarks/bench_throughput.py``.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import BatchRouter, ShardedRouter
from repro.experiments.harness import ExperimentTable
from repro.graphs.generators import preferential_attachment
from repro.pipeline.context import BuildContext
from repro.schemes.landmark_nameind import LandmarkNameIndependentScheme

#: Default ladders: small enough for tests and the generated report;
#: the CLI reaches the full regime with ``--sizes 256,2048,10000``.
DEFAULT_SIZES = (256, 1024)
DEFAULT_BATCH_SIZES = (64, 512, 4096)
DEFAULT_SHARDS = (1, 2, 4)


def _build(n: int, context: BuildContext):
    """Landmark scheme + compiled tables on the E19 power-law fixture."""
    graph = preferential_attachment(n, m=2, seed=1)
    metric = context.metric(graph, strategy="lazy")
    scheme = context.scheme(LandmarkNameIndependentScheme, metric)
    tables = context.compiled(scheme)
    return metric, scheme, tables


def _pair_arrays(n: int, count: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, n, size=count, dtype=np.int64),
        rng.integers(0, n, size=count, dtype=np.int64),
    )


def interpreted_rate(scheme, sources, targets) -> float:
    """Routes/second of the per-packet interpreted hop loop."""
    start = time.perf_counter()
    for u, v in zip(sources, targets):
        scheme.route(int(u), int(v))
    elapsed = time.perf_counter() - start
    return len(sources) / elapsed if elapsed > 0 else float("inf")


def compiled_rate(router, sources, targets, batch_size: int) -> float:
    """Routes/second of the vectorized sweep loop at one batch size."""
    start = time.perf_counter()
    for lo in range(0, len(sources), batch_size):
        router.route_arrays(
            sources[lo : lo + batch_size], targets[lo : lo + batch_size]
        )
    elapsed = time.perf_counter() - start
    return len(sources) / elapsed if elapsed > 0 else float("inf")


def run(
    pair_count: int = 300,
    context: Optional[BuildContext] = None,
    sizes: Optional[Sequence[int]] = None,
    batch_sizes: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """Compiled vs interpreted routes/second across batch and graph size.

    The interpreted baseline routes ``pair_count`` pairs one at a time;
    the engine serves the *same* pairs (repeated out to the largest
    batch size, so per-sweep fixed costs amortize the way a serving
    workload would).  Stretch and paths are identical by construction —
    only the clock differs.
    """
    if context is None:
        context = BuildContext()
    sizes = DEFAULT_SIZES if sizes is None else sizes
    batch_sizes = DEFAULT_BATCH_SIZES if batch_sizes is None else batch_sizes
    rows: List[List[object]] = []
    for n in sizes:
        n = int(n)
        metric, scheme, tables = _build(n, context)
        base_src, base_tgt = _pair_arrays(n, min(pair_count, 2000), seed=3)
        # Warm the lazy substrate so neither side pays first-touch
        # Dijkstra rows inside its timed region.
        for u, v in zip(base_src[:50], base_tgt[:50]):
            scheme.route(int(u), int(v))
        base_rate = interpreted_rate(scheme, base_src, base_tgt)
        router = BatchRouter(tables)
        for batch in batch_sizes:
            batch = int(batch)
            reps = max(1, (2 * batch) // len(base_src))
            src = np.tile(base_src, reps)
            tgt = np.tile(base_tgt, reps)
            rate = compiled_rate(router, src, tgt, batch)
            rows.append(
                [
                    n,
                    batch,
                    int(rate),
                    int(base_rate),
                    round(rate / base_rate, 1),
                ]
            )
    return ExperimentTable(
        title="E20: compiled batch engine throughput (landmark scheme)",
        columns=[
            "n",
            "batch",
            "compiled routes/s",
            "interpreted routes/s",
            "speedup",
        ],
        rows=rows,
        notes=[
            "preferential-attachment m=2 graphs on the lazy substrate;"
            " compiled output is bit-identical to route() (see"
            " tests/test_engine.py)",
            "results return in injection-index order regardless of"
            " completion order — the documented determinism contract",
        ],
    )


def run_shards(
    pair_count: int = 300,
    context: Optional[BuildContext] = None,
    shards: Optional[Sequence[int]] = None,
    sizes: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """Sharded serving throughput and per-worker table residency.

    Workers are real processes pinned to shared-memory partition
    slices; a serving round sends each owner only the index set of its
    live packets (registers are a mapped segment, not pickled dicts),
    so round cost is submission latency, not register volume.  The
    ``MB/worker`` column is what one worker maps — its slice plus the
    shared segment, one physical copy service-wide — against the
    ``replicated MB`` a per-worker table copy would cost.
    """
    if context is None:
        context = BuildContext()
    shards = DEFAULT_SHARDS if shards is None else shards
    n = int(max(sizes)) if sizes else 512
    _, _, tables = _build(n, context)
    batch = max(1024, 4 * min(pair_count, 2000))
    src, tgt = _pair_arrays(n, batch, seed=5)
    rows: List[List[object]] = []
    for count in shards:
        count = int(count)
        with ShardedRouter(tables, shards=count) as router:
            start = time.perf_counter()
            out = router.route_arrays(src, tgt)
            elapsed = time.perf_counter() - start
            resident = router.partition_bytes()
        rows.append(
            [
                n,
                count,
                batch,
                int(batch / elapsed),
                int(out["rounds"]),
                round(max(resident["per_worker"]) / 1e6, 3),
                round(resident["replicated"] / 1e6, 3),
            ]
        )
    return ExperimentTable(
        title="E20b: sharded serving mode (partition-sliced workers)",
        columns=[
            "n",
            "shards",
            "batch",
            "routes/s",
            "rounds",
            "MB/worker",
            "replicated MB",
        ],
        rows=rows,
        notes=[
            "shards=1 is the in-process fallback; workers attach to"
            " shared-memory partition slices via the pool initializer"
            " and own the partition node % shards",
            "serving rounds exchange index sets over a shared register"
            " segment — never pickled tables or register dicts"
            " (DESIGN.md, engine section)",
        ],
    )
