"""Table-integrity auditing: detect, quarantine, and heal corrupted rows.

A deployed router's tables live in memory and can rot — bad RAM, a
partial write, an overlay bug.  All six schemes in this repository
forward through the metric's per-node rows (``next_hop`` walks the
predecessor matrix), so those rows are the routing-table basis worth
guarding:

* :class:`TableAuditor` seals a SHA-256 digest of every node's row
  (:meth:`GraphMetric.row_digest`) at build time and re-audits on
  demand — any flipped entry changes the digest;
* :class:`CorruptionInjector` is the fault injector: it flips stored
  distance/predecessor entries of chosen nodes (bypassing the public
  API on purpose — that is what memory corruption does) and drops the
  node's derived caches so the corruption is *live*;
* :func:`quarantine_and_repair` closes the loop: audit, quarantine the
  corrupted nodes, re-fetch their rows through the churn repair path
  (:meth:`BuildContext.repair_rows` row splicing), and re-audit;
* :func:`verify_against_cold` is the ChurnVerificationError-style
  check: post-repair routes and table sizes must be bit-identical to a
  cold rebuild, else :class:`TableIntegrityError`.

This module is deliberately *not* imported from ``repro.chaos.__init__``
for layering reasons (it pulls in the build pipeline); import it
directly, mirroring :mod:`repro.observability.catalog`.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.params import SchemeParameters
from repro.core.seeding import derive_seed
from repro.core.types import NodeId, ReproError
from repro.metric.graph_metric import DISTANCE_SLACK, GraphMetric
from repro.pipeline.context import BuildContext
from repro.pipeline.sampling import sample_ordered_pairs


class TableIntegrityError(ReproError):
    """Routing-table state diverged from its sealed/cold reference."""


class TableAuditor:
    """Seals per-node row digests and detects later divergence."""

    def __init__(self, metric: GraphMetric) -> None:
        self._metric = metric
        self._sealed: Dict[NodeId, str] = {}
        self.seal()

    @property
    def metric(self) -> GraphMetric:
        return self._metric

    def seal(self) -> "TableAuditor":
        """Record the current row digests as the trusted reference."""
        self._sealed = {
            v: self._metric.row_digest(v) for v in self._metric.nodes
        }
        return self

    def audit(self) -> List[NodeId]:
        """Nodes whose rows no longer match their sealed digest."""
        return sorted(
            v
            for v, digest in self._sealed.items()
            if self._metric.row_digest(v) != digest
        )

    def verify(self) -> None:
        """Raise :class:`TableIntegrityError` if any row diverged."""
        corrupted = self.audit()
        if corrupted:
            raise TableIntegrityError(
                f"table rows corrupted at nodes {corrupted}"
            )


class CorruptionInjector:
    """Seeded fault injector: flip stored routing-table entries.

    Each corrupted node draws from its own derived stream
    (``derive_seed(seed, "table-corrupt", node)``), so which entries
    flip depends only on the node id and the master seed — injection
    order is irrelevant (the convention of :mod:`repro.core.seeding`).
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    def corrupt(
        self, metric: GraphMetric, nodes: Iterable[NodeId]
    ) -> List[NodeId]:
        """Flip one distance and one predecessor entry per node.

        Writes through :meth:`GraphMetric.mutable_row` — the raw stored
        arrays, bypassing the query API on purpose (that is what memory
        corruption does) — then :meth:`GraphMetric.invalidate_derived`
        drops the node's derived caches so routes served afterwards
        really read the corrupted state.  Returns the corrupted ids.
        """
        n = metric.n
        corrupted = sorted({int(v) for v in nodes})
        for v in corrupted:
            if not 0 <= v < n:
                raise ValueError(f"node {v} outside [0, {n})")
            rng = random.Random(
                derive_seed(self._seed, "table-corrupt", v)
            )
            dist_row, pred_row = metric.mutable_row(v)
            victim = rng.randrange(n - 1)
            if victim >= v:
                victim += 1  # never the trivial d(v, v) = 0 entry
            # Scale a finite positive distance: stays finite/positive,
            # always differs from the true value.
            dist_row[victim] *= 1.0 + 0.25 * (1 + rng.random())
            pred_victim = rng.randrange(n - 1)
            if pred_victim >= v:
                pred_victim += 1
            old_pred = int(pred_row[pred_victim])
            new_pred = (old_pred + 1 + rng.randrange(max(1, n - 1))) % n
            if new_pred == old_pred:
                new_pred = (new_pred + 1) % n
            pred_row[pred_victim] = new_pred
            metric.invalidate_derived(v)
        return corrupted


@dataclasses.dataclass
class AuditRepairReport:
    """Outcome of one detect-quarantine-heal cycle."""

    injected: List[NodeId]
    detected: List[NodeId]
    rows_respliced: int
    clean_after: bool

    @property
    def detection_rate(self) -> float:
        if not self.injected:
            return 1.0
        hit = len(set(self.detected) & set(self.injected))
        return hit / len(self.injected)


def quarantine_and_repair(
    context: BuildContext,
    auditor: TableAuditor,
    injected: Optional[Iterable[NodeId]] = None,
) -> AuditRepairReport:
    """Audit, quarantine corrupted nodes, and heal them by row splicing.

    Detection uses the sealed digests; every flagged node's row is
    re-fetched from the graph through
    :meth:`BuildContext.repair_rows` (the churn dirty-row splice path),
    after which a re-audit must come back clean.  ``injected`` is the
    ground truth (what the injector actually touched), kept on the
    report so callers can assert the detection rate.
    """
    detected = auditor.audit()
    respliced = context.repair_rows(auditor.metric, detected)
    clean = not auditor.audit()
    if detected and not clean:
        raise TableIntegrityError(
            "row splicing failed to restore the sealed digests"
        )
    return AuditRepairReport(
        injected=sorted(int(v) for v in injected)
        if injected is not None
        else list(detected),
        detected=detected,
        rows_respliced=respliced,
        clean_after=clean,
    )


def verify_against_cold(
    scheme,
    scheme_cls,
    params: Optional[SchemeParameters] = None,
    pairs: Optional[Sequence] = None,
    pair_count: int = 60,
    seed: int = 0,
) -> int:
    """Assert ``scheme`` routes bit-identically to a cold rebuild.

    The ChurnVerificationError-style check (same structure as
    ``ChurnDriver._verify``): a fresh context rebuilds the scheme from
    the graph alone, then ``table_bits_vector`` and a deterministic
    pair sample of routes must match exactly.  Returns the number of
    pairs compared; raises :class:`TableIntegrityError` on divergence.
    """
    metric = scheme.metric
    cold_context = BuildContext()
    cold_metric = cold_context.metric(metric.graph.copy())
    cold = cold_context.scheme(scheme_cls, cold_metric, params)
    if scheme.table_bits_vector() != cold.table_bits_vector():
        raise TableIntegrityError(
            "table_bits_vector diverged from cold rebuild"
        )
    n = cold_metric.n
    if pairs is None:
        pairs = sample_ordered_pairs(
            n, min(pair_count, n * (n - 1)), seed=seed
        )
    for u, v in pairs:
        warm = scheme.route(u, v)
        ref = cold.route(u, v)
        if warm.path != ref.path or abs(warm.cost - ref.cost) > DISTANCE_SLACK:
            raise TableIntegrityError(
                f"route {u}->{v} diverged from cold rebuild: "
                f"{warm.path} != {ref.path}"
            )
    return len(pairs)
