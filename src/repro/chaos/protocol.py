"""End-to-end reliability protocol configuration (sender ARQ).

The :class:`~repro.runtime.simulator.TrafficSimulator` implements the
mechanics; this module holds the knobs.  With an :class:`ArqConfig`
the simulator runs a stop-and-wait ARQ per packet:

* every packet carries a sequence number (its injection index) and its
  header is serialized through the scheme codec wrapped by
  :func:`repro.runtime.headers.with_checksum` — corrupted headers are
  *detected and dropped* at the receiving node instead of silently
  misrouting;
* the receiver acks each arriving copy and suppresses duplicates by
  sequence number (duplicates are counted, not re-delivered);
* the sender retransmits when the ack timeout expires, doubling (or
  ``backoff``-ing) the timeout each attempt, and gives up after
  ``max_retries`` retransmissions — surfacing the typed
  :class:`~repro.core.types.TransportStatus` outcome.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.types import TransportStatus

__all__ = ["ArqConfig", "TransportStatus"]


@dataclasses.dataclass(frozen=True)
class ArqConfig:
    """Sender-side ARQ policy for the simulator's reliability mode."""

    #: Ack timeout of the first attempt; ``None`` derives a per-packet
    #: retransmission timeout from the packet's own round-trip time
    #: (``2 x propagation + per-hop serialization slack``), the
    #: textbook RTO seed.
    ack_timeout: Optional[float] = None
    #: Multiplicative timeout growth per retransmission (>= 1).
    backoff: float = 2.0
    #: Ceiling on the accumulated backoff multiplier (>= 1): the
    #: timeout never exceeds ``ack_timeout * backoff_cap``, so a large
    #: retry budget keeps retrying at a bounded cadence instead of
    #: sleeping for exponentially long (the standard RTO cap).
    backoff_cap: float = 64.0
    #: Retransmission budget after the initial attempt (>= 0).
    max_retries: int = 8
    #: Width of the CRC appended to every header (see
    #: :func:`repro.runtime.headers.with_checksum`).
    checksum_bits: int = 8

    def __post_init__(self) -> None:
        if self.ack_timeout is not None and self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive (or None)")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.backoff_cap < 1.0:
            raise ValueError("backoff_cap must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")


#: The default policy used by experiments and benchmarks.
DEFAULT_ARQ = ArqConfig()
