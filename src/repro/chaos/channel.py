"""Deterministic unreliable-channel model over a routed network.

:class:`ChaosNetwork` wraps a :class:`~repro.metric.graph_metric.GraphMetric`
— or a :class:`~repro.resilience.degraded.DegradedNetwork` overlay, for
the combined stale-tables-plus-lossy-links regime — with seeded per-link
fault processes:

* **Bernoulli drop** — each transmission is lost with probability
  ``loss`` (the transmission still occupies the link: a lossy link
  wastes serialization capacity);
* **latency jitter** — a uniform extra delay in ``[0, jitter]``;
* **reordering** — with probability ``reorder`` a transmission is
  additionally held for ``reorder_delay``, letting later packets
  overtake it;
* **duplication** — with probability ``duplication`` the link delivers
  a second, independently forwarded copy;
* **header corruption** — with probability ``corruption``, the
  transmission arrives with ``corruption_bits`` bit positions of its
  *encoded* header flipped (see :mod:`repro.runtime.headers`); whether
  the receiver notices depends on the codec's checksum.

Every fault draw is keyed by ``derive_seed(seed, "chaos-link", packet,
flight, hop)`` (see :mod:`repro.core.seeding`): the outcome of a
transmission depends only on *which* transmission it is, never on how
many draws preceded it, so the simulator's event order cannot perturb
the fault sample, and sweeping a fault rate under a fixed seed replays
the same uniform draws against different thresholds (drops are
monotone in the loss rate — a paired comparison the benchmarks assert).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Tuple

from repro.core.seeding import derive_seed
from repro.core.types import NodeId
from repro.metric.graph_metric import GraphMetric


@dataclasses.dataclass(frozen=True)
class ChaosConfig:
    """Fault-process rates and magnitudes of one unreliable channel."""

    #: Per-transmission Bernoulli drop probability.
    loss: float = 0.0
    #: Maximum uniform extra per-link delay (time units).
    jitter: float = 0.0
    #: Per-transmission duplication probability.
    duplication: float = 0.0
    #: Probability a transmission is held an extra ``reorder_delay``.
    reorder: float = 0.0
    #: Extra holding delay applied when the reorder fault fires.
    reorder_delay: float = 4.0
    #: Per-transmission header-corruption probability.
    corruption: float = 0.0
    #: Number of header bit positions flipped per corruption event.
    corruption_bits: int = 1
    #: Arrival lag of a duplicated copy behind the original.
    duplicate_lag: float = 0.5

    def __post_init__(self) -> None:
        for name in ("loss", "jitter", "duplication", "reorder", "corruption"):
            value = getattr(self, name)
            if name == "jitter":
                if value < 0:
                    raise ValueError("jitter must be non-negative")
            elif not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]")
        if self.reorder_delay < 0 or self.duplicate_lag < 0:
            raise ValueError("delays must be non-negative")
        if self.corruption_bits < 1:
            raise ValueError("corruption_bits must be >= 1")

    @property
    def faultless(self) -> bool:
        """True iff every fault process is off (the identity channel)."""
        return (
            self.loss == 0.0
            and self.jitter == 0.0
            and self.duplication == 0.0
            and self.reorder == 0.0
            and self.corruption == 0.0
        )


@dataclasses.dataclass(frozen=True)
class LinkFaults:
    """The faults one transmission drew (empty = clean forward)."""

    dropped: bool = False
    extra_delay: float = 0.0
    duplicated: bool = False
    #: MSB-first header bit positions flipped in flight (empty = none).
    corrupt_bits: Tuple[int, ...] = ()


_NO_FAULTS = LinkFaults()


class ChaosNetwork:
    """Seeded per-link fault processes over a metric or degraded overlay.

    Args:
        base: The network packets actually traverse — a
            :class:`GraphMetric`, or a ``DegradedNetwork`` (anything
            exposing ``distance(u, v)``; a ``.metric`` attribute, if
            present, names the underlying intact metric).
        config: Fault rates; defaults to the identity channel.
        seed: Master seed for the per-transmission fault draws.
    """

    def __init__(
        self,
        base,
        config: ChaosConfig = ChaosConfig(),
        seed: int = 0,
    ) -> None:
        if not hasattr(base, "distance"):
            raise TypeError(
                "base must expose distance(u, v) "
                "(GraphMetric or DegradedNetwork)"
            )
        self._base = base
        self._config = config
        self._seed = int(seed)

    @property
    def base(self):
        """The wrapped network (metric or degraded overlay)."""
        return self._base

    @property
    def metric(self) -> GraphMetric:
        """The underlying intact metric (through any overlay)."""
        return getattr(self._base, "metric", self._base)

    @property
    def config(self) -> ChaosConfig:
        return self._config

    @property
    def seed(self) -> int:
        return self._seed

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Propagation delay of link ``(u, v)`` on the wrapped network."""
        return self._base.distance(u, v)

    # -- fault draws ---------------------------------------------------

    def link_faults(
        self, packet: int, flight: int, hop: int, header_bits: int = 0
    ) -> LinkFaults:
        """Faults drawn for one transmission (stateless, order-free).

        The draw order inside an event is fixed (drop, corruption,
        duplication, jitter, reorder) regardless of which rates are
        zero, so the *same* underlying uniforms back every sweep point
        of a rate sweep under one seed.
        """
        cfg = self._config
        if cfg.faultless:
            return _NO_FAULTS
        rng = random.Random(
            derive_seed(self._seed, "chaos-link", packet, flight, hop)
        )
        dropped = rng.random() < cfg.loss
        corrupted = rng.random() < cfg.corruption
        duplicated = rng.random() < cfg.duplication
        extra = rng.random() * cfg.jitter
        if rng.random() < cfg.reorder:
            extra += cfg.reorder_delay
        corrupt_bits: Tuple[int, ...] = ()
        if corrupted and not dropped and header_bits > 0:
            count = min(cfg.corruption_bits, header_bits)
            corrupt_bits = tuple(
                sorted(rng.sample(range(header_bits), count))
            )
        return LinkFaults(
            dropped=dropped,
            extra_delay=extra,
            duplicated=duplicated and not dropped,
            corrupt_bits=corrupt_bits,
        )

    def ack_dropped(self, packet: int, ack_seq: int, links: int) -> bool:
        """Whether the ``ack_seq``-th ack of ``packet`` is lost.

        Acks traverse the reverse path as an un-queued control message;
        each of its ``links`` reverse hops is lost independently with
        the data-plane loss rate.
        """
        if self._config.loss == 0.0 or links <= 0:
            return False
        rng = random.Random(
            derive_seed(self._seed, "chaos-ack", packet, ack_seq)
        )
        return any(
            rng.random() < self._config.loss for _ in range(links)
        )

    def __repr__(self) -> str:
        return (
            f"ChaosNetwork(seed={self._seed}, loss={self._config.loss}, "
            f"jitter={self._config.jitter}, "
            f"corruption={self._config.corruption})"
        )
