"""Unreliable-network serving layer.

Three pieces (see DESIGN.md, "Channel fault model & end-to-end ARQ"):

* :mod:`repro.chaos.channel` — :class:`ChaosNetwork`: seeded per-link
  drop / jitter / duplication / reordering / header-corruption fault
  processes over a metric or a ``DegradedNetwork`` overlay;
* :mod:`repro.chaos.protocol` — :class:`ArqConfig`: the sender ARQ
  (ack timeout, exponential backoff, retry cap) and header checksum
  policy the ``TrafficSimulator`` runs in reliability mode;
* :mod:`repro.chaos.audit` — table-integrity auditing and self-healing
  (kept out of this package root on purpose: it imports the build
  pipeline, which the channel model does not need — import
  ``repro.chaos.audit`` directly, like ``repro.observability.catalog``).
"""

from repro.chaos.channel import ChaosConfig, ChaosNetwork, LinkFaults
from repro.chaos.protocol import DEFAULT_ARQ, ArqConfig, TransportStatus

__all__ = [
    "ChaosConfig",
    "ChaosNetwork",
    "LinkFaults",
    "ArqConfig",
    "DEFAULT_ARQ",
    "TransportStatus",
]
