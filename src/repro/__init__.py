"""Compact routing schemes in networks of low doubling dimension.

A faithful reproduction of Konjevod, Richa & Xia — *Optimal-stretch
name-independent compact routing in doubling metrics* (PODC 2006) and its
SODA 2007 scale-free extension, as combined in the journal version.

Quickstart::

    import repro
    from repro.graphs import grid_2d

    metric = repro.GraphMetric(grid_2d(8))
    scheme = repro.ScaleFreeNameIndependentScheme(
        metric, repro.SchemeParameters(epsilon=0.5)
    )
    result = scheme.route(source=0, target=63)
    print(result.stretch, scheme.max_table_bits())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core.params import SchemeParameters
from repro.core.types import (
    NodeId,
    PreprocessingError,
    ReproError,
    RouteFailure,
    RouteResult,
)
from repro.directory.object_directory import LookupResult, ObjectDirectory
from repro.metric.doubling import doubling_dimension, growth_bound_constant
from repro.metric.graph_metric import GraphMetric
from repro.nets.hierarchy import NetHierarchy
from repro.oracle.distance_oracle import DistanceOracle
from repro.packing.ballpacking import BallPacking
from repro.pipeline import BuildContext, BuildStats, run_experiment
from repro.schemes.base import (
    LabeledScheme,
    NameIndependentScheme,
    RoutingScheme,
    SchemeEvaluation,
)
from repro.schemes.cowen_landmark import CowenLandmarkScheme
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme

__version__ = "1.0.0"

__all__ = [
    "BallPacking",
    "BuildContext",
    "BuildStats",
    "CowenLandmarkScheme",
    "DistanceOracle",
    "GraphMetric",
    "LookupResult",
    "LabeledScheme",
    "NameIndependentScheme",
    "NetHierarchy",
    "NodeId",
    "NonScaleFreeLabeledScheme",
    "ObjectDirectory",
    "PreprocessingError",
    "ReproError",
    "RouteFailure",
    "RouteResult",
    "RoutingScheme",
    "ScaleFreeLabeledScheme",
    "ScaleFreeNameIndependentScheme",
    "SchemeEvaluation",
    "SchemeParameters",
    "ShortestPathScheme",
    "SimpleNameIndependentScheme",
    "doubling_dimension",
    "growth_bound_constant",
    "run_experiment",
]
