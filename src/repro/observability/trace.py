"""Per-hop route-decision traces: record, replay, export.

A routing scheme in this library simulates the paper's *distributed*
algorithm centrally, so every forwarding decision — "at node ``u``, ring
``X_i(u)`` entry ``x`` fired, take one hop toward it" — happens at a
known program point.  This module captures those decisions:

* :class:`TraceEvent` — one decision: the node that made it, the
  algorithm phase (``walk``, ``zoom``, ``search``, ``to_center``,
  ``final``, ``fallback``, ...), the table entry that fired, the nodes
  the packet visited as a consequence, the cost of that leg, and the
  header fields before/after the decision (when the scheme's codec
  defines them).
* :class:`RouteTrace` — the ordered event list for one packet, plus
  identifying metadata.  :func:`replay` folds the events back into a
  ``(path, cost)`` pair; tests assert it reproduces the scheme's
  :class:`~repro.core.types.RouteResult` bit-for-bit, which makes a
  trace a proof that the route was assembled only from per-node table
  lookups.
* :class:`Tracer` / :data:`NULL_TRACER` / :class:`RecordingTracer` —
  the emission interface.  Schemes keep a tracer attribute that is the
  shared no-op singleton by default; every emission site is gated by
  ``if tracer.enabled``, so routing with tracing off costs one
  attribute read per decision and allocates nothing.

Use :meth:`RoutingScheme.trace_route` (see :mod:`repro.schemes.base`)
to obtain a populated trace; it installs a :class:`RecordingTracer` for
the duration of one ``route()`` call and restores the previous tracer
afterwards.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.types import NodeId


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One forwarding decision and its consequence.

    Attributes:
        node: The node whose table was consulted.
        phase: Algorithm phase that made the decision (``walk``,
            ``zoom``, ``search``, ``to_center``, ``final``, ``direct``,
            ``to_landmark``, ``from_landmark``, ``forward``,
            ``fallback``).
        nodes: Nodes appended to the packet's path by this decision, in
            visit order (empty for decisions that move nothing, e.g. a
            zero-hop search in a singleton tree or a fallback
            escalation).
        cost: Distance travelled by this leg (virtual hops charged at
            shortest-path distance, exactly as the scheme charges them).
        level: Net/search/packing level the decision was made at, when
            the phase has one.
        entry: Human-readable description of the table entry that fired
            (ring member and range, search-tree hit/miss, H-link,
            cluster vs landmark table, fallback policy).
        header_before: Header fields visible before the decision, when
            the scheme models them (field name -> value).
        header_after: Header fields after the decision.
    """

    node: NodeId
    phase: str
    nodes: Tuple[NodeId, ...] = ()
    cost: float = 0.0
    level: Optional[int] = None
    entry: Optional[str] = None
    header_before: Optional[Dict[str, int]] = None
    header_after: Optional[Dict[str, int]] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form; ``None`` fields are omitted."""
        out: Dict[str, object] = {
            "node": self.node,
            "phase": self.phase,
            "nodes": list(self.nodes),
            "cost": self.cost,
        }
        if self.level is not None:
            out["level"] = self.level
        if self.entry is not None:
            out["entry"] = self.entry
        if self.header_before is not None:
            out["header_before"] = dict(self.header_before)
        if self.header_after is not None:
            out["header_after"] = dict(self.header_after)
        return out


@dataclasses.dataclass
class RouteTrace:
    """The decision record of one simulated packet."""

    scheme: str
    source: NodeId
    #: Destination as the scheme saw it: a node id for ``route()``, a
    #: name for ``route_to_name()``, a label for ``route_to_label()``.
    destination: object
    events: List[TraceEvent] = dataclasses.field(default_factory=list)
    #: Worst-case header size of the scheme, bits (set on finish).
    header_bits: int = 0
    #: Node the packet actually stopped at (set on finish).
    delivered_to: Optional[NodeId] = None

    @property
    def path(self) -> List[NodeId]:
        """The packet's full path, folded from the events."""
        out = [self.source]
        for event in self.events:
            out.extend(event.nodes)
        return out

    @property
    def cost(self) -> float:
        """Total distance travelled, folded from the events."""
        return sum(event.cost for event in self.events)

    def phases(self) -> Dict[str, int]:
        """Event count per phase (provenance summaries)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.phase] = counts.get(event.phase, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "source": self.source,
            "destination": self.destination,
            "delivered_to": self.delivered_to,
            "header_bits": self.header_bits,
            "cost": self.cost,
            "path": self.path,
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


@dataclasses.dataclass(frozen=True)
class Replay:
    """Result of folding a trace: the reconstructed path and cost."""

    path: List[NodeId]
    cost: float

    def matches(
        self, path: Sequence[NodeId], cost: float, slack: float = 1e-9
    ) -> bool:
        """Whether this replay reproduces ``(path, cost)`` exactly.

        ``cost`` comparison allows ``slack`` only for float summation
        order; the path must match bit-for-bit.
        """
        return list(path) == self.path and abs(cost - self.cost) <= slack * max(
            1.0, abs(cost)
        )


def replay(trace: RouteTrace) -> Replay:
    """Fold a trace back into the packet's path and travelled cost.

    The replay consults nothing but the trace: if it matches the
    scheme's ``RouteResult``, every hop of that result is accounted for
    by a recorded per-node table decision.
    """
    return Replay(path=trace.path, cost=trace.cost)


class Tracer:
    """No-op emission interface (the zero-overhead default).

    Schemes call :meth:`event` at every decision point, gated by
    :attr:`enabled`; this base class ignores everything, so a scheme
    holding the shared :data:`NULL_TRACER` pays one attribute read per
    decision and nothing else.
    """

    __slots__ = ()

    enabled: bool = False

    def event(
        self,
        node: NodeId,
        phase: str,
        nodes: Sequence[NodeId] = (),
        cost: float = 0.0,
        level: Optional[int] = None,
        entry: Optional[str] = None,
        header_before: Optional[Dict[str, int]] = None,
        header_after: Optional[Dict[str, int]] = None,
    ) -> None:
        """Record one decision (ignored here)."""


#: The shared do-nothing tracer every scheme starts with.
NULL_TRACER = Tracer()


class RecordingTracer(Tracer):
    """Tracer that appends every decision to a :class:`RouteTrace`."""

    __slots__ = ("trace",)

    enabled = True

    def __init__(self, trace: RouteTrace) -> None:
        self.trace = trace

    def event(
        self,
        node: NodeId,
        phase: str,
        nodes: Sequence[NodeId] = (),
        cost: float = 0.0,
        level: Optional[int] = None,
        entry: Optional[str] = None,
        header_before: Optional[Dict[str, int]] = None,
        header_after: Optional[Dict[str, int]] = None,
    ) -> None:
        self.trace.events.append(
            TraceEvent(
                node=node,
                phase=phase,
                nodes=tuple(nodes),
                cost=cost,
                level=level,
                entry=entry,
                header_before=header_before,
                header_after=header_after,
            )
        )


def format_trace(trace: RouteTrace) -> str:
    """Human-readable one-line-per-event rendering for the CLI."""
    lines = [
        f"{trace.scheme}: {trace.source} -> {trace.destination} "
        f"(delivered to {trace.delivered_to}, cost {trace.cost:.3f}, "
        f"{len(trace.events)} decisions, header {trace.header_bits} bits)"
    ]
    for k, event in enumerate(trace.events):
        level = f" level={event.level}" if event.level is not None else ""
        entry = f" [{event.entry}]" if event.entry else ""
        hops = (
            " -> " + ",".join(str(v) for v in event.nodes)
            if event.nodes
            else ""
        )
        lines.append(
            f"  {k:3d} @{event.node:<4d} {event.phase:<13s}"
            f" cost={event.cost:<8.3f}{level}{entry}{hops}"
        )
    return "\n".join(lines)
