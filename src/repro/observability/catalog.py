"""Named fixtures for the ``repro trace`` CLI command.

The tracing machinery (:mod:`repro.observability.trace`) works on any
built scheme; the CLI needs *names* for graphs and schemes so a user can
ask for a single route without writing Python.  This module is the
name→object catalog:

* :data:`GRAPHS` — the standard experiment suite under slug names
  (``grid-8x8`` is the same graph ``standard_suite("small")`` calls
  "grid 8x8", etc.), at both scales;
* :data:`SCHEMES` — slugs for the six routing schemes, from the
  shortest-path baseline to Theorem 1.1.

Kept out of ``repro.observability.__init__`` on purpose: the base
tracing types are imported by ``repro.schemes.base``, and this catalog
imports the schemes — importing it from the package root would create a
cycle.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import networkx as nx

from repro.graphs.generators import (
    exponential_path,
    grid_2d,
    grid_with_holes,
    random_geometric,
)
from repro.schemes.cowen_landmark import CowenLandmarkScheme
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme

#: Graph slug -> zero-argument builder.  Mirrors
#: ``repro.experiments.harness.standard_suite`` (both scales), with the
#: display names slugified for the shell.
GRAPHS: Dict[str, Callable[[], nx.Graph]] = {
    "grid-8x8": lambda: grid_2d(8),
    "holes-9x9": lambda: grid_with_holes(9, hole_fraction=0.25, seed=7),
    "geometric-64": lambda: random_geometric(64, seed=11),
    "exp-path-16": lambda: exponential_path(16),
    "grid-16x16": lambda: grid_2d(16),
    "holes-18x18": lambda: grid_with_holes(18, hole_fraction=0.25, seed=7),
    "geometric-256": lambda: random_geometric(256, seed=11),
    "exp-path-32": lambda: exponential_path(32),
}

#: Scheme slug -> scheme class (all constructible via
#: ``BuildContext.scheme(cls, metric, params)``).
SCHEMES: Dict[str, type] = {
    "shortest-path": ShortestPathScheme,
    "cowen": CowenLandmarkScheme,
    "labeled-nonsf": NonScaleFreeLabeledScheme,
    "labeled-sf": ScaleFreeLabeledScheme,
    "nameind-simple": SimpleNameIndependentScheme,
    "nameind-sf": ScaleFreeNameIndependentScheme,
}


def graph_names() -> List[str]:
    return sorted(GRAPHS)


def scheme_names() -> List[str]:
    return list(SCHEMES)


def resolve_graph(name: str) -> nx.Graph:
    """Build the named fixture graph, or raise with the known names."""
    try:
        builder = GRAPHS[name]
    except KeyError:
        raise ValueError(
            f"unknown graph {name!r} (known: {', '.join(graph_names())})"
        ) from None
    return builder()


def resolve_scheme(name: str) -> type:
    """Look up the named scheme class, or raise with the known names."""
    try:
        return SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r} (known: {', '.join(scheme_names())})"
        ) from None
