"""Route-decision tracing and build-phase profiling.

The paper's schemes are *local* algorithms: each hop may consult only
the current node's table and the packet header (§1, Algorithm 3).  This
package makes that locality auditable and the build pipeline measurable:

* :mod:`repro.observability.trace` — a :class:`RouteTrace` of
  :class:`TraceEvent` records, one per forwarding decision, carrying the
  node, the algorithm phase (zooming leg, search-tree round trip, ring
  walk, Voronoi descent, fallback), the table entry that fired, and the
  header fields before/after.  Replaying a trace reproduces the
  scheme's ``RouteResult`` path and cost exactly, so a trace is a
  machine-checkable provenance record of every routing claim.
* :mod:`repro.observability.profile` — :class:`BuildProfile` wall-time
  accounting per artifact kind, recorded by
  :class:`~repro.pipeline.context.BuildContext` alongside its
  hit/miss/disk counters and exportable as JSON.
* :mod:`repro.observability.catalog` — named fixture graphs and scheme
  constructors for the ``repro trace`` CLI command.

Tracing is opt-in and zero-overhead when off: schemes hold the shared
:data:`NULL_TRACER` singleton, whose ``enabled`` flag gates every
emission site with a single attribute check.
"""

from repro.observability.profile import BuildProfile
from repro.observability.trace import (
    NULL_TRACER,
    RecordingTracer,
    RouteTrace,
    TraceEvent,
    Tracer,
    format_trace,
    replay,
)

__all__ = [
    "BuildProfile",
    "NULL_TRACER",
    "RecordingTracer",
    "RouteTrace",
    "TraceEvent",
    "Tracer",
    "format_trace",
    "replay",
]
