"""Wall-time accounting for the shared-substrate build pipeline.

:class:`~repro.pipeline.context.BuildContext` already counts cache hits,
misses, and disk hits per artifact kind (:class:`BuildStats`); this
module adds the missing dimension — *where the time goes* — so a slow
report run can be attributed to APSP matrices vs hierarchy construction
vs scheme preprocessing without guesswork:

* every artifact construction is timed (``builder()`` inside
  ``_get_or_build`` plus the un-memoized scheme path);
* disk-cache loads and stores are timed separately, so the benefit of a
  warm ``.repro-cache/`` is directly visible;
* :meth:`BuildProfile.report` merges the timings with the hit/miss
  counters into one JSON-ready dict, exposed on the CLI as
  ``--profile`` and in the report's provenance appendix.

The profile is purely additive bookkeeping: two ``perf_counter`` reads
around work that takes milliseconds to seconds, so it is always on.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Dict


@dataclasses.dataclass
class BuildProfile:
    """Seconds spent per artifact kind, split by pipeline stage.

    Attributes:
        build_seconds: Time inside artifact constructors, per kind.
        disk_load_seconds: Time unpickling disk-cache entries, per kind.
        disk_store_seconds: Time pickling artifacts to disk, per kind.
    """

    build_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)
    disk_load_seconds: Dict[str, float] = dataclasses.field(
        default_factory=dict
    )
    disk_store_seconds: Dict[str, float] = dataclasses.field(
        default_factory=dict
    )

    def add(self, stage: str, kind: str, seconds: float) -> None:
        """Charge ``seconds`` of ``stage`` work to artifact ``kind``.

        ``stage`` is one of ``build``, ``disk_load``, ``disk_store``.
        """
        bucket = getattr(self, f"{stage}_seconds")
        bucket[kind] = bucket.get(kind, 0.0) + seconds

    def timed(self, stage: str, kind: str) -> "_Timer":
        """Context manager charging its duration to ``(stage, kind)``."""
        return _Timer(self, stage, kind)

    def total_build_seconds(self) -> float:
        return sum(self.build_seconds.values())

    def report(self, stats=None, substrate=None) -> Dict[str, object]:
        """JSON-ready merge of timings and (optionally) hit counters.

        Args:
            stats: A :class:`~repro.pipeline.context.BuildStats`; when
                given, each kind's row carries its hit/miss/disk-hit
                counts next to the seconds spent building it.
            substrate: Aggregated metric-substrate counters (see
                ``BuildContext.substrate_stats``); when given, the
                report carries a ``substrate`` section with rows
                materialized and the row-store hit rate, so ``--profile``
                shows how far a run stayed below full APSP.
        """
        kinds = set(self.build_seconds)
        kinds |= set(self.disk_load_seconds) | set(self.disk_store_seconds)
        if stats is not None:
            kinds |= set(stats.hits) | set(stats.misses)
            kinds |= set(stats.disk_hits)
        rows: Dict[str, Dict[str, object]] = {}
        for kind in sorted(kinds):
            row: Dict[str, object] = {
                "build_seconds": round(self.build_seconds.get(kind, 0.0), 6),
            }
            loaded = self.disk_load_seconds.get(kind)
            stored = self.disk_store_seconds.get(kind)
            if loaded is not None:
                row["disk_load_seconds"] = round(loaded, 6)
            if stored is not None:
                row["disk_store_seconds"] = round(stored, 6)
            if stats is not None:
                row["hits"] = stats.hits.get(kind, 0)
                row["misses"] = stats.misses.get(kind, 0)
                row["disk_hits"] = stats.disk_hits.get(kind, 0)
            rows[kind] = row
        merged: Dict[str, object] = {
            "total_build_seconds": round(self.total_build_seconds(), 6),
            "kinds": rows,
        }
        if substrate is not None:
            section = dict(substrate)
            lookups = section.get("row_hits", 0) + section.get("row_misses", 0)
            section["row_store_hit_rate"] = (
                round(section.get("row_hits", 0) / lookups, 4)
                if lookups
                else None
            )
            merged["substrate"] = section
        return merged

    def to_json(self, stats=None, substrate=None, indent: int = 2) -> str:
        return json.dumps(self.report(stats, substrate=substrate), indent=indent)


class _Timer:
    """``with profile.timed("build", "metric"): ...`` helper."""

    __slots__ = ("_profile", "_stage", "_kind", "_start")

    def __init__(self, profile: BuildProfile, stage: str, kind: str) -> None:
        self._profile = profile
        self._stage = stage
        self._kind = kind

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profile.add(
            self._stage, self._kind, time.perf_counter() - self._start
        )
