"""Cowen-style stretch-3 landmark routing — a related-work baseline.

The paper's related-work section (§1.2) cites Cowen's stretch-3 labeled
scheme with ``Õ(n^{2/3})``-bit tables and the Thorup–Zwick refinements
as the state of the art for *general* graphs.  This module implements
the classic landmark construction so the doubling-metric schemes can be
compared against what general-graph techniques achieve on the same
networks (see ``benchmarks/bench_related_work.py``):

* choose a landmark set ``L`` (greedy: repeatedly take the node with
  the largest remaining *cluster*, the textbook ``Õ(n^{2/3})`` balance
  comes from ``|L| ≈ n^{1/3}``);
* each node ``u`` stores a next hop for every landmark and for every
  node in its cluster ``C(u) = {v : d(u,v) < d(v, L(v))}`` (nodes
  strictly closer to ``u`` than to their own home landmark);
* ``label(v) = (v, L(v))``; routing goes directly when ``v`` is in the
  local cluster table and otherwise via ``v``'s home landmark.

Guarantee: stretch at most 3 (the classic argument: if ``v`` is not in
``C(u)`` then ``d(v, L(v)) <= d(u, v)``, so the detour
``u -> L(v) -> v`` costs at most ``d(u,v) + 2 d(v, L(v)) <= 3 d(u,v)``).
Unlike the paper's schemes it cannot reach ``1 + ε``, and its tables
are polynomial, not polylogarithmic — that contrast is the point.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.bitcount import bits_for_id
from repro.core.params import SchemeParameters
from repro.core.types import NodeId, PreprocessingError, RouteFailure, RouteResult
from repro.metric.graph_metric import GraphMetric
from repro.schemes.base import LabeledScheme


class CowenLandmarkScheme(LabeledScheme):
    """Stretch-3 labeled routing via landmarks and clusters."""

    name = "Cowen landmark stretch-3 (general graphs)"

    def __init__(
        self,
        metric: GraphMetric,
        params: Optional[SchemeParameters] = None,
        landmark_count: Optional[int] = None,
    ) -> None:
        super().__init__(metric, params)
        if landmark_count is None:
            landmark_count = max(1, round(metric.n ** (1.0 / 3.0)))
        if not 1 <= landmark_count <= metric.n:
            raise PreprocessingError(
                f"landmark_count must be in [1, {metric.n}]"
            )
        self._landmarks = self._greedy_landmarks(landmark_count)
        self._home: List[NodeId] = [
            metric.nearest_in(v, self._landmarks) for v in metric.nodes
        ]
        self._clusters: List[Set[NodeId]] = [
            self._cluster_of(u) for u in metric.nodes
        ]

    # ------------------------------------------------------------------

    def _greedy_landmarks(self, count: int) -> List[NodeId]:
        """Farthest-point landmark selection (deterministic).

        Starting from node 0, repeatedly add the node farthest from the
        current landmark set — the standard k-center greedy, which
        spreads landmarks so home-landmark distances (and hence detour
        costs and cluster sizes) stay balanced.
        """
        metric = self._metric
        landmarks = [0]
        import numpy as np

        mindist = np.array(metric.distances_from(0), dtype=float)
        while len(landmarks) < count:
            far = int(mindist.argmax())
            if mindist[far] <= 0:
                break
            landmarks.append(far)
            np.minimum(
                mindist, metric.distances_from(far), out=mindist
            )
        return sorted(landmarks)

    def _cluster_of(self, u: NodeId) -> Set[NodeId]:
        metric = self._metric
        du = metric.distances_from(u)
        return {
            v
            for v in metric.nodes
            if du[v] < metric.distance(v, self._home[v]) - 1e-12
        }

    # ------------------------------------------------------------------

    @property
    def landmarks(self) -> List[NodeId]:
        return list(self._landmarks)

    def home_landmark(self, v: NodeId) -> NodeId:
        """``L(v)``: the landmark nearest to ``v``."""
        return self._home[v]

    def cluster(self, u: NodeId) -> Set[NodeId]:
        """``C(u)``: nodes strictly closer to u than to their landmark."""
        return set(self._clusters[u])

    def routing_label(self, v: NodeId) -> int:
        """Label = (v, L(v)) packed into one integer."""
        return v * self._metric.n + self._home[v]

    def unpack_label(self, label: int) -> Tuple[NodeId, NodeId]:
        return divmod(label, self._metric.n)

    def label_bits(self) -> int:
        return 2 * bits_for_id(self._metric.n)

    def stretch_guarantee(self) -> float:
        return 3.0

    # ------------------------------------------------------------------

    def route_to_label(self, source: NodeId, label: int) -> RouteResult:
        target, home = self.unpack_label(label)
        if not 0 <= target < self._metric.n:
            raise RouteFailure(f"label {label} out of range")
        metric = self._metric
        path = [source]
        legs = {"direct": 0.0, "to_landmark": 0.0, "from_landmark": 0.0}

        current = source
        via_landmark = False
        tracer = self._tracer
        guard = 4 * metric.n
        while current != target:
            if target in self._clusters[current] or current == home or (
                target in self._landmarks
            ):
                # Direct (cluster or landmark-table) hop.
                nxt = metric.next_hop(current, target)
                key = "from_landmark" if via_landmark else "direct"
                legs[key] += metric.edge_weight(current, nxt)
                if tracer.enabled:
                    table = (
                        "landmark table"
                        if target in self._landmarks or current == home
                        else f"cluster C({current})"
                    )
                    tracer.event(
                        node=current,
                        phase=key,
                        nodes=(nxt,),
                        cost=metric.edge_weight(current, nxt),
                        entry=f"{table} entry for {target}",
                        header_after={
                            "target": target,
                            "home": home,
                            "via_landmark": int(via_landmark),
                        },
                    )
            else:
                # Head for the destination's home landmark.
                nxt = metric.next_hop(current, home)
                legs["to_landmark"] += metric.edge_weight(current, nxt)
                if tracer.enabled:
                    tracer.event(
                        node=current,
                        phase="to_landmark",
                        nodes=(nxt,),
                        cost=metric.edge_weight(current, nxt),
                        entry=f"landmark table entry for L({target})={home}",
                        header_after={
                            "target": target,
                            "home": home,
                            "via_landmark": int(nxt == home),
                        },
                    )
                if nxt == home:
                    via_landmark = True
            current = nxt
            path.append(current)
            if len(path) > guard:  # pragma: no cover - defensive
                raise RouteFailure("landmark walk failed to converge")
        return RouteResult(
            source=source,
            target=target,
            path=path,
            cost=sum(legs.values()),
            optimal=metric.distance(source, target),
            header_bits=self.header_bits(),
            legs=legs,
        )

    # ------------------------------------------------------------------

    def table_bits(self, v: NodeId) -> int:
        """Next hops for all landmarks plus the local cluster."""
        unit = bits_for_id(self._metric.n)
        entries = len(self._landmarks) + len(self._clusters[v])
        return entries * 2 * unit

    def header_codec(self):
        """Bit-exact codec: the ``(v, L(v))`` label + via-landmark flag."""
        from repro.runtime.headers import cowen_landmark_codec

        return cowen_landmark_codec(self._metric)

    def header_bits(self) -> int:
        return self.label_bits() + 1  # label + via-landmark flag
