"""The scale-free name-independent ``(9+ε)`` scheme — Theorem 1.1 (§3.3).

The simple scheme of Theorem 1.4 keeps one search tree per node per
``r``-net level — ``Θ(log Δ)`` levels.  This scheme replaces most of them
with the ``log n + 1`` *ball packings* ``ℬ_j`` of Lemma 2.3:

* **Type ℬ** — for every packed ball ``B ∈ ℬ_j`` (center ``c``, radius
  ``r_c(j)``), a search tree over ``B``'s ``2^j`` members storing the
  ``(name, label)`` pairs of the *larger* ball ``B_c(r_c(j+2))`` — four
  pairs per tree node.
* **Type 𝒜** — a ball ``B_u(2^i/ε)`` (``u ∈ Y_i``) keeps its own search
  tree *only if* no packed ball can serve it: it is dropped whenever some
  ``B ∈ ℬ_j`` satisfies ``B ⊆ B_u(2^i(1/ε+1))`` and
  ``B_u(2^i/ε) ⊆ B_c(r_c(j+2))``.  For a dropped level ``i ∈ S(u)``,
  ``u`` stores a link (the label of ``c``) to the serving ball
  ``H(u, i)``, chosen with minimal ``j`` and then minimal ``d(u, c)``.
  Claim 3.9 shows at most ``4 log n`` such links per node, and
  Lemma 3.5 that each node appears in ``(1/ε)^{O(α)} log n`` trees.

Routing is Algorithm 3 with the ``Search()`` procedure of Algorithm 4: a
level-``i`` lookup either searches the local tree (type 𝒜) or takes a
detour to ``H(u, i)``'s center and back, at the same ``O(2^i/ε)`` cost.
Stretch is therefore still ``9 + O(ε)`` (Lemma 3.4), while the space
drops to ``(1/ε)^{O(α)} log³ n`` bits per node — independent of ``Δ``.

The underlying labeled scheme is the scale-free Theorem 1.2 scheme.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.bitcount import BitCounter, bits_for_count, bits_for_id
from repro.core.params import SchemeParameters
from repro.core.types import NodeId, RouteFailure, RouteResult
from repro.metric.graph_metric import GraphMetric
from repro.nets.hierarchy import NetHierarchy
from repro.packing.ballpacking import BallPacking
from repro.schemes.base import NameIndependentScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.searchtree.tree import SearchTree


class ScaleFreeNameIndependentScheme(NameIndependentScheme):
    """Theorem 1.1: scale-free ``(9+ε)``-stretch name-independent routing."""

    name = "name-independent scale-free (Theorem 1.1)"

    def __init__(
        self,
        metric: GraphMetric,
        params: Optional[SchemeParameters] = None,
        naming: Optional[List[int]] = None,
        underlying: Optional[ScaleFreeLabeledScheme] = None,
    ) -> None:
        super().__init__(metric, params, naming)
        if underlying is None:
            underlying = ScaleFreeLabeledScheme(metric, self._params)
        self._underlying = underlying
        self._hierarchy: NetHierarchy = underlying.hierarchy
        self._packing: BallPacking = underlying.packing

        # Type-ℬ search trees, per packed ball, keyed by (j, center).
        self._packed_trees: Dict[Tuple[int, NodeId], SearchTree] = {}
        # Type-𝒜 search trees, keyed by (i, u).
        self._own_trees: Dict[Tuple[int, NodeId], SearchTree] = {}
        # H(u, i) links, keyed by (i, u) -> (j, center).
        self._h_links: Dict[Tuple[int, NodeId], Tuple[int, NodeId]] = {}

        self._build_packed_trees()
        self._assign_levels()
        self._tree_bits: List[int] = self._account_trees()

    @classmethod
    def from_context(cls, context, metric, params=None, **kwargs):
        if kwargs.get("underlying") is None:
            kwargs["underlying"] = context.scheme(
                ScaleFreeLabeledScheme, metric, params
            )
        return cls(metric, params, **kwargs)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _extended_ball(self, c: NodeId, j: int) -> List[NodeId]:
        """``B_c(r_c(j+2))``: the 2^{j+2} nearest nodes (clamped to n)."""
        size = min(self._metric.n, 1 << (j + 2))
        return self._metric.size_ball(c, size)

    def _build_packed_trees(self) -> None:
        metric = self._metric
        eps = self._params.epsilon
        for j in self._packing.levels:
            for ball in self._packing.packing(j):
                tree = SearchTree(
                    metric,
                    ball.center,
                    ball.radius,
                    eps,
                    members=sorted(ball.members),
                )
                pairs = {
                    self.name_of(v): self._underlying.routing_label(v)
                    for v in self._extended_ball(ball.center, j)
                }
                tree.store(pairs)
                self._packed_trees[(j, ball.center)] = tree

    def _assign_levels(self) -> None:
        """Decide, per (i, u), between a type-𝒜 tree and an H(u,i) link."""
        metric = self._metric
        eps = self._params.epsilon
        extended_cache: Dict[Tuple[int, NodeId], frozenset] = {}
        for i in self._hierarchy.levels:
            inner_radius = (2.0**i) / eps
            outer_radius = (2.0**i) * (1.0 / eps + 1.0)
            for u in self._hierarchy.net(i):
                inner = metric.ball(u, inner_radius)
                served = self._find_serving_ball(
                    u, inner, outer_radius, extended_cache
                )
                if served is not None:
                    self._h_links[(i, u)] = served
                    continue
                tree = SearchTree(metric, u, inner_radius, eps, members=inner)
                tree.store(
                    {
                        self.name_of(v): self._underlying.routing_label(v)
                        for v in inner
                    }
                )
                self._own_trees[(i, u)] = tree

    def _find_serving_ball(
        self,
        u: NodeId,
        inner: List[NodeId],
        outer_radius: float,
        extended_cache: Dict[Tuple[int, NodeId], frozenset],
    ) -> Optional[Tuple[int, NodeId]]:
        """First (minimal j, then nearest center) ball serving ``u``.

        A ball ``B ∈ ℬ_j`` with center ``c`` serves when
        ``B ⊆ B_u(outer_radius)`` and ``inner ⊆ B_c(r_c(j+2))``.
        """
        metric = self._metric
        # Every distance this search consults is compared against
        # outer_radius, so u's radius-bounded ball is the whole story:
        # anything outside it fails the serving condition.
        ids, dists = metric.ball_with_distances(u, outer_radius)
        du = {int(x): float(dx) for x, dx in zip(ids, dists)}
        inner_size = len(inner)
        for j in self._packing.levels:
            # inner ⊆ extended ball needs 2^{j+2} >= |inner|.
            if min(metric.n, 1 << (j + 2)) < inner_size:
                continue
            candidates = [
                ball
                for ball in self._packing.packing(j)
                if ball.center in du
            ]
            candidates.sort(key=lambda b: (du[b.center], b.center))
            for ball in candidates:
                if any(x not in du for x in ball.members):
                    continue
                key = (j, ball.center)
                extended = extended_cache.get(key)
                if extended is None:
                    extended = frozenset(
                        self._extended_ball(ball.center, j)
                    )
                    extended_cache[key] = extended
                if all(v in extended for v in inner):
                    return key
        return None

    def _account_trees(self) -> List[int]:
        unit = bits_for_id(self._metric.n)
        bits = [0] * self._metric.n
        for tree in self._packed_trees.values():
            for v, b in tree.storage_bits(unit, unit).items():
                bits[v] += b
        for tree in self._own_trees.values():
            for v, b in tree.storage_bits(unit, unit).items():
                bits[v] += b
        # H(u, i) links: label of the serving center + packing level.
        level_bits = bits_for_count(self._metric.log_n)
        for (_, u) in self._h_links:
            bits[u] += unit + level_bits
        return bits

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def underlying(self) -> ScaleFreeLabeledScheme:
        return self._underlying

    @property
    def hierarchy(self) -> NetHierarchy:
        return self._hierarchy

    @property
    def packing(self) -> BallPacking:
        return self._packing

    def h_link(self, u: NodeId, i: int) -> Optional[Tuple[int, NodeId]]:
        """``(j, center)`` of ``H(u, i)``, or None if ``u`` keeps a tree."""
        return self._h_links.get((i, u))

    def own_tree_count(self) -> int:
        """Number of surviving type-𝒜 search trees."""
        return len(self._own_trees)

    def h_link_count(self, u: NodeId) -> int:
        """Number of H(u, i) links stored at ``u`` (Claim 3.9 bound)."""
        return sum(1 for (i, w) in self._h_links if w == u)

    def stretch_guarantee(self) -> float:
        return 9.0

    # ------------------------------------------------------------------
    # Algorithm 4: Search(name, u, i)
    # ------------------------------------------------------------------

    def _search(
        self,
        name: int,
        u: NodeId,
        i: int,
        path: List[NodeId],
        legs: Dict[str, float],
    ) -> Optional[int]:
        """Level-``i`` lookup at ``u``; returns the label if found."""
        tracer = self._tracer
        own = self._own_trees.get((i, u))
        if own is not None:
            outcome = own.search(name)
            legs["search"] += outcome.cost
            path.extend(outcome.trail[1:])
            if tracer.enabled:
                verdict = "hit" if outcome.found else "miss"
                tracer.event(
                    node=u,
                    phase="search",
                    nodes=tuple(outcome.trail[1:]),
                    cost=outcome.cost,
                    level=i,
                    entry=f"own tree T({u}, 2^{i}/eps): {verdict}",
                    header_before={"target_name": name, "search_level": i},
                    header_after={"target_name": name, "search_level": i},
                )
            return int(outcome.data) if outcome.found else None
        j, c = self._h_links[(i, u)]
        # Detour: u -> c (labeled), search T on the packed ball, c -> u.
        to_center = self._underlying.route_to_label(
            u, self._underlying.routing_label(c)
        )
        legs["search"] += to_center.cost
        path.extend(to_center.path[1:])
        if tracer.enabled:
            tracer.event(
                node=u,
                phase="search",
                nodes=tuple(to_center.path[1:]),
                cost=to_center.cost,
                level=i,
                entry=f"H({u},{i}) link -> ball(j={j}, c={c}): detour out",
                header_before={"target_name": name, "search_level": i},
                header_after={"target_name": name, "search_level": i},
            )
        outcome = self._packed_trees[(j, c)].search(name)
        legs["search"] += outcome.cost
        path.extend(outcome.trail[1:])
        if tracer.enabled:
            verdict = "hit" if outcome.found else "miss"
            tracer.event(
                node=c,
                phase="search",
                nodes=tuple(outcome.trail[1:]),
                cost=outcome.cost,
                level=i,
                entry=f"packed-ball tree T(B in B_{j}, c={c}): {verdict}",
                header_after={"target_name": name, "search_level": i},
            )
        back = self._underlying.route_to_label(
            c, self._underlying.routing_label(u)
        )
        legs["search"] += back.cost
        path.extend(back.path[1:])
        if tracer.enabled:
            tracer.event(
                node=c,
                phase="search",
                nodes=tuple(back.path[1:]),
                cost=back.cost,
                level=i,
                entry=f"H({u},{i}) detour back to u={u}",
                header_after={"target_name": name, "search_level": i},
            )
        return int(outcome.data) if outcome.found else None

    # ------------------------------------------------------------------
    # Algorithm 3 with Algorithm 4 searches
    # ------------------------------------------------------------------

    def route_to_name(self, source: NodeId, name: int) -> RouteResult:
        if not 0 <= name < self._metric.n:
            raise RouteFailure(f"name {name} out of range")
        path = [source]
        legs = {"zoom": 0.0, "search": 0.0, "final": 0.0}
        current = source
        found_label: Optional[int] = None
        for i in self._hierarchy.levels:
            found_label = self._search(name, current, i, path, legs)
            if found_label is not None:
                break
            if i == self._hierarchy.top_level:
                break
            parent = self._hierarchy.parent(current, i + 1)
            if parent != current:
                leg = self._underlying.route_to_label(
                    current, self._underlying.routing_label(parent)
                )
                legs["zoom"] += leg.cost
                path.extend(leg.path[1:])
                if self._tracer.enabled:
                    self._tracer.event(
                        node=current,
                        phase="zoom",
                        nodes=tuple(leg.path[1:]),
                        cost=leg.cost,
                        level=i + 1,
                        entry=(
                            f"stored parent label l(u({i + 1}))="
                            f"{self._underlying.routing_label(parent)}"
                        ),
                        header_after={
                            "target_name": name,
                            "search_level": i + 1,
                        },
                    )
                current = parent
        if found_label is None:  # pragma: no cover - top level covers V
            raise RouteFailure(f"name {name} not found at the top level")
        final = self._underlying.route_to_label(current, found_label)
        legs["final"] += final.cost
        path.extend(final.path[1:])
        if self._tracer.enabled:
            self._tracer.event(
                node=current,
                phase="final",
                nodes=tuple(final.path[1:]),
                cost=final.cost,
                entry=f"retrieved label l={found_label}",
                header_after={"target_name": name},
            )
        target = final.target
        if self.name_of(target) != name:
            # The delivered node checks the packet's destination name
            # against its own; a mismatch means corrupted routing state.
            raise RouteFailure(
                f"misdelivery: node {target} has name "
                f"{self.name_of(target)}, packet wanted {name}"
            )
        return RouteResult(
            source=source,
            target=target,
            path=path,
            cost=sum(legs.values()),
            optimal=self._metric.distance(source, target),
            header_bits=self.header_bits(),
            legs=legs,
        )

    # ------------------------------------------------------------------

    def table_breakdown(self, v: NodeId) -> BitCounter:
        """Per-category storage ledger for node ``v``."""
        unit = bits_for_id(self._metric.n)
        ledger = BitCounter()
        ledger.merge(self._underlying.table_breakdown(v))
        ledger.charge("netting-tree parent label", unit)
        level_bits = bits_for_count(self._metric.log_n)
        h_links = sum(1 for (_, w) in self._h_links if w == v)
        ledger.charge("H(u,i) links", h_links * (unit + level_bits))
        ledger.charge(
            "name search trees",
            self._tree_bits[v] - h_links * (unit + level_bits),
        )
        return ledger

    def table_bits(self, v: NodeId) -> int:
        unit = bits_for_id(self._metric.n)
        parent_label = unit
        return (
            self._underlying.table_bits(v)
            + parent_label
            + self._tree_bits[v]
        )

    def header_codec(self):
        """Bit-exact codec: name + level + the labeled sub-header."""
        from repro.runtime.headers import name_independent_codec

        return name_independent_codec(
            self._metric, self._underlying.header_codec()
        )

    def header_bits(self) -> int:
        """Serialized worst-case header size (see runtime.headers)."""
        return self.header_codec().total_bits
