"""The simple name-independent ``(9+ε)``-stretch scheme — Theorem 1.4.

Paper §3.1-3.2.  On top of an underlying ``(1+ε)``-stretch labeled scheme
(Lemma 3.1; our :class:`NonScaleFreeLabeledScheme` by default):

* every node ``u`` can travel up its zooming sequence — each ``u(i)``
  stores the routing label of its netting-tree parent ``u(i+1)``;
* for every level ``i ∈ [log Δ]`` and net point ``x ∈ Y_i`` a search tree
  ``T(x, 2^i/ε)`` stores the pair ``(name(v), l(v))`` of every node ``v``
  in the ball ``B_x(2^i/ε)``.

Routing (Algorithm 3): starting at ``i = 0``, search ``T(u(i), 2^i/ε)``
for the destination's name; on a miss climb to ``u(i+1)`` and repeat; on
a hit route to the retrieved label with the labeled scheme.  Lemma 3.4
bounds the total cost by ``(9 + O(ε)) d(u, v)``: the zooming legs cost
``< 2^{j+1}`` (Eqn. 2), the searches ``Σ 2^{i+1}/ε``, and a miss at level
``j-1`` certifies ``d(u, v) >= 2^{j-1}(1/ε - 2)`` (Eqn. 5).

Space is ``(1/ε)^{O(α)} log Δ log n`` bits per node — the ``log Δ``
levels of search trees are exactly what Theorem 1.1 removes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.bitcount import BitCounter, bits_for_id
from repro.core.params import SchemeParameters
from repro.core.types import NodeId, RouteFailure, RouteResult
from repro.metric.graph_metric import GraphMetric
from repro.nets.hierarchy import NetHierarchy
from repro.observability.trace import NULL_TRACER
from repro.schemes.base import LabeledScheme, NameIndependentScheme
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.searchtree.tree import SearchTree


class SimpleNameIndependentScheme(NameIndependentScheme):
    """Theorem 1.4: ``(9+ε)`` stretch, ``log Δ``-dependent tables."""

    name = "name-independent simple (Theorem 1.4)"
    supports_partial_rebuild = True

    def __init__(
        self,
        metric: GraphMetric,
        params: Optional[SchemeParameters] = None,
        naming: Optional[List[int]] = None,
        underlying: Optional[LabeledScheme] = None,
    ) -> None:
        super().__init__(metric, params, naming)
        if underlying is None:
            underlying = NonScaleFreeLabeledScheme(metric, self._params)
        self._underlying = underlying
        self._hierarchy: NetHierarchy = underlying.hierarchy
        # _trees[i][x] = search tree T(x, 2^i/ε), for x in Y_i.
        self._trees: List[Dict[NodeId, SearchTree]] = []
        self._build_search_trees()
        self._tree_bits: List[int] = self._account_trees()

    @classmethod
    def from_context(
        cls, context, metric, params=None, _previous=None, _dirty=None, **kwargs
    ):
        if kwargs.get("underlying") is None:
            kwargs["underlying"] = context.scheme(
                NonScaleFreeLabeledScheme, metric, params
            )
        if _previous is not None and not kwargs.get("naming"):
            return cls._rebuilt(
                metric, kwargs["underlying"], _previous, _dirty
            )
        return cls(metric, params, **kwargs)

    # ------------------------------------------------------------------

    def _built_tree(self, i: int, x: NodeId) -> SearchTree:
        """Build and populate one search tree ``T(x, 2^i/ε)``."""
        eps = self._params.epsilon
        tree = SearchTree(self._metric, x, (2.0**i) / eps, eps)
        pairs = {
            self.name_of(v): self._underlying.routing_label(v)
            for v in tree.nodes
        }
        tree.store(pairs)
        return tree

    def _build_search_trees(self) -> None:
        built = 0
        for i in self._hierarchy.levels:
            level_trees: Dict[NodeId, SearchTree] = {}
            for x in self._hierarchy.net(i):
                level_trees[x] = self._built_tree(i, x)
                built += 1
            self._trees.append(level_trees)
        #: Partition accounting for BuildStats.fold (see BuildContext).
        self.build_report: Dict[str, Tuple[int, int]] = {
            "search_tree": (0, built)
        }

    @classmethod
    def _rebuilt(
        cls,
        metric: GraphMetric,
        underlying: LabeledScheme,
        previous: "SimpleNameIndependentScheme",
        dirty: FrozenSet[NodeId],
    ) -> "SimpleNameIndependentScheme":
        """Rebuild only the search trees whose members have dirty rows.

        A tree ``T(x, 2^i/ε)`` depends on the distance rows of its
        members (greedy tiering, nearest-parent attachment, ball
        membership through row x) and on the stored labels, which come
        from the netting tree.  With the hierarchy promoted and the
        member rows clean, the tree a cold build would produce is
        bit-identical, so the old object is reused (rebased onto the
        edited metric).
        """
        hierarchy = underlying.hierarchy
        if (
            hierarchy is not previous._hierarchy
            or metric.n != previous._metric.n
        ):
            return cls(metric, previous._params, underlying=underlying)
        fresh = object.__new__(cls)
        fresh._metric = metric
        fresh._params = previous._params
        fresh._table_bits_cache = None
        fresh._tracer = NULL_TRACER
        fresh._name_of = previous._name_of
        fresh._node_with_name = previous._node_with_name
        fresh._underlying = underlying
        fresh._hierarchy = hierarchy
        fresh._trees = []
        reused = built = 0
        for i in hierarchy.levels:
            level_trees: Dict[NodeId, SearchTree] = {}
            for x in hierarchy.net(i):
                old = previous._trees[i].get(x)
                if old is not None and not (dirty & old.member_set):
                    old.rebase(metric)
                    level_trees[x] = old
                    reused += 1
                else:
                    level_trees[x] = fresh._built_tree(i, x)
                    built += 1
            fresh._trees.append(level_trees)
        fresh._tree_bits = fresh._account_trees()
        fresh.build_report = {"search_tree": (reused, built)}
        return fresh

    def _account_trees(self) -> List[int]:
        unit = bits_for_id(self._metric.n)
        bits = [0] * self._metric.n
        for level_trees in self._trees:
            for tree in level_trees.values():
                for v, b in tree.storage_bits(unit, unit).items():
                    bits[v] += b
        return bits

    # ------------------------------------------------------------------

    @property
    def underlying(self) -> LabeledScheme:
        """The labeled scheme used for all point-to-point legs."""
        return self._underlying

    @property
    def hierarchy(self) -> NetHierarchy:
        return self._hierarchy

    def search_tree(self, x: NodeId, i: int) -> SearchTree:
        """``T(x, 2^i/ε)`` (read-only view for tests)."""
        return self._trees[i][x]

    def stretch_guarantee(self) -> float:
        return 9.0

    # ------------------------------------------------------------------
    # Algorithm 3
    # ------------------------------------------------------------------

    def route_to_name(self, source: NodeId, name: int) -> RouteResult:
        if not 0 <= name < self._metric.n:
            raise RouteFailure(f"name {name} out of range")
        path = [source]
        legs = {"zoom": 0.0, "search": 0.0, "final": 0.0}
        tracer = self._tracer
        current = source
        found_label: Optional[int] = None
        for i in self._hierarchy.levels:
            outcome = self._trees[i][current].search(name)
            legs["search"] += outcome.cost
            path.extend(outcome.trail[1:])
            if tracer.enabled:
                verdict = "hit" if outcome.found else "miss"
                tracer.event(
                    node=current,
                    phase="search",
                    nodes=tuple(outcome.trail[1:]),
                    cost=outcome.cost,
                    level=i,
                    entry=f"T(u({i})={current}, 2^{i}/eps): {verdict}",
                    header_before={"target_name": name, "search_level": i},
                    header_after={
                        "target_name": name,
                        "search_level": i if outcome.found else i + 1,
                    },
                )
            if outcome.found:
                found_label = int(outcome.data)
                break
            if i == self._hierarchy.top_level:
                break
            parent = self._hierarchy.parent(current, i + 1)
            if parent != current:
                # u(i) stores l(u(i+1)); climb with the labeled scheme.
                leg = self._underlying.route_to_label(
                    current, self._underlying.routing_label(parent)
                )
                legs["zoom"] += leg.cost
                path.extend(leg.path[1:])
                if tracer.enabled:
                    tracer.event(
                        node=current,
                        phase="zoom",
                        nodes=tuple(leg.path[1:]),
                        cost=leg.cost,
                        level=i + 1,
                        entry=(
                            f"stored parent label l(u({i + 1}))="
                            f"{self._underlying.routing_label(parent)}"
                        ),
                        header_before={
                            "target_name": name,
                            "search_level": i + 1,
                        },
                        header_after={
                            "target_name": name,
                            "search_level": i + 1,
                        },
                    )
                current = parent
        if found_label is None:  # pragma: no cover - top ball covers V
            raise RouteFailure(
                f"name {name} not found at the top level"
            )
        final = self._underlying.route_to_label(current, found_label)
        legs["final"] += final.cost
        path.extend(final.path[1:])
        if tracer.enabled:
            tracer.event(
                node=current,
                phase="final",
                nodes=tuple(final.path[1:]),
                cost=final.cost,
                entry=f"retrieved label l={found_label}",
                header_after={"target_name": name},
            )
        target = final.target
        if self.name_of(target) != name:
            # The delivered node checks the packet's destination name
            # against its own; a mismatch means corrupted routing state.
            raise RouteFailure(
                f"misdelivery: node {target} has name "
                f"{self.name_of(target)}, packet wanted {name}"
            )
        return RouteResult(
            source=source,
            target=target,
            path=path,
            cost=sum(legs.values()),
            optimal=self._metric.distance(source, target),
            header_bits=self.header_bits(),
            legs=legs,
        )

    # ------------------------------------------------------------------

    def table_breakdown(self, v: NodeId) -> BitCounter:
        """Per-category storage ledger for node ``v``."""
        ledger = BitCounter()
        unit = bits_for_id(self._metric.n)
        if hasattr(self._underlying, "table_breakdown"):
            ledger.merge(self._underlying.table_breakdown(v))
        else:
            ledger.charge("underlying labeled", self._underlying.table_bits(v))
        ledger.charge("netting-tree parent label", unit)
        ledger.charge("name search trees", self._tree_bits[v])
        return ledger

    def table_bits(self, v: NodeId) -> int:
        unit = bits_for_id(self._metric.n)
        parent_label = unit  # label of the netting-tree parent
        return (
            self._underlying.table_bits(v)
            + parent_label
            + self._tree_bits[v]
        )

    def header_codec(self):
        """Bit-exact codec: name + level + the labeled sub-header."""
        from repro.runtime.headers import name_independent_codec

        return name_independent_codec(
            self._metric, self._underlying.header_codec()
        )

    def header_bits(self) -> int:
        """Serialized worst-case header size (see runtime.headers)."""
        return self.header_codec().total_bits
