"""The paper's routing schemes plus baselines.

* :class:`ShortestPathScheme` — stretch-1 full-table baseline.
* :class:`NonScaleFreeLabeledScheme` — the underlying ``(1+ε)``-stretch
  labeled scheme of Lemma 3.1 (space depends on ``log Δ``).
* :class:`ScaleFreeLabeledScheme` — Theorem 1.2 (paper §4).
* :class:`SimpleNameIndependentScheme` — Theorem 1.4 (paper §3.1-3.2).
* :class:`ScaleFreeNameIndependentScheme` — Theorem 1.1 (paper §3.3).
"""

from repro.schemes.base import (
    LabeledScheme,
    NameIndependentScheme,
    RoutingScheme,
)
from repro.schemes.cowen_landmark import CowenLandmarkScheme
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.schemes.landmark_nameind import LandmarkNameIndependentScheme
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.shortest_path import ShortestPathScheme

__all__ = [
    "CowenLandmarkScheme",
    "LabeledScheme",
    "LandmarkNameIndependentScheme",
    "NameIndependentScheme",
    "NonScaleFreeLabeledScheme",
    "RoutingScheme",
    "ScaleFreeLabeledScheme",
    "ScaleFreeNameIndependentScheme",
    "ShortestPathScheme",
    "SimpleNameIndependentScheme",
]
