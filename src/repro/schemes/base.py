"""Common interface and accounting for all routing schemes.

A routing scheme (paper §1) has a centralized *preprocessing step* — the
scheme constructor, which configures per-node routing tables — and a
distributed *routing algorithm*, which must advance a packet using only
the current node's table and the packet header.  Every scheme here keeps
its per-node state in explicit table objects; :meth:`RoutingScheme.table_bits`
audits their size in bits so measured storage can be compared against the
paper's bounds.

Two sub-interfaces mirror the paper's two models:

* :class:`LabeledScheme` — the designer assigns each node a *routing
  label*; ``route`` takes the destination's label.
* :class:`NameIndependentScheme` — nodes carry arbitrary externally-given
  names (a permutation of ``[n]`` by default); ``route`` takes the
  destination's *name*.  The adversarial lower-bound experiments exercise
  non-identity namings.
"""

from __future__ import annotations

import abc
import dataclasses
import statistics
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.params import SchemeParameters
from repro.core.types import NodeId, PreprocessingError, RouteResult
from repro.metric.graph_metric import GraphMetric
from repro.observability.trace import (
    NULL_TRACER,
    RecordingTracer,
    RouteTrace,
    Tracer,
)


#: The scheme under evaluation in this worker process, installed once by
#: :func:`_init_evaluation_worker` (via the pool initializer) instead of
#: being pickled into every chunk payload.
_EVALUATION_SCHEME: Optional["RoutingScheme"] = None


def _init_evaluation_worker(scheme: "RoutingScheme") -> None:
    """Pool initializer: receive the scheme once per worker process."""
    global _EVALUATION_SCHEME
    _EVALUATION_SCHEME = scheme


def _clear_evaluation_worker() -> None:
    """Drop the installed scheme again.

    ``parallel_map``'s serial/one-chunk fallback runs the initializer
    *in the parent process*; without this, the module global would pin a
    full scheme (and through it the APSP matrix) in the parent forever
    after a single ``evaluate(jobs=...)`` call.  Worker processes die
    with their pool, so clearing is only about the in-process fallback.
    """
    global _EVALUATION_SCHEME
    _EVALUATION_SCHEME = None


def _evaluate_pairs_chunk(chunk):
    """Process-pool worker: route one contiguous chunk of pairs.

    Returns ``(stretches, worst)`` where ``worst`` is the chunk's first
    strictly-largest-stretch :class:`RouteResult` — the same tie rule the
    serial loop applies, so merging chunks in order reproduces the serial
    result exactly.  Module-level so it pickles; the scheme itself
    crosses the process boundary once per worker (initializer), not once
    per chunk.
    """
    scheme = _EVALUATION_SCHEME
    assert scheme is not None, "worker initializer did not run"
    stretches: List[float] = []
    worst: Optional[RouteResult] = None
    for u, v in chunk:
        result = scheme.route(u, v)
        stretches.append(result.stretch)
        if worst is None or result.stretch > worst.stretch:
            worst = result
    return stretches, worst


class RoutingScheme(abc.ABC):
    """Abstract base for all routing schemes."""

    #: Human-readable scheme name used in experiment tables.
    name: str = "abstract"

    #: Schemes that can rebuild themselves from a stashed pre-edit
    #: instance plus a dirty node set set this to True and accept
    #: ``_previous`` / ``_dirty`` keyword arguments in ``from_context``
    #: (see ``BuildContext.apply_edit``).  The default is a full rebuild
    #: — always correct, never reuses per-node table partitions.
    supports_partial_rebuild: bool = False

    def __init__(
        self, metric: GraphMetric, params: Optional[SchemeParameters] = None
    ) -> None:
        if params is None:
            params = SchemeParameters()
        self._metric = metric
        self._params = params
        self._table_bits_cache: Optional[List[int]] = None
        #: Route-decision recorder; the shared no-op singleton unless a
        #: trace_route() call is in flight (see repro.observability).
        self._tracer: Tracer = NULL_TRACER

    @classmethod
    def from_context(
        cls,
        context,
        metric: GraphMetric,
        params: Optional[SchemeParameters] = None,
        **kwargs,
    ) -> "RoutingScheme":
        """Construct with substrates resolved through a ``BuildContext``.

        The base implementation is a plain constructor call; schemes
        with expensive substrate dependencies (net hierarchies, ball
        packings, underlying labeled schemes) override this to pull them
        from ``context`` so every scheme in a run shares one copy.
        """
        return cls(metric, params, **kwargs)

    @property
    def metric(self) -> GraphMetric:
        return self._metric

    @property
    def params(self) -> SchemeParameters:
        return self._params

    # -- routing -------------------------------------------------------

    @abc.abstractmethod
    def route(self, source: NodeId, target: NodeId) -> RouteResult:
        """Simulate routing a packet from ``source`` to ``target``.

        ``target`` identifies the destination node; labeled schemes look
        its label up (the sender is assumed to know it, as in the labeled
        model), while name-independent schemes use only its *name*.
        """

    # -- tracing -------------------------------------------------------

    @property
    def tracer(self) -> Tracer:
        """The active route-decision recorder (no-op by default)."""
        return self._tracer

    def trace_route(
        self, source: NodeId, target: NodeId
    ) -> Tuple[RouteResult, RouteTrace]:
        """Route one packet while recording every forwarding decision.

        Installs a :class:`~repro.observability.trace.RecordingTracer`
        for the duration of a single ``route()`` call and restores the
        previous tracer afterwards, so concurrent plain ``route()``
        calls stay zero-overhead.  Replaying the returned trace
        reproduces ``result.path`` and ``result.cost`` exactly (a
        property test in ``tests/test_observability.py`` holds every
        scheme to this).
        """
        trace = RouteTrace(
            scheme=self.name, source=source, destination=target
        )
        previous = self._tracer
        self._tracer = RecordingTracer(trace)
        try:
            result = self.route(source, target)
        finally:
            self._tracer = previous
        trace.delivered_to = result.target
        trace.header_bits = result.header_bits
        return result, trace

    # -- compiled serving ----------------------------------------------

    def compile_tables(self):
        """Lower the built per-node tables for the batch engine.

        Returns the :class:`~repro.engine.compiler.CompiledTables` the
        vectorized :class:`~repro.engine.batch.BatchRouter` sweeps over;
        every compiled route is bit-identical to :meth:`route`.  Raises
        ``EngineUnsupported`` for schemes (or size regimes) without a
        compiled lowering.  Cached per scheme via
        ``BuildContext.compiled``.
        """
        from repro.engine import compile_scheme

        return compile_scheme(self)

    # -- storage accounting --------------------------------------------

    @abc.abstractmethod
    def table_bits(self, v: NodeId) -> int:
        """Total routing-table size at node ``v``, in bits."""

    @abc.abstractmethod
    def header_bits(self) -> int:
        """Maximum packet-header size used by the scheme, in bits."""

    def table_bits_vector(self) -> List[int]:
        """Per-node table sizes, computed once and cached.

        Tables are frozen after preprocessing, so the vector never goes
        stale; the aggregate accessors below all read from it instead of
        re-walking every table per call.
        """
        if self._table_bits_cache is None:
            self._table_bits_cache = [
                self.table_bits(v) for v in self._metric.nodes
            ]
        return self._table_bits_cache

    def max_table_bits(self) -> int:
        return max(self.table_bits_vector())

    def avg_table_bits(self) -> float:
        return statistics.fmean(self.table_bits_vector())

    def total_table_bits(self) -> int:
        return sum(self.table_bits_vector())

    # -- evaluation -----------------------------------------------------

    def stretch_guarantee(self) -> Optional[float]:
        """The paper's stretch bound for this scheme, if any.

        Returned as the leading constant only (``9`` or ``1``); the
        ``O(ε)`` slack is applied by the experiment harness.
        """
        return None

    def evaluate(
        self,
        pairs: Optional[Iterable[Tuple[NodeId, NodeId]]] = None,
        jobs: int = 1,
    ) -> "SchemeEvaluation":
        """Route every pair and summarize stretch statistics.

        Defaults to all ordered pairs of distinct nodes.  With
        ``jobs > 1`` the pairs are routed by a process pool in
        contiguous ordered chunks; the merged statistics are
        bit-identical to the serial path (same stretch list, same
        first-strictly-greater worst-pair rule).
        """
        if pairs is None:
            pairs = (
                (u, v)
                for u in self._metric.nodes
                for v in self._metric.nodes
                if u != v
            )
        if jobs != 1:
            pairs = list(pairs)
        if jobs != 1 and len(pairs) >= 2:
            from repro.pipeline.parallel import chunk_evenly, parallel_map, resolve_jobs

            chunks = chunk_evenly(pairs, resolve_jobs(jobs))
            try:
                outcomes = parallel_map(
                    _evaluate_pairs_chunk,
                    chunks,
                    jobs=jobs,
                    initializer=_init_evaluation_worker,
                    initargs=(self,),
                )
            finally:
                # The serial/one-chunk fallback runs the initializer in
                # this process; do not leave the scheme pinned here.
                _clear_evaluation_worker()
            stretches = []
            worst = None
            for chunk_stretches, chunk_worst in outcomes:
                stretches.extend(chunk_stretches)
                if chunk_worst is not None and (
                    worst is None or chunk_worst.stretch > worst.stretch
                ):
                    worst = chunk_worst
        else:
            stretches = []
            worst = None
            for u, v in pairs:
                result = self.route(u, v)
                stretches.append(result.stretch)
                if worst is None or result.stretch > worst.stretch:
                    worst = result
        if not stretches:
            raise ValueError("no pairs evaluated")
        return SchemeEvaluation(
            scheme=self.name,
            pair_count=len(stretches),
            max_stretch=max(stretches),
            mean_stretch=statistics.fmean(stretches),
            median_stretch=statistics.median(stretches),
            worst_pair=(worst.source, worst.target) if worst else None,
            max_table_bits=self.max_table_bits(),
            avg_table_bits=self.avg_table_bits(),
            header_bits=self.header_bits(),
        )


@dataclasses.dataclass
class SchemeEvaluation:
    """Summary of routing a set of pairs under one scheme."""

    scheme: str
    pair_count: int
    max_stretch: float
    mean_stretch: float
    median_stretch: float
    worst_pair: Optional[Tuple[NodeId, NodeId]]
    max_table_bits: int
    avg_table_bits: float
    header_bits: int


class LabeledScheme(RoutingScheme):
    """Scheme in the labeled (name-dependent) model."""

    @abc.abstractmethod
    def routing_label(self, v: NodeId) -> int:
        """The designer-assigned routing label of ``v``."""

    @abc.abstractmethod
    def label_bits(self) -> int:
        """Size of one routing label, in bits."""

    @abc.abstractmethod
    def route_to_label(self, source: NodeId, label: int) -> RouteResult:
        """Route given only the destination's label (the model's API)."""

    def route(self, source: NodeId, target: NodeId) -> RouteResult:
        return self.route_to_label(source, self.routing_label(target))


class NameIndependentScheme(RoutingScheme):
    """Scheme in the name-independent model.

    Args:
        metric: The network.
        params: Accuracy parameters.
        naming: Bijection node id -> external name (identity by default).
            The scheme may not embed information in names; it must work
            for *any* naming, which the lower-bound experiments exploit.
    """

    def __init__(
        self,
        metric: GraphMetric,
        params: Optional[SchemeParameters] = None,
        naming: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(metric, params)
        if naming is None:
            naming = list(metric.nodes)
        naming = list(naming)
        if sorted(naming) != list(range(metric.n)):
            raise PreprocessingError(
                "naming must be a permutation of 0..n-1"
            )
        self._name_of: List[int] = naming
        self._node_with_name: Dict[int, NodeId] = {
            name: v for v, name in enumerate(naming)
        }

    def name_of(self, v: NodeId) -> int:
        """The external name of node ``v``."""
        return self._name_of[v]

    def node_with_name(self, name: int) -> NodeId:
        """Inverse naming (test/experiment helper, not used to route)."""
        return self._node_with_name[name]

    @abc.abstractmethod
    def route_to_name(self, source: NodeId, name: int) -> RouteResult:
        """Route given only the destination's external name."""

    def route(self, source: NodeId, target: NodeId) -> RouteResult:
        return self.route_to_name(source, self.name_of(target))
