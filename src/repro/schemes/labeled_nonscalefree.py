"""The underlying non-scale-free ``(1+ε)``-stretch labeled scheme.

This is our implementation of the scheme the paper cites as Lemma 3.1
(Abraham, Gavoille, Goldberg, Malkhi [2, Theorem 4]): ``⌈log n⌉``-bit
routing labels and ``(1/ε)^{O(α)} log Δ log n``-bit tables, with stretch
``1 + O(ε)`` for ``ε <= 1/2``.

Construction (paper §2 + §4.1, without the scale-free machinery):

* labels are the DFS leaf enumeration ``l(v)`` of the netting tree;
* every node ``u`` stores, for **every** level ``i ∈ [log Δ]`` (this is
  the ``log Δ`` factor that Theorem 1.2 later removes), the ring
  ``X_i(u) = B_u(2^i/ε) ∩ Y_i`` with each member's subtree range
  ``Range(x, i)`` and next hop.

Routing to label ``t``: at each node, find the minimal level ``i`` whose
ring contains the (unique) ``x`` with ``t ∈ Range(x, i)`` — that ``x`` is
``v(i)``, the level-``i`` ancestor of the destination's zooming sequence —
and take one hop along the shortest path toward it.  As the packet
approaches ``v(i)``, lower rings start hitting and the level only
decreases, until level 0 pins the destination itself.  The walk's detours
are bounded by the zooming-sequence geometry (Eqn. 2), giving stretch
``1 + O(ε)``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.bitcount import bits_for_id
from repro.core.params import SchemeParameters
from repro.core.types import NodeId, PreprocessingError, RouteFailure, RouteResult
from repro.metric.graph_metric import GraphMetric
from repro.nets.hierarchy import NetHierarchy
from repro.observability.trace import NULL_TRACER
from repro.schemes.base import LabeledScheme

#: A ring entry: (range_lo, range_hi, distance to the net point).  The
#: next hop toward the net point is resolved through the metric's
#: canonical next-hop map (conceptually stored; charged in table_bits).
RingEntry = Tuple[int, int, float]


class NonScaleFreeLabeledScheme(LabeledScheme):
    """``(1+ε)``-stretch labeled routing with ``log Δ``-level tables."""

    name = "labeled non-scale-free (Lemma 3.1)"
    supports_partial_rebuild = True

    def __init__(
        self,
        metric: GraphMetric,
        params: Optional[SchemeParameters] = None,
        hierarchy: Optional[NetHierarchy] = None,
    ) -> None:
        super().__init__(metric, params)
        if self._params.epsilon > 0.5:
            raise PreprocessingError(
                "labeled schemes require epsilon <= 1/2 (Lemma 3.1)"
            )
        self._hierarchy = hierarchy if hierarchy is not None else NetHierarchy(metric)
        # _rings[u][i] = {x: RingEntry} for x in X_i(u).
        self._rings: List[Dict[int, Dict[NodeId, RingEntry]]] = [
            {} for _ in metric.nodes
        ]
        self._build_rings()

    @classmethod
    def from_context(
        cls, context, metric, params=None, _previous=None, _dirty=None, **kwargs
    ):
        kwargs.setdefault("hierarchy", context.hierarchy(metric))
        if _previous is not None and not kwargs.get("naming"):
            return cls._rebuilt(
                metric, kwargs["hierarchy"], _previous, _dirty
            )
        return cls(metric, params, **kwargs)

    def _build_ring_block(self, i: int, radius: float, x: NodeId) -> None:
        """Materialize the ``(i, x)`` partition: x's entry in every ring
        it appears in.  Reads only the hierarchy and x's distance row,
        so the partition's dependency set is ``{x}``."""
        lo, hi = self._hierarchy.range_of(x, i)
        ids, d = self._metric.ball_with_distances(x, radius)
        for u, du in zip(ids, d):
            self._rings[int(u)].setdefault(i, {})[x] = (lo, hi, float(du))

    def _build_rings(self) -> None:
        blocks = 0
        for i in self._hierarchy.levels:
            radius = (2.0**i) * self._params.ring_radius_factor
            for x in self._hierarchy.net(i):
                self._build_ring_block(i, radius, x)
                blocks += 1
        #: Partition accounting for BuildStats.fold (see BuildContext).
        self.build_report: Dict[str, Tuple[int, int]] = {
            "ring_block": (0, blocks)
        }

    @classmethod
    def _rebuilt(
        cls,
        metric: GraphMetric,
        hierarchy: NetHierarchy,
        previous: "NonScaleFreeLabeledScheme",
        dirty: FrozenSet[NodeId],
    ) -> "NonScaleFreeLabeledScheme":
        """Rebuild only the ring blocks of dirty net points.

        Valid only when the hierarchy was *promoted* (same object as
        the stashed scheme's — nets, labels, and subtree ranges are
        bit-identical); otherwise ranges may have moved and everything
        is rebuilt cold.
        """
        if (
            hierarchy is not previous._hierarchy
            or metric.n != previous._metric.n
        ):
            return cls(metric, previous._params, hierarchy=hierarchy)
        fresh = object.__new__(cls)
        fresh._metric = metric
        fresh._params = previous._params
        fresh._table_bits_cache = None
        fresh._tracer = NULL_TRACER
        fresh._hierarchy = hierarchy
        fresh._rings = [{} for _ in metric.nodes]
        reused = built = 0
        for i in hierarchy.levels:
            radius = (2.0**i) * previous._params.ring_radius_factor
            for x in hierarchy.net(i):
                if x in dirty:
                    fresh._build_ring_block(i, radius, x)
                    built += 1
                else:
                    # Row x is clean: membership (ball of x) and stored
                    # distances are unchanged; copy the block's entries.
                    for u in metric.ball(x, radius):
                        fresh._rings[u].setdefault(i, {})[x] = (
                            previous._rings[u][i][x]
                        )
                    reused += 1
        fresh.build_report = {"ring_block": (reused, built)}
        return fresh

    # ------------------------------------------------------------------

    @property
    def hierarchy(self) -> NetHierarchy:
        return self._hierarchy

    def routing_label(self, v: NodeId) -> int:
        return self._hierarchy.label(v)

    def label_bits(self) -> int:
        return bits_for_id(self._metric.n)

    def ring_entries(self, u: NodeId, i: int) -> Dict[NodeId, RingEntry]:
        """Stored ring ``X_i(u)`` (read-only view for tests)."""
        return dict(self._rings[u].get(i, {}))

    def min_level_hit(
        self, u: NodeId, target_label: int
    ) -> Tuple[int, NodeId, float]:
        """Minimal level whose ring at ``u`` covers ``target_label``.

        Returns ``(i, x, d(u, x))`` — ``x`` is the destination's
        zooming-sequence ancestor ``v(i)``.  Always succeeds: the top
        ring contains the netting-tree root, whose range is everything.
        """
        for i in sorted(self._rings[u]):
            for x, (lo, hi, dist) in self._rings[u][i].items():
                if lo <= target_label <= hi:
                    return i, x, dist
        raise RouteFailure(  # pragma: no cover - top ring always hits
            f"no ring at node {u} covers label {target_label}"
        )

    def route_to_label(self, source: NodeId, label: int) -> RouteResult:
        if not 0 <= label < self._metric.n:
            raise RouteFailure(f"label {label} out of range")
        metric = self._metric
        tracer = self._tracer
        path = [source]
        current = source
        guard = 4 * metric.n * (self._hierarchy.top_level + 2)
        while self._hierarchy.label(current) != label:
            i, x, _ = self.min_level_hit(current, label)
            if x == current:  # pragma: no cover - impossible for eps<=1/2
                raise RouteFailure(
                    f"walk stalled at {current} (epsilon too large?)"
                )
            nxt = metric.next_hop(current, x)
            if tracer.enabled:
                tracer.event(
                    node=current,
                    phase="walk",
                    nodes=(nxt,),
                    cost=metric.edge_weight(current, nxt),
                    level=i,
                    entry=f"X_{i}({current}) hit x={x} covering l={label}",
                    header_before={"target_label": label},
                    header_after={"target_label": label},
                )
            current = nxt
            path.append(current)
            if len(path) > guard:  # pragma: no cover - defensive
                raise RouteFailure("labeled walk failed to converge")
        cost = sum(
            metric.edge_weight(a, b) for a, b in zip(path, path[1:])
        )
        return RouteResult(
            source=source,
            target=current,
            path=path,
            cost=cost,
            optimal=metric.distance(source, current),
            header_bits=self.header_bits(),
            legs={"walk": cost},
        )

    def stretch_guarantee(self) -> float:
        return 1.0

    # ------------------------------------------------------------------

    def table_breakdown(self, v: NodeId) -> "BitCounter":
        """Per-category storage ledger for node ``v``."""
        from repro.core.bitcount import BitCounter

        ledger = BitCounter()
        ledger.charge("rings (all levels)", self.table_bits(v))
        return ledger

    def table_bits(self, v: NodeId) -> int:
        """Ring storage: per entry a range (2 labels) plus a next hop."""
        unit = bits_for_id(self._metric.n)
        entries = sum(len(ring) for ring in self._rings[v].values())
        return entries * 3 * unit

    def header_codec(self):
        """Bit-exact codec: the packet carries only the label."""
        from repro.runtime.headers import labeled_simple_codec

        return labeled_simple_codec(self._metric)

    def header_bits(self) -> int:
        """Serialized header size (see runtime.headers)."""
        return self.header_codec().total_bits
