"""Name-independent landmark routing for the Internet-scale regime.

The paper's doubling-metric schemes build ``(1/ε)^O(α)``-size ring and
ball structures per level; on *non-doubling* power-law graphs (hub
neighbourhoods grow linearly, diameter is tiny) those structures degrade
to near-full tables and the constructions stop being compact long before
n = 10⁴.  Krioukov–Fall–Yang ("Compact Routing on Internet-Like
Graphs", PAPERS.md) study exactly this regime and observe that
landmark-style compact routing achieves *average* stretch close to 1 on
Internet-like topologies even though its worst-case guarantee is weak.

:class:`LandmarkNameIndependentScheme` reproduces that observation with
a construction whose preprocessing touches only ``k ≈ √n`` full metric
rows (the landmarks) plus one *size-bounded* vicinity search per node —
it is the scheme the substrate's rows-materialized ≪ n acceptance
criterion is asserted against:

* **Landmarks** ``L`` (``k = ⌈√n⌉``): farthest-point greedy.  Every
  node stores its parent in each landmark's shortest-path tree
  (``k`` entries — the climbing table).
* **Vicinity**: each node stores its ``s = ⌈√n⌉`` nearest nodes
  (ties by id) keyed by *name*, with the target node, its home
  landmark, and the next hop.
* **Name directory**: name ``t`` is registered at landmark
  ``L[t mod k]``, which stores ``(node, home landmark)`` for it —
  the name-independent resolution step (an O(√n)-per-landmark load).
* **Routing** ``u → name t``: walk toward the directory landmark
  along its tree until some vicinity contains ``t`` (shortcut) or the
  directory resolves ``t → (v, home)``; then toward ``home`` along
  home's tree; at ``home``, descend to ``v`` by source-routing along
  home's own shortest-path tree (the header carries the path suffix,
  ≤ tree-depth·log n bits — polylogarithmic on small-world graphs).
  A node that falls out of the vicinity shortcut re-enters the
  directory phases and shortcuts are disabled (one header bit), so the
  walk provably terminates.

There is **no constant worst-case stretch guarantee** — the vicinity +
directory detour can cost Θ(diameter) more than ``d(u, v)`` in
adversarial metrics (``stretch_guarantee`` returns ``None``).  The
point, following KFY, is the *measured average*: experiment E19 shows a
small constant mean stretch on preferential-attachment graphs at sizes
where the doubling-metric schemes are not even buildable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bitcount import bits_for_id
from repro.core.params import SchemeParameters
from repro.core.types import NodeId, PreprocessingError, RouteFailure, RouteResult
from repro.metric.graph_metric import GraphMetric
from repro.schemes.base import NameIndependentScheme


class LandmarkNameIndependentScheme(NameIndependentScheme):
    """KFY-style name-independent landmark routing (√n tables)."""

    name = "Landmark name-independent (Internet-scale)"

    def __init__(
        self,
        metric: GraphMetric,
        params: Optional[SchemeParameters] = None,
        naming: Optional[Sequence[int]] = None,
        landmark_count: Optional[int] = None,
        vicinity_size: Optional[int] = None,
    ) -> None:
        super().__init__(metric, params, naming)
        n = metric.n
        if landmark_count is None:
            landmark_count = max(1, min(n, math.isqrt(n - 1) + 1))
        if not 1 <= landmark_count <= n:
            raise PreprocessingError(
                f"landmark_count must be in [1, {n}]"
            )
        if vicinity_size is None:
            vicinity_size = max(1, min(n, math.isqrt(n - 1) + 1))
        if not 1 <= vicinity_size <= n:
            raise PreprocessingError(
                f"vicinity_size must be in [1, {n}]"
            )
        self._landmarks = self._greedy_landmarks(landmark_count)
        self._landmark_index = {
            l: i for i, l in enumerate(self._landmarks)
        }
        # Landmark tree rows: the only full metric rows the scheme
        # reads.  d(v, l) and v's parent in l's tree both come from
        # here, so homes and climbing tables cost no extra searches.
        self._landmark_dist = np.stack(
            [metric.distances_from(l) for l in self._landmarks]
        )
        self._landmark_pred = np.stack(
            [metric.predecessors_from(l) for l in self._landmarks]
        )
        # home[v] = nearest landmark (least landmark id on ties, which
        # argmin provides because self._landmarks is sorted).
        self._home: List[NodeId] = [
            self._landmarks[int(j)]
            for j in np.argmin(self._landmark_dist, axis=0)
        ]
        self._vicinity = self._build_vicinities(vicinity_size)
        self._directory = self._build_directory()
        self._tree_depth = self._max_tree_depth()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _greedy_landmarks(self, count: int) -> List[NodeId]:
        """Farthest-point landmark selection (deterministic)."""
        metric = self._metric
        landmarks = [0]
        mindist = np.array(metric.distances_from(0), dtype=float)
        while len(landmarks) < count:
            far = int(mindist.argmax())
            if mindist[far] <= 0:
                break
            landmarks.append(far)
            np.minimum(mindist, metric.distances_from(far), out=mindist)
        return sorted(landmarks)

    def _build_vicinities(
        self, size: int
    ) -> List[Dict[int, Tuple[NodeId, NodeId, NodeId, float]]]:
        """Per node: name -> (member, member's home, next hop, distance).

        One size-bounded search per node — never a full row.
        """
        metric = self._metric
        vicinities: List[Dict[int, Tuple[NodeId, NodeId, NodeId, float]]] = []
        for u in metric.nodes:
            _, members = metric.size_ball_with_radius(u, size)
            entry: Dict[int, Tuple[NodeId, NodeId, NodeId, float]] = {}
            for v in members:
                if v == u:
                    continue
                entry[self.name_of(v)] = (
                    v,
                    self._home[v],
                    metric.next_hop(u, v),
                    metric.distance(u, v),
                )
            vicinities.append(entry)
        return vicinities

    def _build_directory(self) -> List[Dict[int, Tuple[NodeId, NodeId]]]:
        """Per landmark index: name -> (node, home landmark)."""
        k = len(self._landmarks)
        directory: List[Dict[int, Tuple[NodeId, NodeId]]] = [
            {} for _ in range(k)
        ]
        for v in self._metric.nodes:
            name = self.name_of(v)
            directory[name % k][name] = (v, self._home[v])
        return directory

    def _max_tree_depth(self) -> int:
        """Max hop-depth over all landmark trees (header suffix bound)."""
        depth_max = 0
        n = self._metric.n
        for row in self._landmark_pred:
            depth = np.zeros(n, dtype=np.int64)
            seen = np.zeros(n, dtype=bool)
            for v in range(n):
                chain = []
                x = v
                while not seen[x] and row[x] >= 0:
                    chain.append(x)
                    x = int(row[x])
                base = depth[x]
                for i, node in enumerate(reversed(chain), start=1):
                    depth[node] = base + i
                    seen[node] = True
                seen[x] = True
            depth_max = max(depth_max, int(depth.max()))
        return depth_max

    # ------------------------------------------------------------------
    # Structure access
    # ------------------------------------------------------------------

    @property
    def landmarks(self) -> List[NodeId]:
        return list(self._landmarks)

    def home_landmark(self, v: NodeId) -> NodeId:
        return self._home[v]

    def directory_landmark(self, name: int) -> NodeId:
        """The landmark holding ``name``'s directory entry."""
        return self._landmarks[name % len(self._landmarks)]

    def vicinity_names(self, u: NodeId) -> List[int]:
        return sorted(self._vicinity[u])

    def stretch_guarantee(self) -> Optional[float]:
        """No constant worst-case bound — this is the KFY trade-off."""
        return None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _tree_hop(self, landmark: NodeId, x: NodeId) -> NodeId:
        """Next hop from ``x`` toward ``landmark`` along its tree.

        ``pred[landmark][x]`` is x's parent in the landmark's canonical
        shortest-path tree — the distributed "next hop toward landmark"
        entry every node stores.
        """
        return int(self._landmark_pred[self._landmark_index[landmark]][x])

    def _tree_path(self, landmark: NodeId, v: NodeId) -> List[NodeId]:
        """The canonical path landmark -> v (the source-route suffix)."""
        row = self._landmark_pred[self._landmark_index[landmark]]
        path = [v]
        while path[-1] != landmark:
            path.append(int(row[path[-1]]))
        path.reverse()
        return path

    def route_to_name(self, source: NodeId, name: int) -> RouteResult:
        metric = self._metric
        if name not in self._node_with_name:
            raise RouteFailure(f"unknown name {name}")
        if self.name_of(source) == name:
            return RouteResult(
                source=source,
                target=source,
                path=[source],
                cost=0.0,
                optimal=0.0,
                header_bits=self.header_bits(),
            )
        path = [source]
        legs = {
            "vicinity": 0.0,
            "to_directory": 0.0,
            "to_home": 0.0,
            "descent": 0.0,
        }
        current = source
        target: Optional[NodeId] = None
        home: Optional[NodeId] = None
        shortcuts_enabled = True
        guard = 4 * metric.n + 4 * self._tree_depth

        tracer = self._tracer

        def step(nxt: NodeId, leg: str) -> NodeId:
            weight = metric.edge_weight(current, nxt)
            legs[leg] += weight
            path.append(nxt)
            if len(path) > guard:  # pragma: no cover - defensive
                raise RouteFailure("landmark walk failed to converge")
            if tracer.enabled:
                tracer.event(
                    node=current,
                    phase=leg,
                    nodes=(nxt,),
                    cost=weight,
                    entry=f"{leg}[{name}] = {nxt}",
                    header_after={"target_name": name},
                )
            return nxt

        directory = self.directory_landmark(name)
        # Phase A/B: walk landmark trees toward the directory (then the
        # home) landmark; any vicinity hit short-circuits to phase V.
        while True:
            entry = (
                self._vicinity[current].get(name)
                if shortcuts_enabled
                else None
            )
            if entry is not None:
                # Phase V: vicinity descent.  Each hop lies on the
                # canonical shortest path current -> target, so the
                # remaining distance strictly decreases while the
                # shortcut holds; if it breaks we fall back to the
                # directory walk and disable further shortcuts, which
                # restores the terminating tree-walk invariant.
                target, home, hop, _ = entry
                if current == target:
                    break
                current = step(hop, "vicinity")
                if current == target:
                    break
                if name not in self._vicinity[current]:
                    shortcuts_enabled = False
                continue
            if target is None:
                if current == directory:
                    target, home = self._directory[
                        name % len(self._landmarks)
                    ][name]
                    continue
                current = step(self._tree_hop(directory, current), "to_directory")
                continue
            if current == target:
                break
            if current != home:
                current = step(self._tree_hop(home, current), "to_home")
                continue
            # Phase C: at the home landmark — source-route down its
            # tree (the header carries this suffix).
            for nxt in self._tree_path(home, target)[1:]:
                current = step(nxt, "descent")
            break
        assert target is not None
        return RouteResult(
            source=source,
            target=target,
            path=path,
            cost=sum(legs.values()),
            optimal=metric.distance(source, target),
            header_bits=self.header_bits(),
            legs=legs,
        )

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------

    def table_bits(self, v: NodeId) -> int:
        """Climbing entries + vicinity + (landmarks) directory and tree.

        Every node: ``k`` landmark-tree parents and ``|vicinity|``
        entries of (name, node, home, next hop).  A landmark
        additionally stores its directory shard and the parent pointer
        of every node in its own tree (what source-routed descent
        reads).
        """
        unit = bits_for_id(self._metric.n)
        k = len(self._landmarks)
        bits = k * unit + len(self._vicinity[v]) * 4 * unit
        idx = self._landmark_index.get(v)
        if idx is not None:
            bits += len(self._directory[idx]) * 3 * unit
            bits += self._metric.n * unit
        return bits

    def header_bits(self) -> int:
        """Name + resolved (node, home) + flags + source-route suffix."""
        unit = bits_for_id(self._metric.n)
        return 3 * unit + 2 + self._tree_depth * unit
