"""The scale-free ``(1+ε)``-stretch labeled scheme — Theorem 1.2 (§4).

Per-node data structures (paper §4.1):

1. Rings ``X_i(u) = B_u(2^i/ε) ∩ Y_i`` — but stored **only** for the
   levels ``i ∈ R(u) = {i : ∃j, (ε/6) r_u(j) <= 2^i <= r_u(j)}``.
   ``|R(u)| = O(log n / ε)`` regardless of ``Δ``: this is what makes the
   scheme scale-free.
2. For every packing level ``j ∈ [log n]``: the Voronoi center ``c`` of
   ``u`` among the centers of ``ℬ_j``, and ``c``'s local routing label in
   the shortest-path tree ``T_c(j)`` spanning the Voronoi region.
3. Tree-routing state (Lemma 4.1 substrate) for every tree ``T_c(j)``
   containing ``u``.
4. Search trees II ``T'(c, r_c(j))`` storing, keyed by global label
   ``l(v)``, the local label ``l(v; c, j)`` of every
   ``v ∈ T_c(j) ∩ B_c(r_c(j+1))``.

Routing (Algorithm 5): walk greedily toward the lowest-ring hit while the
hit level does not increase and the hit is far (``d >= 2^{i-1}/ε - 2^i``);
once the walk stops at ``u_t``, pick ``j`` with
``r_{u_t}(j) <= 2^{i_t} < r_{u_t}(j+1)``, route on ``T_c(j)`` to the
Voronoi center ``c``, look up the destination's local tree label in
``T'(c, r_c(j))`` (Lemma 4.5 guarantees it is there), and tree-route to
the destination.  Total stretch ``1 + O(ε)`` (Lemma 4.7).

A defensive escalation path exists for inputs where floating-point ties
void Lemma 4.5's premises: the level-``log n`` packing has a single ball
whose Voronoi tree spans the graph and whose search tree stores every
node, so escalating to ``j = log n`` always succeeds.  Escalations are
counted in :attr:`fallback_count` and asserted to be rare in tests.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.bitcount import BitCounter, bits_for_id
from repro.core.params import SchemeParameters
from repro.core.types import NodeId, PreprocessingError, RouteFailure, RouteResult
from repro.metric.graph_metric import DISTANCE_SLACK, GraphMetric
from repro.nets.hierarchy import NetHierarchy
from repro.packing.ballpacking import BallPacking
from repro.searchtree.tree import SearchTree
from repro.schemes.base import LabeledScheme
from repro.trees.spt import ShortestPathTree, voronoi_partition
from repro.trees.tree_router import TreeRouter

RingEntry = Tuple[int, int, float]


class ScaleFreeLabeledScheme(LabeledScheme):
    """Theorem 1.2: scale-free ``(1+ε)``-stretch labeled routing."""

    name = "labeled scale-free (Theorem 1.2)"

    def __init__(
        self,
        metric: GraphMetric,
        params: Optional[SchemeParameters] = None,
        hierarchy: Optional[NetHierarchy] = None,
        packing: Optional[BallPacking] = None,
        tree_router_cls: type = TreeRouter,
    ) -> None:
        super().__init__(metric, params)
        if self._params.epsilon > 0.5:
            raise PreprocessingError(
                "labeled schemes require epsilon <= 1/2"
            )
        # The Lemma 4.1 substrate is pluggable: TreeRouter (DFS
        # intervals, O(deg log n)/node) or HeavyPathRouter (heavy-path
        # labels, degree-independent).  Routing behaviour is identical.
        self._tree_router_cls = tree_router_cls
        self._hierarchy = hierarchy if hierarchy is not None else NetHierarchy(metric)
        self._packing = packing if packing is not None else BallPacking(metric)
        self.fallback_count = 0

        self._stored_levels: List[List[int]] = [
            self._levels_R(u) for u in metric.nodes
        ]
        self._rings: List[Dict[int, Dict[NodeId, RingEntry]]] = [
            {} for _ in metric.nodes
        ]
        self._build_rings()

        # Per packing level j: voronoi center of each node, the trees,
        # their routers, and the search trees II.
        self._voronoi_center: List[List[NodeId]] = []
        self._routers: List[Dict[NodeId, TreeRouter]] = []
        self._searchers: List[Dict[NodeId, SearchTree]] = []
        self._build_voronoi_layers()
        # Bits per node for everything except the rings, precomputed.
        self._struct_bits: List[int] = self._account_structures()

    @classmethod
    def from_context(cls, context, metric, params=None, **kwargs):
        kwargs.setdefault("hierarchy", context.hierarchy(metric))
        kwargs.setdefault("packing", context.packing(metric))
        return cls(metric, params, **kwargs)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _levels_R(self, u: NodeId) -> List[int]:
        """``R(u)``: levels i with (ε/6) r_u(j) <= 2^i <= r_u(j)."""
        eps = self._params.epsilon
        top = self._hierarchy.top_level
        levels = set()
        for j in range(self._metric.log_n + 1):
            r = self._metric.r_u(u, j)
            if r <= 0:
                continue
            lo = math.ceil(math.log2(eps * r / 6.0) - DISTANCE_SLACK)
            hi = math.floor(math.log2(r) + DISTANCE_SLACK)
            for i in range(max(0, lo), min(top, hi) + 1):
                levels.add(i)
        return sorted(levels)

    def _build_rings(self) -> None:
        metric = self._metric
        hierarchy = self._hierarchy
        wanted: Dict[int, List[NodeId]] = {}
        for u in metric.nodes:
            for i in self._stored_levels[u]:
                wanted.setdefault(i, []).append(u)
        for i, users in wanted.items():
            radius = (2.0**i) * self._params.ring_radius_factor
            users_set = set(users)
            for x in hierarchy.net(i):
                lo, hi = hierarchy.range_of(x, i)
                ids, d = metric.ball_with_distances(x, radius)
                for u, du in zip(ids, d):
                    if int(u) in users_set:
                        self._rings[int(u)].setdefault(i, {})[x] = (
                            lo,
                            hi,
                            float(du),
                        )

    def _build_voronoi_layers(self) -> None:
        metric = self._metric
        label_of = self._hierarchy.label
        for j in self._packing.levels:
            centers = self._packing.centers(j)
            cells = voronoi_partition(metric, centers)
            center_of = [0] * metric.n
            routers: Dict[NodeId, TreeRouter] = {}
            searchers: Dict[NodeId, SearchTree] = {}
            for c, cell in cells.items():
                for v in cell:
                    center_of[v] = c
                tree = ShortestPathTree(metric, c, cell)
                router = self._tree_router_cls(tree)
                routers[c] = router
                # Search tree II on the ball B_c(r_c(j)), holding the
                # local labels of T_c(j) ∩ B_c(r_c(j+1)).
                ball = self._packing_ball_members(c, j)
                searcher = SearchTree(
                    metric,
                    c,
                    metric.r_u(c, j),
                    self._params.epsilon,
                    members=ball,
                    level_cap=metric.log_n,
                )
                bigger = set(
                    metric.size_ball(c, min(metric.n, 1 << (j + 1)))
                )
                pairs = {
                    label_of(v): router.label(v)
                    for v in tree.nodes
                    if v in bigger
                }
                searcher.store(pairs)
                searchers[c] = searcher
            self._voronoi_center.append(center_of)
            self._routers.append(routers)
            self._searchers.append(searchers)

    def _packing_ball_members(self, c: NodeId, j: int) -> List[NodeId]:
        size = min(self._metric.n, 1 << j)
        return self._metric.size_ball(c, size)

    # ------------------------------------------------------------------
    # Labeled-scheme interface
    # ------------------------------------------------------------------

    @property
    def hierarchy(self) -> NetHierarchy:
        return self._hierarchy

    @property
    def packing(self) -> BallPacking:
        return self._packing

    def routing_label(self, v: NodeId) -> int:
        return self._hierarchy.label(v)

    def label_bits(self) -> int:
        return bits_for_id(self._metric.n)

    def stored_levels(self, u: NodeId) -> List[int]:
        """``R(u)`` (read-only view for tests)."""
        return list(self._stored_levels[u])

    def ring_entries(self, u: NodeId, i: int) -> Dict[NodeId, RingEntry]:
        return dict(self._rings[u].get(i, {}))

    def stretch_guarantee(self) -> float:
        return 1.0

    # ------------------------------------------------------------------
    # Algorithm 5
    # ------------------------------------------------------------------

    def _ring_hit(
        self, u: NodeId, target_label: int
    ) -> Optional[Tuple[int, NodeId, float, bool]]:
        """Minimal stored level whose ring covers ``target_label``.

        The final flag reports whether the covering range is the
        singleton ``{target_label}`` — in that case the ring member *is*
        the destination itself and ``u`` holds its next hop directly.
        """
        for i in sorted(self._rings[u]):
            for x, (lo, hi, dist) in self._rings[u][i].items():
                if lo <= target_label <= hi:
                    return i, x, dist, lo == hi
        return None

    def _size_level_for(self, u: NodeId, power: float) -> int:
        """``j`` with ``r_u(j) <= power < r_u(j+1)`` (clamped at log n)."""
        metric = self._metric
        for j in range(metric.log_n + 1):
            upper = (
                math.inf
                if j >= metric.log_n
                else metric.r_u(u, j + 1)
            )
            if metric.r_u(u, j) <= power + DISTANCE_SLACK and power < upper:
                return j
        return metric.log_n  # pragma: no cover - loop always returns

    def route_to_label(self, source: NodeId, label: int) -> RouteResult:
        if not 0 <= label < self._metric.n:
            raise RouteFailure(f"label {label} out of range")
        metric = self._metric
        eps = self._params.epsilon
        tracer = self._tracer
        path = [source]
        legs = {"walk": 0.0, "to_center": 0.0, "search": 0.0, "final": 0.0}
        current = source
        previous_level = math.inf
        guard = 4 * metric.n * (self._hierarchy.top_level + 2)

        # Phase 1 (lines 1-6): greedy ring walk.
        while self._hierarchy.label(current) != label:
            hit = self._ring_hit(current, label)
            if hit is None:
                break  # defensive: go to the Voronoi phase at top level
            i, x, dist, is_destination = hit
            threshold = (2.0 ** (i - 1)) / eps - (2.0**i)
            # When the covering range is a singleton, x is the
            # destination itself and its next hop is stored — deliver
            # directly (the distance threshold only exists to stop
            # chasing *proxies*; see Claim 4.6, which assumes i_t >= 1).
            if x != current and (
                is_destination
                or (i <= previous_level and dist >= threshold - DISTANCE_SLACK)
            ):
                nxt = metric.next_hop(current, x)
                if tracer.enabled:
                    what = "destination" if is_destination else "proxy"
                    before = {"target_label": label}
                    if math.isfinite(previous_level):
                        before["prev_level"] = int(previous_level)
                    tracer.event(
                        node=current,
                        phase="walk",
                        nodes=(nxt,),
                        cost=metric.edge_weight(current, nxt),
                        level=i,
                        entry=f"ring R(u) level {i} hit x={x} ({what})",
                        header_before=before,
                        header_after={"target_label": label, "prev_level": i},
                    )
                legs["walk"] += metric.edge_weight(current, nxt)
                current = nxt
                path.append(current)
                previous_level = i
                if len(path) > guard:  # pragma: no cover - defensive
                    raise RouteFailure("ring walk failed to converge")
                continue
            break

        if self._hierarchy.label(current) == label:
            return self._finish(source, current, path, legs)

        # Phase 2 (lines 7-10): Voronoi tree + search tree II.
        hit = self._ring_hit(current, label)
        if hit is None:
            start_j = metric.log_n
            self.fallback_count += 1
            if tracer.enabled:
                tracer.event(
                    node=current,
                    phase="fallback",
                    level=start_j,
                    entry="no ring hit: escalate to the global packing level",
                )
        else:
            start_j = self._size_level_for(current, 2.0 ** hit[0])
        for j in range(start_j, metric.log_n + 1):
            done, current = self._voronoi_phase(current, label, j, path, legs)
            if done:
                return self._finish(source, current, path, legs)
            self.fallback_count += 1
            if tracer.enabled and j < metric.log_n:
                tracer.event(
                    node=current,
                    phase="fallback",
                    level=j + 1,
                    entry=(
                        f"search tree II miss at packing level {j}: "
                        f"escalate to {j + 1}"
                    ),
                )
        raise RouteFailure(  # pragma: no cover - global level always hits
            f"label {label} not found even at the global level"
        )

    def _voronoi_phase(
        self,
        current: NodeId,
        label: int,
        j: int,
        path: List[NodeId],
        legs: Dict[str, float],
    ) -> Tuple[bool, NodeId]:
        """Lines 7-10 of Algorithm 5 at packing level ``j``.

        Returns ``(reached_destination, node_where_packet_is)``.
        """
        metric = self._metric
        tracer = self._tracer
        c = self._voronoi_center[j][current]
        router = self._routers[j][c]
        # Route current -> c on T_c(j) (u_t stores l(c; c, j)).
        tree_path = router.route(current, router.label(c))
        leg_cost = sum(
            metric.edge_weight(a, b)
            for a, b in zip(tree_path, tree_path[1:])
        )
        legs["to_center"] += leg_cost
        path.extend(tree_path[1:])
        if tracer.enabled:
            header = {"target_label": label, "packing_level": j}
            if isinstance(router.label(c), int):
                header["tree_center"] = router.label(c)
            tracer.event(
                node=tree_path[0],
                phase="to_center",
                nodes=tuple(tree_path[1:]),
                cost=leg_cost,
                level=j,
                entry=f"Voronoi center c={c} of B_j, tree-route on T_c({j})",
                header_after=header,
            )
        current = c
        # Look up l(v; c, j) by global label in T'(c, r_c(j)).
        outcome = self._searchers[j][c].search(label)
        legs["search"] += outcome.cost
        path.extend(outcome.trail[1:])
        if tracer.enabled:
            verdict = "hit" if outcome.found else "miss"
            tracer.event(
                node=c,
                phase="search",
                nodes=tuple(outcome.trail[1:]),
                cost=outcome.cost,
                level=j,
                entry=f"T'(c={c}, r_c({j})) lookup l={label}: {verdict}",
                header_after={"target_label": label, "packing_level": j},
            )
        if not outcome.found:
            return False, current
        # Route c -> v on T_c(j).
        final_path = router.route(c, outcome.data)
        leg_cost = sum(
            metric.edge_weight(a, b)
            for a, b in zip(final_path, final_path[1:])
        )
        legs["final"] += leg_cost
        path.extend(final_path[1:])
        if tracer.enabled:
            header = {"target_label": label, "packing_level": j}
            if isinstance(outcome.data, int):
                header["tree_target"] = outcome.data
            tracer.event(
                node=c,
                phase="final",
                nodes=tuple(final_path[1:]),
                cost=leg_cost,
                level=j,
                entry=f"tree-route on T_c({j}) to local label {outcome.data}",
                header_after=header,
            )
        return True, final_path[-1]

    def _finish(
        self,
        source: NodeId,
        target: NodeId,
        path: List[NodeId],
        legs: Dict[str, float],
    ) -> RouteResult:
        cost = sum(legs.values())
        return RouteResult(
            source=source,
            target=target,
            path=path,
            cost=cost,
            optimal=self._metric.distance(source, target),
            header_bits=self.header_bits(),
            legs=legs,
        )

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------

    def _account_structures(self) -> List[int]:
        """Per-node bits for Voronoi links, tree routing, search trees."""
        unit = bits_for_id(self._metric.n)
        bits = [0] * self._metric.n
        for j in self._packing.levels:
            # Voronoi center id + the center's local tree label.
            for v in self._metric.nodes:
                c = self._voronoi_center[j][v]
                bits[v] += unit + self._routers[j][c].label_bits()
            # Tree-routing state for every tree containing v (including
            # pass-through membership caused by distance ties).
            for router in self._routers[j].values():
                for v in router.tree.nodes:
                    bits[v] += router.storage_bits(v)
            # Search trees II.
            for searcher in self._searchers[j].values():
                for v, b in searcher.storage_bits(unit, unit).items():
                    bits[v] += b
        return bits

    def table_breakdown(self, v: NodeId) -> BitCounter:
        """Per-category storage ledger for node ``v``."""
        unit = bits_for_id(self._metric.n)
        ledger = BitCounter()
        entries = sum(len(ring) for ring in self._rings[v].values())
        ledger.charge("rings R(u)", entries * 4 * unit)
        ledger.charge("voronoi + trees + search", self._struct_bits[v])
        return ledger

    def table_bits(self, v: NodeId) -> int:
        return self.table_breakdown(v).total()

    def header_codec(self):
        """Bit-exact codec for this scheme's packet headers."""
        from repro.runtime.headers import labeled_scalefree_codec

        tree_label_bits = max(
            router.label_bits()
            for routers in self._routers
            for router in routers.values()
        )
        return labeled_scalefree_codec(
            self._metric, tree_label_bits=tree_label_bits
        )

    def header_bits(self) -> int:
        """Serialized worst-case header size (see runtime.headers)."""
        return self.header_codec().total_bits
