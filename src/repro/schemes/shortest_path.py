"""Stretch-1 baseline: full shortest-path next-hop tables.

This is the trivial scheme the paper's introduction starts from ("this
could even be done if each source stored just the next hop of the
shortest path to each destination"): every node stores one next-hop entry
per destination, giving ``Θ(n log n)``-bit tables, ``⌈log n⌉``-bit
headers, and stretch exactly 1.  The compact schemes are measured against
it in every experiment.
"""

from __future__ import annotations

from typing import Optional

from repro.core.bitcount import bits_for_id
from repro.core.params import SchemeParameters
from repro.core.types import NodeId, RouteResult
from repro.metric.graph_metric import GraphMetric
from repro.schemes.base import NameIndependentScheme


class ShortestPathScheme(NameIndependentScheme):
    """Full-table shortest-path routing (stretch 1, linear storage)."""

    name = "shortest-path (baseline)"
    supports_partial_rebuild = True

    def __init__(
        self,
        metric: GraphMetric,
        params: Optional[SchemeParameters] = None,
        naming=None,
    ) -> None:
        super().__init__(metric, params, naming)
        # Tables are next-hop-per-destination, keyed by *name*; the
        # canonical next hops are materialized lazily by GraphMetric.

    @classmethod
    def from_context(
        cls, context, metric, params=None, _previous=None, _dirty=None, **kwargs
    ):
        # The scheme keeps no build-time state — its conceptual tables
        # *are* the metric's next-hop maps, read live at route time — so
        # a stashed instance is always promotable: rebase it and every
        # route/table query matches a cold build bit for bit.
        if (
            _previous is not None
            and metric.n == _previous._metric.n
            and not kwargs.get("naming")
        ):
            _previous._metric = metric
            return _previous
        return cls(metric, params, **kwargs)

    def stretch_guarantee(self) -> float:
        return 1.0

    def route_to_name(self, source: NodeId, name: int) -> RouteResult:
        target = self.node_with_name(name)
        path = self._metric.shortest_path(source, target)
        cost = sum(
            self._metric.edge_weight(a, b) for a, b in zip(path, path[1:])
        )
        tracer = self._tracer
        if tracer.enabled:
            # One table decision per hop: the next-hop entry for `name`.
            for a, b in zip(path, path[1:]):
                tracer.event(
                    node=a,
                    phase="direct",
                    nodes=(b,),
                    cost=self._metric.edge_weight(a, b),
                    entry=f"next-hop[{name}] = {b}",
                    header_after={"target_name": name},
                )
        return RouteResult(
            source=source,
            target=target,
            path=path,
            cost=cost,
            optimal=self._metric.distance(source, target),
            header_bits=self.header_bits(),
        )

    def table_bits(self, v: NodeId) -> int:
        unit = bits_for_id(self._metric.n)
        return (self._metric.n - 1) * 2 * unit  # (name, next hop) entries

    def header_codec(self):
        """Bit-exact codec: the packet carries only the destination name."""
        from repro.runtime.headers import shortest_path_codec

        return shortest_path_codec(self._metric)

    def header_bits(self) -> int:
        return bits_for_id(self._metric.n)
