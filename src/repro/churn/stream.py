"""Deterministic churn workloads: seeded streams of valid graph edits.

An :class:`EditStream` draws one :class:`~repro.core.edits.GraphEdit` at
a time against the *current* state of an evolving graph — feasibility
(which edges exist, which removals disconnect, which node may leave)
depends on every edit already applied, so a stream cannot be
materialized up front.  Determinism instead comes from the seed: the
same seed against the same evolving graph produces the same edit
sequence bit for bit, which is what lets churn experiments replay.

Two invariants shape the sampler, both in service of *measurable
incrementality* (none is needed for correctness — the pipeline falls
back to a cold rebuild when they break):

* **Scale preservation.**  New and changed weights are drawn from
  ``[min_w, weight_span * min_w]`` and the unique minimum-weight edge is
  never reweighted or removed, so a normalized metric's scale divisor
  survives every edit.  A scale change would dirty every distance in the
  matrix at once and turn the edit into a de-facto full rebuild.
* **Connectivity.**  Removals skip bridges and a node only leaves when
  the remainder stays connected; the metric (and the paper's schemes)
  require a connected network.

Node churn honours the id contract of :mod:`repro.core.edits`: joins
take id ``n``, only id ``n-1`` leaves.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx

from repro.core.edits import EditKind, GraphEdit
from repro.core.types import PreprocessingError

#: Default kind mix: mostly weight perturbations (the common case in a
#: live network), a fifth structural link churn, rare node churn.
DEFAULT_MIX: Dict[EditKind, float] = {
    EditKind.WEIGHT: 0.60,
    EditKind.EDGE_ADD: 0.12,
    EditKind.EDGE_REMOVE: 0.12,
    EditKind.NODE_JOIN: 0.08,
    EditKind.NODE_LEAVE: 0.08,
}

#: Tolerance when comparing raw weights against the minimum.
_WEIGHT_TOL = 1e-12


class EditStream:
    """Seeded generator of feasible edits over an evolving graph.

    Args:
        seed: PRNG seed; the only source of nondeterminism.
        mix: Relative draw weight per :class:`EditKind` (kinds that are
            infeasible on the current graph are skipped for that draw).
            Defaults to :data:`DEFAULT_MIX`.
        weight_span: New weights are uniform in
            ``[min_w, weight_span * min_w]``.
        max_nodes: Joins are suppressed at (and leaves favoured above)
            this node count, bounding the graph's drift from its seed
            size.  ``None`` leaves growth unbounded.
    """

    def __init__(
        self,
        seed: int = 0,
        mix: Optional[Dict[EditKind, float]] = None,
        weight_span: float = 3.0,
        max_nodes: Optional[int] = None,
    ) -> None:
        if weight_span <= 1.0:
            raise ValueError("weight_span must exceed 1.0")
        if mix is None:
            mix = dict(DEFAULT_MIX)
        if any(share < 0 for share in mix.values()) or not any(
            share > 0 for share in mix.values()
        ):
            raise ValueError("mix needs non-negative shares, at least one > 0")
        self._rng = random.Random(seed)
        self._mix = dict(mix)
        self._span = float(weight_span)
        self._max_nodes = max_nodes

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------

    @staticmethod
    def _weights(graph: nx.Graph) -> Tuple[float, int]:
        """``(min weight, number of edges at the minimum)``."""
        weights = [
            float(data.get("weight", 1.0))
            for _, _, data in graph.edges(data=True)
        ]
        lo = min(weights)
        at_min = sum(1 for w in weights if w <= lo + _WEIGHT_TOL)
        return lo, at_min

    def _reweight_candidates(
        self, graph: nx.Graph, lo: float, at_min: int
    ) -> List[Tuple[int, int]]:
        """Edges whose weight may change without moving the minimum."""
        return sorted(
            (min(u, v), max(u, v))
            for u, v, data in graph.edges(data=True)
            if at_min >= 2
            or float(data.get("weight", 1.0)) > lo + _WEIGHT_TOL
        )

    def _removal_candidates(
        self, graph: nx.Graph, lo: float, at_min: int
    ) -> List[Tuple[int, int]]:
        """Non-bridge edges whose removal keeps the minimum weight."""
        bridges = {
            (min(u, v), max(u, v)) for u, v in nx.bridges(graph)
        }
        return sorted(
            (min(u, v), max(u, v))
            for u, v, data in graph.edges(data=True)
            if (min(u, v), max(u, v)) not in bridges
            and (
                at_min >= 2
                or float(data.get("weight", 1.0)) > lo + _WEIGHT_TOL
            )
        )

    @staticmethod
    def _leave_allowed(graph: nx.Graph) -> bool:
        """Whether the highest-id node may leave (stays connected, n>=4)."""
        n = graph.number_of_nodes()
        if n < 4:
            return False
        victim = n - 1
        rest = graph.subgraph(v for v in graph.nodes if v != victim)
        return rest.number_of_nodes() > 0 and nx.is_connected(rest)

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------

    def _draw_weight(self, lo: float) -> float:
        return lo * (1.0 + (self._span - 1.0) * self._rng.random())

    def draw(self, graph: nx.Graph) -> GraphEdit:
        """One feasible edit against the current state of ``graph``.

        The caller is responsible for applying it (normally through
        :meth:`BuildContext.apply_edit`) before drawing the next one.
        """
        if graph.number_of_edges() == 0:
            raise PreprocessingError("cannot draw edits on an edgeless graph")
        lo, at_min = self._weights(graph)
        n = graph.number_of_nodes()
        kinds: List[EditKind] = []
        shares: List[float] = []
        for kind, share in self._mix.items():
            if share <= 0:
                continue
            if kind is EditKind.NODE_JOIN and (
                self._max_nodes is not None and n >= self._max_nodes
            ):
                continue
            kinds.append(kind)
            shares.append(share)
        # A draw may land on a kind with no feasible move on the current
        # graph (e.g. every removable edge is a bridge); rather than
        # failing, redraw among the remaining kinds.
        while kinds:
            kind = self._rng.choices(kinds, weights=shares, k=1)[0]
            edit = self._try_kind(kind, graph, lo, at_min)
            if edit is not None:
                return edit
            drop = kinds.index(kind)
            kinds.pop(drop)
            shares.pop(drop)
        raise PreprocessingError(
            "no feasible edit on this graph (all kinds exhausted)"
        )

    def _try_kind(
        self, kind: EditKind, graph: nx.Graph, lo: float, at_min: int
    ) -> Optional[GraphEdit]:
        n = graph.number_of_nodes()
        if kind is EditKind.WEIGHT:
            edges = self._reweight_candidates(graph, lo, at_min)
            if not edges:
                return None
            u, v = self._rng.choice(edges)
            old = float(graph[u][v].get("weight", 1.0))
            new = self._draw_weight(lo)
            if abs(new - old) <= _WEIGHT_TOL:  # pragma: no cover - measure 0
                new = lo + (self._span - 1.0) * lo * 0.5
            return GraphEdit(kind=kind, edge=(u, v), weight=new)
        if kind is EditKind.EDGE_ADD:
            absent = sorted(
                (min(u, v), max(u, v)) for u, v in nx.non_edges(graph)
            )
            if not absent:
                return None
            edge = self._rng.choice(absent)
            return GraphEdit(
                kind=kind, edge=edge, weight=self._draw_weight(lo)
            )
        if kind is EditKind.EDGE_REMOVE:
            edges = self._removal_candidates(graph, lo, at_min)
            if not edges:
                return None
            return GraphEdit(kind=kind, edge=self._rng.choice(edges))
        if kind is EditKind.NODE_JOIN:
            degree = self._rng.randint(1, min(3, n))
            neighbours = self._rng.sample(sorted(graph.nodes), degree)
            attach = tuple(
                (int(x), self._draw_weight(lo)) for x in sorted(neighbours)
            )
            return GraphEdit(kind=kind, node=n, attach=attach)
        if kind is EditKind.NODE_LEAVE:
            if not self._leave_allowed(graph):
                return None
            return GraphEdit(kind=kind, node=n - 1)
        raise ValueError(f"unknown edit kind {kind!r}")  # pragma: no cover

    def take(
        self, graph: nx.Graph, count: int, apply=None
    ) -> Iterator[GraphEdit]:
        """Yield ``count`` edits, applying each before drawing the next.

        ``apply`` defaults to the raw
        :func:`~repro.core.edits.apply_edit_to_graph`; pass
        ``context.apply_edit`` (wrapped to the same signature) to keep a
        build cache coherent while iterating.
        """
        from repro.core.edits import apply_edit_to_graph

        if apply is None:
            apply = apply_edit_to_graph
        for _ in range(count):
            edit = self.draw(graph)
            yield edit
            apply(graph, edit)
