"""Dependency-tracked incremental maintenance under continuous churn.

The package ties the invalidation layer (``BuildContext.apply_edit``,
``GraphMetric.updated``, per-scheme partial rebuilds) to a long-running
service scenario: a deterministic edit stream mutates the network while
packets keep flowing against stale tables, and each round's repair cost,
staleness-induced stretch, and delivery rate are measured.  Experiment
E17 and the ``repro churn`` CLI command are thin wrappers over
:class:`ChurnDriver`.
"""

from repro.churn.driver import (
    ChurnDriver,
    ChurnReport,
    ChurnRoundRecord,
    ChurnVerificationError,
)
from repro.churn.stream import DEFAULT_MIX, EditStream
from repro.core.edits import EditKind, GraphEdit, apply_edit_to_graph

__all__ = [
    "ChurnDriver",
    "ChurnReport",
    "ChurnRoundRecord",
    "ChurnVerificationError",
    "DEFAULT_MIX",
    "EditStream",
    "EditKind",
    "GraphEdit",
    "apply_edit_to_graph",
]
