"""Long-running churn service: continuous edits under continuous load.

:class:`ChurnDriver` interleaves a deterministic edit stream with packet
load, round by round, the way a deployed routing service experiences
churn:

1. routing tables stand as of the **round start** (built, or rebuilt
   incrementally, through one shared :class:`BuildContext`);
2. a batch of edits *commits to the network* — the graph mutates, and
   :meth:`BuildContext.apply_edit` repairs the cached metric rows and
   stashes every dependent artifact (the tables are now stale);
3. during this **staleness window** the round's demands are routed by a
   :class:`~repro.resilience.router.ResilientRouter` over a
   :class:`~repro.resilience.degraded.DegradedNetwork` overlay that
   mirrors the committed edits, and the walks the router actually took
   are pushed through the store-and-forward simulator for queueing
   measurements;
4. the tables are **repaired**: every scheme is rebuilt through the
   warm context, which reuses all artifact partitions whose node
   dependencies dodge the edits' dirty set.  Repair throughput is
   edits per second of (apply + rebuild) time.

Overlay semantics (what the stale world can and cannot see): weight
changes become ``WEIGHT_SCALE`` factors against the stale weight, edge
removals become ``LINK_DOWN``, node leaves become ``NODE_DOWN``, and an
edge *re-added* after a removal comes back as ``LINK_UP`` (the stale
tables still know that link).  Genuinely **new** edges and joined nodes
are invisible until the next rebuild — stale tables have no entries for
them, exactly as in a real network where new capacity is unusable until
routing state converges.

Optionally every ``verify_every`` rounds the incrementally maintained
scheme is checked **bit-identical** to a cold rebuild of the current
graph (routing paths, costs, and the per-node ``table_bits_vector``);
any divergence raises — incremental maintenance is only worth having if
it is provably exact.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple, Type, Union

import networkx as nx

from repro.core.edits import EditKind, GraphEdit
from repro.core.params import SchemeParameters
from repro.core.types import NodeId, PreprocessingError
from repro.metric.graph_metric import DISTANCE_SLACK
from repro.observability.trace import RouteTrace
from repro.pipeline.context import BuildContext, EditReport
from repro.pipeline.sampling import sample_ordered_pairs
from repro.resilience.degraded import DegradedNetwork
from repro.resilience.failure_plan import EventKind, FailureEvent, edge_key
from repro.resilience.router import FallbackPolicy, ResilientRouter
from repro.runtime.simulator import TrafficSimulator, uniform_demands
from repro.schemes.base import RoutingScheme


class ChurnVerificationError(PreprocessingError):
    """Incremental state diverged from a cold rebuild (a pipeline bug)."""


@dataclasses.dataclass
class ChurnRoundRecord:
    """Everything measured in one churn round."""

    index: int
    #: Per-edit cache-surgery reports, in commit order.
    edits: List[EditReport]
    #: Artifact partitions constructed / reused during the rebuild.
    built: Dict[str, int]
    reused: Dict[str, int]
    apply_seconds: float
    rebuild_seconds: float
    #: Routing under stale tables, inside the staleness window.
    demand_count: int
    delivered: int
    unreachable: int
    mean_stretch: float
    max_stretch: float
    mean_detours: float
    outcomes: Dict[str, int]
    #: Queueing measurements of the walks the router actually took.
    mean_latency: float
    mean_queueing: float
    #: Cold-rebuild bit-identity check (None = not run this round).
    verified: Optional[bool] = None

    @property
    def edit_count(self) -> int:
        return len(self.edits)

    @property
    def dirty_rows(self) -> int:
        return sum(len(r.dirty) for r in self.edits)

    @property
    def full_rebuilds(self) -> int:
        return sum(1 for r in self.edits if r.full_rebuild)

    @property
    def repair_seconds(self) -> float:
        return self.apply_seconds + self.rebuild_seconds

    @property
    def repair_throughput(self) -> float:
        """Edits committed per second of repair (apply + rebuild) time."""
        if self.repair_seconds <= 0:  # pragma: no cover - timer floor
            return float("inf")
        return self.edit_count / self.repair_seconds

    @property
    def delivery_rate(self) -> float:
        reachable = self.demand_count - self.unreachable
        if reachable <= 0:
            return 1.0
        return min(1.0, self.delivered / reachable)

    def edit_kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for report in self.edits:
            kind = report.edit.kind.value
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "round": self.index,
            "edits": self.edit_count,
            "edit_kinds": self.edit_kinds(),
            "dirty_rows": self.dirty_rows,
            "full_rebuilds": self.full_rebuilds,
            "built": dict(sorted(self.built.items())),
            "reused": dict(sorted(self.reused.items())),
            "apply_seconds": round(self.apply_seconds, 6),
            "rebuild_seconds": round(self.rebuild_seconds, 6),
            "repair_throughput_eps": round(self.repair_throughput, 3),
            "demands": self.demand_count,
            "delivered": self.delivered,
            "unreachable": self.unreachable,
            "delivery_rate": round(self.delivery_rate, 4),
            "mean_stretch": round(self.mean_stretch, 4),
            "max_stretch": round(self.max_stretch, 4),
            "mean_detours": round(self.mean_detours, 4),
            "outcomes": dict(sorted(self.outcomes.items())),
            "mean_latency": round(self.mean_latency, 4),
            "mean_queueing": round(self.mean_queueing, 4),
            "verified": self.verified,
        }


@dataclasses.dataclass
class ChurnReport:
    """Aggregate of a full churn run."""

    scheme: str
    policy: str
    rounds: List[ChurnRoundRecord]
    initial_nodes: int
    final_nodes: int
    #: Repair traces of every committed edit (``trace_repairs=True``).
    repair_traces: List[RouteTrace] = dataclasses.field(default_factory=list)

    @property
    def total_edits(self) -> int:
        return sum(r.edit_count for r in self.rounds)

    @property
    def repair_throughput(self) -> float:
        seconds = sum(r.repair_seconds for r in self.rounds)
        if seconds <= 0:  # pragma: no cover - timer floor
            return float("inf")
        return self.total_edits / seconds

    @property
    def total_built(self) -> int:
        return sum(sum(r.built.values()) for r in self.rounds)

    @property
    def total_reused(self) -> int:
        return sum(sum(r.reused.values()) for r in self.rounds)

    def mean_delivery_rate(self) -> float:
        if not self.rounds:
            return 0.0
        return sum(r.delivery_rate for r in self.rounds) / len(self.rounds)

    def mean_stretch(self) -> float:
        rounds = [r for r in self.rounds if r.delivered]
        if not rounds:
            return 0.0
        return sum(r.mean_stretch for r in rounds) / len(rounds)

    def max_stretch(self) -> float:
        return max((r.max_stretch for r in self.rounds), default=0.0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "policy": self.policy,
            "total_edits": self.total_edits,
            "initial_nodes": self.initial_nodes,
            "final_nodes": self.final_nodes,
            "repair_throughput_eps": round(self.repair_throughput, 3),
            "total_built": self.total_built,
            "total_reused": self.total_reused,
            "mean_delivery_rate": round(self.mean_delivery_rate(), 4),
            "mean_stretch": round(self.mean_stretch(), 4),
            "max_stretch": round(self.max_stretch(), 4),
            "rounds": [r.to_dict() for r in self.rounds],
        }


class ChurnDriver:
    """Drive one scheme through a churn stream under continuous load.

    Args:
        graph: The evolving network; mutated in place by every edit.
        scheme_cls: Scheme under maintenance.
        policy: Fallback policy for the staleness windows.
        params: Scheme parameters.
        context: Warm :class:`BuildContext` (owns all incremental state);
            a fresh one is created when omitted.
        stream: Edit source; defaults to a
            :class:`~repro.churn.stream.EditStream` seeded with ``seed``
            and capped at twice the initial node count.
        seed: Master seed for the default stream and the per-round
            demand draws.
        edits_per_round: Staleness-window width, in edits.
        pairs_per_round: Demands routed inside each staleness window.
        demand_rate: Poisson intensity of the demand injection times.
        verify_every: Cold-rebuild bit-identity check cadence in rounds
            (0 disables; the check is expensive — a full cold build).
        verify_pairs: Routed pairs per verification.
        trace_repairs: Record an observability
            :class:`~repro.observability.trace.RouteTrace` per edit
            (phases ``repair`` / ``splice`` / ``carry``).
    """

    def __init__(
        self,
        graph: nx.Graph,
        scheme_cls: Type[RoutingScheme],
        policy: Union[str, FallbackPolicy] = "fail-fast",
        params: Optional[SchemeParameters] = None,
        context: Optional[BuildContext] = None,
        stream=None,
        seed: int = 0,
        edits_per_round: int = 10,
        pairs_per_round: int = 20,
        demand_rate: float = 1.0,
        verify_every: int = 0,
        verify_pairs: int = 40,
        trace_repairs: bool = False,
    ) -> None:
        if edits_per_round < 1:
            raise ValueError("edits_per_round must be >= 1")
        if pairs_per_round < 1:
            raise ValueError("pairs_per_round must be >= 1")
        if stream is None:
            from repro.churn.stream import EditStream

            stream = EditStream(
                seed=seed, max_nodes=2 * graph.number_of_nodes()
            )
        self._graph = graph
        self._scheme_cls = scheme_cls
        self._policy = policy
        self._params = params if params is not None else SchemeParameters()
        self._context = context if context is not None else BuildContext()
        self._stream = stream
        self._seed = seed
        self._edits_per_round = edits_per_round
        self._pairs_per_round = pairs_per_round
        self._demand_rate = demand_rate
        self._verify_every = verify_every
        self._verify_pairs = verify_pairs
        self._trace_repairs = trace_repairs

    @property
    def context(self) -> BuildContext:
        return self._context

    # ------------------------------------------------------------------
    # Overlay translation
    # ------------------------------------------------------------------

    @staticmethod
    def _overlay_events(
        edit: GraphEdit,
        stale_graph: nx.Graph,
        factors: Dict[Tuple[NodeId, NodeId], float],
    ) -> List[FailureEvent]:
        """Mirror one committed edit onto the stale-world overlay.

        ``factors`` accumulates per-edge weight ratios against the
        *stale* weight so several reweights of one edge inside a round
        compose correctly.  Events for edges/nodes the stale graph does
        not know are skipped — invisible until the next rebuild.
        """
        if edit.kind is EditKind.WEIGHT:
            key = edge_key(*edit.edge)
            if not stale_graph.has_edge(*key):
                return []
            stale_w = float(stale_graph[key[0]][key[1]].get("weight", 1.0))
            factor = float(edit.weight) / stale_w
            factors[key] = factor
            return [
                FailureEvent(
                    0.0, EventKind.WEIGHT_SCALE, edge=key, factor=factor
                )
            ]
        if edit.kind is EditKind.EDGE_REMOVE:
            key = edge_key(*edit.edge)
            if not stale_graph.has_edge(*key):
                return []
            return [FailureEvent(0.0, EventKind.LINK_DOWN, edge=key)]
        if edit.kind is EditKind.EDGE_ADD:
            key = edge_key(*edit.edge)
            if not stale_graph.has_edge(*key):
                return []  # genuinely new capacity: invisible when stale
            stale_w = float(stale_graph[key[0]][key[1]].get("weight", 1.0))
            factor = float(edit.weight) / stale_w
            factors[key] = factor
            return [
                FailureEvent(0.0, EventKind.LINK_UP, edge=key),
                FailureEvent(
                    0.0, EventKind.WEIGHT_SCALE, edge=key, factor=factor
                ),
            ]
        if edit.kind is EditKind.NODE_LEAVE:
            if edit.node >= stale_graph.number_of_nodes():
                return []
            return [FailureEvent(0.0, EventKind.NODE_DOWN, node=edit.node)]
        # NODE_JOIN: the stale tables have no row for the newcomer.
        return []

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def _verify(self, warm_scheme: RoutingScheme) -> bool:
        """Assert the warm scheme is bit-identical to a cold rebuild."""
        cold_context = BuildContext()
        cold_metric = cold_context.metric(self._graph.copy())
        cold = cold_context.scheme(
            self._scheme_cls, cold_metric, self._params
        )
        if warm_scheme.table_bits_vector() != cold.table_bits_vector():
            raise ChurnVerificationError(
                "incremental table_bits_vector diverged from cold rebuild"
            )
        n = cold_metric.n
        pairs = sample_ordered_pairs(
            n, min(self._verify_pairs, n * (n - 1)), seed=self._seed
        )
        for u, v in pairs:
            warm = warm_scheme.route(u, v)
            ref = cold.route(u, v)
            if warm.path != ref.path or abs(warm.cost - ref.cost) > DISTANCE_SLACK:
                raise ChurnVerificationError(
                    f"incremental route {u}->{v} diverged from cold "
                    f"rebuild: {warm.path} != {ref.path}"
                )
        return True

    # ------------------------------------------------------------------
    # The service loop
    # ------------------------------------------------------------------

    def run(self, edits: int = 100) -> ChurnReport:
        """Commit ``edits`` edits under load; returns the full record."""
        if edits < 1:
            raise ValueError("edits must be >= 1")
        context = self._context
        initial_nodes = self._graph.number_of_nodes()
        metric = context.metric(self._graph)
        scheme = context.scheme(self._scheme_cls, metric, self._params)

        rounds: List[ChurnRoundRecord] = []
        traces: List[RouteTrace] = []
        committed = 0
        index = 0
        while committed < edits:
            batch = min(self._edits_per_round, edits - committed)
            stale_scheme = scheme
            stale_metric = stale_scheme.metric
            degraded = DegradedNetwork(stale_metric)
            factors: Dict[Tuple[NodeId, NodeId], float] = {}

            # -- commit the batch (tables go stale) --------------------
            edit_reports: List[EditReport] = []
            apply_seconds = 0.0
            for _ in range(batch):
                edit = self._stream.draw(self._graph)
                report = context.apply_edit(self._graph, edit)
                apply_seconds += report.seconds
                edit_reports.append(report)
                for event in self._overlay_events(
                    edit, stale_metric.graph, factors
                ):
                    degraded.apply(event)
                if self._trace_repairs:
                    traces.append(report.to_trace())

            # -- staleness window: route + load ------------------------
            demands = uniform_demands(
                stale_metric.n,
                self._pairs_per_round,
                rate=self._demand_rate,
                seed=self._seed * 100003 + index,
            )
            router = ResilientRouter(
                stale_scheme, degraded, policy=self._policy
            )
            results = [router.route(d.source, d.target) for d in demands]
            simulation = TrafficSimulator(stale_scheme).run(
                demands, paths=[r.path for r in results]
            )

            # -- repair: incremental rebuild through the warm context --
            built_before = dict(context.stats.misses)
            reused_before = dict(context.stats.hits)
            start = time.perf_counter()
            metric = context.metric(self._graph)
            scheme = context.scheme(self._scheme_cls, metric, self._params)
            rebuild_seconds = time.perf_counter() - start
            built = _counter_delta(built_before, context.stats.misses)
            reused = _counter_delta(reused_before, context.stats.hits)

            verified: Optional[bool] = None
            if self._verify_every and (index + 1) % self._verify_every == 0:
                verified = self._verify(scheme)

            delivered = [r for r in results if r.delivered]
            stretches = [r.stretch for r in delivered]
            outcomes: Dict[str, int] = {}
            for r in results:
                outcomes[r.status.value] = outcomes.get(r.status.value, 0) + 1
            unreachable = sum(
                1
                for r in results
                if not _finite(r.post_failure_optimal)
            )
            rounds.append(
                ChurnRoundRecord(
                    index=index,
                    edits=edit_reports,
                    built=built,
                    reused=reused,
                    apply_seconds=apply_seconds,
                    rebuild_seconds=rebuild_seconds,
                    demand_count=len(results),
                    delivered=len(delivered),
                    unreachable=unreachable,
                    mean_stretch=(
                        sum(stretches) / len(stretches) if stretches else 0.0
                    ),
                    max_stretch=max(stretches, default=0.0),
                    mean_detours=(
                        sum(r.detours for r in results) / len(results)
                        if results
                        else 0.0
                    ),
                    outcomes=outcomes,
                    mean_latency=simulation.mean_latency(),
                    mean_queueing=simulation.mean_queueing(),
                    verified=verified,
                )
            )
            committed += batch
            index += 1

        return ChurnReport(
            scheme=scheme.name,
            policy=(
                self._policy
                if isinstance(self._policy, str)
                else self._policy.name
            ),
            rounds=rounds,
            initial_nodes=initial_nodes,
            final_nodes=self._graph.number_of_nodes(),
            repair_traces=traces,
        )


def _counter_delta(
    before: Dict[str, int], after: Dict[str, int]
) -> Dict[str, int]:
    return {
        kind: after.get(kind, 0) - before.get(kind, 0)
        for kind in set(before) | set(after)
        if after.get(kind, 0) - before.get(kind, 0)
    }


def _finite(x: float) -> bool:
    return x == x and x not in (float("inf"), float("-inf"))
