"""Resilience subsystem (S27): fault injection and degraded routing.

Every scheme in this library routes on a frozen topology; this package
measures what happens when the topology changes *after* preprocessing:

* :mod:`~repro.resilience.failure_plan` — seeded, fully deterministic
  schedules of link-down/up, node-crash, and weight-perturbation events;
* :mod:`~repro.resilience.degraded` — a cheap overlay view of a
  :class:`~repro.metric.graph_metric.GraphMetric` that masks failed
  edges and nodes without rebuilding any tables, including post-failure
  shortest-path distances for honest stretch accounting;
* :mod:`~repro.resilience.router` — hop-by-hop forwarding with *stale*
  routing tables on the degraded topology, under pluggable fallback
  policies, with every packet terminating in a typed
  :class:`~repro.core.types.DeliveryStatus`;
* :mod:`~repro.resilience.repair` — measured full-rebuild vs
  incremental-rebuild cost after recovery, routed through the shared
  :class:`~repro.pipeline.context.BuildContext`.
"""

from repro.resilience.degraded import DegradedNetwork
from repro.resilience.failure_plan import (
    EventKind,
    FailureEvent,
    FailurePlan,
)
from repro.resilience.repair import RepairMeasurement, measure_repair
from repro.resilience.router import (
    FailFast,
    FallbackPolicy,
    LevelEscalation,
    LocalDetour,
    ResilienceReport,
    ResilientRouteResult,
    ResilientRouter,
    make_policy,
)

__all__ = [
    "DegradedNetwork",
    "EventKind",
    "FailFast",
    "FailureEvent",
    "FailurePlan",
    "FallbackPolicy",
    "LevelEscalation",
    "LocalDetour",
    "RepairMeasurement",
    "ResilienceReport",
    "ResilientRouteResult",
    "ResilientRouter",
    "make_policy",
    "measure_repair",
]
