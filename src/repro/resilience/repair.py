"""Recovery cost: full rebuild vs incremental rebuild after repair.

Once failed links come back up, the routing scheme must be rebuilt (its
tables are stale).  The question this module measures — the open problem
*On Compact Routing for the Internet* poses as deployment-deciding — is
what that repair costs:

* **cold rebuild** — a fresh :class:`BuildContext`: APSP, hierarchy,
  packing, and scheme are all constructed from scratch;
* **incremental rebuild** — the *same* context that built the
  pre-failure scheme: every artifact is keyed by graph content hash, so
  any substrate whose input is unchanged (after full recovery: all of
  them) is reused instead of rebuilt.

Edits are routed through :class:`~repro.pipeline.context.BuildContext`
rather than patched into live tables, so the incremental result is
*bit-identical* to a from-scratch build by construction — the tests
assert identical routing decisions — and the saving is measured, not
assumed.
"""

from __future__ import annotations

import copy
import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple, Type

import networkx as nx

from repro.core.params import SchemeParameters
from repro.pipeline.context import BuildContext
from repro.resilience.degraded import DegradedNetwork
from repro.schemes.base import RoutingScheme


@dataclasses.dataclass
class RepairMeasurement:
    """Measured cost of rebuilding schemes after a topology event."""

    label: str
    seconds: float
    #: Artifacts constructed during this rebuild, per kind.
    built: Dict[str, int]
    #: Artifacts served from the context cache, per kind.
    reused: Dict[str, int]
    schemes: List[RoutingScheme] = dataclasses.field(default_factory=list)

    @property
    def built_total(self) -> int:
        return sum(self.built.values())

    @property
    def reused_total(self) -> int:
        return sum(self.reused.values())


def surviving_graph(degraded: DegradedNetwork) -> nx.Graph:
    """The degraded topology as a standalone graph (for rebuilds).

    Nodes are kept (so ids stay aligned); failed edges and every edge of
    a crashed node are removed, and weight perturbations are applied.
    Rebuilding on this graph raises ``PreprocessingError`` when the
    failures disconnected it — a real deployment would rebuild per
    component.
    """
    metric = degraded.metric
    graph = nx.Graph()
    graph.add_nodes_from(metric.graph.nodes())
    for u, v in metric.graph.edges():
        if degraded.edge_alive(u, v):
            graph.add_edge(u, v, weight=degraded.edge_weight(u, v))
    return graph


def _snapshot(context: BuildContext) -> Tuple[Dict[str, int], Dict[str, int]]:
    return (
        copy.deepcopy(context.stats.misses),
        {
            kind: context.stats.hits.get(kind, 0)
            + context.stats.disk_hits.get(kind, 0)
            for kind in set(context.stats.hits)
            | set(context.stats.disk_hits)
        },
    )


def _delta(
    before: Dict[str, int], after: Dict[str, int]
) -> Dict[str, int]:
    return {
        kind: after.get(kind, 0) - before.get(kind, 0)
        for kind in set(before) | set(after)
        if after.get(kind, 0) - before.get(kind, 0)
    }


def rebuild_through_context(
    context: BuildContext,
    graph: nx.Graph,
    scheme_classes: Sequence[Type[RoutingScheme]],
    params: Optional[SchemeParameters] = None,
    label: str = "rebuild",
) -> RepairMeasurement:
    """Build every scheme on ``graph`` through ``context``, timed.

    The context decides, per artifact, whether to reuse a cached copy
    (content hash unchanged) or construct anew; the measurement records
    both counts alongside wall-clock seconds.
    """
    if params is None:
        params = SchemeParameters()
    built_before, reused_before = _snapshot(context)
    start = time.perf_counter()
    metric = context.metric(graph)
    schemes = [
        context.scheme(cls, metric, params) for cls in scheme_classes
    ]
    seconds = time.perf_counter() - start
    built_after, reused_after = _snapshot(context)
    return RepairMeasurement(
        label=label,
        seconds=seconds,
        built=_delta(built_before, built_after),
        reused=_delta(reused_before, reused_after),
        schemes=schemes,
    )


def measure_repair(
    graph: nx.Graph,
    scheme_classes: Sequence[Type[RoutingScheme]],
    params: Optional[SchemeParameters] = None,
    warm_context: Optional[BuildContext] = None,
) -> Tuple[RepairMeasurement, RepairMeasurement]:
    """Measured cold vs incremental rebuild on a recovered topology.

    ``warm_context`` is the context that built the pre-failure schemes
    (a fresh one is primed here if not given — mirroring a deployment
    that kept its build cache).  Returns ``(cold, incremental)``
    measurements for the same ``graph`` and scheme set.
    """
    if warm_context is None:
        warm_context = BuildContext()
        rebuild_through_context(
            warm_context, graph, scheme_classes, params, label="prime"
        )
    cold = rebuild_through_context(
        BuildContext(), graph, scheme_classes, params, label="cold rebuild"
    )
    incremental = rebuild_through_context(
        warm_context,
        graph,
        scheme_classes,
        params,
        label="incremental rebuild",
    )
    return cold, incremental
