"""Recovery cost: full rebuild vs incremental rebuild after repair.

Once failed links come back up, the routing scheme must be rebuilt (its
tables are stale).  The question this module measures — the open problem
*On Compact Routing for the Internet* poses as deployment-deciding — is
what that repair costs:

* **cold rebuild** — a fresh :class:`BuildContext`: APSP, hierarchy,
  packing, and scheme are all constructed from scratch;
* **incremental rebuild** — the *same* context that built the
  pre-failure scheme: every artifact is keyed by graph content hash, so
  any substrate whose input is unchanged (after full recovery: all of
  them) is reused instead of rebuilt.

Edits are routed through :class:`~repro.pipeline.context.BuildContext`
rather than patched into live tables, so the incremental result is
*bit-identical* to a from-scratch build by construction — the tests
assert identical routing decisions — and the saving is measured, not
assumed.
"""

from __future__ import annotations

import copy
import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple, Type

import networkx as nx

from repro.core.edits import GraphEdit
from repro.core.params import SchemeParameters
from repro.pipeline.context import BuildContext, EditReport
from repro.resilience.degraded import DegradedNetwork
from repro.schemes.base import RoutingScheme


@dataclasses.dataclass
class RepairMeasurement:
    """Measured cost of rebuilding schemes after a topology event."""

    label: str
    seconds: float
    #: Artifacts constructed during this rebuild, per kind.
    built: Dict[str, int]
    #: Artifacts served from the context cache, per kind.
    reused: Dict[str, int]
    #: The rebuilt schemes — populated only when the measurement was
    #: taken with ``keep_schemes=True``.  Retention is opt-in because a
    #: scheme pins its full APSP matrix; sweeping measurements that only
    #: read the counters were holding every rebuilt trio alive.
    schemes: List[RoutingScheme] = dataclasses.field(default_factory=list)

    @property
    def built_total(self) -> int:
        return sum(self.built.values())

    @property
    def reused_total(self) -> int:
        return sum(self.reused.values())


def surviving_graph(degraded: DegradedNetwork) -> nx.Graph:
    """The degraded topology as a standalone graph (for rebuilds).

    Nodes are kept (so ids stay aligned); failed edges and every edge of
    a crashed node are removed, and weight perturbations are applied.
    Rebuilding on this graph raises ``PreprocessingError`` when the
    failures disconnected it — a real deployment would rebuild per
    component.
    """
    metric = degraded.metric
    graph = nx.Graph()
    graph.add_nodes_from(metric.graph.nodes())
    for u, v in metric.graph.edges():
        if degraded.edge_alive(u, v):
            graph.add_edge(u, v, weight=degraded.edge_weight(u, v))
    return graph


def _snapshot(context: BuildContext) -> Tuple[Dict[str, int], Dict[str, int]]:
    return (
        copy.deepcopy(context.stats.misses),
        {
            kind: context.stats.hits.get(kind, 0)
            + context.stats.disk_hits.get(kind, 0)
            for kind in set(context.stats.hits)
            | set(context.stats.disk_hits)
        },
    )


def _delta(
    before: Dict[str, int], after: Dict[str, int]
) -> Dict[str, int]:
    return {
        kind: after.get(kind, 0) - before.get(kind, 0)
        for kind in set(before) | set(after)
        if after.get(kind, 0) - before.get(kind, 0)
    }


def rebuild_through_context(
    context: BuildContext,
    graph: nx.Graph,
    scheme_classes: Sequence[Type[RoutingScheme]],
    params: Optional[SchemeParameters] = None,
    label: str = "rebuild",
    keep_schemes: bool = False,
) -> RepairMeasurement:
    """Build every scheme on ``graph`` through ``context``, timed.

    The context decides, per artifact, whether to reuse a cached copy
    (content hash unchanged) or construct anew; the measurement records
    both counts alongside wall-clock seconds.  The built scheme objects
    are retained on the measurement only with ``keep_schemes=True``.
    """
    if params is None:
        params = SchemeParameters()
    built_before, reused_before = _snapshot(context)
    start = time.perf_counter()
    metric = context.metric(graph)
    schemes = [
        context.scheme(cls, metric, params) for cls in scheme_classes
    ]
    seconds = time.perf_counter() - start
    built_after, reused_after = _snapshot(context)
    return RepairMeasurement(
        label=label,
        seconds=seconds,
        built=_delta(built_before, built_after),
        reused=_delta(reused_before, reused_after),
        schemes=schemes if keep_schemes else [],
    )


def measure_repair(
    graph: nx.Graph,
    scheme_classes: Sequence[Type[RoutingScheme]],
    params: Optional[SchemeParameters] = None,
    warm_context: Optional[BuildContext] = None,
    keep_schemes: bool = False,
) -> Tuple[RepairMeasurement, RepairMeasurement]:
    """Measured cold vs incremental rebuild on a recovered topology.

    ``warm_context`` is the context that built the pre-failure schemes
    (a fresh one is primed here if not given — mirroring a deployment
    that kept its build cache).  Returns ``(cold, incremental)``
    measurements for the same ``graph`` and scheme set.

    Note the topology here is *content-identical* to what the warm
    context already built (fail-and-fully-recover), so the incremental
    path is pure cache hits.  For the cost of repairing after a real
    edit — where only the artifacts intersecting the edit's dirty set
    are rebuilt — see :func:`measure_edit_repair`.
    """
    if warm_context is None:
        warm_context = BuildContext()
        rebuild_through_context(
            warm_context, graph, scheme_classes, params, label="prime"
        )
    cold = rebuild_through_context(
        BuildContext(),
        graph,
        scheme_classes,
        params,
        label="cold rebuild",
        keep_schemes=keep_schemes,
    )
    incremental = rebuild_through_context(
        warm_context,
        graph,
        scheme_classes,
        params,
        label="incremental rebuild",
        keep_schemes=keep_schemes,
    )
    return cold, incremental


def measure_edit_repair(
    graph: nx.Graph,
    edit: "GraphEdit",
    scheme_classes: Sequence[Type[RoutingScheme]],
    params: Optional[SchemeParameters] = None,
    warm_context: Optional[BuildContext] = None,
    keep_schemes: bool = False,
) -> Tuple[RepairMeasurement, RepairMeasurement, "EditReport"]:
    """Cold vs incremental rebuild after a *real* topology edit.

    Unlike :func:`measure_repair` (fail-and-fully-recover: the warm
    context sees an unchanged content hash and reuses everything), this
    applies ``edit`` through :meth:`BuildContext.apply_edit` — the graph
    genuinely changes, the edit's dirty node set is computed, and the
    incremental rebuild reconstructs only the artifact partitions that
    intersect it.  The honest comparison for churn repair cost:
    built-vs-reused counts are reported against the dirty set, not
    against a topology that never really changed.

    ``graph`` is mutated in place (it carries the edit afterwards).
    Returns ``(cold, incremental, edit_report)`` where both rebuilds
    describe the **post-edit** graph and are bit-identical by
    construction (asserted in tests/test_churn.py).
    """
    if warm_context is None:
        warm_context = BuildContext()
        rebuild_through_context(
            warm_context, graph, scheme_classes, params, label="prime"
        )
    edit_report = warm_context.apply_edit(graph, edit)
    incremental = rebuild_through_context(
        warm_context,
        graph,
        scheme_classes,
        params,
        label=f"incremental repair ({edit.describe()})",
        keep_schemes=keep_schemes,
    )
    # Fold the metric-row splice performed inside apply_edit into the
    # incremental counters — those rows are repair work too.
    if edit_report.rows_rebuilt:
        incremental.built["metric_row"] = (
            incremental.built.get("metric_row", 0) + edit_report.rows_rebuilt
        )
    if edit_report.rows_reused:
        incremental.reused["metric_row"] = (
            incremental.reused.get("metric_row", 0) + edit_report.rows_reused
        )
    incremental.seconds += edit_report.seconds
    cold = rebuild_through_context(
        BuildContext(),
        graph,
        scheme_classes,
        params,
        label="cold rebuild",
        keep_schemes=keep_schemes,
    )
    return cold, incremental, edit_report
