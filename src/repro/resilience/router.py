"""Hop-by-hop routing with stale tables on a degraded topology.

:class:`ResilientRouter` wraps any built :class:`RoutingScheme` and
forwards packets one physical edge at a time.  The scheme's tables were
computed on the intact graph and are **never** rebuilt here — each hop
asks the *stale* next-hop state where it would have gone, then checks
the :class:`DegradedNetwork` overlay whether that link still exists.
When a packet hits a failed link or crashed node, a pluggable
:class:`FallbackPolicy` decides what happens next:

* ``fail-fast`` — drop immediately (the baseline: what a scheme with no
  recovery story delivers);
* ``local-detour`` — route around the dead link via surviving
  neighbours under a hop budget (IP fast-reroute flavour);
* ``level-escalation`` — climb the packet's zooming sequence to the
  next ``2^i``-net level, replan from that net center with the stale
  scheme, and continue — the resilience analogue of Algorithm 3's
  level-by-level search.

Every packet terminates with a typed
:class:`~repro.core.types.DeliveryStatus`: termination is enforced by a
visited-state set (loop detection) plus a TTL hop budget, so a stale
table can never hang an experiment.  Stretch of a delivered packet is
measured against the **post-failure** shortest path — the honest
denominator: the intact-graph optimum may no longer be achievable by
any router.
"""

from __future__ import annotations

import abc
import collections
import dataclasses
import math
import statistics
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.core.types import DeliveryStatus, NodeId
from repro.metric.graph_metric import GraphMetric
from repro.nets.hierarchy import NetHierarchy
from repro.observability.trace import (
    NULL_TRACER,
    RecordingTracer,
    RouteTrace,
    Tracer,
)
from repro.resilience.degraded import DegradedNetwork
from repro.runtime.simulator import expand_to_physical_path
from repro.schemes.base import RoutingScheme


@dataclasses.dataclass
class ResilientRouteResult:
    """Outcome of forwarding one packet on the degraded topology.

    Attributes:
        path: Physical nodes actually visited (always starts at
            ``source``; ends at ``target`` iff delivered).
        cost: Distance actually travelled, under perturbed weights.
        post_failure_optimal: Shortest-path distance on the *surviving*
            topology (``inf`` when the pair is disconnected) — the
            denominator of :attr:`stretch`.
        pre_failure_optimal: Shortest-path distance on the intact graph,
            for inflation comparisons.
        detours: Number of fallback-policy activations en route.
        reason: Human-readable cause for non-delivered outcomes.
    """

    source: NodeId
    target: NodeId
    status: DeliveryStatus
    path: List[NodeId]
    cost: float
    post_failure_optimal: float
    pre_failure_optimal: float
    detours: int = 0
    reason: str = ""

    @property
    def delivered(self) -> bool:
        return self.status is DeliveryStatus.DELIVERED

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)

    @property
    def stretch(self) -> Optional[float]:
        """Cost over the post-failure optimum; ``None`` unless delivered."""
        if not self.delivered:
            return None
        if self.source == self.target or self.post_failure_optimal <= 0.0:
            return 1.0
        return self.cost / self.post_failure_optimal


@dataclasses.dataclass
class ResilienceReport:
    """Aggregate of many :class:`ResilientRouteResult` outcomes."""

    results: List[ResilientRouteResult]

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def delivered(self) -> int:
        return sum(1 for r in self.results if r.delivered)

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.total if self.results else 0.0

    @property
    def unreachable(self) -> int:
        """Pairs disconnected by the failures (no router could deliver)."""
        return sum(
            1
            for r in self.results
            if not math.isfinite(r.post_failure_optimal)
        )

    def outcome_counts(self) -> Dict[str, int]:
        counts = {status.value: 0 for status in DeliveryStatus}
        for r in self.results:
            counts[r.status.value] += 1
        return counts

    def mean_stretch(self) -> float:
        """Mean stretch of delivered packets vs post-failure optimum."""
        stretches = [r.stretch for r in self.results if r.delivered]
        return statistics.fmean(stretches) if stretches else 0.0

    def max_stretch(self) -> float:
        stretches = [r.stretch for r in self.results if r.delivered]
        return max(stretches) if stretches else 0.0

    def mean_detours(self) -> float:
        if not self.results:
            return 0.0
        return statistics.fmean(r.detours for r in self.results)


@dataclasses.dataclass
class _Walk:
    """Mutable per-packet forwarding state."""

    path: List[NodeId]
    plan: Deque[NodeId]
    #: Verified surviving hops a policy spliced in (walked literally).
    pending: Deque[NodeId]
    ttl: int
    cost: float = 0.0
    hops: int = 0
    detours: int = 0
    #: Current net-hierarchy escalation level (level-escalation only).
    level: int = 0
    seen: Set[Tuple[NodeId, NodeId, int, int]] = dataclasses.field(
        default_factory=set
    )


class FallbackPolicy(abc.ABC):
    """Decides what a blocked packet does.  Stateless across packets:
    any per-packet state (escalation level) lives on the walk."""

    name: str = "abstract"

    @abc.abstractmethod
    def recover(
        self,
        router: "ResilientRouter",
        degraded: DegradedNetwork,
        walk: _Walk,
        current: NodeId,
        stale_next: NodeId,
        waypoint: NodeId,
    ) -> Optional[str]:
        """Attempt recovery at ``current`` whose stale next hop is dead.

        Mutates ``walk`` (splices verified hops into ``walk.pending``
        and/or replaces ``walk.plan``) and returns ``None`` on success,
        or a drop reason string to terminate the packet as ``DROPPED``.
        """


class FailFast(FallbackPolicy):
    """No recovery: the first dead link drops the packet."""

    name = "fail-fast"

    def recover(self, router, degraded, walk, current, stale_next, waypoint):
        return (
            f"stale next hop {current}->{stale_next} unavailable "
            "(fail-fast)"
        )


class LocalDetour(FallbackPolicy):
    """Route around the dead link via surviving neighbours.

    Tries a cheapest surviving path from the blocked node to the stale
    next hop (or, when that node crashed, to the current waypoint)
    within ``hop_budget`` hops, then resumes the stale plan.
    """

    name = "local-detour"

    def __init__(self, hop_budget: int = 8) -> None:
        if hop_budget < 1:
            raise ValueError("hop_budget must be >= 1")
        self.hop_budget = hop_budget

    def recover(self, router, degraded, walk, current, stale_next, waypoint):
        aims = []
        if degraded.node_alive(stale_next):
            aims.append(stale_next)
        if waypoint not in aims:
            aims.append(waypoint)
        for aim in aims:
            detour = degraded.detour_path(
                current, aim, max_hops=self.hop_budget
            )
            if detour is not None and len(detour) > 1:
                walk.pending.extend(detour[1:])
                return None
        return (
            f"no detour from {current} within {self.hop_budget} hops "
            "(local-detour)"
        )


class LevelEscalation(FallbackPolicy):
    """Climb the net hierarchy and replan from a coarser net center.

    A blocked packet at ``u`` retries at the next hierarchy level: it
    travels to its zooming-sequence center ``u(ℓ)`` (over surviving
    links, cost-bounded by ``slack · 2^{ℓ+1}`` — the Eqn. 2 zoom budget
    with a degradation allowance) and asks the stale scheme for a fresh
    plan from there.  Levels only escalate within one packet, mirroring
    Algorithm 3's monotone climb; exhausting the hierarchy drops the
    packet.
    """

    name = "level-escalation"

    def __init__(self, cost_slack: float = 2.0) -> None:
        if cost_slack < 1.0:
            raise ValueError("cost_slack must be >= 1.0")
        self.cost_slack = cost_slack

    def recover(self, router, degraded, walk, current, stale_next, waypoint):
        hierarchy = router.hierarchy
        for level in range(walk.level + 1, hierarchy.top_level + 1):
            center = hierarchy.zoom(current, level)
            if center == current or not degraded.node_alive(center):
                continue
            detour = degraded.detour_path(
                current,
                center,
                max_cost=self.cost_slack * float(2 ** (level + 1)),
            )
            if detour is None:
                continue
            walk.level = level
            walk.pending.clear()
            walk.pending.extend(detour[1:])
            walk.plan = collections.deque(
                router.stale_plan(center, router.current_target)
            )
            return None
        return (
            f"no reachable net center above level {walk.level} "
            "(level-escalation)"
        )


#: Registry of policy names for the CLI / experiments.
POLICIES = ("fail-fast", "local-detour", "level-escalation")


def make_policy(policy: Union[str, FallbackPolicy]) -> FallbackPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, FallbackPolicy):
        return policy
    if policy == "fail-fast":
        return FailFast()
    if policy == "local-detour":
        return LocalDetour()
    if policy == "level-escalation":
        return LevelEscalation()
    raise ValueError(
        f"unknown fallback policy {policy!r} (known: {', '.join(POLICIES)})"
    )


class ResilientRouter:
    """Forward packets with stale tables over a degraded topology.

    Args:
        scheme: Any built routing scheme; its tables are treated as
            frozen pre-failure state.
        degraded: The failure overlay to forward on.
        policy: Fallback policy (name or instance).
        ttl: Hop budget per packet; defaults to
            ``4 · stale_path_hops + 2n + 32`` (generous but finite).
        hierarchy: Net hierarchy for ``level-escalation``; resolved from
            the scheme when it has one, else built on demand.
    """

    def __init__(
        self,
        scheme: RoutingScheme,
        degraded: DegradedNetwork,
        policy: Union[str, FallbackPolicy] = "fail-fast",
        ttl: Optional[int] = None,
        hierarchy: Optional[NetHierarchy] = None,
    ) -> None:
        if degraded.metric is not scheme.metric:
            raise ValueError(
                "degraded overlay must wrap the scheme's own metric"
            )
        self._scheme = scheme
        self._metric: GraphMetric = scheme.metric
        self._degraded = degraded
        self._policy = make_policy(policy)
        self._ttl = ttl
        self._hierarchy = hierarchy
        self._plan_cache: Dict[Tuple[NodeId, NodeId], List[NodeId]] = {}
        self._tracer: Tracer = NULL_TRACER
        #: Target of the packet currently being routed (policy hook).
        self.current_target: Optional[NodeId] = None

    @property
    def scheme(self) -> RoutingScheme:
        return self._scheme

    @property
    def degraded(self) -> DegradedNetwork:
        return self._degraded

    @property
    def policy(self) -> FallbackPolicy:
        return self._policy

    @property
    def hierarchy(self) -> NetHierarchy:
        """The net hierarchy used for level escalation (lazy)."""
        if self._hierarchy is None:
            candidate = getattr(self._scheme, "hierarchy", None)
            if not isinstance(candidate, NetHierarchy):
                candidate = getattr(self._scheme, "_hierarchy", None)
            if not isinstance(candidate, NetHierarchy):
                candidate = NetHierarchy(self._metric)
            self._hierarchy = candidate
        return self._hierarchy

    def stale_plan(self, source: NodeId, target: NodeId) -> List[NodeId]:
        """The scheme's pre-failure waypoint sequence (memoized)."""
        key = (source, target)
        plan = self._plan_cache.get(key)
        if plan is None:
            if source == target:
                plan = [source]
            else:
                plan = list(self._scheme.route(source, target).path)
            self._plan_cache[key] = plan
        return list(plan)

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def route(self, source: NodeId, target: NodeId) -> ResilientRouteResult:
        """Forward one packet; always terminates with a typed outcome."""
        degraded = self._degraded
        metric = self._metric
        pre_opt = metric.distance(source, target)

        def finish(
            status: DeliveryStatus,
            walk: Optional[_Walk],
            reason: str = "",
        ) -> ResilientRouteResult:
            return ResilientRouteResult(
                source=source,
                target=target,
                status=status,
                path=walk.path if walk is not None else [source],
                cost=walk.cost if walk is not None else 0.0,
                post_failure_optimal=post_opt,
                pre_failure_optimal=pre_opt,
                detours=walk.detours if walk is not None else 0,
                reason=reason,
            )

        if not degraded.node_alive(source):
            post_opt = math.inf
            return finish(
                DeliveryStatus.DROPPED, None, f"source {source} crashed"
            )
        if not degraded.node_alive(target):
            post_opt = math.inf
            return finish(
                DeliveryStatus.DROPPED, None, f"target {target} crashed"
            )
        post_opt = degraded.distance(source, target)
        if source == target:
            return finish(DeliveryStatus.DELIVERED, None)

        stale = self.stale_plan(source, target)
        stale_hops = max(
            1, len(expand_to_physical_path(metric, stale)) - 1
        )
        ttl = (
            self._ttl
            if self._ttl is not None
            else 4 * stale_hops + 2 * metric.n + 32
        )
        walk = _Walk(
            path=[source],
            plan=collections.deque(stale),
            pending=collections.deque(),
            ttl=ttl,
        )
        self.current_target = target
        try:
            return self._forward(walk, target, finish)
        finally:
            self.current_target = None

    def trace_route(
        self, source: NodeId, target: NodeId
    ) -> Tuple[ResilientRouteResult, RouteTrace]:
        """Route with a recording tracer; returns ``(result, trace)``.

        Every physical hop becomes a ``forward`` event; each successful
        fallback-policy activation is tagged with a zero-cost
        ``fallback`` event carrying the policy name and the walk's
        escalation level, so recovery decisions are visible inline with
        the hops they caused.
        """
        trace = RouteTrace(
            scheme=f"resilient[{self._policy.name}]: {self._scheme.name}",
            source=source,
            destination=target,
        )
        previous = self._tracer
        self._tracer = RecordingTracer(trace)
        try:
            result = self.route(source, target)
        finally:
            self._tracer = previous
        trace.delivered_to = result.path[-1] if result.path else None
        return result, trace

    def _step(self, walk: _Walk, nxt: NodeId) -> None:
        current = walk.path[-1]
        weight = self._degraded.edge_weight(current, nxt)
        walk.cost += weight
        walk.path.append(nxt)
        walk.hops += 1
        if self._tracer.enabled:
            self._tracer.event(
                node=current, phase="forward", nodes=(nxt,), cost=weight
            )

    def _forward(self, walk: _Walk, target: NodeId, finish):
        degraded = self._degraded
        metric = self._metric
        while True:
            current = walk.path[-1]
            if current == target:
                return finish(DeliveryStatus.DELIVERED, walk)
            if walk.hops >= walk.ttl:
                return finish(
                    DeliveryStatus.TTL_EXPIRED,
                    walk,
                    f"hop budget {walk.ttl} exhausted",
                )
            # Spliced detour hops were verified alive when planned;
            # walk them literally (re-checking, defensively).
            if walk.pending:
                nxt = walk.pending.popleft()
                if degraded.edge_alive(current, nxt):
                    self._step(walk, nxt)
                    continue
                walk.pending.clear()  # overlay changed under us: replan
            # Normalize the plan: drop reached or crashed waypoints
            # (the final waypoint is the target, known to be alive).
            plan = walk.plan
            while plan and (
                plan[0] == current or not degraded.node_alive(plan[0])
            ):
                plan.popleft()
            if not plan:
                plan.append(target)
            waypoint = plan[0]
            state = (current, waypoint, len(plan), walk.level)
            if state in walk.seen:
                return finish(
                    DeliveryStatus.LOOP_DETECTED,
                    walk,
                    f"forwarding state repeated at node {current}",
                )
            walk.seen.add(state)
            stale_next = metric.next_hop(current, waypoint)
            if degraded.edge_alive(current, stale_next):
                self._step(walk, stale_next)
                continue
            reason = self._policy.recover(
                self, degraded, walk, current, stale_next, waypoint
            )
            if reason is not None:
                return finish(DeliveryStatus.DROPPED, walk, reason)
            walk.detours += 1
            if self._tracer.enabled:
                self._tracer.event(
                    node=current,
                    phase="fallback",
                    level=walk.level,
                    entry=self._policy.name,
                )

    def evaluate(
        self, pairs: Iterable[Tuple[NodeId, NodeId]]
    ) -> ResilienceReport:
        """Route every pair and aggregate the outcomes."""
        return ResilienceReport(
            results=[self.route(u, v) for u, v in pairs]
        )
