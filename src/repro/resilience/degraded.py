"""A degraded view of a :class:`GraphMetric`: failures as an overlay.

The whole point of the resilience experiments is that routing tables are
*stale*: the expensive substrates (APSP matrix, hierarchies, schemes)
were built on the intact graph and are **not** rebuilt when links fail.
:class:`DegradedNetwork` therefore wraps an existing metric and masks
failed edges/crashed nodes (and applies weight perturbations) purely as
an overlay:

* liveness and per-edge weight queries are O(1) set/dict lookups;
* post-failure shortest-path distances — needed for *honest* stretch
  accounting (a delivered packet is judged against the best it could
  have done on the surviving topology) — are computed lazily, one
  Dijkstra per queried source, and cached until the overlay changes.

Nothing here ever mutates the wrapped metric or the underlying graph.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.core.types import NodeId
from repro.metric.graph_metric import DISTANCE_SLACK, GraphMetric
from repro.resilience.failure_plan import (
    EdgeKey,
    EventKind,
    FailureEvent,
    FailurePlan,
    edge_key,
)


class DegradedNetwork:
    """Failure overlay over an intact :class:`GraphMetric`."""

    def __init__(self, metric: GraphMetric) -> None:
        self._metric = metric
        self._failed_edges: Set[EdgeKey] = set()
        self._crashed_nodes: Set[NodeId] = set()
        self._weight_factor: Dict[EdgeKey, float] = {}
        self._version = 0
        self._matrix_version = -1
        self._matrix: Optional[csr_matrix] = None
        self._dist_cache: Dict[NodeId, np.ndarray] = {}

    @classmethod
    def from_plan(
        cls, metric: GraphMetric, plan: FailurePlan, at_time: float = 0.0
    ) -> "DegradedNetwork":
        """The degraded state after applying every event up to ``at_time``."""
        degraded = cls(metric)
        for event in plan.events_until(at_time):
            degraded.apply(event)
        return degraded

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def metric(self) -> GraphMetric:
        """The intact pre-failure metric this overlay masks."""
        return self._metric

    @property
    def failed_edges(self) -> Set[EdgeKey]:
        return set(self._failed_edges)

    @property
    def crashed_nodes(self) -> Set[NodeId]:
        return set(self._crashed_nodes)

    @property
    def intact(self) -> bool:
        """True when the overlay currently masks nothing."""
        return (
            not self._failed_edges
            and not self._crashed_nodes
            and all(f == 1.0 for f in self._weight_factor.values())
        )

    def apply(self, event: FailureEvent) -> None:
        """Apply one failure/recovery event to the overlay."""
        if event.kind is EventKind.LINK_DOWN:
            self._failed_edges.add(event.edge)
        elif event.kind is EventKind.LINK_UP:
            self._failed_edges.discard(event.edge)
        elif event.kind is EventKind.NODE_DOWN:
            self._crashed_nodes.add(event.node)
        elif event.kind is EventKind.NODE_UP:
            self._crashed_nodes.discard(event.node)
        elif event.kind is EventKind.WEIGHT_SCALE:
            if event.factor == 1.0:
                self._weight_factor.pop(event.edge, None)
            else:
                self._weight_factor[event.edge] = float(event.factor)
        self._version += 1
        self._dist_cache.clear()

    def advance_to(self, plan: FailurePlan, at_time: float) -> None:
        """Re-apply ``plan`` up to ``at_time`` onto a fresh overlay."""
        self._failed_edges.clear()
        self._crashed_nodes.clear()
        self._weight_factor.clear()
        self._version += 1
        self._dist_cache.clear()
        for event in plan.events_until(at_time):
            self.apply(event)

    # ------------------------------------------------------------------
    # Liveness and local queries (what a real node could observe)
    # ------------------------------------------------------------------

    def node_alive(self, v: NodeId) -> bool:
        return v not in self._crashed_nodes

    def edge_alive(self, u: NodeId, v: NodeId) -> bool:
        """True when ``(u, v)`` is a usable physical link right now."""
        if u in self._crashed_nodes or v in self._crashed_nodes:
            return False
        if edge_key(u, v) in self._failed_edges:
            return False
        return self._metric.graph.has_edge(u, v)

    def edge_weight(self, u: NodeId, v: NodeId) -> float:
        """Current (possibly perturbed) weight of a live edge."""
        base = self._metric.edge_weight(u, v)
        return base * self._weight_factor.get(edge_key(u, v), 1.0)

    def neighbors(self, u: NodeId) -> List[NodeId]:
        """Surviving neighbours of ``u``, ascending ids (deterministic)."""
        if u in self._crashed_nodes:
            return []
        return sorted(
            v
            for v in self._metric.graph.neighbors(u)
            if self.edge_alive(u, v)
        )

    # ------------------------------------------------------------------
    # Post-failure distances (the honest stretch denominator)
    # ------------------------------------------------------------------

    def _surviving_matrix(self) -> csr_matrix:
        if self._matrix is not None and self._matrix_version == self._version:
            return self._matrix
        n = self._metric.n
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for u, v in self._metric.graph.edges():
            if not self.edge_alive(u, v):
                continue
            w = self.edge_weight(u, v)
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((w, w))
        self._matrix = csr_matrix((vals, (rows, cols)), shape=(n, n))
        self._matrix_version = self._version
        return self._matrix

    def distances_from(self, u: NodeId) -> np.ndarray:
        """Shortest-path distances from ``u`` on the surviving topology.

        Unreachable nodes (and every node, when ``u`` itself crashed)
        report ``inf``.  One Dijkstra per source, cached per overlay
        state.
        """
        cached = self._dist_cache.get(u)
        if cached is not None:
            return cached
        if u in self._crashed_nodes:
            dist = np.full(self._metric.n, np.inf)
            dist[u] = 0.0
        else:
            dist = dijkstra(
                self._surviving_matrix(), directed=False, indices=u
            )
        self._dist_cache[u] = dist
        return dist

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Post-failure shortest-path distance (``inf`` if disconnected)."""
        if u == v:
            return 0.0
        return float(self.distances_from(u)[v])

    def connected(self, u: NodeId, v: NodeId) -> bool:
        return bool(np.isfinite(self.distance(u, v)))

    # ------------------------------------------------------------------
    # Bounded detour search (what a fallback policy may buy)
    # ------------------------------------------------------------------

    def detour_path(
        self,
        source: NodeId,
        target: NodeId,
        max_hops: Optional[int] = None,
        max_cost: Optional[float] = None,
    ) -> Optional[List[NodeId]]:
        """Cheapest surviving path within a hop and/or cost budget.

        Deterministic Dijkstra over ``(node, hops)`` states with
        least-id tie-breaking; returns ``None`` when no surviving path
        fits the budget.  This is the primitive behind the
        ``local-detour`` and ``level-escalation`` fallback policies —
        the budget is what keeps the "local" in local rerouting.
        """
        if source == target:
            return [source]
        if not self.node_alive(source) or not self.node_alive(target):
            return None
        hop_limit = max_hops if max_hops is not None else self._metric.n
        # Heap entries: (cost, hops, node).  parent reconstructs paths.
        heap: List[Tuple[float, int, NodeId]] = [(0.0, 0, source)]
        best: Dict[Tuple[NodeId, int], float] = {(source, 0): 0.0}
        parent: Dict[Tuple[NodeId, int], Tuple[NodeId, int]] = {}
        while heap:
            cost, hops, node = heapq.heappop(heap)
            if cost > best.get((node, hops), np.inf) + DISTANCE_SLACK:
                continue
            if node == target:
                path = [node]
                state = (node, hops)
                while state in parent:
                    state = parent[state]
                    path.append(state[0])
                path.reverse()
                return path
            if hops >= hop_limit:
                continue
            for nxt in self.neighbors(node):
                step = cost + self.edge_weight(node, nxt)
                if max_cost is not None and step > max_cost + DISTANCE_SLACK:
                    continue
                state = (nxt, hops + 1)
                if step + DISTANCE_SLACK < best.get(state, np.inf):
                    best[state] = step
                    parent[state] = (node, hops)
                    heapq.heappush(heap, (step, hops + 1, nxt))
        return None

    def __repr__(self) -> str:
        return (
            f"DegradedNetwork(n={self._metric.n}, "
            f"failed_edges={len(self._failed_edges)}, "
            f"crashed_nodes={len(self._crashed_nodes)}, "
            f"perturbed={len(self._weight_factor)})"
        )
