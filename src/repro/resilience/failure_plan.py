"""Deterministic failure schedules: what breaks, when, and how.

A :class:`FailurePlan` is an ordered, immutable list of
:class:`FailureEvent` records.  Plans are pure functions of their
arguments (including the seed), so the same plan can be replayed
bit-identically across processes — the property every resilience
experiment leans on.

Samplers cover the three failure geometries the literature cares about:

* :meth:`FailurePlan.uniform_links` — independent uniform link failures
  (the classic random-failure model);
* :meth:`FailurePlan.correlated_region` — all links inside a metric
  ball fail together (fiber cuts, power outages: geographically
  correlated);
* :meth:`FailurePlan.targeted_links` — take down the highest-load links
  first (adversarial/targeted failures), fed from
  :meth:`~repro.runtime.simulator.SimulationReport.busiest_links`.

Node crashes and weight perturbations (congestion-driven re-weighting)
complete the event vocabulary.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.types import NodeId
from repro.metric.graph_metric import GraphMetric

#: Canonical undirected edge key: endpoints in ascending order.
EdgeKey = Tuple[NodeId, NodeId]


def edge_key(u: NodeId, v: NodeId) -> EdgeKey:
    return (u, v) if u <= v else (v, u)


class EventKind(enum.Enum):
    """What a :class:`FailureEvent` does to the topology."""

    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    NODE_DOWN = "node-down"
    NODE_UP = "node-up"
    #: Multiply the link's weight by ``factor`` (absolute, not
    #: cumulative); ``factor=1.0`` restores the original weight.
    WEIGHT_SCALE = "weight-scale"


@dataclasses.dataclass(frozen=True)
class FailureEvent:
    """One topology change at a point in time."""

    time: float
    kind: EventKind
    edge: Optional[EdgeKey] = None
    node: Optional[NodeId] = None
    factor: Optional[float] = None

    def __post_init__(self) -> None:
        link_kinds = (
            EventKind.LINK_DOWN,
            EventKind.LINK_UP,
            EventKind.WEIGHT_SCALE,
        )
        if self.kind in link_kinds:
            if self.edge is None:
                raise ValueError(f"{self.kind.value} event needs an edge")
            object.__setattr__(self, "edge", edge_key(*self.edge))
        elif self.node is None:
            raise ValueError(f"{self.kind.value} event needs a node")
        if self.kind is EventKind.WEIGHT_SCALE:
            if self.factor is None or self.factor <= 0:
                raise ValueError("weight-scale needs a positive factor")


class FailurePlan:
    """An immutable, time-ordered schedule of failure events.

    Events are stably sorted by time (ties keep construction order), so
    applying a plan is deterministic regardless of how it was assembled.
    """

    def __init__(self, events: Iterable[FailureEvent] = ()) -> None:
        indexed = list(enumerate(events))
        indexed.sort(key=lambda pair: (pair[1].time, pair[0]))
        self._events: Tuple[FailureEvent, ...] = tuple(
            event for _, event in indexed
        )

    @property
    def events(self) -> Tuple[FailureEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailurePlan):
            return NotImplemented
        return self._events == other._events

    def events_until(self, t: float) -> List[FailureEvent]:
        """All events with ``time <= t``, in application order."""
        return [e for e in self._events if e.time <= t]

    def merge(self, other: "FailurePlan") -> "FailurePlan":
        """Combined plan; same-time events apply self-first."""
        return FailurePlan(list(self._events) + list(other._events))

    def failed_links_at(self, t: float) -> List[EdgeKey]:
        """Links down at time ``t`` (down events minus later up events)."""
        down: dict = {}
        for event in self.events_until(t):
            if event.kind is EventKind.LINK_DOWN:
                down[event.edge] = True
            elif event.kind is EventKind.LINK_UP:
                down.pop(event.edge, None)
        return sorted(down)

    def __repr__(self) -> str:
        kinds: dict = {}
        for event in self._events:
            kinds[event.kind.value] = kinds.get(event.kind.value, 0) + 1
        parts = ", ".join(f"{k}: {v}" for k, v in sorted(kinds.items()))
        return f"FailurePlan({len(self._events)} events; {parts})"

    # ------------------------------------------------------------------
    # Samplers (all deterministic in their arguments)
    # ------------------------------------------------------------------

    @staticmethod
    def _sorted_edges(metric: GraphMetric) -> List[EdgeKey]:
        return sorted(edge_key(u, v) for u, v in metric.graph.edges())

    @classmethod
    def uniform_links(
        cls,
        metric: GraphMetric,
        fraction: float,
        seed: int = 0,
        at: float = 0.0,
        recover_at: Optional[float] = None,
    ) -> "FailurePlan":
        """Fail a uniform random ``fraction`` of links at time ``at``.

        At least one link fails for any positive fraction.  With
        ``recover_at`` set, every failed link comes back up then.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        edges = cls._sorted_edges(metric)
        count = max(1, round(fraction * len(edges)))
        rng = random.Random(seed)
        chosen = rng.sample(edges, count)
        events = [
            FailureEvent(at, EventKind.LINK_DOWN, edge=e) for e in chosen
        ]
        if recover_at is not None:
            events += [
                FailureEvent(recover_at, EventKind.LINK_UP, edge=e)
                for e in chosen
            ]
        return cls(events)

    @classmethod
    def correlated_region(
        cls,
        metric: GraphMetric,
        fraction: float,
        seed: int = 0,
        at: float = 0.0,
        recover_at: Optional[float] = None,
        center: Optional[NodeId] = None,
    ) -> "FailurePlan":
        """Fail every link inside one metric ball (a regional outage).

        The epicenter is drawn from the seed (or given); the ball is the
        smallest one around it containing ``fraction`` of all nodes, and
        every link with *both* endpoints inside fails together.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        rng = random.Random(seed)
        if center is None:
            center = rng.randrange(metric.n)
        size = max(2, round(fraction * metric.n))
        region = set(metric.size_ball(center, min(size, metric.n)))
        chosen = [
            e
            for e in cls._sorted_edges(metric)
            if e[0] in region and e[1] in region
        ]
        events = [
            FailureEvent(at, EventKind.LINK_DOWN, edge=e) for e in chosen
        ]
        if recover_at is not None:
            events += [
                FailureEvent(recover_at, EventKind.LINK_UP, edge=e)
                for e in chosen
            ]
        return cls(events)

    @classmethod
    def targeted_links(
        cls,
        ranked_links: Sequence[Tuple[Tuple[NodeId, NodeId], int]],
        count: int,
        at: float = 0.0,
        recover_at: Optional[float] = None,
    ) -> "FailurePlan":
        """Fail the ``count`` highest-load links of a traffic report.

        ``ranked_links`` is the output of
        :meth:`SimulationReport.busiest_links` — directed physical links
        with occupancy counts; they are folded to undirected edges
        (summing both directions) before taking the top ``count``.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        load: dict = {}
        for (a, b), occupancy in ranked_links:
            key = edge_key(a, b)
            load[key] = load.get(key, 0) + occupancy
        ranked = sorted(load.items(), key=lambda kv: (-kv[1], kv[0]))
        chosen = [key for key, _ in ranked[:count]]
        events = [
            FailureEvent(at, EventKind.LINK_DOWN, edge=e) for e in chosen
        ]
        if recover_at is not None:
            events += [
                FailureEvent(recover_at, EventKind.LINK_UP, edge=e)
                for e in chosen
            ]
        return cls(events)

    @classmethod
    def node_crashes(
        cls,
        metric: GraphMetric,
        count: int,
        seed: int = 0,
        at: float = 0.0,
        recover_at: Optional[float] = None,
    ) -> "FailurePlan":
        """Crash ``count`` uniform random nodes (all their links drop)."""
        if not 1 <= count <= metric.n:
            raise ValueError(f"count must be in [1, {metric.n}]")
        rng = random.Random(seed)
        chosen = rng.sample(list(metric.nodes), count)
        events = [
            FailureEvent(at, EventKind.NODE_DOWN, node=v) for v in chosen
        ]
        if recover_at is not None:
            events += [
                FailureEvent(recover_at, EventKind.NODE_UP, node=v)
                for v in chosen
            ]
        return cls(events)

    @classmethod
    def weight_storm(
        cls,
        metric: GraphMetric,
        fraction: float,
        factor: float,
        seed: int = 0,
        at: float = 0.0,
        restore_at: Optional[float] = None,
    ) -> "FailurePlan":
        """Scale a random ``fraction`` of link weights by ``factor``.

        Models congestion-driven latency inflation rather than hard
        failure; ``restore_at`` resets the factors to 1.0.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if factor <= 0:
            raise ValueError("factor must be positive")
        edges = cls._sorted_edges(metric)
        count = max(1, round(fraction * len(edges)))
        rng = random.Random(seed)
        chosen = rng.sample(edges, count)
        events = [
            FailureEvent(at, EventKind.WEIGHT_SCALE, edge=e, factor=factor)
            for e in chosen
        ]
        if restore_at is not None:
            events += [
                FailureEvent(
                    restore_at, EventKind.WEIGHT_SCALE, edge=e, factor=1.0
                )
                for e in chosen
            ]
        return cls(events)
