"""Binary serialization of per-node routing tables.

The bit-accounting in ``table_bits`` is a *charging model*; this module
closes the loop by actually serializing a node's state with the same
field widths and measuring the bytes.  A
:class:`~repro.runtime.stepwise.LocalLabeledNode` — the fully local
per-node state of the Lemma 3.1 scheme — round-trips through
:func:`serialize_local_node` / :func:`deserialize_local_node`, and the
deserialized node routes identically (tested).  The encoded size tracks
the accounted ``table_bits`` up to the small framing overhead (entry
counts and level indices), which is itself measured and reported.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.bitcount import bits_for_count, bits_for_id
from repro.runtime.bitstream import BitReader, BitWriter
from repro.runtime.stepwise import LocalEntry, LocalLabeledNode


class TableLayout:
    """Field widths for (de)serializing local tables on an n-node,
    ``levels``-level network."""

    def __init__(self, n: int, levels: int) -> None:
        if n < 1 or levels < 1:
            raise ValueError("need n >= 1 and levels >= 1")
        self.n = n
        self.levels = levels
        self.id_bits = bits_for_id(n)
        self.level_bits = bits_for_count(levels)
        self.count_bits = bits_for_count(n)


def serialize_local_node(
    node: LocalLabeledNode, layout: TableLayout
) -> Tuple[bytes, int]:
    """Encode a local node's table; returns ``(data, bit_length)``."""
    writer = BitWriter()
    writer.write(node.node, layout.id_bits)
    writer.write(node.label, layout.id_bits)
    writer.write(len(node.rings), layout.level_bits)
    for level in sorted(node.rings):
        entries = node.rings[level]
        writer.write(level, layout.level_bits)
        writer.write(len(entries), layout.count_bits)
        for lo, hi, next_hop in entries:
            writer.write(lo, layout.id_bits)
            writer.write(hi, layout.id_bits)
            writer.write(next_hop, layout.id_bits)
    return writer.getvalue(), writer.bit_length


def deserialize_local_node(
    data: bytes, bit_length: int, layout: TableLayout
) -> LocalLabeledNode:
    """Decode a node table written by :func:`serialize_local_node`."""
    reader = BitReader(data, bit_length)
    node_id = reader.read(layout.id_bits)
    label = reader.read(layout.id_bits)
    level_count = reader.read(layout.level_bits)
    rings: Dict[int, List[LocalEntry]] = {}
    for _ in range(level_count):
        level = reader.read(layout.level_bits)
        entry_count = reader.read(layout.count_bits)
        entries: List[LocalEntry] = []
        for _ in range(entry_count):
            lo = reader.read(layout.id_bits)
            hi = reader.read(layout.id_bits)
            next_hop = reader.read(layout.id_bits)
            entries.append((lo, hi, next_hop))
        rings[level] = entries
    return LocalLabeledNode(node=node_id, label=label, rings=rings)


def framing_overhead_bits(
    node: LocalLabeledNode, layout: TableLayout
) -> int:
    """Bits spent on structure rather than payload (counts, levels)."""
    return (
        layout.id_bits  # the node's own id
        + layout.level_bits  # number of levels
        + len(node.rings) * (layout.level_bits + layout.count_bits)
    )
