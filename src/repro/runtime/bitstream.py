"""Minimal MSB-first bit streams used to serialize packet headers.

The paper measures headers in bits; these helpers let the header codecs
produce *actual* bit strings so header-size claims are verified by
construction (a header that encodes to ``b`` bits costs ``b`` bits, full
stop) rather than by formula.
"""

from __future__ import annotations

from typing import Iterable, List


def flip_bits(data: bytes, positions: Iterable[int]) -> bytes:
    """Return ``data`` with the given MSB-first bit positions inverted.

    Position ``p`` addresses the same bit that :class:`BitReader` would
    surface as the ``p``-th bit of the stream; the chaos channel uses
    this to model in-flight corruption of encoded headers.
    """
    out = bytearray(data)
    limit = 8 * len(out)
    for position in positions:
        if not 0 <= position < limit:
            raise ValueError(
                f"bit position {position} outside [0, {limit})"
            )
        out[position // 8] ^= 1 << (7 - position % 8)
    return bytes(out)


class BitWriter:
    """Accumulates fixed-width unsigned integers MSB-first."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as exactly ``width`` bits.

        Raises:
            ValueError: If the value does not fit (or is negative).
        """
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or value >= (1 << width):
            raise ValueError(
                f"value {value} does not fit in {width} bits"
            )
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    @property
    def bit_length(self) -> int:
        return len(self._bits)

    def getvalue(self) -> bytes:
        """The accumulated bits, zero-padded to a whole byte count."""
        out = bytearray()
        for start in range(0, len(self._bits), 8):
            chunk = self._bits[start : start + 8]
            byte = 0
            for bit in chunk:
                byte = (byte << 1) | bit
            byte <<= 8 - len(chunk)
            out.append(byte)
        return bytes(out)


class BitReader:
    """Reads fixed-width unsigned integers written by :class:`BitWriter`."""

    def __init__(self, data: bytes, bit_length: int) -> None:
        if bit_length > 8 * len(data):
            raise ValueError("bit_length exceeds the data")
        self._data = data
        self._bit_length = bit_length
        self._pos = 0

    def read(self, width: int) -> int:
        """Consume ``width`` bits and return them as an unsigned int."""
        if self._pos + width > self._bit_length:
            raise ValueError("read past the end of the stream")
        value = 0
        for _ in range(width):
            byte = self._data[self._pos // 8]
            bit = (byte >> (7 - self._pos % 8)) & 1
            value = (value << 1) | bit
            self._pos += 1
        return value

    @property
    def remaining(self) -> int:
        return self._bit_length - self._pos
