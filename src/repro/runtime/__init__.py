"""Packet-header serialization: bit-exact codecs for scheme headers."""

from repro.runtime.bitstream import BitReader, BitWriter
from repro.runtime.headers import (
    FieldSpec,
    HeaderCodec,
    labeled_scalefree_codec,
    labeled_simple_codec,
    name_independent_codec,
)
from repro.runtime.stepwise import LocalLabeledNode, StepwiseLabeledRouter
from repro.runtime.simulator import (
    Demand,
    DeliveredPacket,
    SimulationReport,
    TrafficSimulator,
    uniform_demands,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "Demand",
    "DeliveredPacket",
    "FieldSpec",
    "HeaderCodec",
    "LocalLabeledNode",
    "SimulationReport",
    "StepwiseLabeledRouter",
    "TrafficSimulator",
    "labeled_scalefree_codec",
    "labeled_simple_codec",
    "name_independent_codec",
    "uniform_demands",
]
