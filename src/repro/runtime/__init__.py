"""Packet-header serialization: bit-exact codecs for scheme headers."""

from repro.runtime.bitstream import BitReader, BitWriter, flip_bits
from repro.runtime.headers import (
    ChecksumCodec,
    FieldSpec,
    HeaderCodec,
    HeaderCorruptionError,
    cowen_landmark_codec,
    labeled_scalefree_codec,
    labeled_simple_codec,
    name_independent_codec,
    shortest_path_codec,
    with_checksum,
)
from repro.runtime.stepwise import LocalLabeledNode, StepwiseLabeledRouter
from repro.runtime.simulator import (
    Demand,
    DeliveredPacket,
    PacketOutcome,
    SimulationReport,
    TrafficSimulator,
    uniform_demands,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "ChecksumCodec",
    "Demand",
    "DeliveredPacket",
    "FieldSpec",
    "HeaderCodec",
    "HeaderCorruptionError",
    "LocalLabeledNode",
    "PacketOutcome",
    "SimulationReport",
    "StepwiseLabeledRouter",
    "TrafficSimulator",
    "cowen_landmark_codec",
    "flip_bits",
    "labeled_scalefree_codec",
    "labeled_simple_codec",
    "name_independent_codec",
    "shortest_path_codec",
    "uniform_demands",
    "with_checksum",
]
