"""Stepwise execution: the labeled scheme as per-node state machines.

The monolithic scheme objects hold global references (the metric, the
hierarchy) for convenience; the routing *model* of the paper only allows
a relay node its own routing table and the packet header.  This module
proves our non-scale-free labeled scheme honors that model *by
construction*:

* :meth:`StepwiseLabeledRouter.extract` materializes, for every node, a
  self-contained :class:`LocalLabeledNode` holding exactly the entries
  the scheme charges for — its label and, per stored level, the ring
  members' ``(range_lo, range_hi, next_hop)`` triples.  The local node
  keeps **no** reference to the metric, the hierarchy, or other nodes.
* Routing then proceeds by passing a *serialized* header (the scheme's
  bit-exact codec) from node to node; each hop calls
  :meth:`LocalLabeledNode.forward`, which decodes the header, scans its
  own table, and names a neighbour.

Tests assert the stepwise executor reproduces the monolithic
implementation's paths hop for hop on every graph family.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.types import NodeId, RouteFailure
from repro.runtime.headers import HeaderCodec
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme

#: One materialized ring entry: label range and the local next hop.
LocalEntry = Tuple[int, int, NodeId]


@dataclasses.dataclass
class LocalLabeledNode:
    """A node's complete routing state — nothing global.

    Attributes:
        node: This node's id.
        label: This node's own routing label.
        rings: level -> list of (range_lo, range_hi, next_hop) entries,
            levels in increasing order, as stored by the scheme.
    """

    node: NodeId
    label: int
    rings: Dict[int, List[LocalEntry]]

    def forward(self, header: bytes, header_bits: int,
                codec: HeaderCodec) -> Optional[NodeId]:
        """One routing decision from the header and local state only.

        Returns the neighbour to forward to, or ``None`` when the
        packet has arrived (this node's label matches the header).
        """
        fields = codec.decode(header, header_bits)
        target = fields["target_label"]
        if target == self.label:
            return None
        for level in sorted(self.rings):
            for lo, hi, next_hop in self.rings[level]:
                if lo <= target <= hi:
                    if next_hop == self.node:  # pragma: no cover
                        raise RouteFailure(
                            f"node {self.node}: walk stalled"
                        )
                    return next_hop
        raise RouteFailure(
            f"node {self.node}: no ring covers label {target}"
        )


class StepwiseLabeledRouter:
    """Executes the Lemma 3.1 scheme through per-node state machines."""

    def __init__(
        self,
        nodes: Dict[NodeId, LocalLabeledNode],
        codec: HeaderCodec,
        label_of: Dict[NodeId, int],
    ) -> None:
        self._nodes = nodes
        self._codec = codec
        self._label_of = label_of

    @classmethod
    def extract(cls, scheme: NonScaleFreeLabeledScheme) -> "StepwiseLabeledRouter":
        """Materialize per-node state from a built scheme."""
        metric = scheme.metric
        nodes: Dict[NodeId, LocalLabeledNode] = {}
        label_of: Dict[NodeId, int] = {}
        for u in metric.nodes:
            rings: Dict[int, List[LocalEntry]] = {}
            for i in scheme.hierarchy.levels:
                entries = scheme.ring_entries(u, i)
                if not entries:
                    continue
                rings[i] = [
                    (lo, hi, metric.next_hop(u, x))
                    for x, (lo, hi, _) in sorted(entries.items())
                ]
            label_of[u] = scheme.routing_label(u)
            nodes[u] = LocalLabeledNode(
                node=u, label=label_of[u], rings=rings
            )
        return cls(nodes, scheme.header_codec(), label_of)

    @property
    def codec(self) -> HeaderCodec:
        return self._codec

    def local_node(self, u: NodeId) -> LocalLabeledNode:
        return self._nodes[u]

    def route(self, source: NodeId, target_label: int) -> List[NodeId]:
        """Hop-by-hop path driven entirely by local state + header."""
        header, bits = self._codec.encode(
            {"target_label": target_label}
        )
        path = [source]
        guard = 8 * len(self._nodes) + 8
        while True:
            decision = self._nodes[path[-1]].forward(
                header, bits, self._codec
            )
            if decision is None:
                return path
            path.append(decision)
            if len(path) > guard:  # pragma: no cover - defensive
                raise RouteFailure("stepwise routing failed to converge")

    def route_to_node(self, source: NodeId, target: NodeId) -> List[NodeId]:
        return self.route(source, self._label_of[target])
