"""Bit-exact packet-header codecs for each routing scheme.

A :class:`HeaderCodec` is an ordered list of fixed-width fields; encoding
a header produces a real bit string whose length *is* the header size,
so the ``header_bits()`` reported by a scheme equals the serialized size
of the worst-case header by construction.

The three shipped codecs mirror the paper's schemes:

* :func:`labeled_simple_codec` — the non-scale-free labeled scheme
  carries only the destination label: exactly ``⌈log n⌉`` bits,
  matching Lemma 3.1's ``O(log n)`` headers.  (No extra flag bits: the
  ring walk of Lemma 3.1 is stateless, so the label is the whole
  header.)
* :func:`labeled_scalefree_codec` — Algorithm 5 additionally carries the
  previous ring level, a phase tag, the packing level, and (during the
  Voronoi phase) up to two tree-local labels.  With the
  Fraigniaud–Gavoille-style tree labels this is the paper's
  ``O(log²n / log log n)`` header; with DFS-interval labels it is
  ``O(log n)``.
* :func:`name_independent_codec` — Algorithm 3 prepends the destination
  name and the current search level to the underlying labeled header.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.core.bitcount import bits_for_count, bits_for_id
from repro.metric.graph_metric import GraphMetric
from repro.runtime.bitstream import BitReader, BitWriter


@dataclasses.dataclass(frozen=True)
class FieldSpec:
    """One fixed-width header field."""

    name: str
    width: int

    def __post_init__(self) -> None:
        if self.width < 0:
            raise ValueError("field width must be non-negative")
        if not self.name:
            raise ValueError("field name must be non-empty")


class HeaderCodec:
    """Ordered fixed-width header layout with encode/decode."""

    def __init__(self, fields: Sequence[FieldSpec]) -> None:
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names")
        self._fields = list(fields)

    @property
    def fields(self) -> List[FieldSpec]:
        return list(self._fields)

    @property
    def total_bits(self) -> int:
        """Serialized size of every header under this codec."""
        return sum(f.width for f in self._fields)

    def encode(self, values: Dict[str, int]) -> Tuple[bytes, int]:
        """Serialize ``values`` (missing fields default to 0)."""
        writer = BitWriter()
        for field in self._fields:
            writer.write(int(values.get(field.name, 0)), field.width)
        return writer.getvalue(), writer.bit_length

    def decode(self, data: bytes, bit_length: int) -> Dict[str, int]:
        if bit_length != self.total_bits:
            raise ValueError(
                f"expected {self.total_bits} bits, got {bit_length}"
            )
        reader = BitReader(data, bit_length)
        return {f.name: reader.read(f.width) for f in self._fields}

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.width}" for f in self._fields)
        return f"HeaderCodec({inner}; {self.total_bits} bits)"


def labeled_simple_codec(metric: GraphMetric) -> HeaderCodec:
    """Header of the non-scale-free labeled scheme: just the label."""
    return HeaderCodec(
        [
            FieldSpec("target_label", bits_for_id(metric.n)),
        ]
    )


def labeled_scalefree_codec(
    metric: GraphMetric, tree_label_bits: int = 0
) -> HeaderCodec:
    """Header of Algorithm 5 (Theorem 1.2).

    Args:
        metric: The network (fixes the field widths).
        tree_label_bits: Width of one local tree-routing label; defaults
            to ``⌈log n⌉`` (the DFS-interval router).
    """
    label = bits_for_id(metric.n)
    if tree_label_bits <= 0:
        tree_label_bits = label
    return HeaderCodec(
        [
            FieldSpec("target_label", label),
            FieldSpec("prev_level", bits_for_count(metric.log_diameter + 1)),
            FieldSpec("phase", 2),
            FieldSpec("packing_level", bits_for_count(metric.log_n)),
            FieldSpec("tree_target", tree_label_bits),
            FieldSpec("tree_center", tree_label_bits),
        ]
    )


def name_independent_codec(
    metric: GraphMetric, underlying: HeaderCodec
) -> HeaderCodec:
    """Header of Algorithm 3: name + level + the labeled sub-header."""
    fields = [
        FieldSpec("target_name", bits_for_id(metric.n)),
        FieldSpec("search_level", bits_for_count(metric.log_diameter + 1)),
    ]
    for sub in underlying.fields:
        fields.append(FieldSpec(f"sub_{sub.name}", sub.width))
    return HeaderCodec(fields)
