"""Bit-exact packet-header codecs for each routing scheme.

A :class:`HeaderCodec` is an ordered list of fixed-width fields; encoding
a header produces a real bit string whose length *is* the header size,
so the ``header_bits()`` reported by a scheme equals the serialized size
of the worst-case header by construction.

The three shipped codecs mirror the paper's schemes:

* :func:`labeled_simple_codec` — the non-scale-free labeled scheme
  carries only the destination label: exactly ``⌈log n⌉`` bits,
  matching Lemma 3.1's ``O(log n)`` headers.  (No extra flag bits: the
  ring walk of Lemma 3.1 is stateless, so the label is the whole
  header.)
* :func:`labeled_scalefree_codec` — Algorithm 5 additionally carries the
  previous ring level, a phase tag, the packing level, and (during the
  Voronoi phase) up to two tree-local labels.  With the
  Fraigniaud–Gavoille-style tree labels this is the paper's
  ``O(log²n / log log n)`` header; with DFS-interval labels it is
  ``O(log n)``.
* :func:`name_independent_codec` — Algorithm 3 prepends the destination
  name and the current search level to the underlying labeled header.

Two baseline codecs round out the catalog so *every* scheme in the
repository has a concrete wire format: :func:`shortest_path_codec`
(the ``⌈log n⌉``-bit destination name of the full-table baseline) and
:func:`cowen_landmark_codec` (the ``(v, L(v))`` label plus a
via-landmark flag of the Cowen stretch-3 scheme).

For transport over unreliable channels (:mod:`repro.chaos`),
:func:`with_checksum` appends a CRC field covering the payload bits.
The generator polynomials have a nonzero constant term and at least two
terms, so **every single-bit flip is detected** (the syndrome of
``x^i`` mod ``g(x)`` is never zero); an arbitrary multi-bit corruption
escapes detection with probability ``2^-k`` for a ``k``-bit CRC.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.core.bitcount import bits_for_count, bits_for_id
from repro.core.types import ReproError
from repro.metric.graph_metric import GraphMetric
from repro.runtime.bitstream import BitReader, BitWriter

#: Name of the CRC field :func:`with_checksum` appends.
CHECKSUM_FIELD = "header_crc"

#: Supported CRC widths -> generator polynomial (x^k term implicit).
#: Both polynomials have the +1 term, so g(x) never divides x^i and
#: single-bit errors are always detected, at any message length.
_CRC_POLYS = {8: 0x07, 16: 0x1021}


class HeaderCorruptionError(ReproError):
    """A decoded header failed its checksum (detected corruption)."""


@dataclasses.dataclass(frozen=True)
class FieldSpec:
    """One fixed-width header field."""

    name: str
    width: int

    def __post_init__(self) -> None:
        if self.width < 0:
            raise ValueError("field width must be non-negative")
        if not self.name:
            raise ValueError("field name must be non-empty")


class HeaderCodec:
    """Ordered fixed-width header layout with encode/decode."""

    def __init__(self, fields: Sequence[FieldSpec]) -> None:
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names")
        self._fields = list(fields)

    @property
    def fields(self) -> List[FieldSpec]:
        return list(self._fields)

    @property
    def total_bits(self) -> int:
        """Serialized size of every header under this codec."""
        return sum(f.width for f in self._fields)

    def encode(self, values: Dict[str, int]) -> Tuple[bytes, int]:
        """Serialize ``values`` (missing fields default to 0)."""
        writer = BitWriter()
        for field in self._fields:
            writer.write(int(values.get(field.name, 0)), field.width)
        return writer.getvalue(), writer.bit_length

    def decode(self, data: bytes, bit_length: int) -> Dict[str, int]:
        if bit_length != self.total_bits:
            raise ValueError(
                f"expected {self.total_bits} bits, got {bit_length}"
            )
        reader = BitReader(data, bit_length)
        return {f.name: reader.read(f.width) for f in self._fields}

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.width}" for f in self._fields)
        return f"HeaderCodec({inner}; {self.total_bits} bits)"


def crc_of_bits(data: bytes, bit_length: int, width: int) -> int:
    """CRC of the first ``bit_length`` MSB-first bits of ``data``.

    Plain non-reflected CRC, zero initial register: processing the
    message bit-serially against the generator in :data:`_CRC_POLYS`.
    """
    try:
        poly = _CRC_POLYS[width]
    except KeyError:
        supported = ", ".join(str(w) for w in sorted(_CRC_POLYS))
        raise ValueError(
            f"unsupported CRC width {width} (supported: {supported})"
        )
    mask = (1 << width) - 1
    register = 0
    for position in range(bit_length):
        bit = (data[position // 8] >> (7 - position % 8)) & 1
        feedback = ((register >> (width - 1)) & 1) ^ bit
        register = (register << 1) & mask
        if feedback:
            register ^= poly
    return register


class ChecksumCodec(HeaderCodec):
    """A header codec with a trailing CRC field over the payload bits.

    ``encode`` fills the CRC automatically; ``decode`` raises
    :class:`HeaderCorruptionError` on mismatch, and :meth:`verify` is
    the non-raising receiver-side check the chaos simulator uses to
    decide detected-and-dropped versus silently-misrouted.
    """

    def __init__(
        self, fields: Sequence[FieldSpec], checksum_bits: int = 8
    ) -> None:
        if checksum_bits not in _CRC_POLYS:
            supported = ", ".join(str(w) for w in sorted(_CRC_POLYS))
            raise ValueError(
                f"unsupported CRC width {checksum_bits} "
                f"(supported: {supported})"
            )
        if any(f.name == CHECKSUM_FIELD for f in fields):
            raise ValueError(f"payload already has a {CHECKSUM_FIELD!r} field")
        self._payload_fields = list(fields)
        self._checksum_bits = checksum_bits
        super().__init__(
            self._payload_fields + [FieldSpec(CHECKSUM_FIELD, checksum_bits)]
        )

    @property
    def payload_bits(self) -> int:
        return sum(f.width for f in self._payload_fields)

    @property
    def checksum_bits(self) -> int:
        return self._checksum_bits

    def encode(self, values: Dict[str, int]) -> Tuple[bytes, int]:
        writer = BitWriter()
        for field in self._payload_fields:
            writer.write(int(values.get(field.name, 0)), field.width)
        crc = crc_of_bits(
            writer.getvalue(), writer.bit_length, self._checksum_bits
        )
        writer.write(crc, self._checksum_bits)
        return writer.getvalue(), writer.bit_length

    def verify(self, data: bytes, bit_length: int) -> bool:
        """True iff the trailing CRC matches the payload bits."""
        if bit_length != self.total_bits:
            return False
        reader = BitReader(data, bit_length)
        for field in self._payload_fields:
            reader.read(field.width)
        stored = reader.read(self._checksum_bits)
        return stored == crc_of_bits(
            data, self.payload_bits, self._checksum_bits
        )

    def decode(self, data: bytes, bit_length: int) -> Dict[str, int]:
        values = super().decode(data, bit_length)
        if values[CHECKSUM_FIELD] != crc_of_bits(
            data, self.payload_bits, self._checksum_bits
        ):
            raise HeaderCorruptionError(
                "header checksum mismatch (corrupted in flight)"
            )
        return values


def with_checksum(codec: HeaderCodec, checksum_bits: int = 8) -> ChecksumCodec:
    """Wrap a scheme codec with a trailing CRC field.

    The checksum is a *transport* concern: scheme ``header_bits()``
    figures (and the paper's header-size claims) stay unchanged; only
    packets serialized for an unreliable channel pay the extra bits.
    """
    if isinstance(codec, ChecksumCodec):
        return codec
    return ChecksumCodec(codec.fields, checksum_bits)


def shortest_path_codec(metric: GraphMetric) -> HeaderCodec:
    """Header of the full-table baseline: the destination name."""
    return HeaderCodec(
        [
            FieldSpec("target_name", bits_for_id(metric.n)),
        ]
    )


def cowen_landmark_codec(metric: GraphMetric) -> HeaderCodec:
    """Header of the Cowen stretch-3 scheme: ``(v, L(v))`` + mode flag.

    ``target_label`` packs the destination and its home landmark
    (``v * n + L(v)``, exactly ``2⌈log n⌉`` bits); ``via_landmark`` is
    the 1-bit phase flag distinguishing direct-cluster forwarding from
    the landmark detour.
    """
    return HeaderCodec(
        [
            FieldSpec("target_label", 2 * bits_for_id(metric.n)),
            FieldSpec("via_landmark", 1),
        ]
    )


def labeled_simple_codec(metric: GraphMetric) -> HeaderCodec:
    """Header of the non-scale-free labeled scheme: just the label."""
    return HeaderCodec(
        [
            FieldSpec("target_label", bits_for_id(metric.n)),
        ]
    )


def labeled_scalefree_codec(
    metric: GraphMetric, tree_label_bits: int = 0
) -> HeaderCodec:
    """Header of Algorithm 5 (Theorem 1.2).

    Args:
        metric: The network (fixes the field widths).
        tree_label_bits: Width of one local tree-routing label; defaults
            to ``⌈log n⌉`` (the DFS-interval router).
    """
    label = bits_for_id(metric.n)
    if tree_label_bits <= 0:
        tree_label_bits = label
    return HeaderCodec(
        [
            FieldSpec("target_label", label),
            FieldSpec("prev_level", bits_for_count(metric.log_diameter + 1)),
            FieldSpec("phase", 2),
            FieldSpec("packing_level", bits_for_count(metric.log_n)),
            FieldSpec("tree_target", tree_label_bits),
            FieldSpec("tree_center", tree_label_bits),
        ]
    )


def name_independent_codec(
    metric: GraphMetric, underlying: HeaderCodec
) -> HeaderCodec:
    """Header of Algorithm 3: name + level + the labeled sub-header."""
    fields = [
        FieldSpec("target_name", bits_for_id(metric.n)),
        FieldSpec("search_level", bits_for_count(metric.log_diameter + 1)),
    ]
    for sub in underlying.fields:
        fields.append(FieldSpec(f"sub_{sub.name}", sub.width))
    return HeaderCodec(fields)
