"""Discrete-event traffic simulation over a routing scheme.

The paper evaluates schemes by worst-case stretch and table size; a
deployment additionally cares how those paths behave *under load*.  This
module provides a store-and-forward, discrete-event simulator:

* a packet injected at time ``t`` follows the exact hop sequence its
  routing scheme produces (``RouteResult.path`` — including detours into
  search trees, realized as shortest-path travel);
* virtual hops between non-adjacent nodes (search-tree detours,
  "realized as shortest-path travel") are expanded into the metric's
  actual shortest path, so serialization and per-link load are charged
  to the *physical* graph edges the packet really occupies;
* every directed physical link serializes packets: one transmission per
  ``service_time`` time units, FIFO, plus a propagation delay equal to
  the link's metric length;
* the simulator reports per-packet latency, pure propagation time, and
  queueing delay, so congestion effects of a scheme's detours (e.g.
  search-tree hot spots around net centers) are measurable.

The event queue is deterministic: ties are broken by injection order.

Unreliable channels (:mod:`repro.chaos`): passing ``chaos=`` wraps the
run in seeded per-link fault processes (drop, jitter, duplication,
reordering, header corruption), and ``arq=`` additionally turns on the
end-to-end reliability protocol — per-packet sequence numbers,
checksummed headers, receiver duplicate suppression, and sender
retransmission with exponential backoff.  Every packet then terminates
with a typed :class:`~repro.core.types.TransportStatus` recorded in
:attr:`SimulationReport.outcomes`.  With every fault rate at zero and
ARQ off, the chaos event loop is *bit-identical* to the plain one
(property-tested across all schemes).
"""

from __future__ import annotations

import dataclasses
import heapq
import random
import statistics
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.types import NodeId, TransportStatus
from repro.metric.graph_metric import GraphMetric
from repro.observability.trace import RouteTrace, TraceEvent
from repro.pipeline.sampling import draw_pair
from repro.runtime.bitstream import flip_bits
from repro.runtime.headers import (
    ChecksumCodec,
    FieldSpec,
    HeaderCodec,
)
from repro.schemes.base import RoutingScheme

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import
    # cycle: resilience.router imports this module at import time).
    from repro.chaos.channel import ChaosNetwork
    from repro.chaos.protocol import ArqConfig

#: Wire name of the reliability-mode sequence-number field.
TRANSPORT_SEQ_FIELD = "transport_seq"
#: Width of the sequence-number field (seq = packet index mod 2^16).
TRANSPORT_SEQ_BITS = 16

# Event kinds of the chaos loop, ordered so that at an equal
# (time, packet) a data hop precedes an ack, which precedes a timer —
# an ack arriving exactly at the timeout cancels the retransmission.
_HOP, _ACK, _TIMER = 0, 1, 2

#: Duplication spawns independently forwarded copies; this caps the
#: branching process per packet (deterministically) so a pathological
#: duplication rate cannot melt the event heap.
_MAX_FLIGHTS_PER_PACKET = 32


def expand_to_physical_path(
    metric: GraphMetric, path: List[NodeId]
) -> List[NodeId]:
    """Expand a scheme's hop sequence into physical graph edges.

    Scheme paths may jump between non-adjacent nodes (a virtual hop
    whose cost is the shortest-path distance); each such hop is realized
    as the metric's canonical shortest path, so every consecutive pair
    in the result is an edge of the underlying graph and the total
    length is unchanged.
    """
    if len(path) <= 1:
        return list(path)
    physical = [path[0]]
    for a, b in zip(path, path[1:]):
        if a == b:
            continue
        physical.extend(metric.shortest_path(a, b)[1:])
    return physical


@dataclasses.dataclass
class Demand:
    """One packet to inject: source, target, and injection time."""

    source: NodeId
    target: NodeId
    inject_at: float = 0.0


@dataclasses.dataclass
class DeliveredPacket:
    """Outcome of one simulated packet.

    ``path`` is the scheme's hop sequence (may contain virtual hops);
    ``physical_path`` is its expansion into actual graph edges — the
    links the packet occupied.  They coincide for schemes that only
    ever name neighbours (e.g. the shortest-path baseline).
    """

    demand: Demand
    path: List[NodeId]
    delivered_at: float
    propagation: float
    queueing: float
    physical_path: Optional[List[NodeId]] = None
    #: Route-decision trace, populated when ``run(..., trace=True)``.
    trace: Optional[RouteTrace] = None

    @property
    def latency(self) -> float:
        return self.delivered_at - self.demand.inject_at

    @property
    def physical_nodes(self) -> List[NodeId]:
        """The physical hop sequence (falls back to ``path``)."""
        return self.physical_path if self.physical_path is not None else self.path

    @property
    def links(self) -> List[Tuple[NodeId, NodeId]]:
        """Directed physical links the packet occupied, in order."""
        nodes = self.physical_nodes
        return list(zip(nodes, nodes[1:]))


@dataclasses.dataclass
class PacketOutcome:
    """End-to-end transport record of one offered packet (chaos mode).

    One entry per *demand* — delivered or not — where
    :class:`DeliveredPacket` only exists for arrivals.  ``attempts``
    counts sender transmissions of the whole path (1 = no retry);
    ``transmissions`` counts individual link crossings, including
    retransmissions and duplicated copies.
    """

    demand: Demand
    #: Per-packet sequence number (injection index; carried on the
    #: wire mod 2^16 in reliability mode).
    seq: int
    status: TransportStatus
    attempts: int
    transmissions: int
    #: Physical links one clean traversal of this packet's path needs.
    path_links: int
    delivered_at: Optional[float]
    #: Extra copies that reached the destination (suppressed by the
    #: receiver in reliability mode, but counted).
    duplicates: int
    #: Copies discarded because the header checksum caught a bit flip.
    corrupt_detected: int
    #: Copies whose corrupted header passed validation (no checksum,
    #: or a CRC collision) and were silently misrouted.
    corrupt_undetected: int


@dataclasses.dataclass
class SimulationReport:
    """Aggregate results of one simulation run.

    All statistics are well-defined on an empty run (zero packets):
    means and maxima report 0.0 rather than raising.

    Chaos-mode runs additionally carry :attr:`outcomes` (one
    :class:`PacketOutcome` per offered demand), actual per-link
    transmission counts, and the simulated-time horizon; the
    reliability metrics below derive from those.
    """

    packets: List[DeliveredPacket]
    #: Per-demand transport outcomes; ``None`` for plain runs.
    outcomes: Optional[List[PacketOutcome]] = None
    #: Actual transmissions per directed link, including retries and
    #: duplicates; ``None`` for plain runs.
    link_transmissions: Optional[Dict[Tuple[NodeId, NodeId], int]] = None
    #: Simulated time of the last event processed (0.0 if none).
    horizon: float = 0.0

    @property
    def delivered(self) -> int:
        return len(self.packets)

    @property
    def offered(self) -> int:
        """Demands injected (equals ``delivered`` on plain runs)."""
        if self.outcomes is not None:
            return len(self.outcomes)
        return len(self.packets)

    def delivery_rate(self) -> float:
        return self.delivered / self.offered if self.offered else 1.0

    def status_counts(self) -> Dict[str, int]:
        """Offered packets per :class:`TransportStatus` value."""
        counts = {status.value: 0 for status in TransportStatus}
        for outcome in self.outcomes or []:
            counts[outcome.status.value] += 1
        return counts

    def retransmissions(self) -> int:
        """Sender retransmissions across all packets (attempts - 1)."""
        return sum(max(0, o.attempts - 1) for o in self.outcomes or [])

    def total_transmissions(self) -> int:
        """Link crossings charged, incl. retries and duplicates."""
        return sum(o.transmissions for o in self.outcomes or [])

    def retransmission_overhead(self) -> float:
        """Extra link crossings per useful one: ``tx / ideal - 1``.

        ``ideal`` is the crossings one clean traversal of every
        *delivered* packet's path needs; 0.0 means every transmission
        was useful.
        """
        ideal = sum(
            o.path_links
            for o in self.outcomes or []
            if o.status is TransportStatus.DELIVERED
        )
        if ideal == 0:
            return 0.0
        return self.total_transmissions() / ideal - 1.0

    def duplicate_deliveries(self) -> int:
        """Extra copies that arrived (suppressed, but counted)."""
        return sum(o.duplicates for o in self.outcomes or [])

    def corrupt_detected(self) -> int:
        return sum(o.corrupt_detected for o in self.outcomes or [])

    def corrupt_undetected(self) -> int:
        return sum(o.corrupt_undetected for o in self.outcomes or [])

    def goodput(self) -> float:
        """Delivered packets per simulated time unit."""
        if self.horizon <= 0:
            return 0.0
        return self.delivered / self.horizon

    def mean_latency(self) -> float:
        if not self.packets:
            return 0.0
        return statistics.fmean(p.latency for p in self.packets)

    def max_latency(self) -> float:
        if not self.packets:
            return 0.0
        return max(p.latency for p in self.packets)

    def mean_queueing(self) -> float:
        if not self.packets:
            return 0.0
        return statistics.fmean(p.queueing for p in self.packets)

    def total_traffic(self) -> float:
        """Total distance travelled by all packets (network load)."""
        return sum(p.propagation for p in self.packets)

    def busiest_links(self, top: int = 5) -> List[Tuple[Tuple[NodeId, NodeId], int]]:
        """Most-occupied directed *physical* links.

        Virtual hops are expanded to the underlying graph edges before
        counting, so shared physical edges are not under-counted.  On
        chaos-mode runs the count is actual transmissions (retries and
        duplicates included); on plain runs it is delivered-path
        occupancy.  The ranking is fully deterministic: equal counts
        tie-break by ascending link id, never by dict or heap order.
        """
        if self.link_transmissions is not None:
            counts = dict(self.link_transmissions)
        else:
            counts: Dict[Tuple[NodeId, NodeId], int] = {}
            for packet in self.packets:
                for a, b in packet.links:
                    counts[(a, b)] = counts.get((a, b), 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top]


class TrafficSimulator:
    """Store-and-forward simulation of a routing scheme under load.

    Args:
        scheme: Any routing scheme; its ``route()`` defines each
            packet's hop sequence.
        service_time: Per-link serialization time (one packet per
            ``service_time`` per directed link); 0 disables queueing.
    """

    def __init__(
        self, scheme: RoutingScheme, service_time: float = 1.0
    ) -> None:
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        self._scheme = scheme
        self._metric = scheme.metric
        self._service_time = service_time

    def run(
        self,
        demands: Iterable[Demand],
        trace: bool = False,
        paths: Optional[Sequence[List[NodeId]]] = None,
        chaos: Optional["ChaosNetwork"] = None,
        arq: Optional["ArqConfig"] = None,
    ) -> SimulationReport:
        """Simulate all demands to completion.

        Args:
            demands: Packets to inject, in injection order.
            trace: When ``True``, record a route-decision trace for
                every packet (``DeliveredPacket.trace``) by routing via
                ``scheme.trace_route``; hop sequences are identical
                either way.  Chaos-mode transport events (drops,
                retransmissions, corruption) are appended to the trace
                with zero-cost, zero-node events, so replay still
                reproduces the route.
            paths: Optional precomputed *physical* hop sequence per
                demand (consecutive entries must be graph edges),
                bypassing the scheme entirely.  The churn driver uses
                this to push the walks a :class:`ResilientRouter`
                actually took — detours, truncated drops and all —
                through the queueing model, which the scheme's own
                ``route()`` against the intact metric could not
                reproduce.  Mutually exclusive with ``trace``.  Under
                ``chaos=``, a walk that ends anywhere other than the
                demand's target counts as undelivered (the routing
                plane dropped it; the transport never completed).
            chaos: Optional :class:`~repro.chaos.channel.ChaosNetwork`
                injecting seeded per-link faults.  Link propagation is
                charged from the chaos network (its wrapped metric or
                degraded overlay), and the run's report carries
                per-demand :class:`PacketOutcome` records.
            arq: Optional :class:`~repro.chaos.protocol.ArqConfig`
                switching on the end-to-end reliability protocol
                (sequence numbers, checksummed headers, duplicate
                suppression, retransmission with backoff).  Implies a
                faultless chaos channel when ``chaos`` is omitted.
        """
        metric = self._metric
        if arq is not None and chaos is None:
            # Imported lazily: the runtime layer must not depend on the
            # chaos package at import time (resilience.router imports
            # this module while it is still initializing).
            from repro.chaos.channel import ChaosNetwork

            chaos = ChaosNetwork(metric)
        # Precompute each packet's hop sequence from the scheme, and its
        # expansion into the physical edges it will actually occupy.
        packets: List[Tuple[Demand, List[NodeId], List[NodeId]]] = []
        traces: List[Optional[RouteTrace]] = []
        if paths is not None:
            if trace:
                raise ValueError("paths= and trace=True are exclusive")
            demands = list(demands)
            if len(paths) != len(demands):
                raise ValueError(
                    f"{len(paths)} paths for {len(demands)} demands"
                )
            for demand, given in zip(demands, paths):
                walk = list(given) if given else [demand.source]
                packets.append((demand, walk, walk))
                traces.append(None)
        else:
            for demand in demands:
                if demand.source == demand.target:
                    packets.append(
                        (demand, [demand.source], [demand.source])
                    )
                    traces.append(None)
                    continue
                if trace:
                    result, packet_trace = self._scheme.trace_route(
                        demand.source, demand.target
                    )
                    traces.append(packet_trace)
                else:
                    result = self._scheme.route(demand.source, demand.target)
                    traces.append(None)
                packets.append(
                    (
                        demand,
                        result.path,
                        expand_to_physical_path(metric, result.path),
                    )
                )

        if chaos is not None:
            return self._run_chaos(packets, traces, chaos, arq)

        # Event queue: (time, packet_index, hop_index), with hops
        # indexing the *physical* path — packets queue on, and occupy,
        # the real graph edges underneath any virtual detour.  The
        # packet index is its injection order, so ties at equal times
        # always resolve in injection order — including mid-flight
        # re-queued events, which would jump the line if ties were
        # broken by a global event sequence number instead.
        events: List[Tuple[float, int, int]] = []
        for index, (demand, _, _) in enumerate(packets):
            heapq.heappush(events, (demand.inject_at, index, 0))

        link_free_at: Dict[Tuple[NodeId, NodeId], float] = {}
        queueing: List[float] = [0.0] * len(packets)
        delivered: List[Optional[float]] = [None] * len(packets)

        while events:
            now, index, hop = heapq.heappop(events)
            demand, _, physical = packets[index]
            if hop == len(physical) - 1:
                delivered[index] = now
                continue
            a, b = physical[hop], physical[hop + 1]
            free_at = link_free_at.get((a, b), now)
            start = max(now, free_at)
            queueing[index] += start - now
            link_free_at[(a, b)] = start + self._service_time
            arrival = start + self._service_time + metric.distance(a, b)
            heapq.heappush(events, (arrival, index, hop + 1))

        report_packets = []
        for index, (demand, path, physical) in enumerate(packets):
            propagation = sum(
                metric.distance(a, b)
                for a, b in zip(physical, physical[1:])
            )
            assert delivered[index] is not None
            report_packets.append(
                DeliveredPacket(
                    demand=demand,
                    path=path,
                    delivered_at=float(delivered[index]),
                    propagation=propagation,
                    queueing=queueing[index],
                    physical_path=physical,
                )
            )
        for packet, packet_trace in zip(report_packets, traces):
            packet.trace = packet_trace
        return SimulationReport(packets=report_packets)

    # -- unreliable-channel mode ---------------------------------------

    def _transport_codec(
        self, chaos: "ChaosNetwork", arq: Optional["ArqConfig"]
    ) -> Optional[HeaderCodec]:
        """The on-wire codec for this run, or ``None`` if headers are
        irrelevant (no corruption process and no reliability mode).

        In reliability mode the scheme codec is extended with the
        transport sequence number and a trailing CRC
        (:class:`~repro.runtime.headers.ChecksumCodec`); with ARQ off
        the raw scheme codec is used — corruption then has nothing to
        check against and goes undetected.
        """
        if arq is None and chaos.config.corruption == 0.0:
            return None
        codec_factory = getattr(self._scheme, "header_codec", None)
        if codec_factory is None:
            raise ValueError(
                f"scheme {self._scheme.name!r} has no header_codec(); "
                "header corruption / reliability mode needs a wire format"
            )
        codec = codec_factory()
        if arq is None:
            return codec
        return ChecksumCodec(
            codec.fields
            + [FieldSpec(TRANSPORT_SEQ_FIELD, TRANSPORT_SEQ_BITS)],
            arq.checksum_bits,
        )

    def _header_values(self, target: NodeId, seq: int) -> Dict[str, int]:
        """Representative header contents for one packet.

        The transport treats the header as opaque bits — only its size
        and checksum matter to the fault model — so scheme fields are
        filled with the natural value (label / name) reduced into the
        field width, and fields the scheme fills hop-by-hop stay 0.
        """
        scheme = self._scheme
        values: Dict[str, int] = {TRANSPORT_SEQ_FIELD: seq}
        if hasattr(scheme, "routing_label"):
            values["target_label"] = int(scheme.routing_label(target))
        if hasattr(scheme, "name_of"):
            values["target_name"] = int(scheme.name_of(target))
        return values

    def _run_chaos(
        self,
        packets: List[Tuple[Demand, List[NodeId], List[NodeId]]],
        traces: List[Optional[RouteTrace]],
        chaos: "ChaosNetwork",
        arq: Optional["ArqConfig"],
    ) -> SimulationReport:
        """Event loop under per-link faults and (optionally) sender ARQ.

        The degenerate case — every fault rate zero, ``arq=None`` — is
        bit-identical to the plain loop in :meth:`run`: one flight per
        packet, flight ids assigned in injection order, and event
        tuples ``(time, packet, kind, flight, hop)`` that collapse to
        the plain ``(time, packet, hop)`` ordering because ``kind`` and
        ``flight`` are then constant per packet.  (Property-tested in
        tests/test_chaos.py across every scheme.)
        """
        service = self._service_time
        reliability = arq is not None
        codec = self._transport_codec(chaos, arq)
        checksummed = isinstance(codec, ChecksumCodec)

        # Per-packet precomputation: clean-path propagation (charged
        # from the chaos network — the wrapped metric or degraded
        # overlay) and the encoded wire header corruption flips bits of.
        propagation: List[float] = []
        headers: List[Optional[Tuple[bytes, int]]] = []
        for index, (demand, _, physical) in enumerate(packets):
            propagation.append(
                sum(
                    chaos.distance(a, b)
                    for a, b in zip(physical, physical[1:])
                )
            )
            if codec is not None and len(physical) > 1:
                values = self._header_values(
                    demand.target, index % (1 << TRANSPORT_SEQ_BITS)
                )
                clamped = {
                    f.name: (values.get(f.name, 0) % (1 << f.width))
                    for f in codec.fields
                    if f.width > 0
                }
                headers.append(codec.encode(clamped))
            else:
                headers.append(None)

        states = [_PacketState() for _ in packets]
        # Flight bookkeeping: a flight is one independently forwarded
        # copy (initial attempt, retransmission, or duplicate).  Ids
        # are assigned in creation order, which the deterministic event
        # loop makes deterministic in turn.
        flight_packet: List[int] = []
        flight_queueing: List[float] = []

        events: List[Tuple[float, int, int, int, int]] = []
        link_free_at: Dict[Tuple[NodeId, NodeId], float] = {}
        link_tx: Dict[Tuple[NodeId, NodeId], int] = {}
        horizon = 0.0

        def retransmit_timeout(index: int) -> float:
            if arq.ack_timeout is not None:
                return arq.ack_timeout
            # Textbook RTO seed: twice the packet's own no-queueing
            # round-trip (forward serialization + propagation, plus the
            # propagation-only ack), with a constant floor.
            _, _, physical = packets[index]
            links = len(physical) - 1
            rtt = links * service + 2.0 * propagation[index]
            return 2.0 * rtt + 1.0

        def launch(index: int, at: float, first: bool) -> None:
            state = states[index]
            state.attempts += 1
            state.flights += 1
            fid = len(flight_packet)
            flight_packet.append(index)
            flight_queueing.append(0.0)
            heapq.heappush(events, (at, index, _HOP, fid, 0))
            if reliability:
                delay = retransmit_timeout(index) * min(
                    arq.backoff ** (state.attempts - 1), arq.backoff_cap
                )
                heapq.heappush(
                    events, (at + delay, index, _TIMER, state.attempts - 1, 0)
                )
            packet_trace = traces[index]
            if packet_trace is not None and not first:
                packet_trace.events.append(
                    TraceEvent(
                        node=packets[index][0].source,
                        phase="retransmit",
                        entry=(
                            f"arq: attempt {state.attempts} after "
                            "ack timeout"
                        ),
                    )
                )

        for index, (demand, _, physical) in enumerate(packets):
            if len(physical) == 1:
                # Self-delivery (source == target): delivered at
                # injection, exactly like the plain loop; a truncated
                # single-node walk to a different target stays
                # undelivered.
                state = states[index]
                state.attempts = 1
                if physical[0] == demand.target:
                    state.delivered_at = demand.inject_at
                horizon = max(horizon, demand.inject_at)
                continue
            launch(index, demand.inject_at, first=True)

        while events:
            now, index, kind, s1, s2 = heapq.heappop(events)
            horizon = max(horizon, now)
            state = states[index]
            demand, _, physical = packets[index]
            if kind == _ACK:
                state.acked = True
                continue
            if kind == _TIMER:
                if state.acked:
                    continue
                if state.attempts < 1 + arq.max_retries:
                    launch(index, now, first=False)
                else:
                    state.gave_up = True
                continue
            fid, hop = s1, s2
            if hop == len(physical) - 1:
                if physical[-1] != demand.target:
                    continue  # truncated walk: routing dropped it
                if state.delivered_at is None:
                    state.delivered_at = now
                    state.delivered_queueing = flight_queueing[fid]
                else:
                    # Receiver duplicate suppression by sequence
                    # number: counted, not re-delivered.
                    state.duplicates += 1
                if reliability:
                    links = len(physical) - 1
                    lost = chaos.ack_dropped(index, state.acks_sent, links)
                    state.acks_sent += 1
                    if not lost:
                        heapq.heappush(
                            events,
                            (
                                now + propagation[index],
                                index,
                                _ACK,
                                state.acks_sent,
                                0,
                            ),
                        )
                continue
            a, b = physical[hop], physical[hop + 1]
            free_at = link_free_at.get((a, b), now)
            start = max(now, free_at)
            flight_queueing[fid] += start - now
            link_free_at[(a, b)] = start + service
            state.transmissions += 1
            link_tx[(a, b)] = link_tx.get((a, b), 0) + 1
            header = headers[index]
            faults = chaos.link_faults(
                index, fid, hop, header_bits=header[1] if header else 0
            )
            arrival = start + service + chaos.distance(a, b) + faults.extra_delay
            horizon = max(horizon, arrival)
            packet_trace = traces[index]
            if faults.dropped:
                if packet_trace is not None:
                    packet_trace.events.append(
                        TraceEvent(
                            node=a,
                            phase="drop",
                            entry=f"chaos: transmission {a}->{b} lost",
                        )
                    )
                continue
            if faults.corrupt_bits:
                # Corruption is resolved at the receiving node: a
                # checksummed header is verified and the copy discarded
                # on mismatch (ARQ recovers it); a clean verify of a
                # flipped header — CRC collision, or no checksum at all
                # — means the copy is silently misrouted and lost.
                data, bit_length = header
                flipped = flip_bits(data, faults.corrupt_bits)
                detected = checksummed and not codec.verify(
                    flipped, bit_length
                )
                if detected:
                    state.corrupt_detected += 1
                else:
                    state.corrupt_undetected += 1
                if packet_trace is not None:
                    packet_trace.events.append(
                        TraceEvent(
                            node=b,
                            phase="corrupt",
                            entry=(
                                "chaos: header bits "
                                f"{list(faults.corrupt_bits)} flipped "
                                f"{a}->{b}: "
                                + (
                                    "detected by checksum, dropped"
                                    if detected
                                    else "undetected, misrouted"
                                )
                            ),
                        )
                    )
                continue
            if (
                faults.duplicated
                and state.flights < _MAX_FLIGHTS_PER_PACKET
            ):
                state.flights += 1
                dup = len(flight_packet)
                flight_packet.append(index)
                flight_queueing.append(flight_queueing[fid])
                heapq.heappush(
                    events,
                    (
                        arrival + chaos.config.duplicate_lag,
                        index,
                        _HOP,
                        dup,
                        hop + 1,
                    ),
                )
            heapq.heappush(events, (arrival, index, _HOP, fid, hop + 1))

        report_packets: List[DeliveredPacket] = []
        outcomes: List[PacketOutcome] = []
        for index, (demand, path, physical) in enumerate(packets):
            state = states[index]
            if state.delivered_at is not None:
                status = TransportStatus.DELIVERED
            elif state.corrupt_undetected > 0:
                status = TransportStatus.CORRUPT_UNDETECTED
            else:
                status = TransportStatus.GAVE_UP
            outcomes.append(
                PacketOutcome(
                    demand=demand,
                    seq=index,
                    status=status,
                    attempts=max(1, state.attempts),
                    transmissions=state.transmissions,
                    path_links=max(0, len(physical) - 1),
                    delivered_at=state.delivered_at,
                    duplicates=state.duplicates,
                    corrupt_detected=state.corrupt_detected,
                    corrupt_undetected=state.corrupt_undetected,
                )
            )
            if state.delivered_at is None:
                continue
            packet = DeliveredPacket(
                demand=demand,
                path=path,
                delivered_at=float(state.delivered_at),
                propagation=propagation[index],
                queueing=state.delivered_queueing,
                physical_path=physical,
            )
            packet.trace = traces[index]
            report_packets.append(packet)
        return SimulationReport(
            packets=report_packets,
            outcomes=outcomes,
            link_transmissions=link_tx,
            horizon=horizon,
        )


@dataclasses.dataclass
class _PacketState:
    """Mutable transport state of one offered packet (chaos loop)."""

    attempts: int = 0
    flights: int = 0
    acked: bool = False
    gave_up: bool = False
    delivered_at: Optional[float] = None
    delivered_queueing: float = 0.0
    duplicates: int = 0
    corrupt_detected: int = 0
    corrupt_undetected: int = 0
    transmissions: int = 0
    acks_sent: int = 0


def uniform_demands(
    n: int, count: int, rate: float = 1.0, seed: int = 0
) -> List[Demand]:
    """Uniform random source-target demands with Poisson-ish spacing.

    Injection times are deterministic given the seed (exponential
    inter-arrivals drawn from a seeded PRNG), making simulations
    reproducible.  Pairs come from the shared sampler in
    :mod:`repro.pipeline.sampling` (with replacement across demands —
    the same flow may recur, unlike a stretch-measurement sample).
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    demands = []
    clock = 0.0
    for _ in range(count):
        clock += rng.expovariate(rate)
        source, target = draw_pair(rng, n)
        demands.append(Demand(source=source, target=target, inject_at=clock))
    return demands
