"""Discrete-event traffic simulation over a routing scheme.

The paper evaluates schemes by worst-case stretch and table size; a
deployment additionally cares how those paths behave *under load*.  This
module provides a store-and-forward, discrete-event simulator:

* a packet injected at time ``t`` follows the exact hop sequence its
  routing scheme produces (``RouteResult.path`` — including detours into
  search trees, realized as shortest-path travel);
* virtual hops between non-adjacent nodes (search-tree detours,
  "realized as shortest-path travel") are expanded into the metric's
  actual shortest path, so serialization and per-link load are charged
  to the *physical* graph edges the packet really occupies;
* every directed physical link serializes packets: one transmission per
  ``service_time`` time units, FIFO, plus a propagation delay equal to
  the link's metric length;
* the simulator reports per-packet latency, pure propagation time, and
  queueing delay, so congestion effects of a scheme's detours (e.g.
  search-tree hot spots around net centers) are measurable.

The event queue is deterministic: ties are broken by injection order.
"""

from __future__ import annotations

import dataclasses
import heapq
import random
import statistics
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.types import NodeId
from repro.metric.graph_metric import GraphMetric
from repro.observability.trace import RouteTrace
from repro.pipeline.sampling import draw_pair
from repro.schemes.base import RoutingScheme


def expand_to_physical_path(
    metric: GraphMetric, path: List[NodeId]
) -> List[NodeId]:
    """Expand a scheme's hop sequence into physical graph edges.

    Scheme paths may jump between non-adjacent nodes (a virtual hop
    whose cost is the shortest-path distance); each such hop is realized
    as the metric's canonical shortest path, so every consecutive pair
    in the result is an edge of the underlying graph and the total
    length is unchanged.
    """
    if len(path) <= 1:
        return list(path)
    physical = [path[0]]
    for a, b in zip(path, path[1:]):
        if a == b:
            continue
        physical.extend(metric.shortest_path(a, b)[1:])
    return physical


@dataclasses.dataclass
class Demand:
    """One packet to inject: source, target, and injection time."""

    source: NodeId
    target: NodeId
    inject_at: float = 0.0


@dataclasses.dataclass
class DeliveredPacket:
    """Outcome of one simulated packet.

    ``path`` is the scheme's hop sequence (may contain virtual hops);
    ``physical_path`` is its expansion into actual graph edges — the
    links the packet occupied.  They coincide for schemes that only
    ever name neighbours (e.g. the shortest-path baseline).
    """

    demand: Demand
    path: List[NodeId]
    delivered_at: float
    propagation: float
    queueing: float
    physical_path: Optional[List[NodeId]] = None
    #: Route-decision trace, populated when ``run(..., trace=True)``.
    trace: Optional[RouteTrace] = None

    @property
    def latency(self) -> float:
        return self.delivered_at - self.demand.inject_at

    @property
    def physical_nodes(self) -> List[NodeId]:
        """The physical hop sequence (falls back to ``path``)."""
        return self.physical_path if self.physical_path is not None else self.path

    @property
    def links(self) -> List[Tuple[NodeId, NodeId]]:
        """Directed physical links the packet occupied, in order."""
        nodes = self.physical_nodes
        return list(zip(nodes, nodes[1:]))


@dataclasses.dataclass
class SimulationReport:
    """Aggregate results of one simulation run.

    All statistics are well-defined on an empty run (zero packets):
    means and maxima report 0.0 rather than raising.
    """

    packets: List[DeliveredPacket]

    @property
    def delivered(self) -> int:
        return len(self.packets)

    def mean_latency(self) -> float:
        if not self.packets:
            return 0.0
        return statistics.fmean(p.latency for p in self.packets)

    def max_latency(self) -> float:
        if not self.packets:
            return 0.0
        return max(p.latency for p in self.packets)

    def mean_queueing(self) -> float:
        if not self.packets:
            return 0.0
        return statistics.fmean(p.queueing for p in self.packets)

    def total_traffic(self) -> float:
        """Total distance travelled by all packets (network load)."""
        return sum(p.propagation for p in self.packets)

    def busiest_links(self, top: int = 5) -> List[Tuple[Tuple[NodeId, NodeId], int]]:
        """Most-occupied directed *physical* links.

        Virtual hops are expanded to the underlying graph edges before
        counting, so shared physical edges are not under-counted.
        """
        counts: Dict[Tuple[NodeId, NodeId], int] = {}
        for packet in self.packets:
            for a, b in packet.links:
                counts[(a, b)] = counts.get((a, b), 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top]


class TrafficSimulator:
    """Store-and-forward simulation of a routing scheme under load.

    Args:
        scheme: Any routing scheme; its ``route()`` defines each
            packet's hop sequence.
        service_time: Per-link serialization time (one packet per
            ``service_time`` per directed link); 0 disables queueing.
    """

    def __init__(
        self, scheme: RoutingScheme, service_time: float = 1.0
    ) -> None:
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        self._scheme = scheme
        self._metric = scheme.metric
        self._service_time = service_time

    def run(
        self,
        demands: Iterable[Demand],
        trace: bool = False,
        paths: Optional[Sequence[List[NodeId]]] = None,
    ) -> SimulationReport:
        """Simulate all demands to completion.

        Args:
            demands: Packets to inject, in injection order.
            trace: When ``True``, record a route-decision trace for
                every packet (``DeliveredPacket.trace``) by routing via
                ``scheme.trace_route``; hop sequences are identical
                either way.
            paths: Optional precomputed *physical* hop sequence per
                demand (consecutive entries must be graph edges),
                bypassing the scheme entirely.  The churn driver uses
                this to push the walks a :class:`ResilientRouter`
                actually took — detours, truncated drops and all —
                through the queueing model, which the scheme's own
                ``route()`` against the intact metric could not
                reproduce.  Mutually exclusive with ``trace``.
        """
        metric = self._metric
        # Precompute each packet's hop sequence from the scheme, and its
        # expansion into the physical edges it will actually occupy.
        packets: List[Tuple[Demand, List[NodeId], List[NodeId]]] = []
        traces: List[Optional[RouteTrace]] = []
        if paths is not None:
            if trace:
                raise ValueError("paths= and trace=True are exclusive")
            demands = list(demands)
            if len(paths) != len(demands):
                raise ValueError(
                    f"{len(paths)} paths for {len(demands)} demands"
                )
            for demand, given in zip(demands, paths):
                walk = list(given) if given else [demand.source]
                packets.append((demand, walk, walk))
                traces.append(None)
        else:
            for demand in demands:
                if demand.source == demand.target:
                    packets.append(
                        (demand, [demand.source], [demand.source])
                    )
                    traces.append(None)
                    continue
                if trace:
                    result, packet_trace = self._scheme.trace_route(
                        demand.source, demand.target
                    )
                    traces.append(packet_trace)
                else:
                    result = self._scheme.route(demand.source, demand.target)
                    traces.append(None)
                packets.append(
                    (
                        demand,
                        result.path,
                        expand_to_physical_path(metric, result.path),
                    )
                )

        # Event queue: (time, packet_index, hop_index), with hops
        # indexing the *physical* path — packets queue on, and occupy,
        # the real graph edges underneath any virtual detour.  The
        # packet index is its injection order, so ties at equal times
        # always resolve in injection order — including mid-flight
        # re-queued events, which would jump the line if ties were
        # broken by a global event sequence number instead.
        events: List[Tuple[float, int, int]] = []
        for index, (demand, _, _) in enumerate(packets):
            heapq.heappush(events, (demand.inject_at, index, 0))

        link_free_at: Dict[Tuple[NodeId, NodeId], float] = {}
        queueing: List[float] = [0.0] * len(packets)
        delivered: List[Optional[float]] = [None] * len(packets)

        while events:
            now, index, hop = heapq.heappop(events)
            demand, _, physical = packets[index]
            if hop == len(physical) - 1:
                delivered[index] = now
                continue
            a, b = physical[hop], physical[hop + 1]
            free_at = link_free_at.get((a, b), now)
            start = max(now, free_at)
            queueing[index] += start - now
            link_free_at[(a, b)] = start + self._service_time
            arrival = start + self._service_time + metric.distance(a, b)
            heapq.heappush(events, (arrival, index, hop + 1))

        report_packets = []
        for index, (demand, path, physical) in enumerate(packets):
            propagation = sum(
                metric.distance(a, b)
                for a, b in zip(physical, physical[1:])
            )
            assert delivered[index] is not None
            report_packets.append(
                DeliveredPacket(
                    demand=demand,
                    path=path,
                    delivered_at=float(delivered[index]),
                    propagation=propagation,
                    queueing=queueing[index],
                    physical_path=physical,
                )
            )
        for packet, packet_trace in zip(report_packets, traces):
            packet.trace = packet_trace
        return SimulationReport(packets=report_packets)


def uniform_demands(
    n: int, count: int, rate: float = 1.0, seed: int = 0
) -> List[Demand]:
    """Uniform random source-target demands with Poisson-ish spacing.

    Injection times are deterministic given the seed (exponential
    inter-arrivals drawn from a seeded PRNG), making simulations
    reproducible.  Pairs come from the shared sampler in
    :mod:`repro.pipeline.sampling` (with replacement across demands —
    the same flow may recur, unlike a stretch-measurement sample).
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    demands = []
    clock = 0.0
    for _ in range(count):
        clock += rng.expovariate(rate)
        source, target = draw_pair(rng, n)
        demands.append(Demand(source=source, target=target, inject_at=clock))
    return demands
