"""Discrete-event traffic simulation over a routing scheme.

The paper evaluates schemes by worst-case stretch and table size; a
deployment additionally cares how those paths behave *under load*.  This
module provides a store-and-forward, discrete-event simulator:

* a packet injected at time ``t`` follows the exact hop sequence its
  routing scheme produces (``RouteResult.path`` — including detours into
  search trees, realized as shortest-path travel);
* every directed link serializes packets: one transmission per
  ``service_time`` time units, FIFO, plus a propagation delay equal to
  the link's metric length;
* the simulator reports per-packet latency, pure propagation time, and
  queueing delay, so congestion effects of a scheme's detours (e.g.
  search-tree hot spots around net centers) are measurable.

The event queue is deterministic: ties are broken by injection order.
"""

from __future__ import annotations

import dataclasses
import heapq
import statistics
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.types import NodeId
from repro.schemes.base import RoutingScheme


@dataclasses.dataclass
class Demand:
    """One packet to inject: source, target, and injection time."""

    source: NodeId
    target: NodeId
    inject_at: float = 0.0


@dataclasses.dataclass
class DeliveredPacket:
    """Outcome of one simulated packet."""

    demand: Demand
    path: List[NodeId]
    delivered_at: float
    propagation: float
    queueing: float

    @property
    def latency(self) -> float:
        return self.delivered_at - self.demand.inject_at


@dataclasses.dataclass
class SimulationReport:
    """Aggregate results of one simulation run."""

    packets: List[DeliveredPacket]

    @property
    def delivered(self) -> int:
        return len(self.packets)

    def mean_latency(self) -> float:
        return statistics.fmean(p.latency for p in self.packets)

    def max_latency(self) -> float:
        return max(p.latency for p in self.packets)

    def mean_queueing(self) -> float:
        return statistics.fmean(p.queueing for p in self.packets)

    def total_traffic(self) -> float:
        """Total distance travelled by all packets (network load)."""
        return sum(p.propagation for p in self.packets)

    def busiest_links(self, top: int = 5) -> List[Tuple[Tuple[NodeId, NodeId], int]]:
        counts: Dict[Tuple[NodeId, NodeId], int] = {}
        for packet in self.packets:
            for a, b in zip(packet.path, packet.path[1:]):
                counts[(a, b)] = counts.get((a, b), 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top]


class TrafficSimulator:
    """Store-and-forward simulation of a routing scheme under load.

    Args:
        scheme: Any routing scheme; its ``route()`` defines each
            packet's hop sequence.
        service_time: Per-link serialization time (one packet per
            ``service_time`` per directed link); 0 disables queueing.
    """

    def __init__(
        self, scheme: RoutingScheme, service_time: float = 1.0
    ) -> None:
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        self._scheme = scheme
        self._metric = scheme.metric
        self._service_time = service_time

    def run(self, demands: Iterable[Demand]) -> SimulationReport:
        """Simulate all demands to completion."""
        metric = self._metric
        # Precompute each packet's hop sequence from the scheme.
        packets: List[Tuple[Demand, List[NodeId]]] = []
        for demand in demands:
            if demand.source == demand.target:
                packets.append((demand, [demand.source]))
                continue
            result = self._scheme.route(demand.source, demand.target)
            packets.append((demand, result.path))

        # Event queue: (time, seq, packet_index, hop_index).
        events: List[Tuple[float, int, int, int]] = []
        seq = 0
        for index, (demand, _) in enumerate(packets):
            heapq.heappush(
                events, (demand.inject_at, seq, index, 0)
            )
            seq += 1

        link_free_at: Dict[Tuple[NodeId, NodeId], float] = {}
        queueing: List[float] = [0.0] * len(packets)
        delivered: List[Optional[float]] = [None] * len(packets)

        while events:
            now, _, index, hop = heapq.heappop(events)
            demand, path = packets[index]
            if hop == len(path) - 1:
                delivered[index] = now
                continue
            a, b = path[hop], path[hop + 1]
            free_at = link_free_at.get((a, b), now)
            start = max(now, free_at)
            queueing[index] += start - now
            link_free_at[(a, b)] = start + self._service_time
            arrival = start + self._service_time + metric.distance(a, b)
            heapq.heappush(events, (arrival, seq, index, hop + 1))
            seq += 1

        report_packets = []
        for index, (demand, path) in enumerate(packets):
            propagation = sum(
                metric.distance(a, b) for a, b in zip(path, path[1:])
            )
            assert delivered[index] is not None
            report_packets.append(
                DeliveredPacket(
                    demand=demand,
                    path=path,
                    delivered_at=float(delivered[index]),
                    propagation=propagation,
                    queueing=queueing[index],
                )
            )
        return SimulationReport(packets=report_packets)


def uniform_demands(
    n: int, count: int, rate: float = 1.0, seed: int = 0
) -> List[Demand]:
    """Uniform random source-target demands with Poisson-ish spacing.

    Injection times are deterministic given the seed (exponential
    inter-arrivals drawn from a seeded PRNG), making simulations
    reproducible.  Pairs come from the shared sampler in
    :mod:`repro.pipeline.sampling` (with replacement across demands —
    the same flow may recur, unlike a stretch-measurement sample).
    """
    import random

    from repro.pipeline.sampling import draw_pair

    if n < 2:
        raise ValueError("need at least two nodes")
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    demands = []
    clock = 0.0
    for _ in range(count):
        clock += rng.expovariate(rate)
        source, target = draw_pair(rng, n)
        demands.append(Demand(source=source, target=target, inject_at=clock))
    return demands
