"""Workload generators: graph families of low doubling dimension."""

from repro.graphs.generators import (
    balanced_tree,
    caterpillar,
    clustered_backbone,
    exponential_path,
    exponential_ring,
    grid_2d,
    grid_with_holes,
    hypercube,
    path_graph,
    random_geometric,
    ring_graph,
    star_graph,
    uniform_random_weights,
)

__all__ = [
    "balanced_tree",
    "caterpillar",
    "clustered_backbone",
    "exponential_path",
    "exponential_ring",
    "grid_2d",
    "grid_with_holes",
    "hypercube",
    "path_graph",
    "random_geometric",
    "ring_graph",
    "star_graph",
    "uniform_random_weights",
]
