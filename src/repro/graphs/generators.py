"""Graph families used as workloads throughout the reproduction.

All generators return connected, weighted, undirected
:class:`networkx.Graph` objects with integer node ids ``0 .. n-1`` and a
``weight`` attribute on every edge.  The families mirror the classes the
paper's introduction motivates:

* **Grids** (``grid_2d``) — the canonical growth-bounded metric.
* **Grids with holes** (``grid_with_holes``) — the paper's own example of
  a metric that is doubling but *not* growth-bounded ("if points are
  excluded from the grid ... the resulting metric may not be
  growth-bounded anymore.  It will, however, still have bounded doubling
  dimension").
* **Random geometric graphs** (``random_geometric``) — bounded-dimension
  Euclidean data, the standard doubling testbed.
* **Exponential-weight paths/rings** (``exponential_path``,
  ``exponential_ring``) — tiny doubling dimension but normalized diameter
  ``Δ`` exponential in ``n``; these separate the scale-free schemes
  (Theorems 1.1/1.2) from the ``log Δ``-dependent ones (Theorem 1.4).
* **Trees, stars, paths** — degenerate families used in unit tests and
  by the §5 lower-bound construction's sanity checks.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Optional, Sequence, Tuple

import networkx as nx


def _relabel_consecutive(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 preserving sorted order of old labels."""
    mapping = {v: i for i, v in enumerate(sorted(graph.nodes()))}
    return nx.relabel_nodes(graph, mapping, copy=True)


def grid_2d(width: int, height: Optional[int] = None) -> nx.Graph:
    """``width x height`` unit-weight 2-D grid (4-neighbour)."""
    if height is None:
        height = width
    if width < 1 or height < 1:
        raise ValueError("grid dimensions must be positive")
    graph = nx.grid_2d_graph(width, height)
    nx.set_edge_attributes(graph, 1.0, "weight")
    return _relabel_consecutive(graph)


def grid_with_holes(
    width: int,
    height: Optional[int] = None,
    hole_fraction: float = 0.25,
    seed: int = 0,
) -> nx.Graph:
    """2-D grid with a random subset of cells deleted (kept connected).

    Deletions are sampled uniformly; any deletion that would disconnect
    the remaining grid is skipped.  The result remains doubling (it is a
    subset of the plane) but is generally not growth-bounded near hole
    boundaries.
    """
    if not 0.0 <= hole_fraction < 1.0:
        raise ValueError("hole_fraction must be in [0, 1)")
    graph = nx.grid_2d_graph(width, height if height is not None else width)
    nx.set_edge_attributes(graph, 1.0, "weight")
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    rng.shuffle(nodes)
    to_remove = int(hole_fraction * len(nodes))
    removed = 0
    for node in nodes:
        if removed >= to_remove:
            break
        if graph.number_of_nodes() <= 2:
            break
        neighbours = list(graph.neighbors(node))
        graph.remove_node(node)
        if nx.is_connected(graph):
            removed += 1
        else:
            graph.add_node(node)
            for nb in neighbours:
                graph.add_edge(node, nb, weight=1.0)
    return _relabel_consecutive(graph)


def random_geometric(
    n: int,
    dim: int = 2,
    seed: int = 0,
    connect_radius_factor: float = 1.5,
) -> nx.Graph:
    """Random points in ``[0,1]^dim`` with edges below a connect radius.

    The radius is ``connect_radius_factor * (log n / n)^(1/dim)`` (the
    standard connectivity threshold scaling); if the result is still
    disconnected, the nearest pairs across components are linked.  Edge
    weights are Euclidean distances.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    points = [
        tuple(rng.random() for _ in range(dim)) for _ in range(n)
    ]
    radius = connect_radius_factor * (math.log(max(2, n)) / n) ** (1.0 / dim)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    # Grid-bucket neighbor search: only points in the same or adjacent
    # cells (cell side = radius) can be within the connect radius, so
    # the scan is O(n) expected instead of the O(n²) all-pairs loop.
    # Edges are added in sorted (u, v) order — the order the old
    # itertools.combinations scan produced — so the generated graph is
    # bit-identical (edge insertion order feeds the metric's CSR layout
    # and hence shortest-path tie-breaking).
    cells: dict = {}
    for i, p in enumerate(points):
        cells.setdefault(
            tuple(int(c / radius) for c in p), []
        ).append(i)
    offsets = list(itertools.product((-1, 0, 1), repeat=dim))
    edges = []
    for cell, members in cells.items():
        for off in offsets:
            neighbour = tuple(c + o for c, o in zip(cell, off))
            others = cells.get(neighbour)
            if others is None:
                continue
            for u in members:
                for v in others:
                    if u < v and math.dist(points[u], points[v]) <= radius:
                        edges.append((u, v))
    for u, v in sorted(set(edges)):
        graph.add_edge(
            u, v, weight=max(math.dist(points[u], points[v]), 1e-6)
        )
    _connect_components_by_nearest(graph, points)
    for u in graph.nodes():
        graph.nodes[u]["pos"] = points[u]
    return graph


def _connect_components_by_nearest(
    graph: nx.Graph, points: Sequence[Tuple[float, ...]]
) -> None:
    """Link components via their geometrically nearest node pairs."""
    while not nx.is_connected(graph):
        components = [list(c) for c in nx.connected_components(graph)]
        base = components[0]
        best: Optional[Tuple[float, int, int]] = None
        for other in components[1:]:
            for u in base:
                for v in other:
                    d = math.dist(points[u], points[v])
                    if best is None or d < best[0]:
                        best = (d, u, v)
        assert best is not None
        graph.add_edge(best[1], best[2], weight=max(best[0], 1e-6))


def path_graph(n: int, weight: float = 1.0) -> nx.Graph:
    """Path on ``n`` nodes with uniform edge weight."""
    graph = nx.path_graph(n)
    nx.set_edge_attributes(graph, float(weight), "weight")
    return graph


def ring_graph(n: int, weight: float = 1.0) -> nx.Graph:
    """Cycle on ``n`` nodes with uniform edge weight."""
    graph = nx.cycle_graph(n)
    nx.set_edge_attributes(graph, float(weight), "weight")
    return graph


def star_graph(n: int, weight: float = 1.0) -> nx.Graph:
    """Star with ``n`` nodes total (center + n-1 leaves)."""
    if n < 2:
        raise ValueError("star needs at least 2 nodes")
    graph = nx.star_graph(n - 1)
    nx.set_edge_attributes(graph, float(weight), "weight")
    return graph


def balanced_tree(branching: int, depth: int, weight: float = 1.0) -> nx.Graph:
    """Complete ``branching``-ary tree of the given depth."""
    graph = nx.balanced_tree(branching, depth)
    nx.set_edge_attributes(graph, float(weight), "weight")
    return graph


def exponential_path(n: int, base: float = 2.0) -> nx.Graph:
    """Path whose i-th edge has weight ``base**i``.

    Normalized diameter is ``Θ(base^(n-1))`` — exponential in ``n`` —
    while the doubling dimension stays constant.  This is the canonical
    adversarial input for non-scale-free schemes: a hierarchy over
    ``log Δ = Θ(n)`` levels.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    graph = nx.Graph()
    for i in range(n - 1):
        graph.add_edge(i, i + 1, weight=base**i)
    return graph


def exponential_ring(n: int, base: float = 2.0) -> nx.Graph:
    """Cycle closing an exponential path with one heavy chord edge."""
    graph = exponential_path(n, base=base)
    total = sum(base**i for i in range(n - 1))
    graph.add_edge(n - 1, 0, weight=total)
    return graph


def clustered_backbone(
    clusters: int,
    cluster_size: int,
    base: float = 2.0,
    max_weight: Optional[float] = None,
) -> nx.Graph:
    """Chain of unit-weight cliques joined by geometrically heavier links.

    Models an internet-like topology: dense regional clusters whose
    inter-cluster "backbone" links span ever larger distances.  The
    normalized diameter grows like ``base^clusters`` while the doubling
    dimension stays bounded — another scale-free stressor, with
    non-trivial local structure (unlike the exponential path).

    ``max_weight`` caps the backbone weights (default: uncapped,
    preserving the historical geometric growth).  At Internet scale —
    thousands of clusters — the uncapped ``base**c`` overflows floats,
    so large-n workloads pass a cap and trade the exponential diameter
    for a linear one.
    """
    if clusters < 1 or cluster_size < 1:
        raise ValueError("need at least one cluster of one node")
    if base <= 1.0:
        raise ValueError("base must exceed 1")
    if max_weight is not None and max_weight < 1.0:
        raise ValueError("max_weight must be at least 1")
    graph = nx.Graph()
    for c in range(clusters):
        offset = c * cluster_size
        graph.add_node(offset)
        for i in range(cluster_size):
            for j in range(i + 1, cluster_size):
                graph.add_edge(offset + i, offset + j, weight=1.0)
        if c > 0:
            if max_weight is None:
                w = base**c
            elif c * math.log(base) >= math.log(max_weight):
                w = max_weight  # base**c would overflow past the cap
            else:
                w = min(base**c, max_weight)
            graph.add_edge(offset - 1, offset, weight=w)
    return graph


def preferential_attachment(n: int, m: int = 2, seed: int = 0) -> nx.Graph:
    """Barabási–Albert preferential-attachment graph, unit weights.

    The canonical power-law family (degree exponent ≈ 3): each arriving
    node attaches to ``m`` existing nodes with probability proportional
    to their degree.  Connected by construction and deterministic given
    ``seed``.  These graphs are expressly *not* doubling — hub
    neighbourhoods grow linearly — which is the regime Krioukov–Fall–
    Yang study; experiment E19 measures how the paper's doubling-metric
    schemes degrade here.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    if not 1 <= m < n:
        raise ValueError("attachment count m must be in [1, n)")
    graph = nx.barabasi_albert_graph(n, m, seed=seed)
    nx.set_edge_attributes(graph, 1.0, "weight")
    return graph


def internet_as_like(n: int, m: int = 2, seed: int = 0) -> nx.Graph:
    """Internet-AS-like topology: power-law core plus hub peering links.

    A Barabási–Albert backbone with two AS-flavoured decorations:

    * the top ``√n`` highest-degree nodes (the "tier-1 core") are
      densely peered — extra unit-weight links between random hub
      pairs, mimicking the near-clique of large transit providers;
    * non-core links carry heavier weights (uniform in [2, 4]),
      modelling customer/provider hops being slower than core peering.

    The degree distribution stays heavy-tailed while the core becomes
    even denser than plain preferential attachment — the small-world,
    non-doubling shape of measured AS graphs.
    """
    if n < 4:
        raise ValueError("need at least 4 nodes")
    graph = preferential_attachment(n, m=m, seed=seed)
    rng = random.Random(seed + 0x5EED)
    hubs = sorted(
        graph.nodes(), key=lambda v: (-graph.degree(v), v)
    )[: max(2, int(math.isqrt(n)))]
    hub_set = set(hubs)
    extra = max(1, n // 10)
    for _ in range(extra):
        u, v = rng.sample(hubs, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v, weight=1.0)
    for u, v in graph.edges():
        if u not in hub_set or v not in hub_set:
            graph[u][v]["weight"] = rng.uniform(2.0, 4.0)
    return graph


def caterpillar(spine: int, legs_per_node: int, weight: float = 1.0) -> nx.Graph:
    """Path of ``spine`` nodes, each carrying ``legs_per_node`` leaves.

    A tree family with highly non-uniform degrees; exercises the
    degree-sensitive storage of interval tree routing versus the
    heavy-path router.
    """
    if spine < 1 or legs_per_node < 0:
        raise ValueError("need a positive spine")
    graph = nx.Graph()
    next_id = spine
    for i in range(spine):
        graph.add_node(i)
        if i > 0:
            graph.add_edge(i - 1, i, weight=weight)
        for _ in range(legs_per_node):
            graph.add_edge(i, next_id, weight=weight)
            next_id += 1
    return graph


def hypercube(dimension: int) -> nx.Graph:
    """The ``dimension``-cube: doubling dimension Θ(dimension).

    Included as a *counterexample* family: for large ``dimension`` this
    is not a low-doubling network, and the doubling estimator should
    report a dimension growing with ``dimension``.
    """
    if dimension < 1:
        raise ValueError("dimension must be positive")
    graph = nx.hypercube_graph(dimension)
    nx.set_edge_attributes(graph, 1.0, "weight")
    return _relabel_consecutive(graph)


def uniform_random_weights(
    graph: nx.Graph, low: float = 1.0, high: float = 4.0, seed: int = 0
) -> nx.Graph:
    """Copy of ``graph`` with i.i.d. uniform edge weights in [low, high]."""
    if low <= 0 or high < low:
        raise ValueError("need 0 < low <= high")
    rng = random.Random(seed)
    out = graph.copy()
    for u, v in out.edges():
        out[u][v]["weight"] = rng.uniform(low, high)
    return out
