"""Core shared types, parameters, and bit-accounting utilities."""

from repro.core.bitcount import (
    BitCounter,
    bits_for_count,
    bits_for_distance,
    bits_for_id,
)
from repro.core.params import SchemeParameters
from repro.core.types import (
    NodeId,
    PreprocessingError,
    ReproError,
    RouteFailure,
    RouteResult,
)

__all__ = [
    "BitCounter",
    "NodeId",
    "PreprocessingError",
    "ReproError",
    "RouteFailure",
    "RouteResult",
    "SchemeParameters",
    "bits_for_count",
    "bits_for_distance",
    "bits_for_id",
]
