"""Scheme parameters shared by all routing schemes.

The single tunable parameter in the paper is the accuracy constant
``epsilon``.  The paper's analysis requires ``epsilon < 3/4`` (Claim 4.6)
and its statements assume ``epsilon`` in ``(0, 1)``; we recommend values in
``(0, 1/2]`` where every constant in the proofs is comfortably valid.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class SchemeParameters:
    """Parameters controlling accuracy/space trade-offs of all schemes.

    Attributes:
        epsilon: The paper's ``ε``.  Smaller values mean better stretch
            (``9 + O(ε)`` name-independent, ``1 + O(ε)`` labeled) but larger
            ring radii ``2^i/ε`` and hence larger routing tables.
        tie_break_by_id: Paper §2 requires a globally consistent
            tie-breaking rule for nearest-net-point selection ("e.g., the
            least node id"); this flag exists only to document that choice
            and must stay ``True`` for reproducibility.
    """

    epsilon: float = 0.5
    tie_break_by_id: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError(
                f"epsilon must be in (0, 1), got {self.epsilon}"
            )
        if not self.tie_break_by_id:
            raise ValueError("least-node-id tie-breaking is required")

    @property
    def ring_radius_factor(self) -> float:
        """Multiplier ``1/ε`` applied to net radii for ring/ball lookups."""
        return 1.0 / self.epsilon

    def search_tree_levels(self, radius: float) -> int:
        """Number of net levels ``⌊log(εr)⌋`` in a search tree of radius r."""
        scaled = self.epsilon * radius
        if scaled < 2.0:
            return 0
        return int(math.floor(math.log2(scaled)))
