"""Shared base types for the compact-routing library.

Nodes are identified by integer ids (``NodeId``).  Every routing scheme in
this library produces :class:`RouteResult` objects describing the simulated
path of a packet, together with enough bookkeeping to audit stretch and
header sizes against the bounds claimed by the paper.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

NodeId = int


class DeliveryStatus(enum.Enum):
    """Typed outcome of forwarding one packet on a (possibly degraded)
    topology.

    A routing scheme on an intact network always terminates with
    ``DELIVERED`` (anything else is a bug — see :class:`RouteFailure`);
    on a degraded topology the resilience subsystem
    (:mod:`repro.resilience`) forwards packets with *stale* tables, so
    every packet must still terminate, but with one of these outcomes.
    """

    DELIVERED = "delivered"
    #: A fallback policy gave up (failed link with no usable detour,
    #: crashed endpoint, exhausted escalation levels).
    DROPPED = "dropped"
    #: The hop budget ran out before arrival.
    TTL_EXPIRED = "ttl-expired"
    #: The same forwarding state recurred (visited-set check): stale
    #: tables plus the fallback policy steered the packet in a cycle.
    LOOP_DETECTED = "loop-detected"


class TransportStatus(enum.Enum):
    """Typed end-to-end outcome of one packet under the unreliable
    channel model (:mod:`repro.chaos`).

    Where :class:`DeliveryStatus` describes what the *forwarding plane*
    did to a single copy of a packet (stale tables, dead links),
    ``TransportStatus`` describes what the *transport* achieved across
    every copy and retransmission: either some copy reached the
    destination, or the sender exhausted its retry budget, or a
    corrupted header slipped past the checksum and the packet was
    silently misrouted.
    """

    DELIVERED = "delivered"
    #: The ARQ retry budget ran out (or, with ARQ off, the single
    #: attempt was lost) before any copy arrived.
    GAVE_UP = "gave-up"
    #: A bit-flipped header passed validation (checksum collision, or
    #: no checksum at all) and the copy was misrouted undetected —
    #: the failure mode the header checksum exists to make rare.
    CORRUPT_UNDETECTED = "corrupt-undetected"


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PreprocessingError(ReproError):
    """Raised when a scheme cannot be constructed for the given network."""


class RouteFailure(ReproError):
    """Raised when a simulated packet fails to reach its destination.

    This indicates a bug in a scheme implementation (the paper's schemes
    always terminate), so it is an error rather than a result state.
    """


@dataclasses.dataclass
class RouteResult:
    """Outcome of routing one packet from ``source`` to ``target``.

    Attributes:
        source: Originating node.
        target: Destination node.
        path: Sequence of nodes visited, beginning with ``source`` and
            ending with ``target``.  Virtual-edge traversals (netting-tree
            hops, search-tree descents) are expanded to their endpoint
            nodes; the cost of each leg is the shortest-path distance
            between consecutive entries.
        cost: Total distance travelled by the packet.
        optimal: Shortest-path distance ``d(source, target)``.
        header_bits: Maximum packet-header size (in bits) used en route.
        legs: Optional breakdown of the cost by named phase (e.g.
            ``{"zoom": ..., "search": ..., "final": ...}``); used by the
            figure-reproduction experiments.
    """

    source: NodeId
    target: NodeId
    path: List[NodeId]
    cost: float
    optimal: float
    header_bits: int = 0
    legs: Optional[Dict[str, float]] = None

    @property
    def stretch(self) -> float:
        """Ratio of travelled cost to the shortest-path distance.

        A route from a node to itself has stretch 1 by convention.
        """
        if self.source == self.target:
            return 1.0
        return self.cost / self.optimal

    @property
    def hops(self) -> int:
        """Number of legs in the simulated path."""
        return max(0, len(self.path) - 1)

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("path must contain at least the source node")
        if self.path[0] != self.source:
            raise ValueError("path must start at the source")
        if self.path[-1] != self.target:
            raise RouteFailure(
                f"packet for {self.target} stopped at {self.path[-1]}"
            )
