"""Atomic topology edits: the unit of churn.

A :class:`GraphEdit` describes one change to a weighted undirected
graph — a weight change, an edge addition or removal, or a node joining
or leaving.  Edits are the currency of the incremental-maintenance
pipeline (`BuildContext.apply_edit`): each edit induces a *dirty set* of
nodes whose shortest-path rows may change, and every cached artifact
whose dependencies avoid the dirty set is carried over instead of
rebuilt.

Edits are deliberately dumb data: validation happens here, dirty-set
computation lives in :class:`~repro.metric.graph_metric.GraphMetric`,
and cache surgery in :class:`~repro.pipeline.context.BuildContext`.
Weights are *raw* (pre-normalization) weights, matching what is stored
on the graph.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Tuple

import networkx as nx

from repro.core.types import NodeId, PreprocessingError


class EditKind(enum.Enum):
    """The five churn primitives."""

    WEIGHT = "weight"
    EDGE_ADD = "edge_add"
    EDGE_REMOVE = "edge_remove"
    NODE_JOIN = "node_join"
    NODE_LEAVE = "node_leave"


@dataclasses.dataclass(frozen=True)
class GraphEdit:
    """One atomic change to the network topology.

    Attributes:
        kind: Which primitive this is.
        edge: The affected edge, canonicalized ``(min, max)`` — required
            for ``WEIGHT`` / ``EDGE_ADD`` / ``EDGE_REMOVE``.
        node: The joining/leaving node id — required for ``NODE_JOIN`` /
            ``NODE_LEAVE``.  Joins must use id ``n`` and leaves id
            ``n-1`` (nodes are always ``0..n-1``; allowing interior ids
            would silently relabel every node).
        weight: New raw edge weight for ``WEIGHT`` / ``EDGE_ADD``.
        attach: For ``NODE_JOIN``: ``(neighbor, raw weight)`` pairs the
            new node connects through (at least one).
    """

    kind: EditKind
    edge: Optional[Tuple[NodeId, NodeId]] = None
    node: Optional[NodeId] = None
    weight: Optional[float] = None
    attach: Tuple[Tuple[NodeId, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind in (EditKind.WEIGHT, EditKind.EDGE_ADD, EditKind.EDGE_REMOVE):
            if self.edge is None:
                raise PreprocessingError(f"{self.kind.value} edit needs an edge")
            u, v = self.edge
            if u == v:
                raise PreprocessingError("self-loop edits are not allowed")
            if (u, v) != (min(u, v), max(u, v)):
                object.__setattr__(self, "edge", (min(u, v), max(u, v)))
        if self.kind in (EditKind.WEIGHT, EditKind.EDGE_ADD):
            if self.weight is None or self.weight <= 0:
                raise PreprocessingError(
                    f"{self.kind.value} edit needs a positive weight"
                )
        if self.kind in (EditKind.NODE_JOIN, EditKind.NODE_LEAVE):
            if self.node is None:
                raise PreprocessingError(f"{self.kind.value} edit needs a node")
        if self.kind is EditKind.NODE_JOIN:
            if not self.attach:
                raise PreprocessingError("node_join needs at least one attachment")
            if any(w <= 0 for _, w in self.attach):
                raise PreprocessingError("attachment weights must be positive")

    @property
    def changes_node_set(self) -> bool:
        """Whether the edit changes ``n`` (forcing a full re-key)."""
        return self.kind in (EditKind.NODE_JOIN, EditKind.NODE_LEAVE)

    def describe(self) -> str:
        """One-line human-readable form (used in repair traces)."""
        if self.kind is EditKind.WEIGHT:
            return f"weight{self.edge} <- {self.weight:g}"
        if self.kind is EditKind.EDGE_ADD:
            return f"add edge {self.edge} w={self.weight:g}"
        if self.kind is EditKind.EDGE_REMOVE:
            return f"remove edge {self.edge}"
        if self.kind is EditKind.NODE_JOIN:
            return f"join node {self.node} via {len(self.attach)} links"
        return f"leave node {self.node}"


def apply_edit_to_graph(graph: nx.Graph, edit: GraphEdit) -> None:
    """Mutate ``graph`` in place according to ``edit``.

    Callers that keep derived state (metrics, content keys) must route
    edits through :meth:`BuildContext.apply_edit` instead, which keeps
    those caches exact; this function is the raw primitive underneath.

    Raises:
        PreprocessingError: If the edit does not fit the graph (missing
            edge, duplicate edge, out-of-sequence node id, ...).
    """
    n = graph.number_of_nodes()
    if edit.kind is EditKind.WEIGHT:
        u, v = edit.edge
        if not graph.has_edge(u, v):
            raise PreprocessingError(f"no edge {edit.edge} to reweight")
        graph[u][v]["weight"] = float(edit.weight)
    elif edit.kind is EditKind.EDGE_ADD:
        u, v = edit.edge
        if graph.has_edge(u, v):
            raise PreprocessingError(f"edge {edit.edge} already present")
        if u >= n or v >= n:
            raise PreprocessingError(f"edge {edit.edge} endpoint out of range")
        graph.add_edge(u, v, weight=float(edit.weight))
    elif edit.kind is EditKind.EDGE_REMOVE:
        u, v = edit.edge
        if not graph.has_edge(u, v):
            raise PreprocessingError(f"no edge {edit.edge} to remove")
        graph.remove_edge(u, v)
    elif edit.kind is EditKind.NODE_JOIN:
        if edit.node != n:
            raise PreprocessingError(
                f"joining node must take the next id {n}, got {edit.node}"
            )
        if any(x >= n for x, _ in edit.attach):
            raise PreprocessingError("attachment endpoint out of range")
        graph.add_node(edit.node)
        for x, w in edit.attach:
            graph.add_edge(edit.node, x, weight=float(w))
    elif edit.kind is EditKind.NODE_LEAVE:
        if edit.node != n - 1:
            raise PreprocessingError(
                f"only the highest id {n - 1} may leave (ids must stay "
                f"0..n-1), got {edit.node}"
            )
        graph.remove_node(edit.node)
