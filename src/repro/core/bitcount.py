"""Bit accounting for routing tables, labels, and packet headers.

The paper states all space bounds in bits.  To compare measured storage
against those bounds we charge every stored item a concrete bit cost:

* a node id or routing label out of a universe of ``n`` values costs
  ``ceil(log2 n)`` bits (at least 1);
* a distance is charged ``ceil(log2 n)``-equivalent bits as well — the
  paper stores distances implicitly inside ``O(log n)``-bit entries, and we
  follow the same convention so measured numbers line up with the stated
  bounds;
* a level/index out of ``k`` possibilities costs ``ceil(log2 (k+1))`` bits.

:class:`BitCounter` is a tiny ledger used by each scheme's per-node table
objects: entries are registered under a category name so experiments can
report both totals and per-structure breakdowns.
"""

from __future__ import annotations

import math
from typing import Dict


def bits_for_id(universe: int) -> int:
    """Bits to name one element of a universe of ``universe`` items."""
    if universe <= 1:
        return 1
    return math.ceil(math.log2(universe))


def bits_for_count(maximum: int) -> int:
    """Bits to store an integer in ``[0, maximum]``."""
    return bits_for_id(maximum + 1)


def bits_for_distance(n: int) -> int:
    """Bits charged for one stored distance in an ``n``-node network."""
    return bits_for_id(max(2, n))


class BitCounter:
    """Ledger of storage charges grouped by category.

    Example:
        >>> ledger = BitCounter()
        >>> ledger.charge("range-info", 24)
        >>> ledger.charge("range-info", 24)
        >>> ledger.total()
        48
        >>> ledger.breakdown()["range-info"]
        48
    """

    def __init__(self) -> None:
        self._by_category: Dict[str, int] = {}

    def charge(self, category: str, bits: int) -> None:
        """Record ``bits`` of storage under ``category``."""
        if bits < 0:
            raise ValueError(f"negative bit charge: {bits}")
        self._by_category[category] = self._by_category.get(category, 0) + bits

    def total(self) -> int:
        """Total bits recorded across all categories."""
        return sum(self._by_category.values())

    def breakdown(self) -> Dict[str, int]:
        """Copy of the per-category totals."""
        return dict(self._by_category)

    def merge(self, other: "BitCounter") -> None:
        """Add all of ``other``'s charges into this ledger."""
        for category, bits in other._by_category.items():
            self.charge(category, bits)

    def __repr__(self) -> str:
        return f"BitCounter(total={self.total()}, {self._by_category!r})"
