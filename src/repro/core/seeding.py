"""The repository's seed-splitting convention.

Composed experiments draw from several random processes at once — demand
workloads (:func:`repro.runtime.simulator.uniform_demands`), failure
plans (:class:`repro.resilience.failure_plan.FailurePlan`), churn
streams, and the per-link fault processes of :mod:`repro.chaos`.  Seeding
them all with the same small integer silently *correlates* the streams
(the 7th demand draw and the 7th fault draw come from identical PRNG
states), which can manufacture or mask effects.

:func:`derive_seed` is the single convention: every consumer derives its
seed from one master seed plus a textual stream name (and optional
integer indices) through SHA-256.  Properties:

* **independence** — distinct ``(stream, indices)`` tuples yield
  unrelated 64-bit seeds, so composed experiments cannot correlate;
* **order-free determinism** — the seed of event ``(packet, flight,
  hop)`` depends only on those identifiers, never on how many draws
  happened before it, so a simulator may process events in any causal
  order (heap order, batched, resumed) and reproduce identical faults;
* **coupling where it helps** — the derived seed does not depend on
  fault *rates*, so sweeping a loss rate with a fixed master seed
  replays the same underlying uniform draws against different
  thresholds: delivery under a higher loss rate is a superset of the
  drops under a lower one (a paired, variance-free comparison the
  chaos benchmarks assert as a monotonicity invariant).

The convention is documented in DESIGN.md; new random processes should
use ``derive_seed(master, "<unique-stream-name>", ...)`` rather than
inventing seed arithmetic.
"""

from __future__ import annotations

import hashlib


def derive_seed(master: int, stream: str, *indices: int) -> int:
    """Derive an independent 64-bit seed for one named random stream.

    Args:
        master: The experiment's single master seed.
        stream: A short name unique to the random process (e.g.
            ``"demands"``, ``"failures"``, ``"chaos-link"``).
        indices: Optional integer coordinates for per-event streams
            (packet index, flight id, hop, ...).

    Returns:
        An integer in ``[0, 2**64)`` suitable for ``random.Random``.
    """
    if not stream:
        raise ValueError("stream name must be non-empty")
    tag = f"{int(master)}|{stream}|" + ",".join(str(int(i)) for i in indices)
    digest = hashlib.sha256(tag.encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")
