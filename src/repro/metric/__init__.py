"""Shortest-path metric substrate over weighted undirected graphs."""

from repro.metric.doubling import (
    doubling_dimension,
    growth_bound_constant,
    is_doubling_with_dimension,
)
from repro.metric.graph_metric import GraphMetric
from repro.metric.substrate import (
    DEFAULT_ROW_BUDGET_BYTES,
    DENSE_NODE_LIMIT,
    DISTANCE_SLACK,
    EXACT_DIAMETER_LIMIT,
)

__all__ = [
    "DEFAULT_ROW_BUDGET_BYTES",
    "DENSE_NODE_LIMIT",
    "DISTANCE_SLACK",
    "EXACT_DIAMETER_LIMIT",
    "GraphMetric",
    "doubling_dimension",
    "growth_bound_constant",
    "is_doubling_with_dimension",
]
