"""Shortest-path metric substrate over weighted undirected graphs."""

from repro.metric.doubling import (
    doubling_dimension,
    growth_bound_constant,
    is_doubling_with_dimension,
)
from repro.metric.graph_metric import GraphMetric

__all__ = [
    "GraphMetric",
    "doubling_dimension",
    "growth_bound_constant",
    "is_doubling_with_dimension",
]
