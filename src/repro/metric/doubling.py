"""Doubling dimension and growth-bound estimation (paper §1, §2).

The doubling dimension of a metric is the least ``α`` such that every ball
``B_u(r)`` can be covered by at most ``2^α`` balls of radius ``r/2``.
Computing it exactly is NP-hard in general (minimum cover), so we measure
the standard greedy upper bound: cover each ball greedily with half-radius
balls *centered at points of the ball* and report ``log2`` of the largest
cover used.  Greedy covering by an ``r/2``-net of the ball gives a valid
cover whose size is within the usual constant-exponent slack of the true
dimension; this is the measurement used everywhere the paper's ``α``
appears in our experiments.

Also provided: the growth-bound constant (``|B_u(2r)| / |B_u(r)|``
maximum), used to distinguish growth-bounded networks from merely doubling
ones (the grid-with-holes generators exercise exactly this distinction).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

from repro.core.types import NodeId
from repro.metric.graph_metric import DISTANCE_SLACK, GraphMetric


def _greedy_half_cover(
    metric: GraphMetric, center: NodeId, radius: float
) -> int:
    """Size of a greedy cover of ``B_center(radius)`` by radius/2 balls.

    Centers are chosen greedily from the ball itself: repeatedly pick the
    uncovered node nearest to the ball center (deterministic: least id
    among ties) and cover everything within ``radius/2`` of it.  The
    chosen centers are pairwise more than ``radius/2`` apart, i.e. they
    form a packing, so the count is also a lower bound on the size of any
    cover by ``radius/4``-balls (the standard net argument).
    """
    members = metric.ball(center, radius)
    uncovered = set(members)
    half = radius / 2.0
    count = 0
    # metric.ball() returns members sorted by (distance, id): greedy order.
    for candidate in members:
        if candidate not in uncovered:
            continue
        count += 1
        d = metric.distances_from(candidate)
        uncovered = {x for x in uncovered if d[x] > half + DISTANCE_SLACK}
        if not uncovered:
            break
    return count


def doubling_dimension(
    metric: GraphMetric,
    centers: Optional[Iterable[NodeId]] = None,
    radii_per_center: int = 8,
) -> float:
    """Greedy upper bound on the doubling dimension ``α``.

    Args:
        metric: The network metric.
        centers: Ball centers to test; defaults to all nodes for small
            networks (n <= 256) and an id-stratified sample otherwise.
        radii_per_center: Number of geometrically spaced radii tested per
            center, spanning ``[1, eccentricity(center)]``.

    Returns:
        ``log2`` of the largest greedy half-radius cover encountered.
    """
    if centers is None:
        if metric.n <= 256:
            centers = list(metric.nodes)
        else:
            step = max(1, metric.n // 256)
            centers = list(range(0, metric.n, step))
    worst = 1
    for center in centers:
        ecc = metric.eccentricity(center)
        if ecc <= 0:
            continue
        radii = _geometric_radii(1.0, ecc, radii_per_center)
        for radius in radii:
            worst = max(worst, _greedy_half_cover(metric, center, radius))
    return math.log2(worst)


def _geometric_radii(lo: float, hi: float, count: int) -> List[float]:
    if hi <= lo:
        return [hi]
    if count <= 1:
        return [hi]
    ratio = (hi / lo) ** (1.0 / (count - 1))
    return [lo * ratio**k for k in range(count)]


def is_doubling_with_dimension(
    metric: GraphMetric, alpha: float, **kwargs
) -> bool:
    """Whether the measured (greedy) doubling dimension is at most alpha."""
    return doubling_dimension(metric, **kwargs) <= alpha + 1e-9


def growth_bound_constant(
    metric: GraphMetric,
    centers: Optional[Iterable[NodeId]] = None,
    radii_per_center: int = 8,
) -> float:
    """Largest observed ratio ``|B_u(2r)| / |B_u(r)|``.

    Growth-bounded networks have this bounded by a constant for *all* u
    and r; doubling-but-not-growth-bounded networks (e.g. grids with
    holes) exhibit large ratios at the hole boundaries.
    """
    if centers is None:
        if metric.n <= 256:
            centers = list(metric.nodes)
        else:
            step = max(1, metric.n // 256)
            centers = list(range(0, metric.n, step))
    worst = 1.0
    for center in centers:
        ecc = metric.eccentricity(center)
        if ecc <= 0:
            continue
        for radius in _geometric_radii(1.0, ecc, radii_per_center):
            inner = metric.ball_size(center, radius)
            outer = metric.ball_size(center, 2.0 * radius)
            if inner > 0:
                worst = max(worst, outer / inner)
    return worst
