"""The shortest-path metric of a weighted undirected graph (paper §2).

:class:`GraphMetric` is the substrate every other module builds on.  It
wraps a connected, edge-weighted, undirected :class:`networkx.Graph`,
normalizes the minimum edge weight to 1 (the paper's w.l.o.g. assumption),
and provides:

* exact shortest-path distances ``d(u, v)`` (scipy Dijkstra);
* metric balls ``B_u(r)`` — with the paper's convention that ball
  membership uses ``d(u, x) <= r``;
* *size-radii* ``r_u(j)``: the radius of the smallest ball around ``u``
  containing ``2^j`` nodes, together with the corresponding node set (ties
  broken by node id so that ``|B_u(r_u(j))| = 2^j`` exactly — the paper
  implicitly assumes general position; see DESIGN.md);
* next-hop extraction: the first edge of a shortest path from ``u`` toward
  any target, with least-id tie-breaking so that every node's view of
  shortest paths is globally consistent.

Since the substrate refactor, ``GraphMetric`` is a *facade* over two
interchangeable distance strategies (see :mod:`repro.metric.substrate`):

* ``strategy="dense"`` — the original eager O(n²) APSP matrix, selected
  automatically for ``n <= DENSE_NODE_LIMIT``;
* ``strategy="lazy"`` — a CSR adjacency core whose per-source rows are
  materialized on demand into a budgeted LRU row store, with
  radius-/size-bounded searches so ball and size-radius queries never
  touch nodes beyond the queried ball.

Both strategies answer every query byte-identically (a property suite in
``tests/test_substrate.py`` enforces this on all fixtures); ``lazy``
additionally scales to n = 10⁴ and beyond because nothing ever allocates
an n×n matrix.  The only documented divergence is :attr:`diameter` above
``EXACT_DIAMETER_LIMIT`` nodes, where the lazy strategy reports an
iterated double-sweep *lower bound* (exact on trees, >= Δ/2 in general)
instead of paying n full searches.

Nodes must be (or are relabelled to) ``0 .. n-1`` integers.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.core.edits import EditKind, GraphEdit
from repro.core.types import NodeId, PreprocessingError
from repro.metric.substrate import (
    DEFAULT_ROW_BUDGET_BYTES,
    DENSE_NODE_LIMIT,
    DISTANCE_SLACK,
    EXACT_DIAMETER_LIMIT,
    DenseStrategy,
    LazyStrategy,
)

__all__ = [
    "DISTANCE_SLACK",
    "DENSE_NODE_LIMIT",
    "EXACT_DIAMETER_LIMIT",
    "GraphMetric",
    "stretch_of",
]

_ROW_CHUNK = 256


class GraphMetric:
    """Finite metric induced by a connected weighted undirected graph.

    Args:
        graph: A connected undirected :class:`networkx.Graph`.  Edge
            weights are read from the ``weight`` attribute (default 1.0)
            and must be positive.
        normalize: If ``True`` (default), divide all weights by the minimum
            edge weight so the smallest distance is 1, matching the paper's
            normalization (``Δ = max d(u, v)``).
        strategy: ``"dense"`` (eager APSP), ``"lazy"`` (bounded-search
            row store), or ``"auto"`` (default: dense iff
            ``n <= DENSE_NODE_LIMIT``).
        row_budget_bytes: LRU byte budget for lazily materialized rows
            (lazy strategy only; default ``DEFAULT_ROW_BUDGET_BYTES``).

    Raises:
        PreprocessingError: If the graph is empty, disconnected, has a
            non-positive edge weight, or ``strategy`` is unknown.
    """

    def __init__(
        self,
        graph: nx.Graph,
        normalize: bool = True,
        strategy: str = "auto",
        row_budget_bytes: Optional[int] = None,
    ) -> None:
        if strategy not in ("auto", "dense", "lazy"):
            raise PreprocessingError(
                f"strategy must be 'auto', 'dense', or 'lazy', got {strategy!r}"
            )
        if graph.number_of_nodes() == 0:
            raise PreprocessingError("graph is empty")
        if not nx.is_connected(graph):
            raise PreprocessingError("graph must be connected")

        nodes = sorted(graph.nodes())
        if nodes != list(range(len(nodes))):
            graph = nx.relabel_nodes(
                graph, {v: i for i, v in enumerate(nodes)}, copy=True
            )
        self._graph = graph
        self._n = graph.number_of_nodes()
        self._normalize = normalize

        weights = [
            float(data.get("weight", 1.0))
            for _, _, data in graph.edges(data=True)
        ]
        if any(w <= 0 for w in weights):
            raise PreprocessingError("edge weights must be positive")
        self._scale = min(weights) if (normalize and weights) else 1.0

        self._row_budget = (
            DEFAULT_ROW_BUDGET_BYTES
            if row_budget_bytes is None
            else int(row_budget_bytes)
        )
        if strategy == "auto":
            strategy = "dense" if self._n <= DENSE_NODE_LIMIT else "lazy"
        matrix = self._csr()
        if strategy == "dense":
            self._strategy = DenseStrategy(matrix, self._n)
            self._diameter: Optional[float] = (
                float(self._strategy._dist.max()) if self._n > 1 else 1.0
            )
            self._diameter_exact = True
        else:
            self._strategy = LazyStrategy(
                matrix, self._n, budget_bytes=self._row_budget
            )
            # Computed on first access — a lazy metric that never needs
            # the diameter never pays for it.
            self._diameter = None
            self._diameter_exact = self._n <= EXACT_DIAMETER_LIMIT

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _csr(self) -> csr_matrix:
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for u, v, data in self._graph.edges(data=True):
            w = float(data.get("weight", 1.0)) / self._scale
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((w, w))
        return csr_matrix((vals, (rows, cols)), shape=(self._n, self._n))

    # ------------------------------------------------------------------
    # Strategy introspection
    # ------------------------------------------------------------------

    @property
    def strategy(self) -> str:
        """``"dense"`` or ``"lazy"`` — the resolved substrate strategy."""
        return self._strategy.kind

    @property
    def row_budget_bytes(self) -> int:
        """Configured LRU byte budget for lazily materialized rows."""
        return self._row_budget

    def substrate_stats(self) -> Dict[str, object]:
        """Row-store counters: rows materialized, hits/misses, bytes.

        Dense metrics report ``rows_materialized = n`` (the eager APSP
        materializes everything up front); lazy metrics report exactly
        the full rows ever solved — the acceptance counter behind
        "builds at n = 10⁴ with rows materialized ≪ n".
        """
        return self._strategy.stats()

    # -- dense-only raw views (tests, chaos injector back-compat) ------

    @property
    def _dist(self) -> np.ndarray:
        """Full distance matrix — dense strategy only."""
        return self._strategy._dist

    @property
    def _pred(self) -> np.ndarray:
        """Full predecessor matrix — dense strategy only."""
        return self._strategy._pred

    # ------------------------------------------------------------------
    # Incremental maintenance (churn pipeline)
    # ------------------------------------------------------------------

    def detach_graph(self) -> None:
        """Replace the wrapped graph with a private copy.

        Called by ``BuildContext.apply_edit`` *before* mutating a graph
        this metric aliases, so the (now stale) metric keeps a coherent
        pre-edit view for readers that still hold it.
        """
        self._graph = self._graph.copy()

    def _edit_weights(self, edit: GraphEdit) -> List[float]:
        """Normalized edge weights whose relaxations the edit touches."""
        u, v = edit.edge
        weights: List[float] = []
        if edit.kind in (EditKind.WEIGHT, EditKind.EDGE_REMOVE):
            weights.append(
                float(self._graph[u][v].get("weight", 1.0)) / self._scale
            )
        if edit.kind in (EditKind.WEIGHT, EditKind.EDGE_ADD):
            weights.append(float(edit.weight) / self._scale)
        return weights

    def _dirty_sources(self, edit: GraphEdit) -> np.ndarray:
        """Boolean mask of sources whose distance row the edit may touch.

        A source ``s`` is dirty iff the edited edge ``(u, v)`` lies on —
        or ties with — some shortest path from ``s``, under the old
        weight (paths the edit breaks or loosens) or the new weight
        (paths the edit creates or tightens).  Tie-inclusion matters:
        scipy's Dijkstra relaxes strictly, so an edge that never
        improves *or ties* any ``d(s, ·)`` leaves the whole relaxation
        trace — distances and predecessors — bit-identical, which is
        what lets clean rows be spliced through unchanged.

        The test is two-row: the edge is tight (or tie-tight) from ``s``
        iff ``d(s,u) + w <= d(s,v) + slack`` or symmetrically — the
        ``t``-quantified form the dense code used to evaluate over the
        whole matrix reduces to this by the triangle inequality (take
        ``t = v``), so only rows ``u`` and ``v`` are ever consulted.
        """
        u, v = edit.edge
        row_u = self._strategy.row(u)
        row_v = self._strategy.row(v)
        mask = np.zeros(self._n, dtype=bool)
        for w in self._edit_weights(edit):
            mask |= row_u + w <= row_v + DISTANCE_SLACK
            mask |= row_v + w <= row_u + DISTANCE_SLACK
        # The endpoints see the edge directly in their relaxation
        # frontier; always re-examine them (``updated`` downgrades any
        # candidate whose recomputed row turns out unchanged).
        mask[u] = mask[v] = True
        return mask

    def updated(
        self, post_graph: nx.Graph, edit: GraphEdit
    ) -> Tuple["GraphMetric", FrozenSet[NodeId]]:
        """A new metric for ``post_graph`` plus the dirty source set.

        ``post_graph`` must already have ``edit`` applied and must *not*
        be this metric's own graph object (see :meth:`detach_graph`);
        this metric stays a coherent snapshot of the pre-edit network.

        Only the dirty rows are re-run through Dijkstra; clean rows
        (distances, predecessors, and their lazily built per-source
        caches — for lazy metrics, the row-store entries themselves)
        are spliced from this metric, and the result is bit-identical to
        ``GraphMetric(post_graph)`` built cold.  Edits that change the
        node set or the normalization scale dirty everything and fall
        back to a cold build.
        """
        if post_graph is self._graph:
            raise PreprocessingError(
                "updated() needs a detached pre-edit snapshot; call "
                "detach_graph() before mutating a shared graph"
            )
        rebuild_kwargs = dict(
            normalize=self._normalize,
            strategy=self._strategy.kind,
            row_budget_bytes=self._row_budget,
        )
        if edit.changes_node_set:
            rebuilt = GraphMetric(post_graph, **rebuild_kwargs)
            return rebuilt, frozenset(range(rebuilt.n))
        weights = [
            float(data.get("weight", 1.0))
            for _, _, data in post_graph.edges(data=True)
        ]
        if any(w <= 0 for w in weights):
            raise PreprocessingError("edge weights must be positive")
        new_scale = min(weights) if (self._normalize and weights) else 1.0
        if new_scale != self._scale:
            # The normalization divisor changed: every normalized
            # distance in the matrix is scaled, so nothing is reusable.
            rebuilt = GraphMetric(post_graph, **rebuild_kwargs)
            return rebuilt, frozenset(range(rebuilt.n))

        mask = self._dirty_sources(edit)
        candidates = np.nonzero(mask)[0]

        new = object.__new__(GraphMetric)
        new._graph = post_graph
        new._n = self._n
        new._normalize = self._normalize
        new._scale = self._scale
        new._row_budget = self._row_budget
        new_matrix = new._csr()
        if self._strategy.kind == "dense":
            dirty_set = self._updated_dense(new, new_matrix, candidates)
        else:
            dirty_set = self._updated_lazy(new, new_matrix, candidates)
        self._strategy.carry_into(new._strategy, dirty_set)
        return new, dirty_set

    def _updated_dense(
        self,
        new: "GraphMetric",
        new_matrix: csr_matrix,
        candidates: np.ndarray,
    ) -> FrozenSet[NodeId]:
        old = self._strategy
        sub_dist, sub_pred = dijkstra(
            new_matrix,
            directed=False,
            indices=candidates,
            return_predecessors=True,
        )
        if not np.all(np.isfinite(sub_dist)):
            raise PreprocessingError("edit disconnected the graph")
        new_dist = old._dist.copy()
        new_dist[candidates] = sub_dist
        new_pred = old._pred.copy()
        new_pred[candidates] = sub_pred
        # The tie-inclusive mask is conservative; on tie-heavy graphs
        # (unit-weight grids) it can flag nearly every source.  The
        # recomputed rows are in hand, so the *exact* dirty set is
        # cheap: a candidate whose new relaxation trace (distances and
        # predecessors) is bit-identical to the old row never changed —
        # every artifact keyed to it is still exact.
        changed = (sub_dist != old._dist[candidates]).any(axis=1) | (
            sub_pred != old._pred[candidates]
        ).any(axis=1)
        new._strategy = DenseStrategy.from_matrices(new_dist, new_pred)
        new._diameter = float(new_dist.max()) if new._n > 1 else 1.0
        new._diameter_exact = True
        return frozenset(int(s) for s in candidates[changed])

    def _updated_lazy(
        self,
        new: "GraphMetric",
        new_matrix: csr_matrix,
        candidates: np.ndarray,
    ) -> FrozenSet[NodeId]:
        old = self._strategy
        new._strategy = LazyStrategy(
            new_matrix, self._n, budget_bytes=self._row_budget
        )
        new._diameter = None
        new._diameter_exact = self._n <= EXACT_DIAMETER_LIMIT
        dirty: List[int] = []
        was_cached = {s for s, _ in old.store.items()}
        for start in range(0, candidates.shape[0], _ROW_CHUNK):
            chunk = candidates[start : start + _ROW_CHUNK]
            new_dist, new_pred = dijkstra(
                new_matrix,
                directed=False,
                indices=chunk,
                return_predecessors=True,
            )
            if not np.all(np.isfinite(new_dist)):
                raise PreprocessingError("edit disconnected the graph")
            # Old rows: prefer the stored row (what this snapshot's
            # readers actually see), recompute the rest in one batch.
            cached_rows: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
            missing: List[int] = []
            for s in chunk:
                entry = old.store.get(int(s))
                if entry is not None and entry.full:
                    cached_rows[int(s)] = (entry.dist, entry.pred)
                else:
                    missing.append(int(s))
            if missing:
                miss_dist, miss_pred = dijkstra(
                    old._matrix,
                    directed=False,
                    indices=np.asarray(missing, dtype=np.int64),
                    return_predecessors=True,
                )
                for i, s in enumerate(missing):
                    cached_rows[s] = (miss_dist[i], miss_pred[i])
            for i, s in enumerate(chunk):
                old_d, old_p = cached_rows[int(s)]
                if (new_dist[i] != old_d).any() or (new_pred[i] != old_p).any():
                    dirty.append(int(s))
                    if int(s) in was_cached:
                        # Hot source: keep it materialized post-edit.
                        new._strategy.adopt_row(
                            int(s), new_dist[i].copy(), new_pred[i].copy()
                        )
        return frozenset(dirty)

    # ------------------------------------------------------------------
    # Table-integrity auditing (chaos subsystem)
    # ------------------------------------------------------------------

    def row_digest(self, u: NodeId) -> str:
        """Checksum of node ``u``'s routing-table basis.

        Every scheme ultimately forwards through this metric's per-node
        rows (distances/predecessors drive ``next_hop``), so a digest
        over those rows *is* a checksum of node ``u``'s stored table
        state.  Used by :mod:`repro.chaos.audit` to detect in-memory
        corruption.
        """
        return self._strategy.row_digest(u)

    def mutable_row(self, u: NodeId) -> Tuple[np.ndarray, np.ndarray]:
        """Writable ``(distances, predecessors)`` views of row ``u``.

        The chaos fault injector's entry point: it mutates stored table
        state in place, deliberately bypassing the query API.  Call
        :meth:`invalidate_derived` afterwards so derived caches (sorted
        views, next hops) are rebuilt from the corrupted values.  On the
        lazy strategy the row is copied first (copy-on-write), so
        snapshots sharing the entry never see the mutation.
        """
        return self._strategy.mutable_row(u)

    def invalidate_derived(self, u: NodeId) -> None:
        """Drop row ``u``'s derived caches after an in-place mutation."""
        self._strategy.invalidate_derived(u)

    def splice_rows(self, sources: Sequence[NodeId]) -> None:
        """Recompute and splice the SSSP rows of ``sources``, in place.

        The churn repair primitive of :meth:`updated`, exposed for
        integrity healing: each source's distances and predecessors are
        re-derived from the current graph by the same per-row Dijkstra
        a cold build runs, so the spliced rows are bit-identical to a
        from-scratch construction (the property :meth:`updated` already
        relies on when it downgrades unchanged candidate rows).  The
        sources' lazy per-row caches — including memoized next-hop rows
        — are invalidated together.
        """
        rows = sorted({int(s) for s in sources})
        if not rows:
            return
        if not all(0 <= s < self._n for s in rows):
            raise PreprocessingError(
                f"sources must be node ids in [0, {self._n})"
            )
        self._strategy.splice_rows(rows, self._csr())
        if self._strategy.kind == "dense" and self._n > 1:
            # Corrupted entries may have inflated the cached diameter.
            self._diameter = float(self._strategy._dist.max())

    # ------------------------------------------------------------------
    # Basic metric queries
    # ------------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The underlying (relabelled, weight-normalized-view) graph."""
        return self._graph

    @property
    def scale(self) -> float:
        """Weight divisor applied by normalization (1.0 when disabled).

        Part of the pipeline cache identity: two metrics over the same
        graph are interchangeable iff their scales agree (with
        ``normalize=False`` the scale is pinned to 1.0).
        """
        return self._scale

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def nodes(self) -> range:
        """All node ids, ``0 .. n-1``."""
        return range(self._n)

    @property
    def diameter(self) -> float:
        """Largest shortest-path distance (= normalized diameter Δ).

        Dense metrics (and lazy ones up to ``EXACT_DIAMETER_LIMIT``
        nodes) report the exact value; larger lazy metrics report the
        iterated double-sweep lower bound (see
        ``LazyStrategy.diameter_estimate``) — check
        :attr:`diameter_is_exact`.
        """
        if self._diameter is None:
            estimate, exact = self._strategy.diameter_estimate()
            self._diameter = max(estimate, 1.0) if self._n > 1 else 1.0
            self._diameter_exact = exact
        return self._diameter

    @property
    def diameter_is_exact(self) -> bool:
        """Whether :attr:`diameter` is exact (vs a double-sweep bound)."""
        if self._diameter is None:
            self.diameter
        return self._diameter_exact

    @property
    def log_diameter(self) -> int:
        """``ceil(log2 Δ)`` — index of the top r-net level (at least 0)."""
        if self.diameter <= 1.0:
            return 0
        return int(math.ceil(math.log2(self.diameter) - DISTANCE_SLACK))

    @property
    def log_n(self) -> int:
        """``ceil(log2 n)`` (at least 0)."""
        if self._n <= 1:
            return 0
        return int(math.ceil(math.log2(self._n) - DISTANCE_SLACK))

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Shortest-path distance ``d(u, v)``."""
        return self._strategy.distance(u, v)

    def distances_from(self, u: NodeId) -> np.ndarray:
        """Vector of distances from ``u`` to every node.

        On the lazy strategy this materializes (and caches) the full
        row; prefer the bounded queries (``ball_with_distances``,
        ``nearest_among``, ``max_distance_to``) when only part of the
        row is needed.
        """
        return self._strategy.row(u)

    def predecessors_from(self, u: NodeId) -> np.ndarray:
        """Predecessor row of the canonical shortest-path tree at ``u``.

        ``predecessors_from(u)[v]`` is the neighbour of ``v`` on the
        canonical path from ``u`` to ``v`` (``-9999`` at ``u`` itself,
        scipy's convention).  Materializes the full row on lazy metrics;
        used by landmark-style schemes that store whole landmark trees.
        """
        return self._strategy.pred_row(u)

    def edge_weight(self, u: NodeId, v: NodeId) -> float:
        """Normalized weight of the edge ``(u, v)``."""
        return float(self._graph[u][v].get("weight", 1.0)) / self._scale

    def eccentricity(self, u: NodeId) -> float:
        """Largest distance from ``u`` to any node.

        Needs only node ``u``'s own row — on the lazy strategy this is
        one single-source search, never the full APSP.
        """
        return self._strategy.eccentricity(u)

    # ------------------------------------------------------------------
    # Balls and size-radii (paper §2)
    # ------------------------------------------------------------------

    def ball(self, u: NodeId, r: float) -> List[NodeId]:
        """``B_u(r)``: nodes within distance ``r`` of ``u`` (inclusive).

        The result is sorted by ``(distance, id)``; it always contains
        ``u`` itself for ``r >= 0``.
        """
        ids, _ = self._strategy.ball_with_distances(u, r)
        return [int(x) for x in ids]

    def ball_with_distances(
        self, u: NodeId, r: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``B_u(r)`` as ``(ids, distances)`` arrays, (distance, id)-sorted.

        The bounded-search workhorse: consumers that used to scan a full
        ``distances_from`` row (r-net construction, ring blocks, oracle
        labels) read exactly the ball they need instead.
        """
        return self._strategy.ball_with_distances(u, r)

    def ball_size(self, u: NodeId, r: float) -> int:
        """``|B_u(r)|`` without materializing the node list."""
        return self._strategy.ball_size(u, r)

    def size_radius(self, u: NodeId, size: int) -> float:
        """``r_u``: distance to the ``size``-th nearest node (incl. u).

        This is the paper's ``r_u(j)`` evaluated at ``size = 2^j``; the
        ball of the ``size`` nearest nodes (ties by id) has exactly
        ``size`` members and radius ``size_radius(u, size)``.
        """
        if not 1 <= size <= self._n:
            raise ValueError(f"size must be in [1, {self._n}], got {size}")
        return self._strategy.size_radius(u, size)

    def size_ball(self, u: NodeId, size: int) -> List[NodeId]:
        """The ``size`` nearest nodes to ``u`` (ties by id), sorted."""
        if not 1 <= size <= self._n:
            raise ValueError(f"size must be in [1, {self._n}], got {size}")
        return [int(x) for x in self._strategy.size_ball(u, size)]

    def size_ball_with_radius(
        self, u: NodeId, size: int
    ) -> Tuple[float, List[NodeId]]:
        """``(size_radius(u, size), size_ball(u, size))`` in one search."""
        if not 1 <= size <= self._n:
            raise ValueError(f"size must be in [1, {self._n}], got {size}")
        radius = self._strategy.size_radius(u, size)
        return radius, [int(x) for x in self._strategy.size_ball(u, size)]

    def r_u(self, u: NodeId, j: int) -> float:
        """The paper's ``r_u(j)``: radius of the size-``2^j`` ball at u.

        ``j`` may range over ``[0, log2(n)]``; ``2^j`` is clamped to ``n``
        at the top so that ``r_u(log n)`` is always defined (it equals the
        eccentricity of ``u`` when ``n`` is a power of two).
        """
        size = min(self._n, 1 << j)
        return self.size_radius(u, size)

    def nearest_in(
        self, u: NodeId, candidates: Sequence[NodeId]
    ) -> NodeId:
        """Nearest candidate to ``u`` with least-id tie-breaking."""
        if len(candidates) == 0:
            raise ValueError("candidates must be non-empty")
        return self._strategy.nearest_among(u, candidates, tol=0.0)

    def nearest_among(
        self,
        u: NodeId,
        candidates: Sequence[NodeId],
        tol: float = 0.0,
        hint: Optional[float] = None,
    ) -> NodeId:
        """Least-id candidate within ``tol`` of the nearest one.

        ``tol = 0`` is :meth:`nearest_in`; ``tol = DISTANCE_SLACK`` is
        the slack-tolerant parent selection the net hierarchy uses.
        ``hint`` bounds the first search radius on the lazy strategy
        (e.g. the net-covering radius ``2^i``, which guarantees a
        candidate within reach); the answer never depends on it.
        """
        if len(candidates) == 0:
            raise ValueError("candidates must be non-empty")
        return self._strategy.nearest_among(u, candidates, tol=tol, hint=hint)

    # ------------------------------------------------------------------
    # Shortest paths and next hops
    # ------------------------------------------------------------------

    def next_hop(self, u: NodeId, v: NodeId) -> NodeId:
        """Neighbour of ``u`` on the canonical shortest path to ``v``.

        Canonical paths are read off the Dijkstra predecessor tree of
        source ``u``, so they are exact (never distance-tolerance based)
        and consistent: all paths from ``u`` form a tree.  First hops
        are memoized per source in the same store as the distance rows
        and invalidated together by :meth:`splice_rows`.
        """
        if u == v:
            return u
        return self._strategy.next_hop(u, v)

    def shortest_path(self, u: NodeId, v: NodeId) -> List[NodeId]:
        """The canonical shortest path from ``u`` to ``v`` (inclusive)."""
        path = [u]
        current = u
        while current != v:
            current = self.next_hop(current, v)
            path.append(current)
        return path

    # ------------------------------------------------------------------
    # Set-level helpers used by packings and search trees
    # ------------------------------------------------------------------

    def ball_set(self, u: NodeId, r: float) -> FrozenSet[NodeId]:
        """``B_u(r)`` as a frozenset (cached-friendly shape)."""
        return frozenset(self.ball(u, r))

    def max_distance_to(
        self,
        u: NodeId,
        among: Iterable[NodeId],
        hint: Optional[float] = None,
    ) -> float:
        """``max_{x in among} d(u, x)``.

        ``hint`` (lazy strategy) bounds the first search radius when the
        caller knows how far ``among`` can reach (e.g. a search tree's
        member radius); the result never depends on it.
        """
        return self._strategy.max_distance_to(u, among, hint=hint)

    # ------------------------------------------------------------------
    # Persistence (pipeline disk cache)
    # ------------------------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        """Pickle the graph plus only *materialized* row state.

        Dense strategies store their matrices; lazy strategies store
        just the full rows currently in the LRU (partial searches and
        derived views are recomputed on demand after unpickling).
        """
        return {
            "graph": self._graph,
            "n": self._n,
            "normalize": self._normalize,
            "scale": self._scale,
            "diameter": self._diameter,
            "diameter_exact": self._diameter_exact,
            "row_budget": self._row_budget,
            "strategy_kind": self._strategy.kind,
            "strategy_state": self._strategy.state(),
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._graph = state["graph"]
        self._n = state["n"]
        self._normalize = state["normalize"]
        self._scale = state["scale"]
        self._diameter = state["diameter"]
        self._diameter_exact = state["diameter_exact"]
        self._row_budget = state["row_budget"]
        if state["strategy_kind"] == "dense":
            self._strategy = DenseStrategy.restore(
                state["strategy_state"], self._n
            )
        else:
            self._strategy = LazyStrategy.restore(
                state["strategy_state"], self._csr(), self._n
            )

    def __repr__(self) -> str:
        diameter = self._diameter
        shown = f"{diameter:.3f}" if diameter is not None else "?"
        return (
            f"GraphMetric(n={self._n}, diameter={shown}, "
            f"edges={self._graph.number_of_edges()})"
        )


def stretch_of(metric: GraphMetric, path: Sequence[NodeId]) -> Tuple[float, float]:
    """Cost of walking ``path`` leg-by-leg and the direct distance.

    Each leg is charged the shortest-path distance between consecutive
    path entries.  Returns ``(cost, optimal)``.
    """
    if len(path) < 1:
        raise ValueError("path must be non-empty")
    cost = 0.0
    for a, b in zip(path, path[1:]):
        cost += metric.distance(a, b)
    return cost, metric.distance(path[0], path[-1])
