"""The shortest-path metric of a weighted undirected graph (paper §2).

:class:`GraphMetric` is the substrate every other module builds on.  It
wraps a connected, edge-weighted, undirected :class:`networkx.Graph`,
normalizes the minimum edge weight to 1 (the paper's w.l.o.g. assumption),
and provides:

* exact all-pairs shortest-path distances ``d(u, v)`` (scipy Dijkstra);
* metric balls ``B_u(r)`` — with the paper's convention that ball
  membership uses ``d(u, x) <= r``;
* *size-radii* ``r_u(j)``: the radius of the smallest ball around ``u``
  containing ``2^j`` nodes, together with the corresponding node set (ties
  broken by node id so that ``|B_u(r_u(j))| = 2^j`` exactly — the paper
  implicitly assumes general position; see DESIGN.md);
* next-hop extraction: the first edge of a shortest path from ``u`` toward
  any target, with least-id tie-breaking so that every node's view of
  shortest paths is globally consistent.

Nodes must be (or are relabelled to) ``0 .. n-1`` integers.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.core.edits import EditKind, GraphEdit
from repro.core.types import NodeId, PreprocessingError

#: Relative slack used when comparing floating-point distances.  All edge
#: weights are >= 1 after normalization, so an absolute epsilon is safe.
DISTANCE_SLACK = 1e-9


class GraphMetric:
    """Finite metric induced by a connected weighted undirected graph.

    Args:
        graph: A connected undirected :class:`networkx.Graph`.  Edge
            weights are read from the ``weight`` attribute (default 1.0)
            and must be positive.
        normalize: If ``True`` (default), divide all weights by the minimum
            edge weight so the smallest distance is 1, matching the paper's
            normalization (``Δ = max d(u, v)``).

    Raises:
        PreprocessingError: If the graph is empty, disconnected, or has a
            non-positive edge weight.
    """

    def __init__(self, graph: nx.Graph, normalize: bool = True) -> None:
        if graph.number_of_nodes() == 0:
            raise PreprocessingError("graph is empty")
        if not nx.is_connected(graph):
            raise PreprocessingError("graph must be connected")

        nodes = sorted(graph.nodes())
        if nodes != list(range(len(nodes))):
            graph = nx.relabel_nodes(
                graph, {v: i for i, v in enumerate(nodes)}, copy=True
            )
        self._graph = graph
        self._n = graph.number_of_nodes()
        self._normalize = normalize

        weights = [
            float(data.get("weight", 1.0))
            for _, _, data in graph.edges(data=True)
        ]
        if any(w <= 0 for w in weights):
            raise PreprocessingError("edge weights must be positive")
        self._scale = min(weights) if (normalize and weights) else 1.0

        self._dist = self._all_pairs_distances()
        self._diameter = float(self._dist.max()) if self._n > 1 else 1.0
        # Sorted neighbourhood views, built lazily per source.
        self._order_cache: Dict[NodeId, np.ndarray] = {}
        self._sorted_dist_cache: Dict[NodeId, np.ndarray] = {}
        self._next_hop_cache: Dict[NodeId, Dict[NodeId, NodeId]] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _csr(self) -> csr_matrix:
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for u, v, data in self._graph.edges(data=True):
            w = float(data.get("weight", 1.0)) / self._scale
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((w, w))
        return csr_matrix((vals, (rows, cols)), shape=(self._n, self._n))

    def _all_pairs_distances(self) -> np.ndarray:
        dist, pred = dijkstra(
            self._csr(), directed=False, return_predecessors=True
        )
        if not np.all(np.isfinite(dist)):
            raise PreprocessingError("graph must be connected")
        # pred[u, v] = predecessor of v on the canonical shortest path
        # from u; used for exact next-hop extraction (no floating-point
        # tolerance games, which break at large normalized diameters).
        self._pred = pred
        return dist

    # ------------------------------------------------------------------
    # Incremental maintenance (churn pipeline)
    # ------------------------------------------------------------------

    def detach_graph(self) -> None:
        """Replace the wrapped graph with a private copy.

        Called by ``BuildContext.apply_edit`` *before* mutating a graph
        this metric aliases, so the (now stale) metric keeps a coherent
        pre-edit view for readers that still hold it.
        """
        self._graph = self._graph.copy()

    def _dirty_sources(self, edit: GraphEdit) -> np.ndarray:
        """Boolean mask of sources whose distance row the edit may touch.

        A source ``s`` is dirty iff the edited edge ``(u, v)`` lies on —
        or ties with — some shortest path from ``s``, under the old
        weight (paths the edit breaks or loosens) or the new weight
        (paths the edit creates or tightens).  Tie-inclusion matters:
        scipy's Dijkstra relaxes strictly, so an edge that never
        improves *or ties* any ``d(s, ·)`` leaves the whole relaxation
        trace — distances and predecessors — bit-identical, which is
        what lets clean rows be spliced through unchanged.
        """
        u, v = edit.edge
        d = self._dist
        mask = np.zeros(self._n, dtype=bool)

        def influence(w_norm: float) -> np.ndarray:
            through = np.minimum(
                d[u][:, None] + w_norm + d[v][None, :],
                d[v][:, None] + w_norm + d[u][None, :],
            )
            return (through <= d + DISTANCE_SLACK).any(axis=1)

        if edit.kind in (EditKind.WEIGHT, EditKind.EDGE_REMOVE):
            old_w = float(self._graph[u][v].get("weight", 1.0)) / self._scale
            mask |= influence(old_w)
        if edit.kind in (EditKind.WEIGHT, EditKind.EDGE_ADD):
            mask |= influence(float(edit.weight) / self._scale)
        # The endpoints see the edge directly in their relaxation
        # frontier; always re-examine them (``updated`` downgrades any
        # candidate whose recomputed row turns out unchanged).
        mask[u] = mask[v] = True
        return mask

    def updated(
        self, post_graph: nx.Graph, edit: GraphEdit
    ) -> Tuple["GraphMetric", FrozenSet[NodeId]]:
        """A new metric for ``post_graph`` plus the dirty source set.

        ``post_graph`` must already have ``edit`` applied and must *not*
        be this metric's own graph object (see :meth:`detach_graph`);
        this metric stays a coherent snapshot of the pre-edit network.

        Only the dirty rows are re-run through Dijkstra; clean rows
        (distances, predecessors, and their lazily built per-source
        caches) are spliced from this metric, and the result is
        bit-identical to ``GraphMetric(post_graph)`` built cold.  Edits
        that change the node set or the normalization scale dirty
        everything and fall back to a cold build.
        """
        if post_graph is self._graph:
            raise PreprocessingError(
                "updated() needs a detached pre-edit snapshot; call "
                "detach_graph() before mutating a shared graph"
            )
        if edit.changes_node_set:
            rebuilt = GraphMetric(post_graph, normalize=self._normalize)
            return rebuilt, frozenset(range(rebuilt.n))
        weights = [
            float(data.get("weight", 1.0))
            for _, _, data in post_graph.edges(data=True)
        ]
        if any(w <= 0 for w in weights):
            raise PreprocessingError("edge weights must be positive")
        new_scale = min(weights) if (self._normalize and weights) else 1.0
        if new_scale != self._scale:
            # The normalization divisor changed: every normalized
            # distance in the matrix is scaled, so nothing is reusable.
            rebuilt = GraphMetric(post_graph, normalize=self._normalize)
            return rebuilt, frozenset(range(rebuilt.n))

        mask = self._dirty_sources(edit)
        candidates = np.nonzero(mask)[0]

        new = object.__new__(GraphMetric)
        new._graph = post_graph
        new._n = self._n
        new._normalize = self._normalize
        new._scale = self._scale
        sub_dist, sub_pred = dijkstra(
            new._csr(),
            directed=False,
            indices=candidates,
            return_predecessors=True,
        )
        if not np.all(np.isfinite(sub_dist)):
            raise PreprocessingError("edit disconnected the graph")
        new._dist = self._dist.copy()
        new._dist[candidates] = sub_dist
        new._pred = self._pred.copy()
        new._pred[candidates] = sub_pred
        # The tie-inclusive mask is conservative; on tie-heavy graphs
        # (unit-weight grids) it can flag nearly every source.  The
        # recomputed rows are in hand, so the *exact* dirty set is
        # cheap: a candidate whose new relaxation trace (distances and
        # predecessors) is bit-identical to the old row never changed —
        # every artifact keyed to it is still exact.
        changed = (sub_dist != self._dist[candidates]).any(axis=1) | (
            sub_pred != self._pred[candidates]
        ).any(axis=1)
        dirty_set = frozenset(int(s) for s in candidates[changed])
        new._diameter = float(new._dist.max()) if new._n > 1 else 1.0
        new._order_cache = {
            s: o for s, o in self._order_cache.items() if s not in dirty_set
        }
        new._sorted_dist_cache = {
            s: sd
            for s, sd in self._sorted_dist_cache.items()
            if s not in dirty_set
        }
        new._next_hop_cache = {
            s: h
            for s, h in self._next_hop_cache.items()
            if s not in dirty_set
        }
        return new, dirty_set

    # ------------------------------------------------------------------
    # Table-integrity auditing (chaos subsystem)
    # ------------------------------------------------------------------

    def row_digest(self, u: NodeId) -> str:
        """Checksum of node ``u``'s routing-table basis.

        Every scheme ultimately forwards through this metric's per-node
        rows (``_dist[u]``/``_pred[u]`` drive ``next_hop``), so a
        digest over those rows *is* a checksum of node ``u``'s stored
        table state.  Used by :mod:`repro.chaos.audit` to detect
        in-memory corruption.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self._dist[u]).tobytes())
        digest.update(np.ascontiguousarray(self._pred[u]).tobytes())
        return digest.hexdigest()

    def splice_rows(self, sources: Sequence[NodeId]) -> None:
        """Recompute and splice the APSP rows of ``sources``, in place.

        The churn repair primitive of :meth:`updated`, exposed for
        integrity healing: each source's distances and predecessors are
        re-derived from the current graph by the same per-row Dijkstra
        a cold build runs, so the spliced rows are bit-identical to a
        from-scratch construction (the property :meth:`updated` already
        relies on when it downgrades unchanged candidate rows).  The
        sources' lazy per-row caches are invalidated.
        """
        rows = sorted({int(s) for s in sources})
        if not rows:
            return
        if not all(0 <= s < self._n for s in rows):
            raise PreprocessingError(
                f"sources must be node ids in [0, {self._n})"
            )
        index = np.asarray(rows, dtype=np.int64)
        sub_dist, sub_pred = dijkstra(
            self._csr(),
            directed=False,
            indices=index,
            return_predecessors=True,
        )
        if not np.all(np.isfinite(sub_dist)):
            raise PreprocessingError("graph must be connected")
        self._dist[index] = sub_dist
        self._pred[index] = sub_pred
        # Corrupted entries may have inflated the cached diameter.
        self._diameter = float(self._dist.max()) if self._n > 1 else 1.0
        for s in rows:
            self._order_cache.pop(s, None)
            self._sorted_dist_cache.pop(s, None)
            self._next_hop_cache.pop(s, None)

    # ------------------------------------------------------------------
    # Basic metric queries
    # ------------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The underlying (relabelled, weight-normalized-view) graph."""
        return self._graph

    @property
    def scale(self) -> float:
        """Weight divisor applied by normalization (1.0 when disabled).

        Part of the pipeline cache identity: two metrics over the same
        graph are interchangeable iff their scales agree (with
        ``normalize=False`` the scale is pinned to 1.0).
        """
        return self._scale

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def nodes(self) -> range:
        """All node ids, ``0 .. n-1``."""
        return range(self._n)

    @property
    def diameter(self) -> float:
        """Largest shortest-path distance (= normalized diameter Δ)."""
        return self._diameter

    @property
    def log_diameter(self) -> int:
        """``ceil(log2 Δ)`` — index of the top r-net level (at least 0)."""
        if self._diameter <= 1.0:
            return 0
        return int(math.ceil(math.log2(self._diameter) - DISTANCE_SLACK))

    @property
    def log_n(self) -> int:
        """``ceil(log2 n)`` (at least 0)."""
        if self._n <= 1:
            return 0
        return int(math.ceil(math.log2(self._n) - DISTANCE_SLACK))

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Shortest-path distance ``d(u, v)``."""
        return float(self._dist[u, v])

    def distances_from(self, u: NodeId) -> np.ndarray:
        """Read-only vector of distances from ``u`` to every node."""
        return self._dist[u]

    def edge_weight(self, u: NodeId, v: NodeId) -> float:
        """Normalized weight of the edge ``(u, v)``."""
        return float(self._graph[u][v].get("weight", 1.0)) / self._scale

    def eccentricity(self, u: NodeId) -> float:
        """Largest distance from ``u`` to any node."""
        return float(self._dist[u].max())

    # ------------------------------------------------------------------
    # Balls and size-radii (paper §2)
    # ------------------------------------------------------------------

    def _order_from(self, u: NodeId) -> np.ndarray:
        """Node ids sorted by ``(distance from u, node id)``."""
        order = self._order_cache.get(u)
        if order is None:
            d = self._dist[u]
            order = np.lexsort((np.arange(self._n), d))
            self._order_cache[u] = order
            self._sorted_dist_cache[u] = d[order]
        return order

    def ball(self, u: NodeId, r: float) -> List[NodeId]:
        """``B_u(r)``: nodes within distance ``r`` of ``u`` (inclusive).

        The result is sorted by ``(distance, id)``; it always contains
        ``u`` itself for ``r >= 0``.
        """
        order = self._order_from(u)
        sorted_d = self._sorted_dist_cache[u]
        count = int(np.searchsorted(sorted_d, r + DISTANCE_SLACK, "right"))
        return [int(x) for x in order[:count]]

    def ball_size(self, u: NodeId, r: float) -> int:
        """``|B_u(r)|`` without materializing the node list."""
        self._order_from(u)
        sorted_d = self._sorted_dist_cache[u]
        return int(np.searchsorted(sorted_d, r + DISTANCE_SLACK, "right"))

    def size_radius(self, u: NodeId, size: int) -> float:
        """``r_u``: distance to the ``size``-th nearest node (incl. u).

        This is the paper's ``r_u(j)`` evaluated at ``size = 2^j``; the
        ball of the ``size`` nearest nodes (ties by id) has exactly
        ``size`` members and radius ``size_radius(u, size)``.
        """
        if not 1 <= size <= self._n:
            raise ValueError(f"size must be in [1, {self._n}], got {size}")
        self._order_from(u)
        return float(self._sorted_dist_cache[u][size - 1])

    def size_ball(self, u: NodeId, size: int) -> List[NodeId]:
        """The ``size`` nearest nodes to ``u`` (ties by id), sorted."""
        if not 1 <= size <= self._n:
            raise ValueError(f"size must be in [1, {self._n}], got {size}")
        order = self._order_from(u)
        return [int(x) for x in order[:size]]

    def r_u(self, u: NodeId, j: int) -> float:
        """The paper's ``r_u(j)``: radius of the size-``2^j`` ball at u.

        ``j`` may range over ``[0, log2(n)]``; ``2^j`` is clamped to ``n``
        at the top so that ``r_u(log n)`` is always defined (it equals the
        eccentricity of ``u`` when ``n`` is a power of two).
        """
        size = min(self._n, 1 << j)
        return self.size_radius(u, size)

    def nearest_in(
        self, u: NodeId, candidates: Sequence[NodeId]
    ) -> NodeId:
        """Nearest candidate to ``u`` with least-id tie-breaking."""
        if len(candidates) == 0:
            raise ValueError("candidates must be non-empty")
        d = self._dist[u]
        best = min(candidates, key=lambda x: (d[x], x))
        return int(best)

    # ------------------------------------------------------------------
    # Shortest paths and next hops
    # ------------------------------------------------------------------

    def _next_hops_from(self, u: NodeId) -> Dict[NodeId, NodeId]:
        """First hop of the canonical shortest path from ``u`` to each v.

        Canonical paths are read off the Dijkstra predecessor tree of
        source ``u``, so they are exact (never distance-tolerance based)
        and consistent: all paths from ``u`` form a tree.
        """
        hops = self._next_hop_cache.get(u)
        if hops is not None:
            return hops
        hops = {}
        pred = self._pred[u]
        for v in self.nodes:
            if v == u:
                continue
            if v in hops:
                continue
            # Walk v's predecessor chain back toward u; stop at u or at
            # a node whose first hop is already known.  Everything on
            # the chain shares that first hop.
            chain = []
            node = v
            while node != u and node not in hops:
                chain.append(node)
                node = int(pred[node])
            first = chain[-1] if node == u else hops[node]
            for x in chain:
                hops[x] = first
        self._next_hop_cache[u] = hops
        return hops

    def next_hop(self, u: NodeId, v: NodeId) -> NodeId:
        """Neighbour of ``u`` on the canonical shortest path to ``v``."""
        if u == v:
            return u
        return self._next_hops_from(u)[v]

    def shortest_path(self, u: NodeId, v: NodeId) -> List[NodeId]:
        """The canonical shortest path from ``u`` to ``v`` (inclusive)."""
        path = [u]
        current = u
        while current != v:
            current = self.next_hop(current, v)
            path.append(current)
        return path

    # ------------------------------------------------------------------
    # Set-level helpers used by packings and search trees
    # ------------------------------------------------------------------

    def ball_set(self, u: NodeId, r: float) -> FrozenSet[NodeId]:
        """``B_u(r)`` as a frozenset (cached-friendly shape)."""
        return frozenset(self.ball(u, r))

    def max_distance_to(self, u: NodeId, among: Iterable[NodeId]) -> float:
        """``max_{x in among} d(u, x)``."""
        d = self._dist[u]
        return float(max(d[x] for x in among))

    def __repr__(self) -> str:
        return (
            f"GraphMetric(n={self._n}, diameter={self._diameter:.3f}, "
            f"edges={self._graph.number_of_edges()})"
        )


def stretch_of(metric: GraphMetric, path: Sequence[NodeId]) -> Tuple[float, float]:
    """Cost of walking ``path`` leg-by-leg and the direct distance.

    Each leg is charged the shortest-path distance between consecutive
    path entries.  Returns ``(cost, optimal)``.
    """
    if len(path) < 1:
        raise ValueError("path must be non-empty")
    cost = 0.0
    for a, b in zip(path, path[1:]):
        cost += metric.distance(a, b)
    return cost, metric.distance(path[0], path[-1])
