"""Two-tier distance substrate: dense eager APSP vs lazy bounded search.

:class:`~repro.metric.graph_metric.GraphMetric` used to *be* the dense
eager APSP matrix — O(n²) memory and O(n · m log n) preprocessing before
the first query, which caps every experiment at a few hundred nodes.
The paper's constructions, however, only ever consult *balls*
``B_u(r)``, *size-radii* ``r_u(j)``, and next hops along canonical
shortest paths — all answerable from bounded single-source searches.

This module provides the two interchangeable strategies behind the
``GraphMetric`` facade:

* :class:`DenseStrategy` — the original eager APSP (scipy Dijkstra, full
  distance + predecessor matrices).  Selected automatically for small
  ``n``; every answer is byte-for-byte what the pre-refactor code
  produced.
* :class:`LazyStrategy` — a CSR adjacency core with per-source rows
  materialized on demand into a budgeted LRU :class:`RowStore`.
  Radius-bounded and size-bounded queries run *limit*-bounded Dijkstra
  (``scipy.sparse.csgraph.dijkstra(limit=...)``) and never touch nodes
  beyond the queried ball, so ``ball`` / ``ball_size`` / ``size_radius``
  / ``r_u`` / ``nearest_in`` never materialize a full row.

Bit-identity between the strategies rests on a property of Dijkstra
with a radius cutoff: every node settled by a bounded run carries
exactly the distance *and predecessor* the unbounded run assigns it,
and a run with ``limit = L`` settles precisely the nodes with
``d(u, v) <= L``.  The strategy-equivalence suite in
``tests/test_substrate.py`` holds both strategies to byte equality on
every fixture.

Floating-point comparisons throughout use :data:`DISTANCE_SLACK`, the
same absolute tolerance the dense code always used (re-exported from
``graph_metric`` for backward compatibility).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.core.types import NodeId, PreprocessingError

#: Relative slack used when comparing floating-point distances.  All edge
#: weights are >= 1 after normalization, so an absolute epsilon is safe.
DISTANCE_SLACK = 1e-9

#: ``strategy="auto"`` picks dense at or below this node count.  Small
#: graphs are cheaper to solve eagerly than to manage a row store for,
#: and every pre-refactor workload (n <= 256) stays byte-identical.
DENSE_NODE_LIMIT = 512

#: Default LRU budget for lazily materialized rows (bytes of row-array
#: storage; ~64 MiB holds ≈ 550 full rows at n = 10⁴).
DEFAULT_ROW_BUDGET_BYTES = 64 * 2**20

#: ``diameter`` is computed exactly (streamed row maxima, no matrix)
#: up to this size; beyond it the lazy strategy reports an iterated
#: double-sweep lower bound (exact on trees, >= Δ/2 in general).
EXACT_DIAMETER_LIMIT = 2048

#: Sources per scipy call when streaming many rows (bounds transient
#: memory to ``chunk * n`` floats instead of ``n * n``).
_ROW_CHUNK = 256


def _lexsorted_view(
    dist: np.ndarray, ids: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """``(order, sorted_dist)`` sorting entries by ``(distance, id)``."""
    if ids is None:
        order = np.lexsort((np.arange(dist.shape[0]), dist))
    else:
        order = np.lexsort((ids, dist))
    return order, dist[order]


class _Row:
    """One row-store entry: a full or radius-bounded SSSP solution.

    Full rows (``full=True``) store dense ``(n,)`` distance/predecessor
    vectors; partial rows store only the settled nodes (``ids`` sorted
    ascending, ``dist``/``pred`` aligned) plus the search ``limit`` that
    produced them — every node with ``d <= limit`` is settled, so any
    query whose reach is within ``limit`` answers exactly.  ``hops``
    memoizes first-hop extractions for this source (satellite: next-hop
    rows live in the same LRU entry as the distances, so one eviction or
    splice invalidates both together).
    """

    __slots__ = (
        "ids",
        "dist",
        "pred",
        "order",
        "sorted_dist",
        "limit",
        "full",
        "hops",
        "nbytes",
    )

    def __init__(
        self,
        dist: np.ndarray,
        pred: np.ndarray,
        limit: float,
        full: bool,
        ids: Optional[np.ndarray] = None,
        hops: Optional[Dict[NodeId, NodeId]] = None,
    ) -> None:
        self.ids = ids
        self.dist = dist
        self.pred = pred
        self.limit = limit
        self.full = full
        self.hops = {} if hops is None else hops
        self.order, self.sorted_dist = _lexsorted_view(dist, ids)
        self.nbytes = (
            dist.nbytes
            + pred.nbytes
            + self.order.nbytes
            + self.sorted_dist.nbytes
            + (0 if ids is None else ids.nbytes)
        )

    @property
    def settled(self) -> int:
        return self.dist.shape[0]

    def covers_radius(self, need: float) -> bool:
        return self.full or self.limit >= need

    def lookup(self, v: NodeId) -> Tuple[float, int]:
        """``(distance, predecessor)`` of ``v`` or ``(inf, -1)``."""
        if self.full:
            return float(self.dist[v]), int(self.pred[v])
        pos = int(np.searchsorted(self.ids, v))
        if pos < self.ids.shape[0] and self.ids[pos] == v:
            return float(self.dist[pos]), int(self.pred[pos])
        return float("inf"), -1

    def lookup_many(self, targets: np.ndarray) -> np.ndarray:
        """Distances of ``targets`` (``inf`` where unsettled)."""
        if self.full:
            return self.dist[targets]
        pos = np.searchsorted(self.ids, targets)
        pos_clipped = np.minimum(pos, self.ids.shape[0] - 1)
        valid = self.ids[pos_clipped] == targets
        out = np.full(targets.shape[0], np.inf)
        out[valid] = self.dist[pos_clipped[valid]]
        return out

    def prefix(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """First ``count`` nodes by ``(distance, id)`` plus distances."""
        idx = self.order[:count]
        ids = idx if self.ids is None else self.ids[idx]
        return ids, self.sorted_dist[:count]

    def sorted_entry(self, rank: int) -> float:
        return float(self.sorted_dist[rank])


class RowStore:
    """Budgeted LRU cache of per-source :class:`_Row` entries.

    Eviction is by least-recent *access*; the byte budget covers the
    entries' numpy arrays (first-hop memo dicts ride along uncharged —
    they are small relative to the rows they annotate and die with
    them).  A single row is always admitted even when it alone exceeds
    the budget, so queries never livelock.
    """

    def __init__(self, budget_bytes: int) -> None:
        self.budget_bytes = int(budget_bytes)
        self._entries: "OrderedDict[NodeId, _Row]" = OrderedDict()
        self.stored_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, u: NodeId) -> bool:
        return u in self._entries

    def get(self, u: NodeId) -> Optional[_Row]:
        entry = self._entries.get(u)
        if entry is not None:
            self._entries.move_to_end(u)
        return entry

    def put(self, u: NodeId, entry: _Row) -> _Row:
        old = self._entries.pop(u, None)
        if old is not None:
            self.stored_bytes -= old.nbytes
        self._entries[u] = entry
        self.stored_bytes += entry.nbytes
        while self.stored_bytes > self.budget_bytes and len(self._entries) > 1:
            victim, dropped = self._entries.popitem(last=False)
            if victim == u:  # never evict the entry just inserted
                self._entries[victim] = dropped
                self._entries.move_to_end(victim, last=False)
                break
            self.stored_bytes -= dropped.nbytes
            self.evictions += 1
        return entry

    def pop(self, u: NodeId) -> None:
        entry = self._entries.pop(u, None)
        if entry is not None:
            self.stored_bytes -= entry.nbytes

    def items(self) -> Iterable[Tuple[NodeId, _Row]]:
        return list(self._entries.items())

    def clear(self) -> None:
        self._entries.clear()
        self.stored_bytes = 0


def _row_digest_bytes(dist: np.ndarray, pred: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(dist).tobytes())
    digest.update(np.ascontiguousarray(pred).tobytes())
    return digest.hexdigest()


def _first_hops(
    source: NodeId,
    targets: Iterable[NodeId],
    lookup_pred,
    hops: Dict[NodeId, NodeId],
) -> None:
    """Memoize first hops of canonical paths from ``source``.

    ``lookup_pred(v)`` returns the predecessor of ``v`` on the canonical
    shortest path from ``source`` (the Dijkstra predecessor tree), so
    walking the chain back to ``source`` — or to a node whose first hop
    is already memoized — yields the first edge.  This is exactly the
    dense ``_next_hops_from`` walk, restricted to the requested targets.
    """
    for v in targets:
        if v == source or v in hops:
            continue
        chain: List[NodeId] = []
        node = v
        while node != source and node not in hops:
            chain.append(node)
            node = lookup_pred(node)
        first = chain[-1] if node == source else hops[node]
        for x in chain:
            hops[x] = first


class DenseStrategy:
    """Eager full-matrix APSP — the pre-refactor behavior, verbatim.

    Holds the complete distance and predecessor matrices plus the
    original per-source derived caches (lexsort order, sorted distances,
    first-hop dicts).  Every query path is the code that used to live on
    ``GraphMetric`` itself, so dense answers are byte-identical to the
    pre-refactor library by construction.
    """

    kind = "dense"

    def __init__(self, matrix: csr_matrix, n: int) -> None:
        self._n = n
        dist, pred = dijkstra(matrix, directed=False, return_predecessors=True)
        if not np.all(np.isfinite(dist)):
            raise PreprocessingError("graph must be connected")
        self._dist = dist
        self._pred = pred
        self._order_cache: Dict[NodeId, np.ndarray] = {}
        self._sorted_dist_cache: Dict[NodeId, np.ndarray] = {}
        self._next_hop_cache: Dict[NodeId, Dict[NodeId, NodeId]] = {}

    # -- construction without solving (updated()/unpickle paths) -------

    @classmethod
    def from_matrices(
        cls, dist: np.ndarray, pred: np.ndarray
    ) -> "DenseStrategy":
        strategy = object.__new__(cls)
        strategy._n = dist.shape[0]
        strategy._dist = dist
        strategy._pred = pred
        strategy._order_cache = {}
        strategy._sorted_dist_cache = {}
        strategy._next_hop_cache = {}
        return strategy

    # -- queries --------------------------------------------------------

    def distance(self, u: NodeId, v: NodeId) -> float:
        return float(self._dist[u, v])

    def row(self, u: NodeId) -> np.ndarray:
        return self._dist[u]

    def pred_row(self, u: NodeId) -> np.ndarray:
        return self._pred[u]

    def eccentricity(self, u: NodeId) -> float:
        return float(self._dist[u].max())

    def _order_from(self, u: NodeId) -> np.ndarray:
        order = self._order_cache.get(u)
        if order is None:
            d = self._dist[u]
            order = np.lexsort((np.arange(self._n), d))
            self._order_cache[u] = order
            self._sorted_dist_cache[u] = d[order]
        return order

    def ball_with_distances(
        self, u: NodeId, r: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        order = self._order_from(u)
        sorted_d = self._sorted_dist_cache[u]
        count = int(np.searchsorted(sorted_d, r + DISTANCE_SLACK, "right"))
        return order[:count], sorted_d[:count]

    def ball_size(self, u: NodeId, r: float) -> int:
        self._order_from(u)
        sorted_d = self._sorted_dist_cache[u]
        return int(np.searchsorted(sorted_d, r + DISTANCE_SLACK, "right"))

    def size_radius(self, u: NodeId, size: int) -> float:
        self._order_from(u)
        return float(self._sorted_dist_cache[u][size - 1])

    def size_ball(self, u: NodeId, size: int) -> np.ndarray:
        order = self._order_from(u)
        return order[:size]

    def nearest_among(
        self,
        u: NodeId,
        candidates: Sequence[NodeId],
        tol: float = 0.0,
        hint: Optional[float] = None,
    ) -> NodeId:
        d = self._dist[u]
        if len(candidates) <= 64:
            # Candidate lists from the search trees are tiny; a python
            # scan beats the numpy round-trip by an order of magnitude.
            if tol == 0.0:
                return int(min(candidates, key=lambda x: (d[x], x)))
            best = min(d[x] for x in candidates)
            return int(min(x for x in candidates if d[x] <= best + tol))
        targets = np.asarray(candidates, dtype=np.int64)
        dt = d[targets]
        best = dt.min()
        return int(targets[dt <= best + tol].min())

    def max_distance_to(
        self,
        u: NodeId,
        among: Iterable[NodeId],
        hint: Optional[float] = None,
    ) -> float:
        d = self._dist[u]
        return float(max(d[x] for x in among))

    def next_hop(self, u: NodeId, v: NodeId) -> NodeId:
        hops = self._next_hop_cache.get(u)
        if hops is None:
            hops = {}
            self._next_hop_cache[u] = hops
        if v not in hops:
            pred = self._pred[u]
            _first_hops(u, range(self._n), lambda x: int(pred[x]), hops)
        return hops[v]

    # -- maintenance ----------------------------------------------------

    def row_digest(self, u: NodeId) -> str:
        return _row_digest_bytes(self._dist[u], self._pred[u])

    def splice_rows(self, rows: List[int], matrix: csr_matrix) -> None:
        index = np.asarray(rows, dtype=np.int64)
        sub_dist, sub_pred = dijkstra(
            matrix, directed=False, indices=index, return_predecessors=True
        )
        if not np.all(np.isfinite(sub_dist)):
            raise PreprocessingError("graph must be connected")
        self._dist[index] = sub_dist
        self._pred[index] = sub_pred
        for s in rows:
            self.invalidate_derived(s)

    def mutable_row(self, u: NodeId) -> Tuple[np.ndarray, np.ndarray]:
        return self._dist[u], self._pred[u]

    def invalidate_derived(self, u: NodeId) -> None:
        self._order_cache.pop(u, None)
        self._sorted_dist_cache.pop(u, None)
        self._next_hop_cache.pop(u, None)

    def carry_into(
        self, new: "DenseStrategy", dirty: frozenset
    ) -> None:
        new._order_cache = {
            s: o for s, o in self._order_cache.items() if s not in dirty
        }
        new._sorted_dist_cache = {
            s: sd
            for s, sd in self._sorted_dist_cache.items()
            if s not in dirty
        }
        new._next_hop_cache = {
            s: h for s, h in self._next_hop_cache.items() if s not in dirty
        }

    def diameter_estimate(self) -> Tuple[float, bool]:
        return float(self._dist.max()), True

    # -- accounting / persistence --------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "strategy": "dense",
            "rows_materialized": self._n,
            "row_hits": 0,
            "row_misses": 0,
            "bounded_searches": 0,
            "evictions": 0,
            "stored_bytes": int(self._dist.nbytes + self._pred.nbytes),
            "budget_bytes": None,
        }

    def state(self) -> Dict[str, object]:
        return {"dist": self._dist, "pred": self._pred}

    @classmethod
    def restore(cls, state: Dict[str, object], n: int) -> "DenseStrategy":
        return cls.from_matrices(state["dist"], state["pred"])


class LazyStrategy:
    """CSR core + budgeted LRU row store + bounded searches.

    Full rows are materialized only when a caller genuinely needs one
    (``distances_from``, ``row_digest``); balls, size-radii, and nearest
    queries run limit-bounded Dijkstra and cache the partial solution.
    An expanding-limit loop (doubling from a caller hint) serves queries
    whose reach is not known in advance; since every retry at least
    doubles the limit, total work is within a constant factor of the
    final search.
    """

    kind = "lazy"

    def __init__(
        self,
        matrix: csr_matrix,
        n: int,
        budget_bytes: int = DEFAULT_ROW_BUDGET_BYTES,
    ) -> None:
        self._matrix = matrix
        self._n = n
        self.store = RowStore(budget_bytes)
        self.rows_materialized = 0
        self.bounded_searches = 0
        # Radius hints per size class (log2 bucket), warmed by earlier
        # size queries so repeated r_u(j) sweeps start near the answer.
        self._size_hints: Dict[int, float] = {}

    # -- search primitives ---------------------------------------------

    def _run(
        self, u: NodeId, limit: float = np.inf
    ) -> Tuple[np.ndarray, np.ndarray]:
        dist, pred = dijkstra(
            self._matrix,
            directed=False,
            indices=[u],
            return_predecessors=True,
            limit=limit,
        )
        return dist[0], pred[0]

    def _install(
        self, u: NodeId, limit: float, previous: Optional[_Row]
    ) -> _Row:
        self.bounded_searches += 1
        dist, pred = self._run(u, limit=limit)
        hops = previous.hops if previous is not None else None
        settled = np.isfinite(dist)
        if bool(settled.all()):
            entry = _Row(dist, pred, float("inf"), True, hops=hops)
            self.rows_materialized += 1
        else:
            ids = np.nonzero(settled)[0]
            entry = _Row(
                dist[ids], pred[ids], float(limit), False, ids=ids, hops=hops
            )
        return self.store.put(u, entry)

    def ensure_full(self, u: NodeId) -> _Row:
        entry = self.store.get(u)
        if entry is not None and entry.full:
            self.store.hits += 1
            return entry
        self.store.misses += 1
        return self._install(u, np.inf, entry)

    def ensure_radius(self, u: NodeId, need: float) -> _Row:
        entry = self.store.get(u)
        if entry is not None and entry.covers_radius(need):
            self.store.hits += 1
            return entry
        self.store.misses += 1
        limit = need if entry is None else max(need, 2.0 * entry.limit)
        return self._install(u, limit, entry)

    def ensure_size(self, u: NodeId, size: int) -> _Row:
        entry = self.store.get(u)
        if entry is not None and (entry.full or entry.settled >= size):
            self.store.hits += 1
            return entry
        self.store.misses += 1
        bucket = int(size).bit_length()
        limit = max(self._size_hints.get(bucket, 1.0), 1.0)
        if entry is not None:
            limit = max(limit, 2.0 * entry.limit)
        while True:
            entry = self._install(u, limit, entry)
            if entry.full or entry.settled >= size:
                break
            limit *= 2.0
        # Remember the radius that actually covered this size class so
        # the next node's query starts close (keeps greedy sweeps like
        # BallPacking near one search per node).
        self._size_hints[bucket] = max(
            self._size_hints.get(bucket, 1.0), entry.sorted_entry(size - 1)
        )
        return entry

    def ensure_target(self, u: NodeId, v: NodeId) -> _Row:
        entry = self.store.get(u)
        if entry is not None:
            if entry.full or entry.lookup(v)[0] != float("inf"):
                self.store.hits += 1
                return entry
        self.store.misses += 1
        limit = 1.0 if entry is None else max(1.0, 2.0 * entry.limit)
        while True:
            entry = self._install(u, limit, entry)
            if entry.full or entry.lookup(v)[0] != float("inf"):
                return entry
            limit *= 2.0

    # -- queries --------------------------------------------------------

    def distance(self, u: NodeId, v: NodeId) -> float:
        if u == v:
            return 0.0
        # Either endpoint's cached row answers (d is symmetric); only
        # fall back to an expanding search when neither settles the pair.
        for a, b in ((u, v), (v, u)):
            entry = self.store.get(a)
            if entry is not None:
                d = entry.lookup(b)[0]
                if d != float("inf"):
                    self.store.hits += 1
                    return d
        return self.ensure_target(u, v).lookup(v)[0]

    def row(self, u: NodeId) -> np.ndarray:
        return self.ensure_full(u).dist

    def pred_row(self, u: NodeId) -> np.ndarray:
        return self.ensure_full(u).pred

    def eccentricity(self, u: NodeId) -> float:
        # Satellite fix: one lazy row, never the full APSP matrix.
        return float(self.ensure_full(u).dist.max())

    def ball_with_distances(
        self, u: NodeId, r: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        entry = self.ensure_radius(u, r + DISTANCE_SLACK)
        count = int(
            np.searchsorted(entry.sorted_dist, r + DISTANCE_SLACK, "right")
        )
        return entry.prefix(count)

    def ball_size(self, u: NodeId, r: float) -> int:
        entry = self.ensure_radius(u, r + DISTANCE_SLACK)
        return int(
            np.searchsorted(entry.sorted_dist, r + DISTANCE_SLACK, "right")
        )

    def size_radius(self, u: NodeId, size: int) -> float:
        return self.ensure_size(u, size).sorted_entry(size - 1)

    def size_ball(self, u: NodeId, size: int) -> np.ndarray:
        return self.ensure_size(u, size).prefix(size)[0]

    def nearest_among(
        self,
        u: NodeId,
        candidates: Sequence[NodeId],
        tol: float = 0.0,
        hint: Optional[float] = None,
    ) -> NodeId:
        targets = np.asarray(candidates, dtype=np.int64)
        entry = self.store.get(u)
        limit = hint if hint is not None else 1.0
        if entry is not None:
            limit = max(limit, entry.limit)
        while True:
            entry = self.ensure_radius(u, limit)
            if entry.full:
                d = entry.dist[targets]
                best = d.min()
                return int(targets[d <= best + tol].min())
            d = entry.lookup_many(targets)
            best = d.min()
            # Every candidate with d <= best + tol is settled once the
            # limit covers best + tol (unsettled nodes are strictly
            # beyond the limit), so the winner set is exact.
            if best + tol <= entry.limit:
                return int(targets[d <= best + tol].min())
            limit = max(
                2.0 * entry.limit,
                best + tol if np.isfinite(best) else 2.0 * limit,
            )

    def max_distance_to(
        self,
        u: NodeId,
        among: Iterable[NodeId],
        hint: Optional[float] = None,
    ) -> float:
        targets = np.asarray(sorted(set(int(x) for x in among)), dtype=np.int64)
        entry = self.store.get(u)
        limit = hint if hint is not None else 1.0
        if entry is not None:
            limit = max(limit, entry.limit)
        while True:
            entry = self.ensure_radius(u, limit)
            if entry.full:
                return float(entry.dist[targets].max())
            d = entry.lookup_many(targets)
            if np.isfinite(d).all():
                return float(d.max())
            limit = 2.0 * entry.limit

    def next_hop(self, u: NodeId, v: NodeId) -> NodeId:
        entry = self.ensure_target(u, v)
        hops = entry.hops
        if v not in hops:
            # Every node on the canonical path to a settled target is
            # itself settled (its distance is smaller), so the chain
            # walk stays within the entry.
            _first_hops(u, (v,), lambda x: entry.lookup(x)[1], hops)
        return hops[v]

    # -- maintenance ----------------------------------------------------

    def row_digest(self, u: NodeId) -> str:
        entry = self.ensure_full(u)
        return _row_digest_bytes(entry.dist, entry.pred)

    def splice_rows(self, rows: List[int], matrix: csr_matrix) -> None:
        self._matrix = matrix
        for s in rows:
            self.store.pop(s)
        # Re-materialize eagerly so post-splice digests read healed
        # rows without a burst of on-demand misses.
        for s in rows:
            self.store.misses += 1
            self._install(s, np.inf, None)

    def mutable_row(self, u: NodeId) -> Tuple[np.ndarray, np.ndarray]:
        # Copy-on-write: entries can be shared with a pre-edit metric
        # snapshot (see ``carry_into``), so in-place corruption (the
        # chaos injector's model) must never leak across snapshots.
        entry = self.ensure_full(u)
        fresh = _Row(
            entry.dist.copy(), entry.pred.copy(), float("inf"), True
        )
        self.store.put(u, fresh)
        return fresh.dist, fresh.pred

    def invalidate_derived(self, u: NodeId) -> None:
        # Derived views (lexsort order, first hops) live on the row
        # entry; after an in-place mutation they must be rebuilt from
        # the mutated arrays.
        entry = self.store.get(u)
        if entry is None:
            return
        self.store.put(
            u,
            _Row(
                entry.dist,
                entry.pred,
                entry.limit,
                entry.full,
                ids=entry.ids,
            ),
        )

    def adopt_row(
        self, u: NodeId, dist: np.ndarray, pred: np.ndarray
    ) -> None:
        """Install a full row computed externally (``updated`` splice)."""
        self.store.put(u, _Row(dist, pred, float("inf"), True))
        self.rows_materialized += 1

    def carry_into(self, new: "LazyStrategy", dirty: frozenset) -> None:
        for s, entry in self.store.items():
            if s not in dirty:
                new.store.put(s, entry)

    def diameter_estimate(self) -> Tuple[float, bool]:
        """``(estimate, exact)`` diameter without a dense matrix.

        Up to :data:`EXACT_DIAMETER_LIMIT` nodes: stream row maxima in
        chunks (exact, O(chunk · n) transient memory).  Beyond: the
        iterated double sweep — repeatedly jump to the farthest node and
        re-run — which lower-bounds Δ by at least Δ/2 on any graph and
        is exact on trees.
        """
        if self._n <= 1:
            return 1.0, True
        if self._n <= EXACT_DIAMETER_LIMIT:
            best = 0.0
            for start in range(0, self._n, _ROW_CHUNK):
                indices = np.arange(start, min(start + _ROW_CHUNK, self._n))
                dist = dijkstra(self._matrix, directed=False, indices=indices)
                if not np.all(np.isfinite(dist)):
                    raise PreprocessingError("graph must be connected")
                best = max(best, float(dist.max()))
            return best, True
        source = 0
        best = 0.0
        for _ in range(4):
            dist = dijkstra(self._matrix, directed=False, indices=[source])[0]
            far = int(dist.argmax())
            ecc = float(dist[far])
            if ecc <= best:
                break
            best = ecc
            source = far
        return best, False

    # -- accounting / persistence --------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "strategy": "lazy",
            "rows_materialized": self.rows_materialized,
            "row_hits": self.store.hits,
            "row_misses": self.store.misses,
            "bounded_searches": self.bounded_searches,
            "evictions": self.store.evictions,
            "stored_bytes": self.store.stored_bytes,
            "budget_bytes": self.store.budget_bytes,
        }

    def state(self) -> Dict[str, object]:
        """Persist only fully materialized rows (partials are cheap to
        recompute and dominate entry count, not value)."""
        rows = {
            s: (entry.dist, entry.pred)
            for s, entry in self.store.items()
            if entry.full
        }
        return {"budget_bytes": self.store.budget_bytes, "rows": rows}

    @classmethod
    def restore(
        cls, state: Dict[str, object], matrix: csr_matrix, n: int
    ) -> "LazyStrategy":
        strategy = cls(matrix, n, budget_bytes=state["budget_bytes"])
        for s, (dist, pred) in state["rows"].items():
            strategy.store.put(s, _Row(dist, pred, float("inf"), True))
            strategy.rows_materialized += 1
        return strategy
