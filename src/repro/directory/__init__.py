"""Locality-aware object location over name-independent routing."""

from repro.directory.object_directory import LookupResult, ObjectDirectory

__all__ = ["LookupResult", "ObjectDirectory"]
